(* Closed-loop load generator for the qubikos serve daemon.

   Spawns a real daemon process (the same binary users run), drives it
   over its Unix-domain socket from N concurrent client connections,
   and reports:

   - throughput (requests/second) and exact latency quantiles
     (p50/p95/p99, computed from the full sorted sample set — no
     histogram approximation on the client side);
   - cache behaviour from the daemon's own stats verb. The workload
     repeats a fixed set of distinct requests, and the daemon's caches
     are single-flight, so the expected miss count equals the number of
     distinct requests — the hit rate is deterministic, not a
     best-effort observation;
   - correctness: every response for the same request text must be
     byte-identical (cache hits replay the cold response exactly), and
     the daemon's swaps/depth must equal an offline run of the same
     router on the same instance through the library.

   [--out] writes BENCH_serve.json; [--check] compares a fresh run
   against the committed baseline: deterministic fields (errors,
   bit-identity, offline match, hit rate) gate exactly, p50 latency
   gates on a geometric-mean ratio with a generous tolerance (client
   and daemon share one machine; timing noise is real).

   [--drain-test] runs the crash-consistency scenario instead: SIGTERM
   mid-load, then asserts the daemon exits 0, every accepted client got
   a whole-frame answer, and the sealed request log loads with zero
   corrupt lines. *)

module Protocol = Qls_serve.Protocol

(* ------------------------------------------------------------------ *)
(* Daemon process control                                              *)
(* ------------------------------------------------------------------ *)

let default_server () =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "qubikos_cli.exe"))

type daemon = { pid : int; socket : string; log : string }

let spawn_daemon ?(extra = []) ~server ~jobs ~queue () =
  let dir =
    Filename.temp_file "qubikos_serve_bench" "" |> fun f ->
    Sys.remove f;
    Unix.mkdir f 0o700;
    f
  in
  let socket = Filename.concat dir "serve.sock" in
  let log = Filename.concat dir "requests.jsonl" in
  let pid =
    Unix.create_process server
      (Array.of_list
         ([
            server; "serve"; "--socket"; socket; "--jobs"; string_of_int jobs;
            "--queue"; string_of_int queue; "--request-log"; log;
          ]
         @ extra))
      Unix.stdin Unix.stdout Unix.stderr
  in
  (* Wait for the listener: connect-retry, not sleep-and-hope. *)
  let deadline = 100 in
  let rec wait n =
    if n > deadline then failwith "daemon did not come up";
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    match Unix.connect fd (ADDR_UNIX socket) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
        Unix.close fd;
        Thread.delay 0.05;
        wait (n + 1)
  in
  wait 0;
  { pid; socket; log }

let stop_daemon d =
  (match Unix.kill d.pid Sys.sigterm with
  | () -> ()
  | exception Unix.Unix_error _ -> ());
  let _, status = Unix.waitpid [] d.pid in
  status

(* ------------------------------------------------------------------ *)
(* Client                                                              *)
(* ------------------------------------------------------------------ *)

type client_conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ?recv_timeout socket =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.connect fd (ADDR_UNIX socket);
  Option.iter
    (fun t -> Unix.setsockopt_float fd Unix.SO_RCVTIMEO t)
    recv_timeout;
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let disconnect c = close_in_noerr c.ic

let rpc c payload =
  Protocol.write_frame c.oc payload;
  match Protocol.read_frame c.ic with
  | Some resp -> resp
  | None -> failwith "connection closed mid-request"

(* ------------------------------------------------------------------ *)
(* Workload: a fixed set of distinct requests, repeated                 *)
(* ------------------------------------------------------------------ *)

type job = { arch : string; swaps : int; gates : int; seed : int }

let workload ~distinct =
  List.init distinct (fun i ->
      {
        arch = (if i mod 2 = 0 then "grid3x3" else "aspen4");
        swaps = 2 + (i mod 2);
        gates = 24;
        seed = 1 + (i / 2);
      })

let request_of_job j =
  Printf.sprintf
    {|{"verb":"route","arch":"%s","swaps":%d,"gates":%d,"seed":%d,"tool":"sabre","trials":1}|}
    j.arch j.swaps j.gates j.seed

(* Offline ground truth: the same route computed in-process through the
   library, exactly as the CLI's route subcommand would. *)
let offline_route j =
  let device = Option.get (Qls_arch.Topologies.by_name j.arch) in
  let config =
    {
      Qubikos.Generator.default_config with
      n_swaps = j.swaps;
      gate_budget = j.gates;
      seed = j.seed;
    }
  in
  let bench = Qubikos.Generator.generate ~config device in
  let router =
    Option.get (Qls_router.Registry.by_name ~sabre_trials:1 "sabre")
  in
  let _, report =
    Qls_router.Router.run_verified router device
      bench.Qubikos.Benchmark.circuit
  in
  ( report.Qls_layout.Verifier.swap_count,
    report.Qls_layout.Verifier.depth,
    bench.Qubikos.Benchmark.optimal_swaps )

(* One client: closed loop over the workload, [rounds] times. Each
   response is appended to this client's private slot — no shared
   mutable state between client threads. *)
type sample = { req : string; resp : string; seconds : float }

let run_client ~socket ~rounds ~jobs_list ~slot ~slots =
  let conn = connect socket in
  let samples = ref [] in
  for _ = 1 to rounds do
    List.iter
      (fun j ->
        let req = request_of_job j in
        (* lint: nondet-source — latency measurement *)
        let t0 = Unix.gettimeofday () in
        let resp = rpc conn req in
        (* lint: nondet-source — latency measurement *)
        let dt = Unix.gettimeofday () -. t0 in
        samples := { req; resp; seconds = dt } :: !samples)
      jobs_list
  done;
  disconnect conn;
  slots.(slot) <- List.rev !samples

(* ------------------------------------------------------------------ *)
(* Result entry + JSON, mirroring router_bench's fixed-key format       *)
(* ------------------------------------------------------------------ *)

type entry = {
  scenario : string;
  clients : int;
  rounds : int;
  distinct : int;
  requests : int;
  errors : int;
  bit_identical : bool;
  offline_match : bool;
  hit_rate : float;
  throughput_rps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

let entry_to_json e =
  Printf.sprintf
    "{\"scenario\":%S,\"clients\":%d,\"rounds\":%d,\"distinct\":%d,\"requests\":%d,\"errors\":%d,\"bit_identical\":%b,\"offline_match\":%b,\"hit_rate\":%.4f,\"throughput_rps\":%.1f,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f}"
    e.scenario e.clients e.rounds e.distinct e.requests e.errors
    e.bit_identical e.offline_match e.hit_rate e.throughput_rps e.p50_ms
    e.p95_ms e.p99_ms

let to_json ~mode entries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": 1,\n  \"bench\": \"serve\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"mode\": %S,\n" mode);
  Buffer.add_string buf "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      Buffer.add_string buf "    ";
      Buffer.add_string buf (entry_to_json e);
      if i < List.length entries - 1 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n')
    entries;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write_json ~path ~mode entries =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ~mode entries))

let scan_field line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat and n = String.length line in
  let rec find i =
    if i + plen > n then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = ref start in
      while
        !stop < n && (match line.[!stop] with ',' | '}' -> false | _ -> true)
      do
        incr stop
      done;
      Some (String.sub line start (!stop - start))

let field_string line key =
  match scan_field line key with
  | Some s when String.length s >= 2 && s.[0] = '"' ->
      Some (String.sub s 1 (String.length s - 2))
  | _ -> None

let field_float line key = Option.bind (scan_field line key) float_of_string_opt
let field_int line key = Option.bind (scan_field line key) int_of_string_opt

let field_bool line key =
  Option.bind (scan_field line key) bool_of_string_opt

let load_entries path =
  let ic = open_in path in
  let entries = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          match (field_string line "scenario", field_int line "requests") with
          | Some scenario, Some requests ->
              let get_f key = Option.value ~default:0.0 (field_float line key) in
              let get_i key = Option.value ~default:0 (field_int line key) in
              let get_b key =
                Option.value ~default:false (field_bool line key)
              in
              entries :=
                {
                  scenario;
                  clients = get_i "clients";
                  rounds = get_i "rounds";
                  distinct = get_i "distinct";
                  requests;
                  errors = get_i "errors";
                  bit_identical = get_b "bit_identical";
                  offline_match = get_b "offline_match";
                  hit_rate = get_f "hit_rate";
                  throughput_rps = get_f "throughput_rps";
                  p50_ms = get_f "p50_ms";
                  p95_ms = get_f "p95_ms";
                  p99_ms = get_f "p99_ms";
                }
                :: !entries
          | _ -> ()
        done
      with End_of_file -> ());
  List.rev !entries

(* ------------------------------------------------------------------ *)
(* The load scenario                                                   *)
(* ------------------------------------------------------------------ *)

let exact_quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

(* Daemon-side counters worth echoing in every report: they are the
   server's own view of the run (satellite telemetry for the chaos
   invariants, a smoke check for plain load runs). *)
let print_daemon_stats stats =
  let gi key = Option.value ~default:0 (field_int stats key) in
  let gs key = Option.value ~default:"?" (scan_field stats key) in
  Printf.printf
    "daemon: uptime_s %s  requests %d  ok %s  bad_request %d  overloaded %d  \
     deadline_exceeded %d  internal %d  log_dropped %d  live_workers %d  \
     lost_workers %d\n"
    (gs "uptime_s") (gi "requests") (gs "completed") (gi "bad_request")
    (gi "overloaded") (gi "deadline_exceeded") (gi "internal")
    (gi "log_dropped") (gi "live_workers") (gi "lost_workers")

let run_load ~scenario ~server ~clients ~rounds ~distinct ~jobs ~queue =
  let d = spawn_daemon ~server ~jobs ~queue () in
  let jobs_list = workload ~distinct in
  let slots = Array.make clients [] in
  (* lint: nondet-source — wall-clock throughput measurement *)
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun slot ->
        Thread.create
          (fun () -> run_client ~socket:d.socket ~rounds ~jobs_list ~slot ~slots)
          ())
  in
  List.iter Thread.join threads;
  (* lint: nondet-source — wall-clock throughput measurement *)
  let elapsed = Unix.gettimeofday () -. t0 in
  (* Cache stats from the daemon itself, then drain it. *)
  let conn = connect d.socket in
  let stats = rpc conn {|{"verb":"stats"}|} in
  disconnect conn;
  print_daemon_stats stats;
  let status = stop_daemon d in
  (match status with
  | Unix.WEXITED 0 -> ()
  | _ -> failwith "daemon did not exit cleanly after SIGTERM");
  let samples = Array.to_list slots |> List.concat in
  let requests = List.length samples in
  let is_ok resp =
    match field_bool resp "ok" with Some true -> true | _ -> false
  in
  let errors =
    List.length (List.filter (fun s -> not (is_ok s.resp)) samples)
  in
  (* Bit-identity: all responses to one request text are one byte string. *)
  let by_req = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match Hashtbl.find_opt by_req s.req with
      | None -> Hashtbl.replace by_req s.req s.resp
      | Some _ -> ())
    samples;
  let bit_identical =
    List.for_all
      (fun s -> String.equal (Hashtbl.find by_req s.req) s.resp)
      samples
  in
  (* Offline ground truth per distinct job. *)
  let int_is resp key v =
    match field_int resp key with Some x -> x = v | None -> false
  in
  let offline_match =
    List.for_all
      (fun j ->
        let swaps, depth, optimal = offline_route j in
        match Hashtbl.find_opt by_req (request_of_job j) with
        | None -> false
        | Some resp ->
            int_is resp "swaps" swaps && int_is resp "depth" depth
            && int_is resp "optimal" optimal)
      jobs_list
  in
  let hit_rate =
    match (field_int stats "route_hits", field_int stats "route_misses") with
    | Some h, Some m when h + m > 0 -> float_of_int h /. float_of_int (h + m)
    | _ -> 0.0
  in
  let sorted =
    samples |> List.map (fun s -> s.seconds *. 1000.) |> Array.of_list
  in
  Array.sort Float.compare sorted;
  {
    scenario;
    clients;
    rounds;
    distinct;
    requests;
    errors;
    bit_identical;
    offline_match;
    hit_rate;
    throughput_rps = float_of_int requests /. Float.max elapsed 1e-9;
    p50_ms = exact_quantile sorted 0.50;
    p95_ms = exact_quantile sorted 0.95;
    p99_ms = exact_quantile sorted 0.99;
  }

(* ------------------------------------------------------------------ *)
(* Drain scenario: SIGTERM mid-load, then audit the pieces             *)
(* ------------------------------------------------------------------ *)

let run_drain_test ~server =
  let d = spawn_daemon ~server ~jobs:2 ~queue:64 () in
  let jobs_list = workload ~distinct:4 in
  let slots = Array.make 4 [] in
  let stopped = Array.make 4 0 (* responses cut short, per client *) in
  let drain_client slot =
    match
      let conn = connect d.socket in
      let samples = ref [] in
      (try
         for _ = 1 to 10_000 do
           List.iter
             (fun j ->
               let req = request_of_job j in
               let resp = rpc conn req in
               samples := { req; resp; seconds = 0.0 } :: !samples)
             jobs_list
         done
       with Failure _ | Sys_error _ | End_of_file | Unix.Unix_error _ ->
         (* the drain half-closed our read side — expected *)
         stopped.(slot) <- 1);
      disconnect conn;
      slots.(slot) <- !samples
    with
    | () -> ()
    | exception _ -> stopped.(slot) <- 1
  in
  let threads =
    List.init 4 (fun slot -> Thread.create (fun () -> drain_client slot) ())
  in
  Thread.delay 0.5;
  Unix.kill d.pid Sys.sigterm;
  List.iter Thread.join threads;
  let status = stop_daemon d in
  let clean_exit =
    match status with Unix.WEXITED 0 -> true | _ -> false
  in
  let answered = Array.fold_left (fun n l -> n + List.length l) 0 slots in
  (* Every response the clients did receive must be a whole, valid frame
     payload carrying an "ok" field — the daemon never tears a response.
     ok:false with kind "draining" is a legitimate whole answer for a
     request that landed after shutdown began (a torn frame never gets
     this far: rpc raises mid-read and the sample is dropped). *)
  let whole =
    Array.for_all
      (List.for_all (fun s ->
           match field_bool s.resp "ok" with
           | Some true -> true
           | Some false -> (
               match field_string s.resp "kind" with
               | Some "draining" | Some "overloaded" -> true
               | _ -> false)
           | None -> false))
      slots
  in
  (* The sealed request log must load with zero corrupt lines: the drain
     flushed every line whole. *)
  let lines, corrupt = Qls_sealed.Log.load ~strict:true d.log in
  Printf.printf
    "drain-test: exit_clean=%b responses=%d whole=%b log_lines=%d corrupt=%d\n"
    clean_exit answered whole (List.length lines) (List.length corrupt);
  List.iter
    (fun (c : Qls_sealed.corrupt) ->
      Printf.printf "  corrupt line %d: %s\n" c.line_no c.reason)
    corrupt;
  if clean_exit && whole && List.is_empty corrupt && answered > 0
     && List.length lines > 0
  then 0
  else 1

(* ------------------------------------------------------------------ *)
(* Chaos scenario: hammer a daemon with every serve fault site armed    *)
(* ------------------------------------------------------------------ *)

(* Deterministic fault schedule for the chosen seed: torn socket reads,
   request bodies that raise, request bodies that hang past the watchdog
   threshold, and dropped request-log lines. Rates are tuned so a
   standard run injects a handful of each without dominating the load. *)
let chaos_inject_spec seed =
  Printf.sprintf
    "seed=%d;serve.frame.read:torn:0.10;serve.work.exn:transient:0.05;serve.work.hang:delay@0.8:0.01;serve.log.append:permanent:0.05"
    seed

(* Every chaos request carries a unique id, and the daemon echoes the id
   in the response — so "each request got exactly one well-formed typed
   answer" is checkable per request, not just in aggregate. *)
let chaos_request ~slot ~n j =
  Printf.sprintf
    {|{"id":"c%d-%d","verb":"route","arch":"%s","swaps":%d,"gates":%d,"seed":%d,"tool":"sabre","trials":1}|}
    slot n j.arch j.swaps j.gates j.seed

let run_chaos ~server ~seed =
  let clients = 4 and rounds = 15 and jobs = 2 in
  let d =
    spawn_daemon ~server ~jobs ~queue:64
      ~extra:
        [
          "--inject"; chaos_inject_spec seed; "--hang-threshold"; "0.3";
          "--io-timeout"; "5"; "--idle-timeout"; "60"; "--default-deadline";
          "5000";
        ]
      ()
  in
  let jobs_list = workload ~distinct:8 in
  let anomalies = Array.make clients [] in
  let answered = Array.make clients 0 in
  let hammer slot =
    let conn = connect ~recv_timeout:15.0 d.socket in
    let note fmt = Printf.ksprintf (fun s -> anomalies.(slot) <- s :: anomalies.(slot)) fmt in
    let n = ref 0 in
    for _ = 1 to rounds do
      List.iter
        (fun j ->
          incr n;
          let id = Printf.sprintf "c%d-%d" slot !n in
          let req = chaos_request ~slot ~n:!n j in
          match rpc conn req with
          | resp -> (
              answered.(slot) <- answered.(slot) + 1;
              (match field_string resp "id" with
              | Some rid when String.equal rid id -> ()
              | Some rid -> note "%s: answered with foreign id %s" id rid
              | None -> note "%s: response carries no id" id);
              (* well-formed and typed: ok:true, or ok:false with a kind *)
              match field_bool resp "ok" with
              | Some true -> ()
              | Some false -> (
                  match field_string resp "kind" with
                  | Some
                      ( "bad_request" | "overloaded" | "draining"
                      | "deadline_exceeded" | "internal" ) ->
                      ()
                  | Some k -> note "%s: unknown error kind %s" id k
                  | None -> note "%s: error response without a kind" id)
              | None -> note "%s: response lacks ok" id)
          | exception e ->
              note "%s: no response (%s)" id (Printexc.to_string e))
        jobs_list
    done;
    disconnect conn
  in
  let threads =
    List.init clients (fun slot -> Thread.create (fun () -> hammer slot) ())
  in
  List.iter Thread.join threads;
  let problems = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  Array.iteri
    (fun slot notes ->
      List.iter (fun n -> fail "client %d: %s" slot n) (List.rev notes))
    anomalies;
  let sent = clients * rounds * List.length jobs_list in
  let got = Array.fold_left ( + ) 0 answered in
  if got <> sent then fail "sent %d requests but saw %d responses" sent got;
  (* probe phase on a clean connection: identity, health, counters *)
  let conn = connect ~recv_timeout:15.0 d.socket in
  let probe_req =
    {|{"verb":"route","arch":"grid3x3","swaps":2,"gates":24,"seed":1,"tool":"sabre","trials":1}|}
  in
  (* fault injection may answer any attempt with a typed error; collect
     the ok responses and require the cache replay to be byte-stable *)
  let oks = ref [] in
  let attempts = ref 0 in
  while List.length !oks < 2 && !attempts < 50 do
    incr attempts;
    match rpc conn probe_req with
    | resp -> (
        match field_bool resp "ok" with
        | Some true -> oks := resp :: !oks
        | _ -> ())
    | exception _ -> ()
  done;
  (match !oks with
  | a :: rest when List.for_all (String.equal a) rest && List.length rest >= 1
    ->
      ()
  | _ :: _ :: _ -> fail "ok responses to one request text were not byte-identical"
  | _ -> fail "could not obtain two ok responses for the identity probe");
  let health = rpc conn {|{"verb":"health"}|} in
  let stats = rpc conn {|{"verb":"stats"}|} in
  disconnect conn;
  print_daemon_stats stats;
  let gi line key = Option.value ~default:(-1) (field_int line key) in
  if not (match field_bool health "ready" with Some b -> b | None -> false)
  then fail "daemon not ready after the chaos load";
  let lost = gi stats "lost_workers" and internal = gi stats "internal" in
  if lost < 0 then fail "stats lacks lost_workers";
  if lost > internal then
    fail "lost %d workers but only %d internal responses: a loss went unanswered"
      lost internal;
  if gi health "live_workers" <> jobs then
    fail "live_workers %d after the run; every lost worker must be replaced"
      (gi health "live_workers");
  let status = stop_daemon d in
  if not (match status with Unix.WEXITED 0 -> true | _ -> false) then
    fail "daemon did not exit 0 on SIGTERM";
  (* the request log stays well-sealed: injected log faults drop whole
     lines (counted by the daemon), they never tear the file *)
  let lines, corrupt = Qls_sealed.Log.load ~strict:true d.log in
  if not (List.is_empty corrupt) then
    fail "%d corrupt request-log lines after chaos" (List.length corrupt);
  let dropped = gi stats "log_dropped" in
  if List.length lines + max dropped 0 < sent then
    fail "log has %d lines + %d dropped for %d requests: lines went missing"
      (List.length lines) dropped sent;
  Printf.printf
    "chaos seed=%d: %d req, %d answered, lost_workers %d, internal %d, \
     log_lines %d (+%d dropped), anomalies %d\n"
    seed sent got lost internal (List.length lines) dropped
    (List.length !problems);
  match List.rev !problems with
  | [] ->
      Printf.printf "chaos: OK\n";
      0
  | ps ->
      List.iter (fun p -> Printf.printf "chaos FAILED: %s\n" p) ps;
      1

(* ------------------------------------------------------------------ *)
(* Check gate                                                          *)
(* ------------------------------------------------------------------ *)

let check ~baseline ~tolerance entries =
  let base = load_entries baseline in
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let logs = ref [] in
  List.iter
    (fun e ->
      if e.errors > 0 then note "%s: %d failed requests" e.scenario e.errors;
      if not e.bit_identical then
        note "%s: cache hits were not byte-identical to cold responses"
          e.scenario;
      if not e.offline_match then
        note "%s: served results diverged from the offline library route"
          e.scenario;
      (* Gate only against a baseline entry of the same workload shape;
         an unmatched entry (e.g. a --quick run against the default
         baseline) still gets the absolute checks above. *)
      match
        List.find_opt
          (fun b ->
            String.equal b.scenario e.scenario
            && b.clients = e.clients && b.rounds = e.rounds
            && b.distinct = e.distinct)
          base
      with
      | None -> ()
      | Some b ->
          (* The hit rate is deterministic (single-flight caches, fixed
             workload): any drop beyond the %.4f serialisation quantum
             is a code change, not noise. *)
          if e.hit_rate +. 1e-4 < b.hit_rate then
            note "%s: hit rate %.4f fell below baseline %.4f" e.scenario
              e.hit_rate b.hit_rate;
          if b.p50_ms > 0.0 then logs := log (e.p50_ms /. b.p50_ms) :: !logs)
    entries;
  (match !logs with
  | [] -> ()
  | ls ->
      let geomean =
        exp (List.fold_left ( +. ) 0.0 ls /. float_of_int (List.length ls))
      in
      if geomean > 1.0 +. tolerance then
        note
          "p50 latency geomean ratio %.3f over %d scenarios exceeds baseline \
           by more than %.0f%%"
          geomean (List.length ls) (tolerance *. 100.0));
  match List.rev !problems with [] -> Ok () | ps -> Error ps

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

let () =
  (* A daemon draining mid-write must surface as an exception on the
     client thread, not kill the whole bench. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let quick = ref false in
  let clients = ref 4 in
  let rounds = ref 40 in
  let distinct = ref 8 in
  let out = ref "" in
  let check_path = ref "" in
  let tolerance = ref 1.0 in
  let server = ref (default_server ()) in
  let drain = ref false in
  let chaos = ref (-1) in
  let update = ref false in
  let args =
    [
      ("--quick", Arg.Set quick, " Small workload (2 clients, 10 rounds)");
      ("--clients", Arg.Set_int clients, "N Concurrent client connections");
      ("--rounds", Arg.Set_int rounds, "N Workload repetitions per client");
      ("--distinct", Arg.Set_int distinct, "N Distinct requests in the mix");
      ("--out", Arg.Set_string out, "FILE Write BENCH_serve.json here");
      ("--check", Arg.Set_string check_path, "FILE Compare against baseline");
      ( "--tolerance",
        Arg.Set_float tolerance,
        "F p50 geomean slack for --check (default 1.0 = 2x)" );
      ("--server", Arg.Set_string server, "PATH qubikos binary to spawn");
      ("--drain-test", Arg.Set drain, " SIGTERM mid-load, audit the drain");
      ( "--chaos",
        Arg.Set_int chaos,
        "SEED Run the fault-injection scenario with this schedule seed" );
      ( "--update",
        Arg.Set update,
        " Regenerate BENCH_serve.json in place from this run" );
    ]
  in
  Arg.parse (Arg.align args)
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "serve_bench [options]";
  if !drain then exit (run_drain_test ~server:!server)
  else if !chaos >= 0 then exit (run_chaos ~server:!server ~seed:!chaos)
  else begin
    let clients, rounds = if !quick then (2, 10) else (!clients, !rounds) in
    let mode = if !quick then "quick" else "default" in
    let e =
      run_load ~scenario:"mixed-route" ~server:!server ~clients ~rounds
        ~distinct:!distinct ~jobs:2 ~queue:64
    in
    Printf.printf
      "%s: %d req (%d clients x %d rounds, %d distinct) %.0f req/s  p50 %.3fms \
       p95 %.3fms p99 %.3fms  hit_rate %.4f  errors %d  bit_identical %b  \
       offline_match %b\n"
      e.scenario e.requests e.clients e.rounds e.distinct e.throughput_rps
      e.p50_ms e.p95_ms e.p99_ms e.hit_rate e.errors e.bit_identical
      e.offline_match;
    if not (String.equal !out "") then begin
      write_json ~path:!out ~mode [ e ];
      Printf.printf "wrote %s\n" !out
    end;
    if !update then begin
      write_json ~path:"BENCH_serve.json" ~mode [ e ];
      Printf.printf "updated BENCH_serve.json\n"
    end;
    if not (String.equal !check_path "") then
      match check ~baseline:!check_path ~tolerance:!tolerance [ e ] with
      | Ok () -> Printf.printf "check: OK (within tolerance of %s)\n" !check_path
      | Error problems ->
          List.iter (fun p -> Printf.printf "check FAILED: %s\n" p) problems;
          exit 1
  end
