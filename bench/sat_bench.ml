(* SAT certification bench: the instrument behind the incremental-solver
   claim.

   For each deterministic QUBIKOS instance (fixed seed, small device,
   saturation-capped so the §IV-A exact regime applies) the bench runs
   the OLSQ k-walk twice and counts CDCL conflicts via the
   ["sat.conflicts"] obs counter:

   - fresh:       [Olsq.minimum_swaps ~mode:`Fresh] — re-encode and
                  re-solve every bound from scratch (the historical
                  behaviour, kept as the baseline);
   - incremental: [~mode:`Incremental] — one encoding at the maximum
                  bound, each k decided under assumptions, learned
                  clauses carried across bounds.

   Conflict counts are bit-deterministic (no timing feedback anywhere in
   the solver), so they regression-gate exactly like the router bench's
   structural counters. Wall-clock times and the portfolio-race numbers
   (winner seed, workers cancelled) are recorded for the record but
   never gated — which configuration wins a race depends on machine
   timing.

   [--check BASELINE] enforces, on the fresh run:
   - correctness: every walk (fresh, incremental, raced) returns the
     instance's designed optimum — QUBIKOS knows the answer;
   - the headline gate: total fresh conflicts >= 2x total incremental
     conflicts across the suite;
   - no per-instance regression: incremental conflicts may not exceed
     the committed baseline by more than [--tolerance] (default 10%). *)

module Device = Qls_arch.Device
module Topologies = Qls_arch.Topologies
module Generator = Qubikos.Generator
module Benchmark = Qubikos.Benchmark
module Olsq = Qls_router.Olsq

type scale = Quick | Full

type spec = {
  dev : string;  (** topology key, resolved by [device_of] *)
  s_n_swaps : int;
  s_gate_budget : int;
  s_cap : int;
  s_seed : int;
}

type entry = {
  device : string;
  n_swaps : int;
  gate_budget : int;
  seed : int;
  gates : int;
  optimum : int;
  fresh_conflicts : int;
  incr_conflicts : int;
  incr_solves : int;
  fresh_ms : float;
  incr_ms : float;
  race_ms : float;
  winner_seed : int;
  raced : int;
  cancelled : int;
}

let device_of = function
  | "grid3x3" -> Topologies.grid 3 3
  | "line6" -> Topologies.line 6
  | "ring8" -> Topologies.ring 8
  | d -> invalid_arg ("sat_bench: unknown device " ^ d)

let spec ?(gate_budget = 0) ?(cap = 1) dev s_n_swaps s_seed =
  { dev; s_n_swaps; s_gate_budget = gate_budget; s_cap = cap; s_seed }

(* The suite. Small devices and capped saturation keep each encoding in
   the exact-verification regime; seeds are fixed so the conflict
   numbers are reproducible bit-for-bit. *)
let quick_specs =
  [
    spec "grid3x3" 2 3;
    spec "grid3x3" 2 5;
    spec "grid3x3" 2 7;
    spec "grid3x3" 3 5;
    spec "line6" 3 9;
    spec "ring8" 2 3;
  ]

(* Full adds deeper walks, filler-padded circuits and more seeds; quick
   is a strict subset so a quick CI run checks against the committed
   full baseline. *)
let full_specs =
  quick_specs
  @ [
      spec "grid3x3" 2 1;
      spec "grid3x3" 2 13;
      spec ~gate_budget:10 "grid3x3" 2 6;
      spec "grid3x3" 3 1;
      spec "grid3x3" 3 17;
      spec "line6" 2 5;
      spec "line6" 3 3;
      spec "line6" 3 7;
      spec "ring8" 3 8;
    ]

let specs = function Quick -> quick_specs | Full -> full_specs

let string_of_scale = function Quick -> "quick" | Full -> "full"

let conflicts_counter = Qls_obs.counter "sat.conflicts"

let timed f =
  (* lint: nondet-source — wall-clock timing metric, never gated *)
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (* lint: nondet-source — wall-clock timing metric, never gated *)
  (r, (Unix.gettimeofday () -. t0) *. 1e3)

(* Walk the bound in [mode], returning (optimum, conflict delta, ms).
   Conflict counting by obs-counter delta works for both modes because
   every [Solver.solve] call adds its per-call conflicts on return. *)
let measure_walk ~mode ~max_swaps device circuit =
  let c0 = Qls_obs.counter_value conflicts_counter in
  let r, ms = timed (fun () -> Olsq.minimum_swaps ~max_swaps ~mode device circuit) in
  let conflicts = Qls_obs.counter_value conflicts_counter - c0 in
  match r with
  | Olsq.Optimal { swaps; _ } -> (swaps, conflicts, ms)
  | Olsq.Unknown_above _ -> failwith "sat_bench: walk exhausted its budget"

let measure s =
  let device = device_of s.dev in
  let config =
    {
      Generator.default_config with
      n_swaps = s.s_n_swaps;
      gate_budget = s.s_gate_budget;
      saturation_cap = s.s_cap;
      seed = s.s_seed;
    }
  in
  let b = Generator.generate ~config device in
  let circuit = b.Benchmark.circuit in
  let max_swaps = b.Benchmark.optimal_swaps + 1 in
  let fail fmt = Printf.ksprintf failwith fmt in
  let fresh_opt, fresh_conflicts, fresh_ms =
    measure_walk ~mode:`Fresh ~max_swaps device circuit
  in
  (* One throwaway session to read the solve count; the timed
     incremental walk below builds its own. *)
  let sess = Olsq.Incremental.create ~max_swaps device circuit in
  let incr_opt, incr_conflicts, incr_ms =
    measure_walk ~mode:`Incremental ~max_swaps device circuit
  in
  let incr_solves =
    let rec walk k =
      match Olsq.Incremental.check sess ~swaps:k with
      | Olsq.Feasible _ -> Olsq.Incremental.solves sess
      | Olsq.Infeasible -> walk (k + 1)
      | Olsq.Unknown -> fail "sat_bench: session walk exhausted its budget"
    in
    walk 0
  in
  let race, race_ms =
    timed (fun () -> Olsq.race_minimum_swaps ~max_swaps device circuit)
  in
  let race_opt =
    match race.Olsq.value with
    | Olsq.Optimal { swaps; _ } -> swaps
    | Olsq.Unknown_above _ -> fail "sat_bench: raced walk exhausted its budget"
  in
  let designed = b.Benchmark.optimal_swaps in
  if fresh_opt <> designed then
    fail "%s/s%d: fresh walk found %d SWAPs, designed optimum is %d" s.dev
      s.s_seed fresh_opt designed;
  if incr_opt <> designed then
    fail "%s/s%d: incremental walk found %d SWAPs, designed optimum is %d"
      s.dev s.s_seed incr_opt designed;
  if race_opt <> designed then
    fail "%s/s%d: raced walk found %d SWAPs, designed optimum is %d" s.dev
      s.s_seed race_opt designed;
  {
    device = Device.name device;
    n_swaps = s.s_n_swaps;
    gate_budget = s.s_gate_budget;
    seed = s.s_seed;
    gates = Array.length (Qls_circuit.Circuit.gates circuit);
    optimum = fresh_opt;
    fresh_conflicts;
    incr_conflicts;
    incr_solves;
    fresh_ms;
    incr_ms;
    race_ms;
    winner_seed = race.Olsq.winner_seed;
    raced = race.Olsq.raced;
    cancelled = race.Olsq.cancelled;
  }

let run ?(progress = false) ~scale () =
  List.map
    (fun s ->
      let e = measure s in
      if progress then
        Printf.eprintf
          "  %-8s swaps=%d seed=%-3d %5d vs %5d conflicts (%4.1fx)  fresh \
           %6.1fms  incr %6.1fms  race %6.1fms (winner %d)\n\
           %!"
          e.device e.n_swaps e.seed e.fresh_conflicts e.incr_conflicts
          (float_of_int e.fresh_conflicts
          /. float_of_int (max 1 e.incr_conflicts))
          e.fresh_ms e.incr_ms e.race_ms e.winner_seed;
      e)
    (specs scale)

(* JSON in/out follows the router bench convention: one entry object per
   line, fixed key order, read back by the line scanner in
   {!Router_bench_core}. *)

let entry_to_json e =
  Printf.sprintf
    "{\"device\":%S,\"n_swaps\":%d,\"gate_budget\":%d,\"seed\":%d,\"gates\":%d,\"optimum\":%d,\"fresh_conflicts\":%d,\"incr_conflicts\":%d,\"incr_solves\":%d,\"fresh_ms\":%.1f,\"incr_ms\":%.1f,\"race_ms\":%.1f,\"winner_seed\":%d,\"raced\":%d,\"cancelled\":%d}"
    e.device e.n_swaps e.gate_budget e.seed e.gates e.optimum
    e.fresh_conflicts e.incr_conflicts e.incr_solves e.fresh_ms e.incr_ms
    e.race_ms e.winner_seed e.raced e.cancelled

let write_json ~path ~mode entries =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n  \"schema\": 1,\n  \"bench\": \"sat\",\n";
      output_string oc (Printf.sprintf "  \"mode\": %S,\n" mode);
      output_string oc "  \"entries\": [\n";
      List.iteri
        (fun i e ->
          output_string oc "    ";
          output_string oc (entry_to_json e);
          if i < List.length entries - 1 then output_string oc ",";
          output_string oc "\n")
        entries;
      output_string oc "  ]\n}\n")

let load_entries path =
  let field_s = Router_bench_core.field_string in
  let field_i = Router_bench_core.field_int in
  let field_f = Router_bench_core.field_float in
  let ic = open_in path in
  let entries = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          match
            ( field_s line "device",
              field_i line "n_swaps",
              field_i line "fresh_conflicts",
              field_i line "seed" )
          with
          | Some device, Some n_swaps, Some fresh_conflicts, Some seed ->
              let get_i key = Option.value ~default:0 (field_i line key) in
              let get_f key = Option.value ~default:0.0 (field_f line key) in
              entries :=
                {
                  device;
                  n_swaps;
                  gate_budget = get_i "gate_budget";
                  seed;
                  gates = get_i "gates";
                  optimum = get_i "optimum";
                  fresh_conflicts;
                  incr_conflicts = get_i "incr_conflicts";
                  incr_solves = get_i "incr_solves";
                  fresh_ms = get_f "fresh_ms";
                  incr_ms = get_f "incr_ms";
                  race_ms = get_f "race_ms";
                  winner_seed = get_i "winner_seed";
                  raced = get_i "raced";
                  cancelled = get_i "cancelled";
                }
                :: !entries
          | _ -> ()
        done
      with End_of_file -> ());
  List.rev !entries

let key e = (e.device, e.n_swaps, e.gate_budget, e.seed)

let check ~baseline ~tolerance entries =
  let base = load_entries baseline in
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  List.iter
    (fun e ->
      if e.optimum <> e.n_swaps then
        note "%s/swaps=%d/seed=%d: found optimum %d, designed %d" e.device
          e.n_swaps e.seed e.optimum e.n_swaps;
      match List.find_opt (fun b -> key b = key e) base with
      | None -> ()
      | Some b ->
          let cap =
            int_of_float
              (ceil (float_of_int b.incr_conflicts *. (1.0 +. tolerance)))
          in
          if e.incr_conflicts > cap then
            note
              "%s/swaps=%d/seed=%d: incremental conflicts %d exceed baseline \
               %d by more than %.0f%% (deterministic — a code change weakened \
               clause reuse)"
              e.device e.n_swaps e.seed e.incr_conflicts b.incr_conflicts
              (tolerance *. 100.0))
    entries;
  let total f = List.fold_left (fun a e -> a + f e) 0 entries in
  let fresh = total (fun e -> e.fresh_conflicts)
  and incr = total (fun e -> e.incr_conflicts) in
  let ratio = float_of_int fresh /. float_of_int (max 1 incr) in
  if ratio < 2.0 then
    note
      "headline gate: fresh/incremental conflict ratio %.2f < 2.0 (%d vs %d \
       total conflicts)"
      ratio fresh incr;
  match List.rev !problems with
  | [] -> Ok ratio
  | ps -> Error ps

let () =
  let scale = ref Quick in
  let out = ref "BENCH_sat.json" in
  let baseline = ref None in
  let tolerance = ref 0.10 in
  let usage () =
    prerr_endline
      "usage: sat_bench.exe [--quick | --full] [--out FILE] [--check \
       BASELINE] [--tolerance FRAC]";
    exit 2
  in
  let argv = Sys.argv in
  let value i = if i + 1 < Array.length argv then Some argv.(i + 1) else None in
  let rec parse i =
    if i < Array.length argv then
      match argv.(i) with
      | "--quick" ->
          scale := Quick;
          parse (i + 1)
      | "--full" ->
          scale := Full;
          parse (i + 1)
      | "--out" -> (
          match value i with
          | Some f ->
              out := f;
              parse (i + 2)
          | None -> usage ())
      | "--check" -> (
          match value i with
          | Some f ->
              baseline := Some f;
              parse (i + 2)
          | None -> usage ())
      | "--tolerance" -> (
          match Option.bind (value i) float_of_string_opt with
          | Some f when f >= 0.0 ->
              tolerance := f;
              parse (i + 2)
          | _ -> usage ())
      | _ -> usage ()
  in
  parse 1;
  let mode = string_of_scale !scale in
  Printf.eprintf "sat_bench: scale %s\n%!" mode;
  let entries = run ~progress:true ~scale:!scale () in
  write_json ~path:!out ~mode entries;
  Printf.eprintf "sat_bench: wrote %s (%d entries)\n%!" !out
    (List.length entries);
  match !baseline with
  | None -> ()
  | Some b -> (
      match check ~baseline:b ~tolerance:!tolerance entries with
      | Ok ratio ->
          Printf.eprintf
            "sat_bench: fresh/incremental conflict ratio %.2fx, no \
             regression against %s\n\
             %!"
            ratio b
      | Error problems ->
          List.iter (Printf.eprintf "sat_bench: REGRESSION: %s\n%!") problems;
          exit 1)
