(* Benchmark and experiment harness.

   Regenerates every table and figure of the paper's evaluation (§IV):

     E1  (§IV-A)    optimality study: certificates + exact confirmation
     E2a (Fig. 4a)  tool evaluation on Rigetti Aspen-4
     E2b (Fig. 4b)  tool evaluation on Google Sycamore
     E2c (Fig. 4c)  tool evaluation on IBM Rochester
     E2d (Fig. 4d)  tool evaluation on IBM Eagle
     E3  (abstract) headline per-tool optimality gaps
     E4  (§IV-C)    LightSABRE case study: lookahead vs decayed lookahead
     E5  (§I/III-C) QUEKO contrast: solved by VF2, unlike QUBIKOS

   plus one Bechamel timing bench per experiment on a small representative
   instance.

   Usage:
     dune exec bench/main.exe                 scaled-down experiments (minutes)
     dune exec bench/main.exe -- --quick      smoke-test scale (seconds)
     dune exec bench/main.exe -- --full       paper-scale parameters (hours)
     dune exec bench/main.exe -- --no-timing  skip the Bechamel section
     dune exec bench/main.exe -- -j N         worker domains for E2a-E2d *)

open Bechamel
open Toolkit

module Device = Qls_arch.Device
module Topologies = Qls_arch.Topologies
module Transpiled = Qls_layout.Transpiled
module Router = Qls_router.Router
module Sabre = Qls_router.Sabre
module Registry = Qls_router.Registry
module Placement = Qls_router.Placement
module Generator = Qubikos.Generator
module Benchmark_inst = Qubikos.Benchmark
module Certificate = Qubikos.Certificate
module Evaluation = Qubikos.Evaluation
module Queko = Qubikos.Queko

type scale = Quick | Default | Full

let scale = ref Default
let timing = ref true
let jobs = ref (Qls_harness.Pool.recommended_jobs ())
let trace = ref None

let usage () =
  prerr_endline
    "usage: main.exe [--quick | --full] [--no-timing] [-j N | --jobs N] \
     [--trace FILE]"

let () =
  let argv = Sys.argv in
  let rec parse i =
    if i < Array.length argv then
      match argv.(i) with
      | "--quick" ->
          scale := Quick;
          parse (i + 1)
      | "--full" ->
          scale := Full;
          parse (i + 1)
      | "--no-timing" ->
          timing := false;
          parse (i + 1)
      | "-j" | "--jobs" -> (
          match
            if i + 1 < Array.length argv then int_of_string_opt argv.(i + 1)
            else None
          with
          | Some n when n >= 1 ->
              jobs := n;
              parse (i + 2)
          | _ ->
              Printf.eprintf "%s requires a positive integer\n" argv.(i);
              usage ();
              exit 2)
      | "--trace" ->
          if i + 1 < Array.length argv then begin
            trace := Some argv.(i + 1);
            parse (i + 2)
          end
          else begin
            Printf.eprintf "--trace requires a file path\n";
            usage ();
            exit 2
          end
      | arg ->
          Printf.eprintf "unknown argument %S\n" arg;
          usage ();
          exit 2
  in
  parse 1

let section title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Bechamel timing benches: one per experiment id                      *)
(* ------------------------------------------------------------------ *)

let make_instance device ~n_swaps ~gate_budget ~seed =
  Generator.generate
    ~config:{ Generator.default_config with n_swaps; gate_budget; seed }
    device

let timing_tests () =
  let grid = Topologies.grid 3 3 in
  let aspen = Topologies.aspen4 () in
  let sycamore = Topologies.sycamore54 () in
  let rochester = Topologies.rochester () in
  let eagle = Topologies.eagle127 () in
  let small = make_instance grid ~n_swaps:2 ~gate_budget:25 ~seed:1 in
  let inst_aspen = make_instance aspen ~n_swaps:5 ~gate_budget:300 ~seed:1 in
  let inst_syc = make_instance sycamore ~n_swaps:5 ~gate_budget:600 ~seed:1 in
  let inst_roc = make_instance rochester ~n_swaps:5 ~gate_budget:600 ~seed:1 in
  let inst_eagle = make_instance eagle ~n_swaps:5 ~gate_budget:1000 ~seed:1 in
  let sabre1 = Sabre.router ~options:Sabre.default_options () in
  let route inst () =
    ignore (sabre1.Router.route inst.Benchmark_inst.device inst.Benchmark_inst.circuit)
  in
  let queko = Queko.generate ~seed:1 ~depth:20 grid in
  Test.make_grouped ~name:"qubikos"
    [
      Test.make ~name:"E1/certificate+exact/grid3x3-n2"
        (Staged.stage (fun () -> ignore (Certificate.check_exact small)));
      Test.make ~name:"E2a/sabre-route/aspen4-n5-300g" (Staged.stage (route inst_aspen));
      Test.make ~name:"E2b/sabre-route/sycamore-n5-600g" (Staged.stage (route inst_syc));
      Test.make ~name:"E2c/sabre-route/rochester-n5-600g" (Staged.stage (route inst_roc));
      Test.make ~name:"E2d/sabre-route/eagle-n5-1000g" (Staged.stage (route inst_eagle));
      Test.make ~name:"E3/generate/eagle-n10-3000g"
        (Staged.stage (fun () ->
             ignore (make_instance eagle ~n_swaps:10 ~gate_budget:3000 ~seed:2)));
      Test.make ~name:"E4/sabre-traced/aspen4-n5-300g"
        (Staged.stage (fun () ->
             ignore
               (Sabre.route_traced
                  ~initial:inst_aspen.Benchmark_inst.initial_mapping
                  inst_aspen.Benchmark_inst.device inst_aspen.Benchmark_inst.circuit)));
      Test.make ~name:"E5/queko-vf2-placement/grid3x3-d20"
        (Staged.stage (fun () ->
             ignore (Placement.vf2 queko.Queko.device queko.Queko.circuit)));
    ]

let run_timing () =
  section "Timing benches (Bechamel; one per experiment)";
  let cfg =
    Benchmark.cfg ~limit:20 ~quota:(Time.second 2.0) ~kde:None
      ~sampling:(`Linear 1) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] (timing_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ ns ] -> Printf.printf "%-45s %12.3f ms/run\n" name (ns /. 1e6)
      | Some _ | None -> Printf.printf "%-45s %12s\n" name "n/a")
    rows

(* ------------------------------------------------------------------ *)
(* Router hot-path microbenchmark (perf trajectory)                    *)
(* ------------------------------------------------------------------ *)

let run_router_bench () =
  section "Router hot path (BENCH_router.json)";
  Printf.printf
    "Per-router ns/gate and swaps/second on fixed-seed QUBIKOS instances\n\
     over the paper's four topologies at three depths, plus the\n\
     deterministic lookahead-construction counters (a hoisted router\n\
     builds <= 1 per round). Written to BENCH_router.json — the repo's\n\
     perf trajectory; bench/router_bench.exe --check compares runs.\n\n";
  let scale =
    match !scale with
    | Quick -> Router_bench_core.Quick
    | Default -> Router_bench_core.Default
    | Full -> Router_bench_core.Full
  in
  let runs = Router_bench_core.default_runs scale in
  let entries = Router_bench_core.run ~progress:true ~scale ~runs () in
  Router_bench_core.write_json ~path:"BENCH_router.json"
    ~mode:(Router_bench_core.string_of_scale scale)
    entries;
  Printf.printf "  wrote BENCH_router.json (%d entries)\n" (List.length entries)

(* ------------------------------------------------------------------ *)
(* E1: optimality study (§IV-A)                                        *)
(* ------------------------------------------------------------------ *)

let run_optimality_study () =
  section "E1 — Optimality study (paper §IV-A)";
  let circuits, counts, budget =
    match !scale with
    | Quick -> (2, [ 1; 2 ], 25)
    | Default -> (10, [ 1; 2; 3; 4 ], 40)
    | Full -> (100, [ 1; 2; 3; 4 ], 30)
  in
  Printf.printf
    "Generate QUBIKOS circuits with designed SWAP counts, re-prove each with\n\
     the structural certificate, then confirm with the SAT-based exact\n\
     solver (OLSQ2's formulation; refuting n-1 SWAPs). Paper: 100 circuits\n\
     per count, all confirmed.\n\n";
  List.iter
    (fun device ->
      let rows =
        Evaluation.run_optimality_study ~circuits_per_count:circuits
          ~swap_counts:counts ~gate_budget:budget ~saturation_cap:1 ~seed:7
          device
      in
      Format.printf "@[<v>%a@]@." Evaluation.pp_optimality rows)
    [ Topologies.aspen4 (); Topologies.grid 3 3 ]

(* ------------------------------------------------------------------ *)
(* E2a-E2d: Fig. 4 panels + E3 headline summary                        *)
(* ------------------------------------------------------------------ *)

let run_figure4 () =
  let circuits, trials, swap_counts =
    match !scale with
    | Quick -> (1, 2, [ 5 ])
    | Default -> (2, 5, [ 5; 10; 15; 20 ])
    | Full -> (10, 1000, [ 5; 10; 15; 20 ])
  in
  let panels =
    [ ("E2a — Fig. 4(a) Rigetti Aspen-4", Topologies.aspen4 ());
      ("E2b — Fig. 4(b) Google Sycamore", Topologies.sycamore54 ());
      ("E2c — Fig. 4(c) IBM Rochester", Topologies.rochester ());
      ("E2d — Fig. 4(d) IBM Eagle", Topologies.eagle127 ()) ]
  in
  let all_points =
    List.concat_map
      (fun (title, device) ->
        section title;
        Printf.printf
          "SWAP ratio (mean inserted / optimal) per tool; %d circuits/point,\n\
           %d two-qubit gates, SABRE best-of-%d trials; campaign on %d\n\
           worker domain(s).\n\n%!"
          circuits (Evaluation.paper_gate_budget device) trials !jobs;
        let config =
          {
            (Evaluation.default_figure_config device) with
            circuits_per_point = circuits;
            sabre_trials = trials;
            swap_counts;
          }
        in
        let points = Evaluation.run_figure ~jobs:!jobs ~config device in
        Format.printf "@[<v>%a@]@.%!" Evaluation.pp_points points;
        points)
      panels
  in
  section "E3 — Headline optimality gaps (paper abstract)";
  Printf.printf
    "Mean SWAP ratio per tool across all four architectures.\n\
     Paper (1000-trial LightSABRE, exact tool versions): sabre 63x,\n\
     mlqls 117x, qmap 250x, tket 330x — orderings, not absolute values,\n\
     are the reproduction target.\n\n";
  List.iter
    (fun (tool, gap) -> Printf.printf "  %-12s %8.1fx\n" tool gap)
    (Evaluation.tool_gap_summary all_points)

(* ------------------------------------------------------------------ *)
(* E4: LightSABRE case study (§IV-C)                                   *)
(* ------------------------------------------------------------------ *)

let run_case_study () =
  section "E4 — Case study: SABRE's equal-weight lookahead (paper §IV-C)";
  Printf.printf
    "The paper analyses an Aspen-4 trace where SABRE reaches an optimal\n\
     initial mapping yet routes suboptimally because all 20 extended-set\n\
     gates are weighted equally, and proposes decaying the lookahead with\n\
     distance from the execution layer. We compare stock SABRE against the\n\
     decayed-lookahead variant on Aspen-4 QUBIKOS instances, and print one\n\
     SWAP decision's cost table (cf. Fig. 5).\n\n";
  let device = Topologies.aspen4 () in
  let n_swaps = 5 in
  let seeds = match !scale with Quick -> 3 | Default -> 8 | Full -> 20 in
  let stock_opts = Sabre.with_trials 4 Sabre.default_options in
  let decay_opts = { stock_opts with lookahead_decay = Some 0.7 } in
  let total_stock = ref 0 and total_decay = ref 0 in
  Printf.printf "%-6s %-8s %-12s %-12s\n" "seed" "optimal" "stock-sabre" "sabre-decay";
  for seed = 4 to 3 + seeds do
    let inst = make_instance device ~n_swaps ~gate_budget:300 ~seed in
    let c = inst.Benchmark_inst.circuit in
    let s_stock = Transpiled.swap_count (Sabre.route ~options:stock_opts device c) in
    let s_decay = Transpiled.swap_count (Sabre.route ~options:decay_opts device c) in
    total_stock := !total_stock + s_stock;
    total_decay := !total_decay + s_decay;
    Printf.printf "%-6d %-8d %-12d %-12d\n%!" seed n_swaps s_stock s_decay
  done;
  Printf.printf
    "\n  totals (optimal %d): stock %d, decayed lookahead %d\n\
     (the paper predicts the decayed variant routes closer to optimal on\n\
     this architecture)\n"
    (seeds * n_swaps) !total_stock !total_decay;
  (* One traced decision, Fig.-5 style. *)
  let inst = make_instance device ~n_swaps ~gate_budget:300 ~seed:1 in
  let _, decisions =
    Sabre.route_traced
      ~options:{ Sabre.default_options with bidirectional_passes = 2 }
      inst.Benchmark_inst.device inst.Benchmark_inst.circuit
  in
  (match decisions with
  | d :: _ ->
      Printf.printf "\n  First SWAP decision of a stock routing pass (cf. Fig. 5):\n";
      Printf.printf "  blocked front gates: %s\n"
        (String.concat ", "
           (List.map (fun (a, b) -> Printf.sprintf "(q%d,q%d)" a b) d.Sabre.front_gates));
      List.iteri
        (fun i ((p, p'), score) ->
          if i < 6 then
            Printf.printf "    candidate SWAP(p%d,p%d): score %.4f%s\n" p p' score
              (let cp, cp' = d.Sabre.chosen in
               if p = cp && p' = cp' then "   <- chosen" else ""))
        d.Sabre.candidates
  | [] -> ());
  (* Ablation A2: does the proposed fix transfer to larger devices? *)
  section "A2 — Ablation: lookahead decay across architectures";
  Printf.printf
    "Total SWAPs over QUBIKOS instances (optimal %d per device), stock vs\n\
     decayed lookahead. Beyond the paper: the fix helps on Aspen-4 but not\n\
     on larger, saturation-heavy devices.\n\n"
    (3 * n_swaps);
  List.iter
    (fun (dev, budget) ->
      let tot_s = ref 0 and tot_d = ref 0 in
      for seed = 4 to 6 do
        let inst = make_instance dev ~n_swaps ~gate_budget:budget ~seed in
        let c = inst.Benchmark_inst.circuit in
        tot_s := !tot_s + Transpiled.swap_count (Sabre.route ~options:stock_opts dev c);
        tot_d := !tot_d + Transpiled.swap_count (Sabre.route ~options:decay_opts dev c)
      done;
      Printf.printf "  %-10s stock %5d   decayed %5d\n%!" (Device.name dev) !tot_s !tot_d)
    [ (Topologies.aspen4 (), 300); (Topologies.sycamore54 (), 1500);
      (Topologies.rochester (), 1500) ]

let run_trials_ablation () =
  section "A1 — Ablation: LightSABRE trial count";
  Printf.printf
    "Best-of-N randomised trials on a fixed Aspen-4 instance (optimal 5).\n\
     The paper runs N = 1000; the gap shrinks with N.\n\n";
  let device = Topologies.aspen4 () in
  let inst = make_instance device ~n_swaps:5 ~gate_budget:300 ~seed:2 in
  let trials = match !scale with Quick -> [ 1; 4 ] | Default -> [ 1; 4; 16; 64 ] | Full -> [ 1; 10; 100; 1000 ] in
  List.iter
    (fun n ->
      let t0 = Unix.gettimeofday () in
      let t =
        Sabre.route ~options:(Sabre.with_trials n Sabre.default_options) device
          inst.Benchmark_inst.circuit
      in
      Printf.printf "  trials %4d: %3d swaps (ratio %5.1fx) in %.2fs\n%!" n
        (Transpiled.swap_count t)
        (float_of_int (Transpiled.swap_count t) /. 5.0)
        (Unix.gettimeofday () -. t0))
    trials

(* ------------------------------------------------------------------ *)
(* E5: QUEKO contrast (§I, §III-C)                                     *)
(* ------------------------------------------------------------------ *)

let run_queko_contrast () =
  section "E5 — QUEKO contrast: why SWAP-free benchmarks are not enough";
  Printf.printf
    "QUEKO instances are solved outright by subgraph isomorphism (VF2)\n\
     placement — 0 SWAPs, nothing to measure. QUBIKOS instances admit no\n\
     SWAP-free placement by construction (Lemma 1).\n\n";
  Printf.printf "%-12s %-10s %-18s %-20s\n" "device" "suite" "vf2 placement" "sabre swaps (opt)";
  List.iter
    (fun device ->
      let queko = Queko.generate ~seed:3 ~depth:15 device in
      let vf2_q =
        match Placement.vf2 device queko.Queko.circuit with
        | Some _ -> "solved (0 swaps)"
        | None -> "FAILED?!"
      in
      let sabre = Sabre.router ~options:(Sabre.with_trials 4 Sabre.default_options) () in
      let s_q = Router.swap_count sabre device queko.Queko.circuit in
      Printf.printf "%-12s %-10s %-18s %d (0)\n%!" (Device.name device) "queko" vf2_q s_q;
      let inst = make_instance device ~n_swaps:4 ~gate_budget:100 ~seed:3 in
      let vf2_b =
        match Placement.vf2 device inst.Benchmark_inst.circuit with
        | Some _ -> "IMPOSSIBLE?!"
        | None -> "no embedding"
      in
      let s_b = Router.swap_count sabre device inst.Benchmark_inst.circuit in
      Printf.printf "%-12s %-10s %-18s %d (%d)\n%!" (Device.name device) "qubikos"
        vf2_b s_b inst.Benchmark_inst.optimal_swaps)
    [ Topologies.grid 3 3; Topologies.aspen4 () ];
  (* QUEKO's own metric for completeness: depth ratios on the TFL suite. *)
  Printf.printf
    "\nQUEKO TFL depth ratios on aspen4 (tool two-qubit depth / optimal\n\
     depth; QUEKO can only measure depth, never SWAP optimality):\n\n";
  let device = Topologies.aspen4 () in
  let sabre = Sabre.router ~options:(Sabre.with_trials 4 Sabre.default_options) () in
  List.iter
    (fun q ->
      let t, _ = Router.run_verified sabre device q.Queko.circuit in
      Printf.printf "  depth %3d: sabre ratio %.2f (%d swaps)\n%!"
        q.Queko.optimal_depth (Queko.depth_ratio q t)
        (Qls_layout.Transpiled.swap_count t))
    (Queko.generate_suite ~seed:1 Queko.Tfl device)

(* ------------------------------------------------------------------ *)
(* A3: extra baseline + fidelity impact                                *)
(* ------------------------------------------------------------------ *)

let run_fidelity_impact () =
  section "A3 — Extension: fidelity impact of the SWAP optimality gap";
  Printf.printf
    "The paper's motivation made quantitative: estimated success\n\
     probability under a uniform error model (2q error 7e-3, SWAP = 3\n\
     CNOTs) for the designed-optimal schedule vs real tools, plus the\n\
     transition-router extra baseline (token-swapping per slice).\n\n";
  let device = Topologies.aspen4 () in
  let inst = make_instance device ~n_swaps:5 ~gate_budget:300 ~seed:5 in
  let noise = Qls_arch.Noise.uniform device in
  let describe name t =
    let swaps = Transpiled.swap_count t in
    Printf.printf "  %-12s %4d swaps   success probability %.3e\n%!" name swaps
      (Qls_layout.Fidelity.success_probability noise t)
  in
  describe "designed" inst.Benchmark_inst.designed;
  List.iter
    (fun name ->
      match Registry.by_name ~sabre_trials:5 name with
      | None -> ()
      | Some tool ->
          let t, _ = Router.run_verified tool device inst.Benchmark_inst.circuit in
          describe name t)
    [ "sabre"; "mlqls"; "tket"; "qmap"; "transition" ]

(* ------------------------------------------------------------------ *)

let () =
  Printf.printf "QUBIKOS benchmark & experiment harness (scale: %s)\n"
    (match !scale with Quick -> "quick" | Default -> "default" | Full -> "full/paper");
  Option.iter Qls_obs.tracing_to !trace;
  Fun.protect
    ~finally:(fun () -> if Option.is_some !trace then Qls_obs.shutdown ())
    (fun () ->
      if !timing then run_timing ();
      run_router_bench ();
      run_optimality_study ();
      run_queko_contrast ();
      run_case_study ();
      run_trials_ablation ();
      run_fidelity_impact ();
      run_figure4 ());
  Printf.printf "\nDone. See EXPERIMENTS.md for paper-vs-measured discussion.\n"
