(* CLI for the router hot-path microbenchmark.

   Usage:
     dune exec bench/router_bench.exe                         default scale
     dune exec bench/router_bench.exe -- --quick              CI smoke scale
     dune exec bench/router_bench.exe -- --update             refresh baseline
     dune exec bench/router_bench.exe -- --out FILE
     dune exec bench/router_bench.exe -- --check BENCH_router.json
     dune exec bench/router_bench.exe -- --runs N --tolerance 0.25

   A plain run writes BENCH_router.fresh.json and never touches the
   committed baseline; --update writes BENCH_router.json in place (at
   quick scale unless --quick/--full is given, matching the recorded
   baseline's mode) — commit the result when a deliberate perf change
   moves the numbers. --check compares the fresh run against the
   committed baseline and exits 1 on a >tolerance ns/gate regression or
   ANY increase in the (deterministic) builds-per-round counters. *)

module Core = Router_bench_core

let baseline_file = "BENCH_router.json"

let () =
  let scale = ref Core.Default in
  let scale_set = ref false in
  let out = ref "BENCH_router.fresh.json" in
  let update = ref false in
  let baseline = ref None in
  let runs = ref None in
  let tolerance = ref 0.25 in
  let usage () =
    prerr_endline
      "usage: router_bench.exe [--quick | --full] [--update] [--out FILE] \
       [--check BASELINE] [--runs N] [--tolerance FRAC]";
    exit 2
  in
  let argv = Sys.argv in
  let value i = if i + 1 < Array.length argv then Some argv.(i + 1) else None in
  let rec parse i =
    if i < Array.length argv then
      match argv.(i) with
      | "--quick" ->
          scale := Core.Quick;
          scale_set := true;
          parse (i + 1)
      | "--full" ->
          scale := Core.Full;
          scale_set := true;
          parse (i + 1)
      | "--update" ->
          update := true;
          parse (i + 1)
      | "--out" -> (
          match value i with
          | Some f ->
              out := f;
              parse (i + 2)
          | None -> usage ())
      | "--check" -> (
          match value i with
          | Some f ->
              baseline := Some f;
              parse (i + 2)
          | None -> usage ())
      | "--runs" -> (
          match Option.bind (value i) int_of_string_opt with
          | Some n when n >= 1 ->
              runs := Some n;
              parse (i + 2)
          | _ -> usage ())
      | "--tolerance" -> (
          match Option.bind (value i) float_of_string_opt with
          | Some f when f >= 0.0 ->
              tolerance := f;
              parse (i + 2)
          | _ -> usage ())
      | _ -> usage ()
  in
  parse 1;
  if !update then begin
    out := baseline_file;
    if not !scale_set then scale := Core.Quick
  end;
  let mode = Core.string_of_scale !scale in
  let runs =
    match !runs with Some n -> n | None -> Core.default_runs !scale
  in
  Printf.eprintf "router_bench: scale %s, %d run(s) per cell\n%!" mode runs;
  let entries = Core.run ~progress:true ~scale:!scale ~runs () in
  Core.write_json ~path:!out ~mode entries;
  Printf.eprintf "router_bench: wrote %s (%d entries)\n%!" !out
    (List.length entries);
  match !baseline with
  | None -> ()
  | Some b -> (
      match Core.check ~baseline:b ~tolerance:!tolerance entries with
      | Ok () ->
          Printf.eprintf
            "router_bench: no regression against %s (tolerance %.0f%%)\n%!" b
            (!tolerance *. 100.0)
      | Error problems ->
          List.iter (Printf.eprintf "router_bench: REGRESSION: %s\n%!") problems;
          exit 1)
