(* Router hot-path microbenchmark — the perf-trajectory instrument.

   Deterministic by construction: fixed seeds, the paper's four
   topologies, QUBIKOS instances at three depths (gate budgets scaled to
   the device), every router from the paper's tool set. Two kinds of
   numbers per (router, device, depth) cell:

   - timing: ns per routed two-qubit gate and SWAPs inserted per second
     (best of [runs] repetitions, so scheduler noise biases down, not up);
   - structure: SWAP count, routing rounds, and the number of
     extended-set / remaining-layers constructions from
     {!Qls_router.Route_state.Debug} — these are bit-deterministic, so a
     regression in them is a code change, never noise. A correctly
     hoisted router builds each lookahead structure at most once per
     round ([builds_per_round <= 1]); the pre-hoisting routers built one
     per candidate (typically 6-20x per round).

   [write_json] emits BENCH_router.json; [check] compares a fresh run
   against a committed baseline and fails on >tolerance ns/gate
   regression or any builds_per_round increase. *)

module Device = Qls_arch.Device
module Topologies = Qls_arch.Topologies
module Circuit = Qls_circuit.Circuit
module Transpiled = Qls_layout.Transpiled
module Router = Qls_router.Router
module Route_state = Qls_router.Route_state
module Sabre = Qls_router.Sabre
module Tket_router = Qls_router.Tket_router
module Astar_router = Qls_router.Astar_router
module Mlqls = Qls_router.Mlqls
module Generator = Qubikos.Generator

type scale = Quick | Default | Full

type entry = {
  router : string;
  device : string;
  gate_budget : int;
  n_swaps : int;
  seed : int;
  gates : int;  (** two-qubit gates actually generated *)
  runs : int;
  ns_per_gate : float;
  swaps_per_sec : float;
  swaps : int;
  rounds : int;
      (** swap-candidate scans, or remaining-layers builds for routers
          (qmap) that never scan the candidate set *)
  extended_set_builds : int;
  remaining_layers_builds : int;
  builds_per_round : float;
}

let scale_of_string = function
  | "quick" -> Some Quick
  | "default" -> Some Default
  | "full" -> Some Full
  | _ -> None

let string_of_scale = function
  | Quick -> "quick"
  | Default -> "default"
  | Full -> "full"

(* The paper's four topologies (Fig. 4a-d). *)
let topologies () =
  [
    Topologies.aspen4 ();
    Topologies.sycamore54 ();
    Topologies.rochester ();
    Topologies.eagle127 ();
  ]

(* Three depths per device: gate budgets proportional to qubit count so
   every architecture is stressed comparably. *)
let depth_factors = function
  | Quick -> [ 1; 2; 4 ]
  | Default | Full -> [ 2; 4; 8 ]

let designed_swaps = function Quick -> 3 | Default -> 5 | Full -> 5

(* Best-of-N timing: quick mode takes 5 runs per cell, because the CI
   smoke gate is 15% and a single run of a tens-of-microseconds cell
   jitters past that on a loaded runner; best-of-N converges on the
   noise floor as N grows. *)
let default_runs = function Quick -> 5 | Default -> 3 | Full -> 5

let instance_seed = 1

let routers scale =
  let sabre_trials = match scale with Full -> 4 | Quick | Default -> 1 in
  [
    ( "sabre",
      Sabre.router
        ~options:(Sabre.with_trials sabre_trials Sabre.default_options)
        () );
    ("mlqls", Mlqls.router ());
    ("tket", Tket_router.router ());
    ("qmap", Astar_router.router ());
  ]

let measure ~runs ~router ~device ~gate_budget ~n_swaps ~seed =
  let config =
    { Generator.default_config with n_swaps; gate_budget; seed }
  in
  let inst = Generator.generate ~config device in
  let circuit = inst.Qubikos.Benchmark.circuit in
  let gates = Array.length (Circuit.gates circuit) in
  (* One instrumented run for the deterministic structural numbers. *)
  Route_state.Debug.reset ();
  let t0 = Unix.gettimeofday () in
  let routed = router.Router.route ?initial:None device circuit in
  let first_elapsed = Unix.gettimeofday () -. t0 in
  let c = Route_state.Debug.counters () in
  let swaps = Transpiled.swap_count routed in
  (* Timing: best of [runs] (the first, instrumented run also counts — a
     counter bump is two atomic adds per round, noise-level). *)
  let best = ref first_elapsed in
  for _ = 2 to runs do
    let t0 = Unix.gettimeofday () in
    ignore (router.Router.route ?initial:None device circuit);
    let e = Unix.gettimeofday () -. t0 in
    if e < !best then best := e
  done;
  let elapsed = Float.max !best 1e-9 in
  (* Routers that pick SWAPs from the candidate set have one
     swap-candidate scan per round; qmap runs its own per-layer A*, so
     its rounds are its remaining-layers builds (one per layer
     iteration). *)
  let rounds =
    if c.Route_state.Debug.swap_candidate_scans > 0 then
      c.Route_state.Debug.swap_candidate_scans
    else c.Route_state.Debug.remaining_layers_builds
  in
  let builds =
    c.Route_state.Debug.extended_set_builds
    + c.Route_state.Debug.remaining_layers_builds
  in
  {
    router = router.Router.name;
    device = Device.name device;
    gate_budget;
    n_swaps;
    seed;
    gates;
    runs;
    ns_per_gate = elapsed *. 1e9 /. float_of_int (max 1 gates);
    swaps_per_sec = float_of_int swaps /. elapsed;
    swaps;
    rounds;
    extended_set_builds = c.Route_state.Debug.extended_set_builds;
    remaining_layers_builds = c.Route_state.Debug.remaining_layers_builds;
    builds_per_round =
      (if rounds = 0 then 0.0 else float_of_int builds /. float_of_int rounds);
  }

let run ?(progress = false) ~scale ~runs () =
  let n_swaps = designed_swaps scale in
  List.concat_map
    (fun device ->
      List.concat_map
        (fun factor ->
          let gate_budget = factor * Device.n_qubits device in
          List.map
            (fun (_, router) ->
              let e =
                measure ~runs ~router ~device ~gate_budget ~n_swaps
                  ~seed:instance_seed
              in
              if progress then
                Printf.eprintf
                  "  %-6s %-11s %5d gates  %10.0f ns/gate  %8.0f swaps/s  %.2f builds/round\n%!"
                  e.router e.device e.gates e.ns_per_gate e.swaps_per_sec
                  e.builds_per_round;
              e)
            (routers scale))
        (depth_factors scale))
    (topologies ())

(* ------------------------------------------------------------------ *)
(* JSON emission: entries one per line, keys in a fixed order, so the   *)
(* file diffs cleanly and the reader below stays trivial.               *)
(* ------------------------------------------------------------------ *)

let entry_to_json e =
  Printf.sprintf
    "{\"router\":%S,\"device\":%S,\"gate_budget\":%d,\"n_swaps\":%d,\"seed\":%d,\"gates\":%d,\"runs\":%d,\"ns_per_gate\":%.1f,\"swaps_per_sec\":%.1f,\"swaps\":%d,\"rounds\":%d,\"extended_set_builds\":%d,\"remaining_layers_builds\":%d,\"builds_per_round\":%.4f}"
    e.router e.device e.gate_budget e.n_swaps e.seed e.gates e.runs
    e.ns_per_gate e.swaps_per_sec e.swaps e.rounds e.extended_set_builds
    e.remaining_layers_builds e.builds_per_round

let to_json ~mode entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": 1,\n";
  Buffer.add_string buf "  \"bench\": \"router\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"mode\": %S,\n" mode);
  Buffer.add_string buf "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      Buffer.add_string buf "    ";
      Buffer.add_string buf (entry_to_json e);
      if i < List.length entries - 1 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n')
    entries;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write_json ~path ~mode entries =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ~mode entries))

(* ------------------------------------------------------------------ *)
(* Baseline reading. Not a general JSON parser: it reads exactly the    *)
(* format [write_json] emits (one entry object per line, fixed keys).   *)
(* ------------------------------------------------------------------ *)

let scan_field line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat and n = String.length line in
  let rec find i =
    if i + plen > n then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = ref start in
      while
        !stop < n && (match line.[!stop] with ',' | '}' -> false | _ -> true)
      do
        incr stop
      done;
      Some (String.sub line start (!stop - start))

let field_string line key =
  match scan_field line key with
  | Some s when String.length s >= 2 && s.[0] = '"' ->
      Some (String.sub s 1 (String.length s - 2))
  | _ -> None

let field_float line key = Option.bind (scan_field line key) float_of_string_opt
let field_int line key = Option.bind (scan_field line key) int_of_string_opt

let load_entries path =
  let ic = open_in path in
  let entries = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          match
            ( field_string line "router",
              field_string line "device",
              field_int line "gate_budget",
              field_int line "seed" )
          with
          | Some router, Some device, Some gate_budget, Some seed ->
              let get_f key = Option.value ~default:0.0 (field_float line key) in
              let get_i key = Option.value ~default:0 (field_int line key) in
              entries :=
                {
                  router;
                  device;
                  gate_budget;
                  n_swaps = get_i "n_swaps";
                  seed;
                  gates = get_i "gates";
                  runs = get_i "runs";
                  ns_per_gate = get_f "ns_per_gate";
                  swaps_per_sec = get_f "swaps_per_sec";
                  swaps = get_i "swaps";
                  rounds = get_i "rounds";
                  extended_set_builds = get_i "extended_set_builds";
                  remaining_layers_builds = get_i "remaining_layers_builds";
                  builds_per_round = get_f "builds_per_round";
                }
                :: !entries
          | _ -> ()
        done
      with End_of_file -> ());
  List.rev !entries

let key e = (e.router, e.device, e.gate_budget, e.n_swaps, e.seed)

(* Compare a fresh run against the committed baseline.

   Timing is gated per ROUTER, not per cell: the geometric mean of the
   fresh/baseline ns_per_gate ratio across that router's matched cells
   may not exceed [1 + tolerance]. Individual small cells (tens of µs)
   jitter past 25% routinely on a loaded CI runner; the geomean over a
   dozen cells does not, so this keeps the gate meaningful without
   flaking. The structural counters are bit-deterministic and may not
   regress at all, per cell. *)
let check ~baseline ~tolerance entries =
  let base = load_entries baseline in
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let ratios = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match List.find_opt (fun b -> key b = key e) base with
      | None -> ()
      | Some b ->
          if b.ns_per_gate > 0.0 then
            Hashtbl.replace ratios e.router
              (log (e.ns_per_gate /. b.ns_per_gate)
              :: (try Hashtbl.find ratios e.router with Not_found -> []));
          (* The baseline file stores builds_per_round at 4 decimals, so
             a fresh (exact) value can sit up to half an ulp above the
             recorded one; the smallest genuine regression is one extra
             build over the cell's rounds (>= ~1e-3), far above 1e-4. *)
          if e.builds_per_round > b.builds_per_round +. 1e-4 then
            note
              "%s/%s/%dg: builds_per_round %.4f regressed from %.4f (deterministic — a code change reintroduced per-candidate recomputation)"
              e.router e.device e.gate_budget e.builds_per_round
              b.builds_per_round)
    entries;
  (* Report per-router problems in name order, not hash order. *)
  Hashtbl.fold (fun router logs acc -> (router, logs) :: acc) ratios []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (router, logs) ->
         let n = List.length logs in
         let geomean = exp (List.fold_left ( +. ) 0.0 logs /. float_of_int n) in
         if geomean > 1.0 +. tolerance then
           note
             "%s: ns_per_gate geomean ratio %.3f over %d cells exceeds baseline by more than %.0f%%"
             router geomean n (tolerance *. 100.0));
  match List.rev !problems with [] -> Ok () | ps -> Error ps
