(* R7 fixture: ambient Random use. Only meaningful when linted under a
   lib/sat or lib/router path — the rule is scoped to the solver stack
   (where portfolio winner-seed replay demands seed-pure variation) and
   must stay silent elsewhere. *)

let roll () = Random.int 6
let jitter () = Random.float 1.0
let reseed () = Random.self_init ()

(* a justified use is fine *)
let shuffle_tag () =
  (* lint: seeded-randomness — test-only scaffolding, never in a replay *)
  Random.bits ()
