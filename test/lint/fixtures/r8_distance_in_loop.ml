(* R8 fixture: Device.distance resolved per candidate inside router
   loops. Only meaningful when linted under a lib/router path — the
   rule is scoped to the router layer and must stay silent elsewhere.
   Expected findings: 5 (closure to List.fold_left, sort comparator,
   Graph.fold_edges closure, while body, for body). *)

(* 1. per-candidate lookup in an iteration closure *)
let score device mapping partners p =
  List.fold_left (fun acc q -> acc + Device.distance device p (Mapping.phys mapping q)) 0 partners

(* 2. sort comparator runs O(n log n) times *)
let order device pairs =
  List.sort (fun (a, b) (a', b') -> Int.compare (Device.distance device a b) (Device.distance' device a' b')) pairs

(* 3. module-local fold iterates too *)
let spread device mapping inter =
  Graph.fold_edges (fun q q' acc -> acc + Device.distance device q q') inter 0

(* 4. while body *)
let walk device src dst =
  let p = ref src in
  while Device.distance device !p dst > 0 do
    p := Device.step device !p dst
  done;
  !p

(* 5. for body *)
let sum device src n =
  let total = ref 0 in
  for q = 0 to n - 1 do
    total := !total + Device.distance device src q
  done;
  !total

(* hoisted row indexing is the blessed shape — no finding *)
let score_hoisted device mapping partners p =
  let row = Device.distance_row device p in
  List.fold_left (fun acc q -> acc + row.(Mapping.phys mapping q)) 0 partners

(* a straight-line lookup outside any loop is fine *)
let one_off device a b = Device.distance device a b

(* a justified once-per-round lookup is fine *)
let round_cost device a b =
  List.map
    (fun x ->
      (* lint: distance-in-loop — one lookup per round, not per candidate *)
      Device.distance device a b + x)
    [ 1; 2 ]
