(* R6 fixture: raw sleeps and unbounded joins. Only meaningful when
   linted under a lib/serve or lib/harness path — the rule is scoped to
   the serving path and must stay silent elsewhere. *)

let nap () = Unix.sleep 1
let micro_nap () = Unix.sleepf 0.5
let pause () = Thread.delay 0.25
let reap t = Thread.join t

(* a justified wait is fine *)
let reap_bounded t =
  (* lint: unbounded-wait — the worker exits on the closed pipe below *)
  Thread.join t
