(* Every violation in this file is silenced by a suppression comment;
   the engine must keep zero findings and count five silenced ones. *)

let same_line xs = List.sort compare xs (* lint: poly-compare — fixture: same-line form *)

let line_above () =
  (* lint: nondet-source — fixture: line-above form *)
  Unix.gettimeofday ()

let wildcard xs =
  (* lint: all — fixture: wildcard form *)
  if xs = [] then 1 else 0

let multi x =
  (* lint: poly-compare, float-discipline — fixture: rule-list form *)
  compare x 1.0
