(* R1 fixture: mutable containers captured and mutated inside closures
   handed to the domain pool. Expected findings: 6. Parsed by the lint
   tests, never compiled — the Pool/Thread references need no deps. *)

let bad_ref tasks =
  let counter = ref 0 in
  Pool.run ~jobs:2 ~f:(fun _i _t -> counter := !counter + 1) tasks;
  !counter

let bad_incr () =
  let hits = ref 0 in
  let d = Domain.spawn (fun () -> incr hits) in
  Domain.join d;
  !hits

let bad_hashtbl tasks =
  let seen = Hashtbl.create 8 in
  Pool.submit (fun key -> Hashtbl.replace seen key true) tasks;
  seen

let bad_buffer () =
  let buf = Buffer.create 16 in
  let t = Thread.create (fun () -> Buffer.add_string buf "hi") () in
  Thread.join t;
  Buffer.contents buf

let bad_queue q tasks =
  Pool.run ~jobs:4 ~f:(fun _ _ -> ignore (Queue.pop q)) tasks

type st = { mutable count : int }

let bad_setfield st tasks =
  Pool.run ~jobs:2 ~f:(fun _ _ -> st.count <- st.count + 1) tasks

(* Fine: the ref is the closure's own. *)
let ok_local tasks =
  Pool.run ~jobs:2
    ~f:(fun _ _ ->
      let local = ref 0 in
      local := 1;
      !local)
    tasks

(* Fine: disjoint-index writes into a preallocated array are the pool's
   result-collection idiom. *)
let ok_array results tasks = Pool.run ~jobs:2 ~f:(fun i t -> results.(i) <- t) tasks

(* Fine: atomics are the sanctioned cross-domain counter. *)
let ok_atomic n tasks = Pool.run ~jobs:2 ~f:(fun _ _ -> Atomic.incr n) tasks
