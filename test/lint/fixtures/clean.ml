(* Lint-clean reference: the idiomatic spelling of everything the rules
   flag. Expected findings: 0 under every rule. *)

let sorted xs = List.sort Int.compare xs

let pairs_sorted xs = List.sort (fun (a, _) (b, _) -> Int.compare a b) xs

let empty xs = List.is_empty xs

let missing x = Option.is_none x

let close x y = Float.abs (x -. y) < 1e-9

let histogram tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let pooled results tasks = Pool.run ~jobs:2 ~f:(fun i t -> results.(i) <- t) tasks

let counted n tasks = Pool.run ~jobs:2 ~f:(fun _ _ -> Atomic.incr n) tasks

let spanned sp traced n =
  if traced then Qls_obs.stop sp ~attrs:[ ("n", Qls_obs.Int n) ]
