(* R5 fixture: Qls_obs usage that breaks the allocation-free-when-
   disabled contract. Expected findings: 4. *)

let bad_enabled_in_for () =
  for _i = 0 to 9 do
    if Qls_obs.enabled () then () else ()
  done

let bad_enabled_in_while () =
  let n = ref 0 in
  while !n < 3 do
    if Qls_obs.enabled () then incr n else incr n
  done

let bad_counter_in_iter xs =
  List.iter (fun _x -> ignore (Qls_obs.counter "hits")) xs

let bad_eager_attrs sp emitted =
  Qls_obs.stop sp ~attrs:[ ("emitted", Qls_obs.Int emitted) ]

(* Fine: the established idiom — one enabled read per pass, attrs built
   only under the guard. *)
let ok_hoisted sp xs =
  let traced = Qls_obs.enabled () in
  List.iter (fun _x -> ()) xs;
  if traced then Qls_obs.stop sp ~attrs:[ ("n", Qls_obs.Int 1) ]
