(* R4 fixture: environment-seeded randomness, wall-clock reads, and
   hash-order traversal that never reaches a sort.
   Expected findings: 6. *)

let bad_self_init () = Random.self_init ()

let bad_walltime () = Unix.gettimeofday ()

let bad_cpu () = Sys.time ()

let bad_unix_time () = Unix.time ()

let bad_fold tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

let bad_iter tbl = Hashtbl.iter (fun k v -> Printf.printf "%d %d\n" k v) tbl

(* Fine: the traversal feeds directly into a sort, so hash order cannot
   escape. *)
let ok_pipe tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let ok_arg tbl =
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
