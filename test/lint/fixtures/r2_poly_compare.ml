(* R2 fixture: polymorphic compare and structural =/<>.
   Expected findings: 5. *)

let sort_ints xs = List.sort compare xs

let sort_array a = Array.sort compare a

module PS = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let check_empty xs = if xs = [] then 0 else List.length xs

let check_opt x = x <> None

(* Fine: monomorphic spellings. *)
let ok_int xs = List.sort Int.compare xs
let ok_str a b = String.compare a b
let ok_imm x = x = 3
let ok_vars a b = a = b
