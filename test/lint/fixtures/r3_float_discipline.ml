(* R3 fixture: float equality and polymorphic min/max/compare on float
   operands. Expected findings: 6. *)

let bad_eq_arith a b c = a = (b *. c)

let bad_eq_const x = x = 0.0

let bad_min x y = min x (y +. 1.0)

let bad_max z = max 0.0 z

let bad_compare x = compare x 1.5

let bad_conv n m = float_of_int n = m

(* Fine: ordering is well-defined on non-NaN floats, and the Float
   module is NaN-aware. *)
let ok_order x y = x < y
let ok_float_eq x y = Float.equal x y
let ok_float_cmp x y = Float.compare x y
let ok_eps x y = Float.abs (x -. y) < 1e-9
