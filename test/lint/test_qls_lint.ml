(* Tests for the Qls_lint static-analysis pass: per-rule fixtures with
   asserted violation counts, the suppression comment forms, baseline
   round-tripping, and the self-check that lib/ itself is lint-clean. *)

module Finding = Qls_lint.Finding
module Rules = Qls_lint.Rules
module Engine = Qls_lint.Engine
module Suppress = Qls_lint.Suppress
module Baseline = Qls_lint.Baseline

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let test_case name f = Alcotest.test_case name `Quick f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fixture name = read_file (Filename.concat "fixtures" name)

let rule name =
  match Rules.by_name name with
  | Some r -> r
  | None -> Alcotest.failf "rule %s not registered" name

(* Lint [src] under the named rules; fail the test on parse errors so a
   broken fixture cannot silently pass as "0 findings". *)
let lint ~rules src =
  let findings, suppressed, failures =
    Engine.lint_source ~rules ~file:"fixture.ml" src
  in
  check_int "fixture parses" 0 failures;
  (findings, suppressed)

let expect_rule name file count =
  test_case
    (Printf.sprintf "%s fires %d time(s) on %s" name count file)
    (fun () ->
      let findings, _ = lint ~rules:[ rule name ] (fixture file) in
      List.iter
        (fun f -> check_string "rule tag" name f.Finding.rule)
        findings;
      check_int "finding count" count (List.length findings))

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

let rule_tests =
  [
    expect_rule "domain-unsafe-capture" "r1_domain_capture.ml" 6;
    expect_rule "poly-compare" "r2_poly_compare.ml" 5;
    expect_rule "float-discipline" "r3_float_discipline.ml" 6;
    expect_rule "nondet-source" "r4_nondet_source.ml" 6;
    expect_rule "obs-discipline" "r5_obs_discipline.ml" 4;
    test_case "unbounded-wait fires under a serving-path file name" (fun () ->
        let findings, suppressed, failures =
          Engine.lint_source
            ~rules:[ rule "unbounded-wait" ]
            ~file:"lib/serve/fixture.ml"
            (fixture "r6_unbounded_wait.ml")
        in
        check_int "fixture parses" 0 failures;
        List.iter
          (fun f -> check_string "rule tag" "unbounded-wait" f.Finding.rule)
          findings;
        check_int "finding count" 4 (List.length findings);
        check_int "justified wait suppressed" 1 suppressed);
    test_case "unbounded-wait also covers lib/harness" (fun () ->
        let findings, _, failures =
          Engine.lint_source
            ~rules:[ rule "unbounded-wait" ]
            ~file:"lib/harness/fixture.ml"
            (fixture "r6_unbounded_wait.ml")
        in
        check_int "fixture parses" 0 failures;
        check_int "finding count" 4 (List.length findings));
    test_case "unbounded-wait is silent outside the serving path" (fun () ->
        let findings, _, failures =
          Engine.lint_source
            ~rules:[ rule "unbounded-wait" ]
            ~file:"lib/faults/fixture.ml"
            (fixture "r6_unbounded_wait.ml")
        in
        check_int "fixture parses" 0 failures;
        check_int "deliberate sleeps elsewhere are fine" 0
          (List.length findings));
    test_case "seeded-randomness fires under a solver-stack file name"
      (fun () ->
        let findings, suppressed, failures =
          Engine.lint_source
            ~rules:[ rule "seeded-randomness" ]
            ~file:"lib/sat/fixture.ml"
            (fixture "r7_seeded_randomness.ml")
        in
        check_int "fixture parses" 0 failures;
        List.iter
          (fun f -> check_string "rule tag" "seeded-randomness" f.Finding.rule)
          findings;
        check_int "finding count" 3 (List.length findings);
        check_int "justified use suppressed" 1 suppressed);
    test_case "seeded-randomness also covers lib/router" (fun () ->
        let findings, _, failures =
          Engine.lint_source
            ~rules:[ rule "seeded-randomness" ]
            ~file:"lib/router/fixture.ml"
            (fixture "r7_seeded_randomness.ml")
        in
        check_int "fixture parses" 0 failures;
        check_int "finding count" 3 (List.length findings));
    test_case "seeded-randomness is silent outside the solver stack"
      (fun () ->
        let findings, _, failures =
          Engine.lint_source
            ~rules:[ rule "seeded-randomness" ]
            ~file:"bench/fixture.ml"
            (fixture "r7_seeded_randomness.ml")
        in
        check_int "fixture parses" 0 failures;
        check_int "ambient randomness elsewhere is fine" 0
          (List.length findings));
    test_case "distance-in-loop fires under a router file name" (fun () ->
        let findings, suppressed, failures =
          Engine.lint_source
            ~rules:[ rule "distance-in-loop" ]
            ~file:"lib/router/fixture.ml"
            (fixture "r8_distance_in_loop.ml")
        in
        check_int "fixture parses" 0 failures;
        List.iter
          (fun f -> check_string "rule tag" "distance-in-loop" f.Finding.rule)
          findings;
        check_int "finding count" 5 (List.length findings);
        check_int "justified once-per-round lookup suppressed" 1 suppressed);
    test_case "distance-in-loop is silent outside lib/router" (fun () ->
        let findings, _, failures =
          Engine.lint_source
            ~rules:[ rule "distance-in-loop" ]
            ~file:"lib/arch/fixture.ml"
            (fixture "r8_distance_in_loop.ml")
        in
        check_int "fixture parses" 0 failures;
        check_int "lookups elsewhere are fine" 0 (List.length findings));
    test_case "clean fixture is clean under every rule" (fun () ->
        let findings, suppressed = lint ~rules:Rules.all (fixture "clean.ml") in
        check_int "no findings" 0 (List.length findings);
        check_int "no suppressions" 0 suppressed);
    test_case "findings carry file, 1-based line and severity" (fun () ->
        let findings, _ =
          lint ~rules:[ rule "poly-compare" ] "let f xs = List.sort compare xs\n"
        in
        match findings with
        | [ f ] ->
            check_string "file" "fixture.ml" f.Finding.file;
            check_int "line" 1 f.Finding.line;
            check_bool "severity" true (f.Finding.severity = Finding.Error)
        | l -> Alcotest.failf "expected 1 finding, got %d" (List.length l));
  ]

(* ------------------------------------------------------------------ *)
(* Suppression                                                         *)
(* ------------------------------------------------------------------ *)

let suppression_tests =
  [
    test_case "suppressed fixture keeps nothing, counts five" (fun () ->
        let findings, suppressed =
          lint ~rules:Rules.all (fixture "suppressed.ml")
        in
        List.iter
          (fun f -> Printf.eprintf "unexpected: %s\n" (Finding.to_human f))
          findings;
        check_int "no findings survive" 0 (List.length findings);
        check_int "five silenced" 5 suppressed);
    test_case "scan recognizes the three comment forms" (fun () ->
        let src =
          "let x = compare (* lint: poly-compare — why *)\n\
           (* lint: all — why *)\n\
           let y = 2\n\
           let z = 3 (* not a suppression *)\n"
        in
        let t = Suppress.scan src in
        check_int "two suppressions" 2 (Suppress.count t);
        check_bool "same line" true
          (Suppress.suppressed t ~line:1 ~rule:"poly-compare");
        check_bool "other rules stay" false
          (Suppress.suppressed t ~line:1 ~rule:"nondet-source");
        check_bool "wildcard covers the next line" true
          (Suppress.suppressed t ~line:3 ~rule:"float-discipline");
        check_bool "wildcard is standalone-only downward" false
          (Suppress.suppressed t ~line:4 ~rule:"float-discipline"));
    test_case "trailing comment does not bless the following line" (fun () ->
        let src =
          "let a = 1 (* lint: poly-compare — same line only *)\n\
           let b = List.sort compare xs\n"
        in
        let t = Suppress.scan src in
        check_bool "line 2 not covered" false
          (Suppress.suppressed t ~line:2 ~rule:"poly-compare"));
  ]

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)
(* ------------------------------------------------------------------ *)

let finding ~file ~line ~rule =
  Finding.v ~file ~line ~col:0 ~rule ~severity:Finding.Error "msg"

let baseline_tests =
  [
    test_case "of_findings -> render -> load -> apply round-trips" (fun () ->
        let findings =
          [
            finding ~file:"bin/a.ml" ~line:3 ~rule:"nondet-source";
            finding ~file:"bin/a.ml" ~line:9 ~rule:"nondet-source";
            finding ~file:"bench/b.ml" ~line:1 ~rule:"poly-compare";
          ]
        in
        let entries = Baseline.of_findings findings in
        let tmp = Filename.temp_file "qls_lint" ".baseline" in
        Fun.protect
          ~finally:(fun () -> Sys.remove tmp)
          (fun () ->
            let oc = open_out tmp in
            output_string oc (Baseline.render entries);
            close_out oc;
            match Baseline.load tmp with
            | Error e -> Alcotest.fail e
            | Ok loaded ->
                let applied = Baseline.apply loaded findings in
                check_int "everything waived" 0
                  (List.length applied.Baseline.kept);
                check_int "waived count" 3 applied.Baseline.waived;
                check_int "nothing stale" 0
                  (List.length applied.Baseline.stale)));
    test_case "an exhausted allowance keeps the excess findings" (fun () ->
        let entries =
          [ { Baseline.file = "bin/a.ml"; rule = "nondet-source"; allowed = 1 } ]
        in
        let findings =
          [
            finding ~file:"bin/a.ml" ~line:3 ~rule:"nondet-source";
            finding ~file:"bin/a.ml" ~line:9 ~rule:"nondet-source";
          ]
        in
        let applied = Baseline.apply entries findings in
        check_int "one kept" 1 (List.length applied.Baseline.kept);
        check_int "one waived" 1 applied.Baseline.waived;
        (match applied.Baseline.kept with
        | [ f ] -> check_int "the later line survives" 9 f.Finding.line
        | _ -> Alcotest.fail "expected exactly one kept finding"));
    test_case "a paid-down allowance is reported stale" (fun () ->
        let entries =
          [ { Baseline.file = "bin/a.ml"; rule = "nondet-source"; allowed = 5 } ]
        in
        let applied =
          Baseline.apply entries
            [ finding ~file:"bin/a.ml" ~line:3 ~rule:"nondet-source" ]
        in
        check_int "nothing kept" 0 (List.length applied.Baseline.kept);
        check_int "stale entry surfaced" 1 (List.length applied.Baseline.stale));
    test_case "a missing baseline file loads as empty" (fun () ->
        match Baseline.load "does/not/exist.baseline" with
        | Ok [] -> ()
        | Ok _ -> Alcotest.fail "expected no entries"
        | Error e -> Alcotest.fail e);
  ]

(* ------------------------------------------------------------------ *)
(* Self-check: the library tree must stay lint-clean                   *)
(* ------------------------------------------------------------------ *)

let rec find_root dir =
  if
    Sys.file_exists (Filename.concat dir "dune-project")
    && Sys.file_exists (Filename.concat dir "lib")
    && Sys.is_directory (Filename.concat dir "lib")
  then Some dir
  else
    let parent = Filename.dirname dir in
    if String.equal parent dir then None else find_root parent

let self_check_tests =
  [
    test_case "lib/ is lint-clean modulo in-source suppressions" (fun () ->
        match find_root (Sys.getcwd ()) with
        | None -> Alcotest.fail "repo root not found above the test cwd"
        | Some root ->
            let report =
              Engine.run ~rules:Rules.all ~root [ Filename.concat root "lib" ]
            in
            check_bool "linted a non-trivial tree" true (report.Engine.files > 20);
            check_int "every file parses" 0 report.Engine.parse_failures;
            List.iter
              (fun f -> Printf.eprintf "%s\n" (Finding.to_human f))
              report.Engine.findings;
            check_int "unsuppressed findings in lib/" 0
              (List.length report.Engine.findings));
  ]

let () =
  Alcotest.run "qls_lint"
    [
      ("rules", rule_tests);
      ("suppression", suppression_tests);
      ("baseline", baseline_tests);
      ("self-check", self_check_tests);
    ]
