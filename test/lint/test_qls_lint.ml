(* Tests for the Qls_lint static-analysis pass: per-rule fixtures with
   asserted violation counts, the suppression comment forms, baseline
   round-tripping, and the self-check that lib/ itself is lint-clean. *)

module Finding = Qls_lint.Finding
module Rules = Qls_lint.Rules
module Engine = Qls_lint.Engine
module Suppress = Qls_lint.Suppress
module Baseline = Qls_lint.Baseline
module Registry = Qls_lint.Registry
module Driver = Qls_lint.Driver
module Sarif = Qls_lint.Sarif

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let test_case name f = Alcotest.test_case name `Quick f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fixture name = read_file (Filename.concat "fixtures" name)

let rule name =
  match Rules.by_name name with
  | Some r -> r
  | None -> Alcotest.failf "rule %s not registered" name

(* Lint [src] under the named rules; fail the test on parse errors so a
   broken fixture cannot silently pass as "0 findings". *)
let lint ~rules src =
  let findings, suppressed, failures =
    Engine.lint_source ~rules ~file:"fixture.ml" src
  in
  check_int "fixture parses" 0 failures;
  (findings, suppressed)

let expect_rule name file count =
  test_case
    (Printf.sprintf "%s fires %d time(s) on %s" name count file)
    (fun () ->
      let findings, _ = lint ~rules:[ rule name ] (fixture file) in
      List.iter
        (fun f -> check_string "rule tag" name f.Finding.rule)
        findings;
      check_int "finding count" count (List.length findings))

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

let rule_tests =
  [
    expect_rule "domain-unsafe-capture" "r1_domain_capture.ml" 6;
    expect_rule "poly-compare" "r2_poly_compare.ml" 5;
    expect_rule "float-discipline" "r3_float_discipline.ml" 6;
    expect_rule "nondet-source" "r4_nondet_source.ml" 6;
    expect_rule "obs-discipline" "r5_obs_discipline.ml" 4;
    test_case "unbounded-wait fires under a serving-path file name" (fun () ->
        let findings, suppressed, failures =
          Engine.lint_source
            ~rules:[ rule "unbounded-wait" ]
            ~file:"lib/serve/fixture.ml"
            (fixture "r6_unbounded_wait.ml")
        in
        check_int "fixture parses" 0 failures;
        List.iter
          (fun f -> check_string "rule tag" "unbounded-wait" f.Finding.rule)
          findings;
        check_int "finding count" 4 (List.length findings);
        check_int "justified wait suppressed" 1 suppressed);
    test_case "unbounded-wait also covers lib/harness" (fun () ->
        let findings, _, failures =
          Engine.lint_source
            ~rules:[ rule "unbounded-wait" ]
            ~file:"lib/harness/fixture.ml"
            (fixture "r6_unbounded_wait.ml")
        in
        check_int "fixture parses" 0 failures;
        check_int "finding count" 4 (List.length findings));
    test_case "unbounded-wait is silent outside the serving path" (fun () ->
        let findings, _, failures =
          Engine.lint_source
            ~rules:[ rule "unbounded-wait" ]
            ~file:"lib/faults/fixture.ml"
            (fixture "r6_unbounded_wait.ml")
        in
        check_int "fixture parses" 0 failures;
        check_int "deliberate sleeps elsewhere are fine" 0
          (List.length findings));
    test_case "seeded-randomness fires under a solver-stack file name"
      (fun () ->
        let findings, suppressed, failures =
          Engine.lint_source
            ~rules:[ rule "seeded-randomness" ]
            ~file:"lib/sat/fixture.ml"
            (fixture "r7_seeded_randomness.ml")
        in
        check_int "fixture parses" 0 failures;
        List.iter
          (fun f -> check_string "rule tag" "seeded-randomness" f.Finding.rule)
          findings;
        check_int "finding count" 3 (List.length findings);
        check_int "justified use suppressed" 1 suppressed);
    test_case "seeded-randomness also covers lib/router" (fun () ->
        let findings, _, failures =
          Engine.lint_source
            ~rules:[ rule "seeded-randomness" ]
            ~file:"lib/router/fixture.ml"
            (fixture "r7_seeded_randomness.ml")
        in
        check_int "fixture parses" 0 failures;
        check_int "finding count" 3 (List.length findings));
    test_case "seeded-randomness is silent outside the solver stack"
      (fun () ->
        let findings, _, failures =
          Engine.lint_source
            ~rules:[ rule "seeded-randomness" ]
            ~file:"bench/fixture.ml"
            (fixture "r7_seeded_randomness.ml")
        in
        check_int "fixture parses" 0 failures;
        check_int "ambient randomness elsewhere is fine" 0
          (List.length findings));
    test_case "distance-in-loop fires under a router file name" (fun () ->
        let findings, suppressed, failures =
          Engine.lint_source
            ~rules:[ rule "distance-in-loop" ]
            ~file:"lib/router/fixture.ml"
            (fixture "r8_distance_in_loop.ml")
        in
        check_int "fixture parses" 0 failures;
        List.iter
          (fun f -> check_string "rule tag" "distance-in-loop" f.Finding.rule)
          findings;
        check_int "finding count" 5 (List.length findings);
        check_int "justified once-per-round lookup suppressed" 1 suppressed);
    test_case "distance-in-loop is silent outside lib/router" (fun () ->
        let findings, _, failures =
          Engine.lint_source
            ~rules:[ rule "distance-in-loop" ]
            ~file:"lib/arch/fixture.ml"
            (fixture "r8_distance_in_loop.ml")
        in
        check_int "fixture parses" 0 failures;
        check_int "lookups elsewhere are fine" 0 (List.length findings));
    test_case "clean fixture is clean under every rule" (fun () ->
        let findings, suppressed = lint ~rules:Rules.all (fixture "clean.ml") in
        check_int "no findings" 0 (List.length findings);
        check_int "no suppressions" 0 suppressed);
    test_case "findings carry file, 1-based line and severity" (fun () ->
        let findings, _ =
          lint ~rules:[ rule "poly-compare" ] "let f xs = List.sort compare xs\n"
        in
        match findings with
        | [ f ] ->
            check_string "file" "fixture.ml" f.Finding.file;
            check_int "line" 1 f.Finding.line;
            check_bool "severity" true (f.Finding.severity = Finding.Error)
        | l -> Alcotest.failf "expected 1 finding, got %d" (List.length l));
  ]

(* ------------------------------------------------------------------ *)
(* Suppression                                                         *)
(* ------------------------------------------------------------------ *)

let suppression_tests =
  [
    test_case "suppressed fixture keeps nothing, counts five" (fun () ->
        let findings, suppressed =
          lint ~rules:Rules.all (fixture "suppressed.ml")
        in
        List.iter
          (fun f -> Printf.eprintf "unexpected: %s\n" (Finding.to_human f))
          findings;
        check_int "no findings survive" 0 (List.length findings);
        check_int "five silenced" 5 suppressed);
    test_case "scan recognizes the three comment forms" (fun () ->
        let src =
          "let x = compare (* lint: poly-compare — why *)\n\
           (* lint: all — why *)\n\
           let y = 2\n\
           let z = 3 (* not a suppression *)\n"
        in
        let t = Suppress.scan src in
        check_int "two suppressions" 2 (Suppress.count t);
        check_bool "same line" true
          (Suppress.suppressed t ~line:1 ~rule:"poly-compare");
        check_bool "other rules stay" false
          (Suppress.suppressed t ~line:1 ~rule:"nondet-source");
        check_bool "wildcard covers the next line" true
          (Suppress.suppressed t ~line:3 ~rule:"float-discipline");
        check_bool "wildcard is standalone-only downward" false
          (Suppress.suppressed t ~line:4 ~rule:"float-discipline"));
    test_case "trailing comment does not bless the following line" (fun () ->
        let src =
          "let a = 1 (* lint: poly-compare — same line only *)\n\
           let b = List.sort compare xs\n"
        in
        let t = Suppress.scan src in
        check_bool "line 2 not covered" false
          (Suppress.suppressed t ~line:2 ~rule:"poly-compare"));
  ]

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)
(* ------------------------------------------------------------------ *)

let finding ~file ~line ~rule =
  Finding.v ~file ~line ~col:0 ~rule ~severity:Finding.Error "msg"

let baseline_tests =
  [
    test_case "of_findings -> render -> load -> apply round-trips" (fun () ->
        let findings =
          [
            finding ~file:"bin/a.ml" ~line:3 ~rule:"nondet-source";
            finding ~file:"bin/a.ml" ~line:9 ~rule:"nondet-source";
            finding ~file:"bench/b.ml" ~line:1 ~rule:"poly-compare";
          ]
        in
        let entries = Baseline.of_findings findings in
        let tmp = Filename.temp_file "qls_lint" ".baseline" in
        Fun.protect
          ~finally:(fun () -> Sys.remove tmp)
          (fun () ->
            let oc = open_out tmp in
            output_string oc (Baseline.render entries);
            close_out oc;
            match Baseline.load tmp with
            | Error e -> Alcotest.fail e
            | Ok loaded ->
                let applied = Baseline.apply loaded findings in
                check_int "everything waived" 0
                  (List.length applied.Baseline.kept);
                check_int "waived count" 3 applied.Baseline.waived;
                check_int "nothing stale" 0
                  (List.length applied.Baseline.stale)));
    test_case "an exhausted allowance keeps the excess findings" (fun () ->
        let entries =
          [ { Baseline.file = "bin/a.ml"; rule = "nondet-source"; allowed = 1 } ]
        in
        let findings =
          [
            finding ~file:"bin/a.ml" ~line:3 ~rule:"nondet-source";
            finding ~file:"bin/a.ml" ~line:9 ~rule:"nondet-source";
          ]
        in
        let applied = Baseline.apply entries findings in
        check_int "one kept" 1 (List.length applied.Baseline.kept);
        check_int "one waived" 1 applied.Baseline.waived;
        (match applied.Baseline.kept with
        | [ f ] -> check_int "the later line survives" 9 f.Finding.line
        | _ -> Alcotest.fail "expected exactly one kept finding"));
    test_case "a paid-down allowance is reported stale" (fun () ->
        let entries =
          [ { Baseline.file = "bin/a.ml"; rule = "nondet-source"; allowed = 5 } ]
        in
        let applied =
          Baseline.apply entries
            [ finding ~file:"bin/a.ml" ~line:3 ~rule:"nondet-source" ]
        in
        check_int "nothing kept" 0 (List.length applied.Baseline.kept);
        check_int "stale entry surfaced" 1 (List.length applied.Baseline.stale));
    test_case "a missing baseline file loads as empty" (fun () ->
        match Baseline.load "does/not/exist.baseline" with
        | Ok [] -> ()
        | Ok _ -> Alcotest.fail "expected no entries"
        | Error e -> Alcotest.fail e);
  ]

(* ------------------------------------------------------------------ *)
(* Typed rules (R9–R12) over the compiled fixture libraries            *)
(* ------------------------------------------------------------------ *)

let rec find_root dir =
  if
    Sys.file_exists (Filename.concat dir "dune-project")
    && Sys.file_exists (Filename.concat dir "lib")
    && Sys.is_directory (Filename.concat dir "lib")
  then Some dir
  else
    let parent = Filename.dirname dir in
    if String.equal parent dir then None else find_root parent

let repo_root () =
  match find_root (Sys.getcwd ()) with
  | Some root -> root
  | None -> Alcotest.fail "repo root not found above the test cwd"

let typed_registry name =
  match Registry.by_name name with
  | Some r -> r
  | None -> Alcotest.failf "rule %s not registered" name

(* Run the engine over the compiled typed_fixtures tree under one rule;
   the fixture libraries are build deps of this test, so their cmts are
   guaranteed to exist. *)
let run_typed_fixtures rule_name =
  let root = repo_root () in
  let report =
    Engine.run
      ~rules:[ typed_registry rule_name ]
      ~root
      [ Filename.concat root "test/lint/typed_fixtures" ]
  in
  check_int "every fixture file has a cmt" 0
    (List.length report.Engine.typed_missing);
  report

let expect_typed rule_name ~findings ~suppressed:sup =
  test_case
    (Printf.sprintf "%s fires %d time(s) on the typed fixtures" rule_name
       findings)
    (fun () ->
      let report = run_typed_fixtures rule_name in
      List.iter
        (fun f -> check_string "rule tag" rule_name f.Finding.rule)
        report.Engine.findings;
      check_int "finding count" findings (List.length report.Engine.findings);
      check_int "suppressed count" sup report.Engine.suppressed)

let typed_rule_tests =
  [
    expect_typed "guarded-by" ~findings:4 ~suppressed:1;
    expect_typed "domain-escape" ~findings:2 ~suppressed:1;
    expect_typed "blocking-under-mutex" ~findings:3 ~suppressed:1;
    expect_typed "cancel-poll-coverage" ~findings:2 ~suppressed:1;
    test_case "guarded-by resolves the annotation across modules" (fun () ->
        let report = run_typed_fixtures "guarded-by" in
        check_bool "a finding lands in tf_r9_cross.ml" true
          (List.exists
             (fun f ->
               Filename.basename f.Finding.file = "tf_r9_cross.ml"
               && f.Finding.line = 9)
             report.Engine.findings));
    test_case "cancel-poll-coverage credits transitive local polls" (fun () ->
        let report = run_typed_fixtures "cancel-poll-coverage" in
        List.iter
          (fun f ->
            check_bool "only the two seeded sites fire" true
              (List.mem f.Finding.line [ 7; 38 ]))
          report.Engine.findings);
    test_case "typed pass covers all five fixture modules" (fun () ->
        let report = run_typed_fixtures "guarded-by" in
        check_int "files walked" 5 report.Engine.files;
        check_int "typed coverage" 5 report.Engine.typed_files);
  ]

(* ------------------------------------------------------------------ *)
(* Registry: the untyped rules behave identically through the new      *)
(* engine pipeline (typed/untyped parity on the R1–R8 fixtures)        *)
(* ------------------------------------------------------------------ *)

let parity_tests =
  [
    test_case "registry wraps every rule exactly once" (fun () ->
        check_int "catalogue size" 12 (List.length Registry.all);
        let names = List.map (fun (r : Registry.t) -> r.Registry.name) Registry.all in
        check_int "names unique" 12
          (List.length (List.sort_uniq String.compare names)));
    test_case "untyped rules give identical findings through the registry"
      (fun () ->
        (* Same fixture sources, two pipelines: the historical per-source
           untyped path vs the registry-driven engine walk. The reports
           must agree finding-for-finding, order included. *)
        let untyped =
          List.filter
            (fun (r : Registry.t) ->
              match r.Registry.repr with
              | Registry.Untyped _ -> true
              | Registry.Typed _ -> false)
            Registry.all
        in
        check_int "eight untyped rules" 8 (List.length untyped);
        let report = Engine.run ~rules:untyped ~root:"." [ "fixtures" ] in
        check_int "fixtures all parse" 0 report.Engine.parse_failures;
        let files =
          Sys.readdir "fixtures" |> Array.to_list |> List.sort String.compare
          |> List.filter (fun f -> Filename.check_suffix f ".ml")
        in
        let direct_findings, direct_suppressed =
          List.fold_left
            (fun (acc, sup) name ->
              let path = Filename.concat "fixtures" name in
              let findings, silenced, failures =
                Engine.lint_source ~rules:Rules.all ~file:path (fixture name)
              in
              check_int (name ^ " parses") 0 failures;
              (acc @ findings, sup + silenced))
            ([], 0) files
        in
        check_int "suppression parity" direct_suppressed
          report.Engine.suppressed;
        Alcotest.(check (list string))
          "finding parity"
          (List.map Finding.to_human direct_findings)
          (List.map Finding.to_human report.Engine.findings));
  ]

(* ------------------------------------------------------------------ *)
(* Parallel walk: jobs must not change the report                      *)
(* ------------------------------------------------------------------ *)

let parallel_tests =
  [
    test_case "jobs=4 report is bit-identical to jobs=1" (fun () ->
        let root = repo_root () in
        let paths = [ Filename.concat root "test/lint/typed_fixtures" ] in
        let run jobs = Engine.run ~jobs ~rules:Registry.all ~root paths in
        let a = run 1 and b = run 4 in
        check_int "files" a.Engine.files b.Engine.files;
        check_int "suppressed" a.Engine.suppressed b.Engine.suppressed;
        check_int "typed files" a.Engine.typed_files b.Engine.typed_files;
        Alcotest.(check (list string))
          "findings identical and identically ordered"
          (List.map Finding.to_human a.Engine.findings)
          (List.map Finding.to_human b.Engine.findings));
  ]

(* ------------------------------------------------------------------ *)
(* Driver: baseline staleness and the write/check cycle                *)
(* ------------------------------------------------------------------ *)

let with_temp_baseline f =
  let tmp = Filename.temp_file "qls_lint_test" ".baseline" in
  Fun.protect ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ()) (fun () -> f tmp)

(* Drive the real driver over the on-disk parsetree fixtures (violations
   guaranteed), untyped rules only so no cmts are needed. *)
let driver_opts =
  {
    Driver.default_opts with
    Driver.paths = [ "fixtures" ];
    rules = [ "poly-compare"; "nondet-source"; "float-discipline" ];
  }

let driver_tests =
  [
    test_case "findings exit 1; a fresh baseline waives them to exit 0"
      (fun () ->
        with_temp_baseline (fun tmp ->
            check_int "violations found" 1 (Driver.execute driver_opts);
            check_int "write-baseline exits 0" 0
              (Driver.execute
                 { driver_opts with Driver.write_baseline = Some tmp });
            check_int "baselined run is clean" 0
              (Driver.execute
                 {
                   driver_opts with
                   Driver.baseline = Some tmp;
                   check_stale = true;
                 })));
    test_case "--check fails on a stale entry; --write-baseline prunes it"
      (fun () ->
        with_temp_baseline (fun tmp ->
            check_int "seed the baseline" 0
              (Driver.execute
                 { driver_opts with Driver.write_baseline = Some tmp });
            (* Append an entry no finding pays down any more. *)
            let oc = open_out_gen [ Open_append ] 0o644 tmp in
            output_string oc
              (Baseline.render
                 [
                   {
                     Baseline.file = "fixtures/gone.ml";
                     rule = "poly-compare";
                     allowed = 3;
                   };
                 ]);
            close_out oc;
            check_int "stale is a note without --check" 0
              (Driver.execute { driver_opts with Driver.baseline = Some tmp });
            check_int "stale fails with --check" 1
              (Driver.execute
                 {
                   driver_opts with
                   Driver.baseline = Some tmp;
                   check_stale = true;
                 });
            check_int "rewrite prunes" 0
              (Driver.execute
                 { driver_opts with Driver.write_baseline = Some tmp });
            match Baseline.load tmp with
            | Error e -> Alcotest.fail e
            | Ok entries ->
                check_bool "stale entry pruned" false
                  (List.exists
                     (fun e -> String.equal e.Baseline.file "fixtures/gone.ml")
                     entries)));
    test_case "unknown rule names exit 2" (fun () ->
        check_int "usage error" 2
          (Driver.execute { driver_opts with Driver.rules = [ "no-such-rule" ] }));
  ]

(* ------------------------------------------------------------------ *)
(* SARIF sink: structural validity per the 2.1.0 schema essentials     *)
(* ------------------------------------------------------------------ *)

(* A deliberately tiny JSON reader — objects, arrays, strings, ints —
   just enough to assert the SARIF skeleton instead of substring-matching. *)
module Json = struct
  type t =
    | Str of string
    | Num of int
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n && (peek () = ' ' || peek () = '\n' || peek () = '\t') then begin
        advance ();
        skip_ws ()
      end
    in
    let expect c =
      if peek () <> c then raise (Bad (Printf.sprintf "expected %c" c));
      advance ()
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (match peek () with
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'u' ->
                (* \uXXXX: keep the raw escape, fidelity is irrelevant here *)
                Buffer.add_string b "\\u"
            | c -> Buffer.add_char b c);
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '"' -> Str (parse_string ())
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then begin
            advance ();
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              if peek () = ',' then begin
                advance ();
                members ((k, v) :: acc)
              end
              else begin
                expect '}';
                Obj (List.rev ((k, v) :: acc))
              end
            in
            members []
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then begin
            advance ();
            Arr []
          end
          else
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              if peek () = ',' then begin
                advance ();
                elems (v :: acc)
              end
              else begin
                expect ']';
                Arr (List.rev (v :: acc))
              end
            in
            elems []
      | c when c = '-' || (c >= '0' && c <= '9') ->
          let start = !pos in
          advance ();
          while !pos < n && peek () >= '0' && peek () <= '9' do
            advance ()
          done;
          Num (int_of_string (String.sub s start (!pos - start)))
      | c -> raise (Bad (Printf.sprintf "unexpected %c" c))
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v

  let member k = function
    | Obj fields -> (
        match List.assoc_opt k fields with
        | Some v -> v
        | None -> raise (Bad ("missing member " ^ k)))
    | _ -> raise (Bad ("not an object at " ^ k))

  let str = function Str s -> s | _ -> raise (Bad "not a string")
  let num = function Num i -> i | _ -> raise (Bad "not a number")
  let arr = function Arr l -> l | _ -> raise (Bad "not an array")
end

let sarif_tests =
  [
    test_case "render satisfies the 2.1.0 schema essentials" (fun () ->
        let findings =
          [
            Finding.v ~file:"lib/a.ml" ~line:3 ~col:7 ~rule:"guarded-by"
              ~severity:Finding.Error "a \"quoted\" message\nwith a newline";
            Finding.v ~file:"bench/b.ml" ~line:0 ~col:0 ~rule:"poly-compare"
              ~severity:Finding.Error "whole-file finding";
          ]
        in
        let doc = Json.parse (Sarif.render ~rules:Registry.all ~findings) in
        check_bool "$schema names 2.1.0" true
          (let s = Json.(str (member "$schema" doc)) in
           let suffix = "sarif-schema-2.1.0.json" in
           let n = String.length s and ls = String.length suffix in
           n >= ls && String.sub s (n - ls) ls = suffix);
        check_string "version" "2.1.0" Json.(str (member "version" doc));
        let run = List.hd Json.(arr (member "runs" doc)) in
        let driver = Json.(member "driver" (member "tool" run)) in
        check_string "driver name" "qls_lint" Json.(str (member "name" driver));
        check_bool "semanticVersion present" true
          (String.length Json.(str (member "semanticVersion" driver)) > 0);
        let rules = Json.(arr (member "rules" driver)) in
        check_int "full catalogue" (List.length Registry.all) (List.length rules);
        let rule_ids = List.map (fun r -> Json.(str (member "id" r))) rules in
        List.iter
          (fun (r : Registry.t) ->
            check_bool (r.Registry.name ^ " catalogued") true
              (List.mem r.Registry.name rule_ids))
          Registry.all;
        let results = Json.(arr (member "results" run)) in
        check_int "one result per finding" 2 (List.length results);
        List.iter
          (fun res ->
            let rid = Json.(str (member "ruleId" res)) in
            let idx = Json.(num (member "ruleIndex" res)) in
            check_string "ruleIndex points into the catalogue" rid
              (List.nth rule_ids idx);
            check_bool "level is a SARIF level" true
              (List.mem Json.(str (member "level" res)) [ "error"; "warning"; "note" ]);
            check_bool "message text nonempty" true
              (String.length Json.(str (member "text" (member "message" res))) > 0);
            let region =
              Json.(
                member "region"
                  (member "physicalLocation"
                     (List.hd (arr (member "locations" res)))))
            in
            check_bool "startLine is 1-based" true
              (Json.(num (member "startLine" region)) >= 1);
            check_bool "startColumn is 1-based" true
              (Json.(num (member "startColumn" region)) >= 1))
          results;
        check_string "columnKind" "utf16CodeUnits"
          Json.(str (member "columnKind" run)));
    test_case "driver --sarif writes the file" (fun () ->
        let tmp = Filename.temp_file "qls_lint_test" ".sarif" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
          (fun () ->
            check_int "findings exit 1" 1
              (Driver.execute { driver_opts with Driver.sarif = Some tmp });
            let doc = Json.parse (read_file tmp) in
            let run = List.hd Json.(arr (member "runs" doc)) in
            check_bool "results recorded" true
              (not (List.is_empty Json.(arr (member "results" run))))));
  ]

(* ------------------------------------------------------------------ *)
(* Self-check: the library tree must stay lint-clean                   *)
(* ------------------------------------------------------------------ *)

let self_check_tests =
  [
    test_case "lib/ is lint-clean modulo in-source suppressions" (fun () ->
        let root = repo_root () in
        let report =
          Engine.run ~rules:Registry.all ~root [ Filename.concat root "lib" ]
        in
        check_bool "linted a non-trivial tree" true (report.Engine.files > 20);
        check_int "every file parses" 0 report.Engine.parse_failures;
        List.iter
          (fun f -> Printf.eprintf "%s\n" (Finding.to_human f))
          report.Engine.findings;
        check_int "unsuppressed findings in lib/" 0
          (List.length report.Engine.findings));
  ]

let () =
  Alcotest.run "qls_lint"
    [
      ("rules", rule_tests);
      ("typed-rules", typed_rule_tests);
      ("registry-parity", parity_tests);
      ("parallel-walk", parallel_tests);
      ("suppression", suppression_tests);
      ("baseline", baseline_tests);
      ("driver", driver_tests);
      ("sarif", sarif_tests);
      ("self-check", self_check_tests);
    ]
