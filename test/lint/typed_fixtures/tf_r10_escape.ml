(* R10 fixture: mutable state captured by closures that cross a domain
   boundary via Pool.submit / Domain.spawn. *)

module Pool = Qls_harness.Pool

(* bad: int ref captured by the pool work closure *)
let pool_bad p =
  let counter = ref 0 in
  ignore
    (Pool.submit p
       ~work:(fun () -> incr counter)
       ~complete:(fun _ -> ()))

(* bad: Hashtbl captured by a spawned domain *)
let spawn_bad tbl =
  let d = Domain.spawn (fun () -> Hashtbl.length tbl) in
  Domain.join d

(* ok: Atomic is the sanctioned shared cell *)
let atomic_good p =
  let counter = Atomic.make 0 in
  ignore
    (Pool.submit p
       ~work:(fun () -> Atomic.incr counter)
       ~complete:(fun _ -> ()))

(* suppressed: scratch buffer handed off wholesale *)
let scratch_ok p buf =
  ignore
    (Pool.submit p
       ~work:(fun () ->
         (* lint: domain-escape — scratch handed off wholesale, never reused here *)
         Buffer.add_char buf 'x')
       ~complete:(fun _ -> ()))
