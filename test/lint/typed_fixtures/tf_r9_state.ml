(* R9 fixture: guarded_by discipline within the declaring module. *)

type t = {
  m : Mutex.t;
  mutable hits : int;  (* guarded_by: m *)
  mutable misses : int;  (* guarded_by: m *)
}

let make () = { m = Mutex.create (); hits = 0; misses = 0 }

(* ok: protect thunk *)
let good_protect s = Mutex.protect s.m (fun () -> s.hits <- s.hits + 1)

(* ok: function-granularity lock *)
let good_lock s =
  Mutex.lock s.m;
  s.misses <- s.misses + 1;
  Mutex.unlock s.m

(* bad: two unguarded reads *)
let bad_reads s = s.hits + s.misses

(* bad: unguarded write *)
let bad_write s = s.hits <- 0

(* suppressed unguarded read *)
let racy_peek s = s.hits (* lint: guarded-by — monitoring peek, staleness is fine *)
