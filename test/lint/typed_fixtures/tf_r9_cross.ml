(* R9 fixture: the annotation lives in Tf_r9_state; the typedtree's
   label resolution must carry it across the module boundary. *)

let bump_ok (s : Tf_r9_state.t) =
  Mutex.protect s.Tf_r9_state.m (fun () ->
      s.Tf_r9_state.hits <- s.Tf_r9_state.hits + 1)

(* bad: foreign module's guarded field read with no lock *)
let peek_bad (s : Tf_r9_state.t) = s.Tf_r9_state.misses
