(* R11 fixture: blocking calls inside Mutex.protect bodies. *)

type t = { m : Mutex.t; m2 : Mutex.t; cond : Condition.t }

(* bad: sleeping with the lock held *)
let bad_sleep t = Mutex.protect t.m (fun () -> Unix.sleepf 0.01)

(* bad: joining a thread with the lock held *)
let bad_join t th = Mutex.protect t.m (fun () -> Thread.join th)

(* bad: waiting on a condition tied to a different mutex *)
let bad_wait_other t =
  Mutex.protect t.m (fun () -> Condition.wait t.cond t.m2)

(* ok: waiting on the protected mutex itself *)
let good_wait_same t =
  Mutex.protect t.m (fun () -> Condition.wait t.cond t.m)

(* suppressed blocking call *)
let sup_sleep t =
  Mutex.protect t.m (fun () ->
      (* lint: blocking-under-mutex — fixture: deliberate, nothing contends *)
      Unix.sleepf 0.001)
