(* R12 fixture: cancellation-poll coverage of hot loops. The directory
   path puts this file in the rule's lib/router scope. *)

(* bad: no reachable poll *)
let bad_loop n =
  let i = ref 0 in
  while !i < n do
    incr i
  done

(* ok: polls directly *)
let good_loop n =
  let i = ref 0 in
  while !i < n do
    Qls_cancel.poll ();
    incr i
  done

let poll_helper () = Qls_cancel.poll ()

(* ok: polls through a file-local helper *)
let good_transitive n =
  let i = ref 0 in
  while !i < n do
    poll_helper ();
    incr i
  done

(* suppressed: justified bounded loop *)
let sup_loop n =
  let i = ref 0 in
  (* lint: cancel-poll-coverage — bounded by n; fixture *)
  while !i < n do
    incr i
  done

(* bad: structure-level recursion with no poll *)
let rec bad_rec n = if n > 0 then bad_rec (n - 1)

(* ok: recursive but polls *)
let rec good_rec n =
  Qls_cancel.poll ();
  if n > 0 then good_rec (n - 1)
