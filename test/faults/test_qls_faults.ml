(* Chaos suite for the fault-injection layer and the hardened failure
   semantics it exists to prove.

   The headline test is the resume-equivalence proof the design demands:
   with faults armed at every site (seeded matrix), a campaign that is
   "killed" partway and resumed fault-free produces results bit-identical
   to a fault-free sequential run — and permanent errors are never
   retried. The property tests damage checkpoint files at random
   (truncation, bit flips, spliced garbage) and assert that [load]
   quarantines exactly the damaged lines and never surfaces silently
   corrupted data. *)

module Task = Qls_harness.Task
module Herror = Qls_harness.Herror
module Store = Qls_harness.Store
module Runner = Qls_harness.Runner
module Campaign = Qls_harness.Campaign

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let test_case name f = Alcotest.test_case name `Quick f

let fresh_store_path () =
  let path = Filename.temp_file "qls_faults_test" ".jsonl" in
  Sys.remove path;
  path

let mk_task i =
  {
    Task.device = "grid3x3";
    n_swaps = 1 + (i mod 3);
    circuit = i / 4;
    tool = List.nth [ "sabre"; "mlqls"; "qmap"; "tket" ] (i mod 4);
    gate_budget = 30;
    single_qubit_ratio = 0.0;
    sabre_trials = 2;
    base_seed = 0;
  }

let synthetic_exec task =
  { Task.swaps = Task.rng_seed task mod 97; seconds = 0.0; attempts = 1 }

(* Every test leaves the ambient plan clear, even on failure. *)
let with_plan plan f =
  Qls_faults.install plan;
  Fun.protect ~finally:Qls_faults.clear f

let plan_of_spec spec =
  match Qls_faults.parse spec with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad spec %S: %s" spec e

(* ------------------------------------------------------------------ *)
(* Spec syntax                                                         *)
(* ------------------------------------------------------------------ *)

let spec_tests =
  [
    test_case "parse and to_string round trip" (fun () ->
        let spec =
          "seed=7;runner.exec:transient:0.3;store.append:torn@0.25:0.5;store.load:flip:1"
        in
        let p = plan_of_spec spec in
        check_int "seed" 7 p.Qls_faults.seed;
        check_int "rules" 3 (List.length p.Qls_faults.rules);
        let p' = plan_of_spec (Qls_faults.to_string p) in
        check_bool "round trips" true (p = p'));
    test_case "torn defaults to half, hang is a delay" (fun () ->
        let p = plan_of_spec "seed=1;store.append:torn:1;runner.exec:hang@2.5:1" in
        match p.Qls_faults.rules with
        | [ { Qls_faults.kind = Qls_faults.Torn f; _ };
            { Qls_faults.kind = Qls_faults.Delay d; _ } ] ->
            Alcotest.(check (float 0.0)) "torn keeps half" 0.5 f;
            Alcotest.(check (float 0.0)) "hang secs" 2.5 d
        | _ -> Alcotest.fail "unexpected rules");
    test_case "bad specs are rejected with a reason" (fun () ->
        let rejected spec =
          match Qls_faults.parse spec with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "spec %S should be rejected" spec
        in
        rejected "";
        rejected "seed=x;runner.exec:transient:0.5";
        rejected "seed=1;bogus.site:transient:0.5";
        rejected "seed=1;runner.exec:warble:0.5";
        rejected "seed=1;runner.exec:transient:1.5";
        rejected "seed=1;runner.exec:transient");
    test_case "no plan means free no-ops" (fun () ->
        Qls_faults.clear ();
        check_bool "none installed" true
          (Qls_faults.is_none (Qls_faults.installed ()));
        Qls_faults.exec ~site:"runner.exec" ~key:"k";
        check_string "mangle is identity" "payload"
          (Qls_faults.mangle ~site:"store.append" ~key:"k" "payload"));
    test_case "serve sites are registered and parseable" (fun () ->
        List.iter
          (fun site ->
            check_bool site true (List.mem site Qls_faults.known_sites))
          [
            "runner.exec"; "store.append"; "store.load"; "serve.frame.read";
            "serve.work.hang"; "serve.work.exn"; "serve.log.append";
          ];
        let p =
          plan_of_spec
            "seed=3;serve.work.hang:delay@0.5:1;serve.frame.read:torn:0.5;serve.work.exn:transient:0.2;serve.log.append:permanent:0.1"
        in
        check_int "all serve rules accepted" 4 (List.length p.Qls_faults.rules));
  ]

(* ------------------------------------------------------------------ *)
(* Deterministic decisions                                             *)
(* ------------------------------------------------------------------ *)

let firing_pattern plan keys =
  with_plan plan (fun () ->
      List.map
        (fun key ->
          try
            Qls_faults.exec ~site:"runner.exec" ~key;
            false
          with Qls_faults.Injected _ -> true)
        keys)

let determinism_tests =
  [
    test_case "a plan fires identically on every install" (fun () ->
        let plan = plan_of_spec "seed=11;runner.exec:transient:0.4" in
        let keys = List.init 40 string_of_int in
        let a = firing_pattern plan keys in
        let b = firing_pattern plan keys in
        check_bool "same schedule" true (a = b);
        check_bool "fires sometimes" true (List.mem true a);
        check_bool "not always" true (List.mem false a));
    test_case "different seeds give different schedules" (fun () ->
        let keys = List.init 60 string_of_int in
        let pattern s =
          firing_pattern
            (plan_of_spec
               (Printf.sprintf "seed=%d;runner.exec:transient:0.4" s))
            keys
        in
        check_bool "decorrelated" true (pattern 1 <> pattern 2));
    test_case "retries draw the next decision in the key's stream"
      (fun () ->
        (* With a 50% rule, one key visited repeatedly must eventually
           see both outcomes — the occurrence counter advances. *)
        let plan = plan_of_spec "seed=3;runner.exec:transient:0.5" in
        with_plan plan (fun () ->
            let outcomes =
              List.init 20 (fun _ ->
                  try
                    Qls_faults.exec ~site:"runner.exec" ~key:"same";
                    false
                  with Qls_faults.Injected _ -> true)
            in
            check_bool "both outcomes over 20 visits" true
              (List.mem true outcomes && List.mem false outcomes)));
    test_case "mangle torn shortens, flip changes exactly one bit"
      (fun () ->
        let payload = "{\"id\":\"abc\",\"status\":\"ok\"}\n" in
        with_plan (plan_of_spec "seed=5;store.append:torn@0.5:1") (fun () ->
            let torn = Qls_faults.mangle ~site:"store.append" ~key:"k" payload in
            check_bool "shorter" true
              (String.length torn < String.length payload);
            check_string "a prefix" torn
              (String.sub payload 0 (String.length torn)));
        with_plan (plan_of_spec "seed=5;store.append:flip:1") (fun () ->
            let flipped =
              Qls_faults.mangle ~site:"store.append" ~key:"k" payload
            in
            check_int "same length" (String.length payload)
              (String.length flipped);
            let hamming = ref 0 in
            String.iteri
              (fun i c ->
                let x = Char.code c lxor Char.code flipped.[i] in
                let rec pop x = if x = 0 then 0 else (x land 1) + pop (x lsr 1) in
                hamming := !hamming + pop x)
              payload;
            check_int "one bit" 1 !hamming));
    test_case "exec rules never fire at data sites and vice versa"
      (fun () ->
        with_plan
          (plan_of_spec "seed=1;store.append:transient:1;runner.exec:flip:1")
          (fun () ->
            (* The Exn rule targets store.append: mangle there must not
               raise, and the Flip rule targeting runner.exec must not
               corrupt an exec visit's (nonexistent) payload. *)
            ignore (Qls_faults.mangle ~site:"store.append" ~key:"k" "data");
            Qls_faults.exec ~site:"runner.exec" ~key:"k"));
  ]

(* ------------------------------------------------------------------ *)
(* Runner under injection                                              *)
(* ------------------------------------------------------------------ *)

let immediate = { Runner.default with Runner.backoff = 0.0 }

let runner_tests =
  [
    test_case "injected permanent faults are never retried" (fun () ->
        with_plan (plan_of_spec "seed=1;runner.exec:permanent:1") (fun () ->
            let body_ran = Atomic.make 0 in
            match
              Runner.run
                { immediate with Runner.retries = 5 }
                (fun () -> Atomic.incr body_ran)
            with
            | Error e ->
                check_bool "permanent" true
                  (e.Herror.klass = Herror.Permanent);
                check_int "exactly one attempt" 1 e.Herror.attempts;
                check_int "body never reached" 0 (Atomic.get body_ran)
            | Ok _ -> Alcotest.fail "expected the injected fault"));
    test_case "injected transient faults retry and recover" (fun () ->
        (* Rate < 1 with a generous retry budget: the occurrence stream
           must eventually clear and the body run. *)
        with_plan (plan_of_spec "seed=2;runner.exec:transient:0.6") (fun () ->
            match
              Runner.run { immediate with Runner.retries = 30 } (fun () -> 99)
            with
            | Ok v -> check_int "recovered" 99 v
            | Error e ->
                Alcotest.failf "should recover: %s" (Herror.to_string e)));
    test_case "an injected hang trips the real timeout" (fun () ->
        with_plan (plan_of_spec "seed=1;runner.exec:hang@5:1") (fun () ->
            match
              Runner.run
                { immediate with Runner.timeout = Some 0.05 }
                (fun () -> ())
            with
            | Error e ->
                check_bool "timeout class" true
                  (e.Herror.klass = Herror.Timeout)
            | Ok () -> Alcotest.fail "expected a timeout"));
  ]

(* ------------------------------------------------------------------ *)
(* Store under injection                                               *)
(* ------------------------------------------------------------------ *)

let store_tests =
  [
    test_case "torn appends are quarantined at load" (fun () ->
        let path = fresh_store_path () in
        with_plan (plan_of_spec "seed=4;store.append:torn@0.3:1") (fun () ->
            let store = Store.open_append path in
            List.iter
              (fun i ->
                Store.append store
                  {
                    Store.task_id = Printf.sprintf "t/%d" i;
                    status = Task.Done { Task.swaps = i; seconds = 0.0; attempts = 1 };
                  })
              [ 0; 1; 2; 3 ];
            Store.close store);
        let entries, bad = Store.load_verified path in
        check_bool "some lines lost" true (List.length entries < 4);
        check_bool "damage is reported, not silent" true (bad <> []);
        Sys.remove path);
    test_case "load-side flips quarantine without touching the file"
      (fun () ->
        let path = fresh_store_path () in
        let store = Store.open_append path in
        List.iter
          (fun i ->
            Store.append store
              {
                Store.task_id = Printf.sprintf "t/%d" i;
                status = Task.Done { Task.swaps = i; seconds = 0.0; attempts = 1 };
              })
          [ 0; 1; 2 ];
        Store.close store;
        with_plan (plan_of_spec "seed=9;store.load:flip:1") (fun () ->
            let entries, bad = Store.load_verified path in
            check_int "every line accounted for" 3
              (List.length entries + List.length bad);
            check_bool "at least one read was corrupted" true (bad <> []);
            (* Any line that still loads must carry undamaged data (a
               flip confined to the crc seal is benign). *)
            List.iter
              (fun e ->
                match e.Store.status with
                | Task.Done o ->
                    check_int "data intact"
                      (int_of_string (String.sub e.Store.task_id 2 1))
                      o.Task.swaps
                | _ -> Alcotest.fail "unexpected status")
              entries);
        (* The file itself was never touched: a clean re-read is whole. *)
        let entries, bad = Store.load_verified path in
        check_int "clean read" 3 (List.length entries);
        check_int "no quarantine" 0 (List.length bad);
        Sys.remove path);
  ]

(* ------------------------------------------------------------------ *)
(* The chaos proof: kill + resume under faults at every site           *)
(* ------------------------------------------------------------------ *)

let chaos_seeds =
  let base = [ 1; 7; 42 ] in
  match Option.bind (Sys.getenv_opt "QLS_CHAOS_SEED") int_of_string_opt with
  | Some s when not (List.mem s base) -> s :: base
  | _ -> base

let chaos_plan seed =
  plan_of_spec
    (Printf.sprintf
       "seed=%d;runner.exec:transient:0.35;runner.exec:delay@0.002:0.15;store.append:torn@0.4:0.3;store.append:flip:0.2"
       seed)

let chaos_config ?(jobs = 1) ?(retries = 6) ?store_path ?(resume = false)
    ?(rerun_failed = false) () =
  {
    (Campaign.default_config ()) with
    Campaign.jobs;
    retries;
    backoff = 0.0;
    store_path;
    resume;
    rerun_failed;
    report = None;
  }

let done_swaps rows =
  List.map
    (fun r ->
      match r.Campaign.status with
      | Task.Done o -> (Task.id r.Campaign.task, o.Task.swaps)
      | Task.Degraded _ -> Alcotest.fail "unexpected degradation"
      | Task.Failed e ->
          Alcotest.failf "task %s failed: %s"
            (Task.id r.Campaign.task)
            (Herror.to_string e))
    rows

let status_fingerprint rows =
  List.map
    (fun r ->
      ( Task.id r.Campaign.task,
        Format.asprintf "%a" Task.pp_status r.Campaign.status ))
    rows

let chaos_tests =
  [
    test_case "killed-and-resumed chaos run matches the fault-free run"
      (fun () ->
        let tasks = List.init 40 mk_task in
        let prefix = List.filteri (fun i _ -> i < 24) tasks in
        Qls_faults.clear ();
        let baseline =
          done_swaps (Campaign.run (chaos_config ()) ~exec:synthetic_exec tasks)
        in
        List.iter
          (fun seed ->
            let path = fresh_store_path () in
            (* Phase 1: faults at every site, then the process "dies"
               after the prefix. Individual tasks may fail (exhausted
               transient retries) and checkpoint lines may be torn or
               bit-flipped — all of it must be survivable. *)
            with_plan (chaos_plan seed) (fun () ->
                ignore
                  (Campaign.run
                     (chaos_config ~jobs:3 ~store_path:path ())
                     ~exec:synthetic_exec prefix));
            let _, bad = Store.load_verified path in
            check_bool
              (Printf.sprintf "seed %d actually corrupted the store" seed)
              true (bad <> []);
            (* Phase 2: the machine recovers (no faults) and the full
               campaign resumes over the damaged checkpoint. *)
            let rows =
              Campaign.run
                (chaos_config ~jobs:3 ~store_path:path ~resume:true
                   ~rerun_failed:true ())
                ~exec:synthetic_exec tasks
            in
            check_int
              (Printf.sprintf "seed %d: every task has a row" seed)
              40 (List.length rows);
            check_bool
              (Printf.sprintf "seed %d: bit-identical to fault-free" seed)
              true
              (done_swaps rows = baseline);
            Sys.remove path;
            if Sys.file_exists (path ^ ".quarantine") then
              Sys.remove (path ^ ".quarantine"))
          chaos_seeds);
    test_case "chaos schedule is scheduling-independent" (fun () ->
        (* Same plan, same tasks, different worker counts: the fault
           schedule keys on (site, task id, occurrence), not on timing,
           so even the *failures* land identically. *)
        let tasks = List.init 24 mk_task in
        let run jobs =
          with_plan (chaos_plan 7) (fun () ->
              status_fingerprint
                (Campaign.run (chaos_config ~jobs ()) ~exec:synthetic_exec
                   tasks))
        in
        check_bool "jobs=1 equals jobs=4" true (run 1 = run 4));
    test_case "no permanent error is ever retried under chaos" (fun () ->
        let tasks = List.init 16 mk_task in
        let executions = Atomic.make 0 in
        let exec t =
          Atomic.incr executions;
          synthetic_exec t
        in
        with_plan
          (plan_of_spec "seed=13;runner.exec:permanent:0.5")
          (fun () ->
            let rows =
              Campaign.run (chaos_config ~retries:5 ()) ~exec tasks
            in
            let failed = Campaign.failures rows in
            check_bool "some tasks hit the permanent fault" true
              (failed <> []);
            List.iter
              (fun (_, e) ->
                check_bool "permanent" true
                  (e.Herror.klass = Herror.Permanent);
                check_int "single attempt" 1 e.Herror.attempts)
              failed;
            (* Injected faults fire before the body: every execution of
               the body belongs to a task whose attempt cleared the
               fault, and no permanent-failed task consumed retries. *)
            check_int "executions = successes"
              (List.length (Campaign.outcomes rows))
              (Atomic.get executions)));
  ]

(* ------------------------------------------------------------------ *)
(* Random damage properties (no injection library involved)            *)
(* ------------------------------------------------------------------ *)

(* Build a store file from generated entries; returns originals in
   order. Statuses alternate so damage hits every line shape. *)
let write_entries entries =
  let path = fresh_store_path () in
  let store = Store.open_append path in
  List.iter (Store.append store) entries;
  Store.close store;
  path

let synthetic_entries n =
  List.init n (fun i ->
      let id = Printf.sprintf "dev/%d/tool-%d" (i / 3) i in
      if i mod 3 = 2 then
        {
          Store.task_id = id;
          status =
            Task.Failed
              (Herror.v ~site:"runner.exec" ~attempts:(1 + (i mod 2))
                 Herror.Transient
                 (Printf.sprintf "flake #%d" i));
        }
      else
        { Store.task_id = id; status = Task.Done { Task.swaps = i; seconds = 0.0; attempts = 1 } })

let entry_equal (a : Store.entry) (b : Store.entry) =
  a.Store.task_id = b.Store.task_id
  &&
  match (a.Store.status, b.Store.status) with
  | Task.Done x, Task.Done y -> x.Task.swaps = y.Task.swaps
  | Task.Failed x, Task.Failed y ->
      x.Herror.klass = y.Herror.klass
      && x.Herror.message = y.Herror.message
      && x.Herror.attempts = y.Herror.attempts
  | Task.Degraded x, Task.Degraded y ->
      x.Task.via = y.Task.via && x.Task.outcome.Task.swaps = y.Task.outcome.Task.swaps
  | _ -> false

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s = Out_channel.with_open_bin path (fun oc ->
    Out_channel.output_string oc s)

let damage_props =
  [
    QCheck.Test.make ~name:"truncation loses only the cut line" ~count:150
      QCheck.(pair (int_range 1 12) (int_range 0 2000))
      (fun (n, cut_raw) ->
        let originals = synthetic_entries n in
        let path = write_entries originals in
        let bytes = read_file path in
        let cut = cut_raw mod (String.length bytes + 1) in
        write_file path (String.sub bytes 0 cut);
        let entries, bad = Store.load_verified path in
        Sys.remove path;
        (* Count complete lines surviving the cut. *)
        let full = ref 0 in
        String.iteri
          (fun i c -> if i < cut && c = '\n' then incr full)
          bytes;
        let partial_tail = cut > 0 && bytes.[cut - 1] <> '\n' in
        let loaded = List.length entries in
        (* A cut between the closing brace and the newline leaves a
           complete, valid final line: nothing was actually lost, so it
           loads as entry [full + 1]. Any other nonempty tail must be
           quarantined. *)
        (loaded = !full || (loaded = !full + 1 && partial_tail))
        && List.length bad = (if partial_tail && loaded = !full then 1 else 0)
        && List.for_all2 entry_equal entries
             (List.filteri (fun i _ -> i < loaded) originals));
    QCheck.Test.make ~name:"one flipped bit never surfaces corrupt data"
      ~count:300
      QCheck.(triple (int_range 2 10) (int_range 0 5000) (int_range 0 7))
      (fun (n, pos_raw, bit) ->
        let originals = synthetic_entries n in
        let path = write_entries originals in
        let bytes = Bytes.of_string (read_file path) in
        let pos = pos_raw mod Bytes.length bytes in
        let flipped =
          Char.chr (Char.code (Bytes.get bytes pos) lxor (1 lsl bit))
        in
        QCheck.assume (Bytes.get bytes pos <> '\n' && flipped <> '\n');
        (* Which line did we damage? *)
        let victim = ref 0 in
        Bytes.iteri
          (fun i c -> if i < pos && c = '\n' then incr victim)
          bytes;
        Bytes.set bytes pos flipped;
        write_file path (Bytes.to_string bytes);
        let entries, bad = Store.load_verified path in
        Sys.remove path;
        (* Every undamaged line loads intact; the victim is either
           quarantined or — when the flip only grazed the crc seal's
           own syntax — loads with its data intact. Silent corruption
           is the one outcome that must never happen. *)
        List.length entries + List.length bad = n
        && (match bad with
           | [ c ] -> c.Store.line_no = !victim + 1
           | [] ->
               (* benign flip: the victim still loaded, data equal *)
               List.for_all2 entry_equal entries originals
           | _ -> false)
        && List.for_all
             (fun (e : Store.entry) ->
               List.exists (entry_equal e) originals)
             entries);
    QCheck.Test.make ~name:"spliced garbage is quarantined, originals load"
      ~count:150
      QCheck.(
        triple (int_range 1 10) (int_range 0 10)
          (string_gen_of_size (Gen.int_range 1 40) Gen.printable))
      (fun (n, at_raw, junk) ->
        let junk =
          "garbage:" ^ String.map (fun c -> if c = '\n' then '_' else c) junk
        in
        let originals = synthetic_entries n in
        let path = write_entries originals in
        let lines =
          String.split_on_char '\n' (read_file path)
          |> List.filter (fun l -> l <> "")
        in
        let at = at_raw mod (List.length lines + 1) in
        let spliced =
          List.concat
            [
              List.filteri (fun i _ -> i < at) lines;
              [ junk ];
              List.filteri (fun i _ -> i >= at) lines;
            ]
        in
        write_file path (String.concat "\n" spliced ^ "\n");
        let entries, bad = Store.load_verified path in
        Sys.remove path;
        List.length entries = n
        && List.for_all2 entry_equal entries originals
        && (match bad with
           | [ c ] -> c.Store.line_no = at + 1 && c.Store.text = junk
           | _ -> false));
    QCheck.Test.make
      ~name:"escape/unescape round-trips adversarial ids and messages"
      ~count:300
      QCheck.(pair string string)
      (fun (id, msg) ->
        let originals =
          [
            { Store.task_id = id; status = Task.Done { Task.swaps = 3; seconds = 0.0; attempts = 1 } };
            {
              Store.task_id = id ^ "/2";
              status = Task.Failed (Herror.permanent ~site:msg msg);
            };
          ]
        in
        let path = write_entries originals in
        let entries, bad = Store.load_verified path in
        Sys.remove path;
        bad = []
        && List.length entries = 2
        && List.for_all2 entry_equal entries originals
        &&
        match (List.nth entries 1).Store.status with
        | Task.Failed e -> e.Herror.site = msg
        | _ -> false);
  ]

let roundtrip_tests =
  [
    test_case "a pathological id survives the store byte-for-byte" (fun () ->
        let id = "q\"\\ \n\r\t\x01\x1f\xc3\xa9\xe2\x82\xac{}[]:," in
        let path =
          write_entries
            [
              {
                Store.task_id = id;
                status = Task.Done { Task.swaps = 1; seconds = 0.0; attempts = 1 };
              };
            ]
        in
        (match Store.load path with
        | [ e ] -> check_string "byte identical" id e.Store.task_id
        | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es));
        Sys.remove path);
  ]

let () =
  Alcotest.run "qls_faults"
    [
      ("spec", spec_tests);
      ("determinism", determinism_tests);
      ("runner", runner_tests);
      ("store", store_tests);
      ("chaos", chaos_tests);
      ("damage-properties", List.map QCheck_alcotest.to_alcotest damage_props);
      ("roundtrip", roundtrip_tests);
    ]
