(* Tests for Qls_obs: the disabled-path contract, span emission into
   both sinks (JSONL seal + parse-back, Chrome export shape), nesting
   well-formedness per domain, counters/histograms, and corruption
   detection on read-back. *)

module Obs = Qls_obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let test_case name f = Alcotest.test_case name `Quick f

let tmp_path ext =
  let path = Filename.temp_file "qls_obs_test" ext in
  Sys.remove path;
  path

(* Every test leaves tracing disarmed and metrics clean, whatever
   happened — the registry is process-global. *)
let isolated f () =
  Fun.protect
    ~finally:(fun () ->
      Obs.shutdown ();
      Obs.reset_metrics ())
    f

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)

let disabled_tests =
  [
    test_case "disabled: start returns the inert span, stop is a no-op"
      (isolated (fun () ->
           check_bool "disabled by default" false (Obs.enabled ());
           let sp = Obs.start ~site:"router" "round" in
           check_bool "inert span" true (sp == Obs.none);
           Obs.stop sp ~attrs:[ ("k", Obs.Int 1) ]));
    test_case "disabled: with_span runs the body and returns its value"
      (isolated (fun () ->
           let hit = ref false in
           let v =
             Obs.with_span ~site:"x" "body" (fun () ->
                 hit := true;
                 42)
           in
           check_int "value" 42 v;
           check_bool "body ran" true !hit));
    test_case "disabled: with_span never evaluates the attrs thunk"
      (isolated (fun () ->
           let evaluated = ref false in
           ignore
             (Obs.with_span "a"
                ~attrs:(fun () ->
                  evaluated := true;
                  [])
                (fun () -> 1));
           check_bool "attrs thunk untouched" false !evaluated));
  ]

(* ------------------------------------------------------------------ *)

let jsonl_tests =
  [
    test_case "jsonl: spans round-trip with site, attrs and ordering"
      (isolated (fun () ->
           let path = tmp_path ".jsonl" in
           Obs.tracing_to path;
           check_bool "enabled" true (Obs.enabled ());
           Obs.with_span ~site:"gen" "outer"
             ~attrs:(fun () -> [ ("n", Obs.Int 3); ("tool", Obs.Str "sabre") ])
             (fun () ->
               Obs.with_span ~site:"router" "inner" (fun () -> ()));
           Obs.shutdown ();
           check_bool "disarmed" false (Obs.enabled ());
           let records, bad = Obs.load_jsonl path in
           Sys.remove path;
           check_int "no rejects" 0 bad;
           check_int "two spans" 2 (List.length records);
           (* Spans are emitted at stop: inner closes first. *)
           let inner = List.nth records 0 and outer = List.nth records 1 in
           check_string "inner name" "inner" inner.Obs.r_name;
           check_string "inner site" "router" inner.Obs.r_site;
           check_string "outer name" "outer" outer.Obs.r_name;
           check_string "attr n" "3" (List.assoc "n" outer.Obs.r_attrs);
           check_string "attr tool" "sabre"
             (List.assoc "tool" outer.Obs.r_attrs);
           check_bool "durations non-negative" true
             (List.for_all (fun r -> r.Obs.r_dur >= 0.0) records)));
    test_case "jsonl: nesting is well-formed (inner within outer)"
      (isolated (fun () ->
           let path = tmp_path ".jsonl" in
           Obs.tracing_to path;
           Obs.with_span "outer" (fun () ->
               Obs.with_span "inner" (fun () -> Thread.delay 0.002));
           Obs.shutdown ();
           let records, _ = Obs.load_jsonl path in
           Sys.remove path;
           let find n = List.find (fun r -> r.Obs.r_name = n) records in
           let o = find "outer" and i = find "inner" in
           check_bool "inner starts after outer" true
             (i.Obs.r_start >= o.Obs.r_start);
           check_bool "inner ends before outer" true
             (i.Obs.r_start +. i.Obs.r_dur
             <= o.Obs.r_start +. o.Obs.r_dur +. 1e-9)));
    test_case "jsonl: every line carries a valid seal; mangling is caught"
      (isolated (fun () ->
           let path = tmp_path ".jsonl" in
           Obs.tracing_to path;
           for i = 1 to 5 do
             Obs.with_span "s"
               ~attrs:(fun () -> [ ("i", Obs.Int i) ])
               (fun () -> ())
           done;
           Obs.shutdown ();
           let lines =
             String.split_on_char '\n' (read_file path)
             |> List.filter (fun l -> l <> "")
           in
           check_int "five lines" 5 (List.length lines);
           List.iter
             (fun l ->
               (* The seal is the CRC of the line without its crc member. *)
               let marker = {|,"crc":"|} in
               let idx =
                 let rec find i =
                   if i + String.length marker > String.length l then
                     Alcotest.fail "no crc member"
                   else if String.sub l i (String.length marker) = marker then
                     i
                   else find (i + 1)
                 in
                 find 0
               in
               let body = String.sub l 0 idx ^ "}" in
               let crc = String.sub l (idx + String.length marker) 8 in
               check_string "crc" (Obs.crc32 body) crc)
             lines;
           (* Flip a byte in the middle line: exactly one reject. *)
           let bytes = Bytes.of_string (read_file path) in
           Bytes.set bytes (Bytes.length bytes / 2)
             (Char.chr
                (Char.code (Bytes.get bytes (Bytes.length bytes / 2)) lxor 1));
           let oc = open_out_bin path in
           output_bytes oc bytes;
           close_out oc;
           let records, bad = Obs.load_jsonl path in
           Sys.remove path;
           check_int "one reject" 1 bad;
           check_int "four survivors" 4 (List.length records)));
    test_case "jsonl: a torn final line is rejected, earlier spans kept"
      (isolated (fun () ->
           let path = tmp_path ".jsonl" in
           Obs.tracing_to path;
           Obs.with_span "a" (fun () -> ());
           Obs.with_span "b" (fun () -> ());
           Obs.shutdown ();
           let s = read_file path in
           let oc = open_out_bin path in
           output_string oc (String.sub s 0 (String.length s - 7));
           close_out oc;
           let records, bad = Obs.load_jsonl path in
           Sys.remove path;
           check_int "torn tail rejected" 1 bad;
           check_int "first span survives" 1 (List.length records);
           check_string "it is span a" "a" (List.hd records).Obs.r_name));
    test_case "jsonl: missing file is an empty trace"
      (isolated (fun () ->
           let records, bad = Obs.load_jsonl "/nonexistent/trace.jsonl" in
           check_int "no records" 0 (List.length records);
           check_int "no rejects" 0 bad));
  ]

(* ------------------------------------------------------------------ *)

(* A minimal JSON well-formedness scanner: balanced braces/brackets
   outside strings, so a truncated or interleaved Chrome export fails. *)
let json_balanced s =
  let depth = ref 0 and in_str = ref false and esc = ref false in
  let ok = ref true in
  String.iter
    (fun c ->
      if !esc then esc := false
      else if !in_str then begin
        if c = '\\' then esc := true else if c = '"' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str

let chrome_tests =
  [
    test_case "chrome: export is balanced JSON with the traceEvents shape"
      (isolated (fun () ->
           let path = tmp_path ".json" in
           Obs.tracing_to path;
           Obs.with_span ~site:"router" "sabre.round"
             ~attrs:(fun () -> [ ("emitted", Obs.Int 2) ])
             (fun () -> ());
           Obs.with_span ~site:"sat" "sat.solve" (fun () -> ());
           Obs.shutdown ();
           let s = read_file path in
           Sys.remove path;
           check_bool "balanced json" true (json_balanced s);
           let has sub =
             let n = String.length sub in
             let rec go i =
               i + n <= String.length s
               && (String.sub s i n = sub || go (i + 1))
             in
             go 0
           in
           check_bool "traceEvents key" true (has "\"traceEvents\"");
           check_bool "complete events" true (has "\"ph\":\"X\"");
           check_bool "span name present" true (has "\"sabre.round\"");
           check_bool "site as category" true (has "\"cat\":\"sat\"");
           check_bool "args carried" true (has "\"emitted\":2")));
    test_case "chrome: shutdown is idempotent and leaves one valid file"
      (isolated (fun () ->
           let path = tmp_path ".json" in
           Obs.tracing_to path;
           Obs.with_span "only" (fun () -> ());
           Obs.shutdown ();
           Obs.shutdown ();
           let s = read_file path in
           Sys.remove path;
           check_bool "still balanced" true (json_balanced s)));
    test_case "format inference: .jsonl suffix selects the line sink"
      (isolated (fun () ->
           let path = tmp_path ".jsonl" in
           Obs.tracing_to path;
           Obs.with_span "x" (fun () -> ());
           Obs.shutdown ();
           let records, bad = Obs.load_jsonl path in
           Sys.remove path;
           check_int "parses as jsonl" 1 (List.length records);
           check_int "no rejects" 0 bad));
  ]

(* ------------------------------------------------------------------ *)

let metrics_tests =
  [
    test_case "counters: named cells are shared, sorted, resettable"
      (isolated (fun () ->
           let a = Obs.counter "z.second" and b = Obs.counter "a.first" in
           Obs.incr a;
           Obs.add b 5;
           Obs.add (Obs.counter "z.second") 2;
           check_int "shared by name" 3 (Obs.counter_value a);
           (match Obs.counters () with
           | [ (n1, v1); (n2, v2) ] ->
               check_string "sorted first" "a.first" n1;
               check_int "a value" 5 v1;
               check_string "sorted second" "z.second" n2;
               check_int "z value" 3 v2
           | l -> Alcotest.failf "expected 2 counters, got %d" (List.length l));
           Obs.reset_metrics ();
           check_int "reset" 0 (Obs.counter_value a)));
    test_case "counters: atomic across domains"
      (isolated (fun () ->
           let c = Obs.counter "stress" in
           let domains =
             List.init 4 (fun _ ->
                 Domain.spawn (fun () ->
                     for _ = 1 to 10_000 do
                       Obs.incr c
                     done))
           in
           List.iter Domain.join domains;
           check_int "no lost increments" 40_000 (Obs.counter_value c)));
    test_case "histograms: bucketing, totals and the quantile estimate"
      (isolated (fun () ->
           let h = Obs.histogram ~bounds:[| 0.1; 1.0; 10.0 |] "lat" in
           List.iter (Obs.observe h) [ 0.05; 0.5; 0.7; 5.0; 100.0 ];
           let bounds, counts = Obs.histogram_counts h in
           check_int "bounds" 3 (Array.length bounds);
           check_int "buckets incl overflow" 4 (Array.length counts);
           check_int "b0" 1 counts.(0);
           check_int "b1" 2 counts.(1);
           check_int "b2" 1 counts.(2);
           check_int "overflow" 1 counts.(3);
           check_int "total" 5 (Obs.histogram_total h);
           (match Obs.approx_quantile h 0.5 with
           | Some q -> Alcotest.(check (float 1e-9)) "median bound" 1.0 q
           | None -> Alcotest.fail "quantile on non-empty histogram");
           check_bool "nan rejected" true
             (match Obs.observe h Float.nan with
             | () -> false
             | exception Invalid_argument _ -> true)));
    test_case "histograms: empty quantile is None"
      (isolated (fun () ->
           let h = Obs.histogram "empty" in
           check_bool "none" true (Obs.approx_quantile h 0.9 = None)));
  ]

let () =
  Alcotest.run "qls_obs"
    [
      ("disabled", disabled_tests);
      ("jsonl", jsonl_tests);
      ("chrome", chrome_tests);
      ("metrics", metrics_tests);
    ]
