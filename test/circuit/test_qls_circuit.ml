(* Tests for the qls_circuit library: gates, circuits, interaction graphs,
   dependency DAGs, layering, QASM round-tripping and random circuits. *)

module Gate = Qls_circuit.Gate
module Circuit = Qls_circuit.Circuit
module Interaction = Qls_circuit.Interaction
module Dag = Qls_circuit.Dag
module Layers = Qls_circuit.Layers
module Qasm = Qls_circuit.Qasm
module Random_circuit = Qls_circuit.Random_circuit
module Graph = Qls_graph.Graph
module Rng = Qls_graph.Rng
module Generators = Qls_graph.Generators

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let test_case name f = Alcotest.test_case name `Quick f

(* The running example of the paper's Fig. 1(a): H gates on q0/q1, then
   CNOTs g3(q0,q1), g4(q1,q2), g5(q0,q2). *)
let fig1_circuit () =
  Circuit.create ~n_qubits:3
    [ Gate.h 0; Gate.h 1; Gate.h 2; Gate.cx 0 1; Gate.cx 1 2; Gate.cx 0 2 ]

(* ------------------------------------------------------------------ *)
(* Gate                                                                *)
(* ------------------------------------------------------------------ *)

let gate_tests =
  [
    test_case "constructors and names" (fun () ->
        Alcotest.(check string) "h" "h" (Gate.name (Gate.h 0));
        Alcotest.(check string) "cx" "cx" (Gate.name (Gate.cx 0 1));
        Alcotest.(check string) "swap" "swap" (Gate.name (Gate.swap 0 1)));
    test_case "same-qubit two-qubit gate rejected" (fun () ->
        Alcotest.check_raises "same"
          (Invalid_argument "Gate.g2: both operands are the same qubit")
          (fun () -> ignore (Gate.cx 3 3)));
    test_case "negative qubit rejected" (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Gate.g1: negative qubit")
          (fun () -> ignore (Gate.h (-1))));
    test_case "is_two_qubit and is_swap" (fun () ->
        check_bool "h" false (Gate.is_two_qubit (Gate.h 0));
        check_bool "cx" true (Gate.is_two_qubit (Gate.cx 0 1));
        check_bool "cx not swap" false (Gate.is_swap (Gate.cx 0 1));
        check_bool "swap" true (Gate.is_swap (Gate.swap 0 1)));
    test_case "qubits and pair" (fun () ->
        Alcotest.(check (list int)) "g1" [ 4 ] (Gate.qubits (Gate.x 4));
        Alcotest.(check (list int)) "g2" [ 2; 7 ] (Gate.qubits (Gate.cz 2 7));
        Alcotest.(check (pair int int)) "pair" (2, 7) (Gate.pair (Gate.cz 2 7)));
    test_case "pair of single-qubit gate rejected" (fun () ->
        Alcotest.check_raises "pair"
          (Invalid_argument "Gate.pair: single-qubit gate") (fun () ->
            ignore (Gate.pair (Gate.h 0))));
    test_case "acts_on" (fun () ->
        check_bool "yes" true (Gate.acts_on (Gate.cx 1 5) 5);
        check_bool "no" false (Gate.acts_on (Gate.cx 1 5) 2));
    test_case "map_qubits renames" (fun () ->
        let g = Gate.map_qubits (fun q -> q + 10) (Gate.cx 0 1) in
        Alcotest.(check (pair int int)) "renamed" (10, 11) (Gate.pair g));
    test_case "map_qubits collapse rejected" (fun () ->
        Alcotest.check_raises "collapse"
          (Invalid_argument "Gate.g2: both operands are the same qubit")
          (fun () -> ignore (Gate.map_qubits (fun _ -> 0) (Gate.cx 0 1))));
    test_case "equal" (fun () ->
        check_bool "same" true (Gate.equal (Gate.cx 0 1) (Gate.cx 0 1));
        check_bool "orientation matters" false (Gate.equal (Gate.cx 0 1) (Gate.cx 1 0));
        check_bool "kind" false (Gate.equal (Gate.h 0) (Gate.cx 0 1)));
    test_case "to_string" (fun () ->
        Alcotest.(check string) "format" "cx(3,7)" (Gate.to_string (Gate.cx 3 7));
        Alcotest.(check string) "format 1q" "h(2)" (Gate.to_string (Gate.h 2)));
  ]

(* ------------------------------------------------------------------ *)
(* Circuit                                                             *)
(* ------------------------------------------------------------------ *)

let circuit_tests =
  [
    test_case "create validates qubit range" (fun () ->
        Alcotest.check_raises "range"
          (Invalid_argument "Circuit: gate cx(0,3) uses qubit outside [0, 3)")
          (fun () -> ignore (Circuit.create ~n_qubits:3 [ Gate.cx 0 3 ])));
    test_case "counts" (fun () ->
        let c = fig1_circuit () in
        check_int "length" 6 (Circuit.length c);
        check_int "2q" 3 (Circuit.two_qubit_count c);
        check_int "1q" 3 (Circuit.single_qubit_count c));
    test_case "two_qubit_gates indices" (fun () ->
        let c = fig1_circuit () in
        Alcotest.(check (list (pair int (pair int int)))) "indexed"
          [ (3, (0, 1)); (4, (1, 2)); (5, (0, 2)) ]
          (Circuit.two_qubit_gates c));
    test_case "append and gate access" (fun () ->
        let c = Circuit.append (fig1_circuit ()) (Gate.cx 1 0) in
        check_int "length" 7 (Circuit.length c);
        check_bool "last" true (Gate.equal (Gate.cx 1 0) (Circuit.gate c 6)));
    test_case "concat maxes qubit counts" (fun () ->
        let a = Circuit.create ~n_qubits:2 [ Gate.h 0 ] in
        let b = Circuit.create ~n_qubits:5 [ Gate.cx 3 4 ] in
        let c = Circuit.concat a b in
        check_int "qubits" 5 (Circuit.n_qubits c);
        check_int "length" 2 (Circuit.length c));
    test_case "map_qubits" (fun () ->
        let c = Circuit.map_qubits (fun q -> 2 - q) (fig1_circuit ()) ~n_qubits:3 in
        check_bool "reversed gate" true
          (Gate.equal (Gate.cx 2 1) (Circuit.gate c 3)));
    test_case "used_qubits" (fun () ->
        let c = Circuit.create ~n_qubits:10 [ Gate.cx 2 7; Gate.h 4 ] in
        Alcotest.(check (list int)) "used" [ 2; 4; 7 ] (Circuit.used_qubits c));
    test_case "depth of Fig. 1 circuit" (fun () ->
        (* H layer in parallel (depth 1), then three CNOTs forced serial by
           shared qubits: total depth 4. *)
        check_int "depth" 4 (Circuit.depth (fig1_circuit ()));
        check_int "2q depth" 3 (Circuit.two_qubit_depth (fig1_circuit ())));
    test_case "depth ignores parallel gates" (fun () ->
        let c = Circuit.create ~n_qubits:4 [ Gate.cx 0 1; Gate.cx 2 3 ] in
        check_int "parallel" 1 (Circuit.depth c));
    test_case "empty circuit" (fun () ->
        let c = Circuit.create ~n_qubits:0 [] in
        check_int "depth" 0 (Circuit.depth c);
        check_int "length" 0 (Circuit.length c));
    test_case "equal" (fun () ->
        check_bool "equal" true (Circuit.equal (fig1_circuit ()) (fig1_circuit ()));
        check_bool "differs" false
          (Circuit.equal (fig1_circuit ())
             (Circuit.append (fig1_circuit ()) (Gate.h 0))));
  ]

(* ------------------------------------------------------------------ *)
(* Interaction                                                         *)
(* ------------------------------------------------------------------ *)

let interaction_tests =
  [
    test_case "Fig. 1(b): triangle interaction graph" (fun () ->
        let g = Interaction.of_circuit (fig1_circuit ()) in
        check_int "edges" 3 (Graph.n_edges g);
        check_bool "triangle" true
          (Graph.mem_edge g 0 1 && Graph.mem_edge g 1 2 && Graph.mem_edge g 0 2));
    test_case "repeated gates merge into one edge" (fun () ->
        let c = Circuit.create ~n_qubits:2 [ Gate.cx 0 1; Gate.cx 1 0; Gate.cx 0 1 ] in
        check_int "one edge" 1 (Graph.n_edges (Interaction.of_circuit c)));
    test_case "of_slice" (fun () ->
        let c = fig1_circuit () in
        let g = Interaction.of_slice c ~lo:3 ~hi:5 in
        check_int "two edges" 2 (Graph.n_edges g);
        check_bool "no (0,2)" false (Graph.mem_edge g 0 2));
    test_case "of_slice validates range" (fun () ->
        Alcotest.check_raises "range"
          (Invalid_argument "Interaction.of_slice: bad range") (fun () ->
            ignore (Interaction.of_slice (fig1_circuit ()) ~lo:4 ~hi:2)));
    test_case "swap_free: triangle needs a swap on a line" (fun () ->
        (* the paper's Fig. 1 example: the triangle cannot run on the
           4-qubit line without a SWAP *)
        check_bool "line" false
          (Interaction.swap_free (fig1_circuit ()) (Generators.path 4));
        check_bool "ring" true
          (Interaction.swap_free (fig1_circuit ()) (Generators.cycle 3)));
    test_case "swap_free_mapping witness" (fun () ->
        (* The 2x2 grid is C4 — triangle-free — so no witness exists; K4
           contains triangles, so one does. *)
        check_bool "none on C4" true
          (Interaction.swap_free_mapping (fig1_circuit ()) (Generators.grid 2 2) = None);
        match Interaction.swap_free_mapping (fig1_circuit ()) (Generators.complete 4) with
        | None -> Alcotest.fail "expected mapping on K4"
        | Some f ->
            check_int "3 qubits placed" 3 (Array.length f);
            let distinct = List.sort_uniq compare (Array.to_list f) in
            check_int "injective" 3 (List.length distinct));
  ]

(* ------------------------------------------------------------------ *)
(* Dag                                                                 *)
(* ------------------------------------------------------------------ *)

let dag_tests =
  [
    test_case "Fig. 1(c): dependency edges" (fun () ->
        let d = Dag.of_circuit (fig1_circuit ()) in
        check_int "3 gates" 3 (Dag.n_gates d);
        (* vertex 0 = g3(q0,q1), 1 = g4(q1,q2), 2 = g5(q0,q2) *)
        Alcotest.(check (list int)) "g3 -> g4, g5" [ 1; 2 ] (Dag.successors d 0);
        Alcotest.(check (list int)) "g4 -> g5" [ 2 ] (Dag.successors d 1);
        Alcotest.(check (list int)) "g5 preds" [ 0; 1 ] (Dag.predecessors d 2));
    test_case "circuit_index skips single-qubit gates" (fun () ->
        let d = Dag.of_circuit (fig1_circuit ()) in
        check_int "first cx at 3" 3 (Dag.circuit_index d 0);
        Alcotest.(check (pair int int)) "pair" (0, 1) (Dag.pair d 0));
    test_case "front layer" (fun () ->
        let c =
          Circuit.create ~n_qubits:4 [ Gate.cx 0 1; Gate.cx 2 3; Gate.cx 1 2 ]
        in
        let d = Dag.of_circuit c in
        Alcotest.(check (list int)) "two independent" [ 0; 1 ] (Dag.front_layer d));
    test_case "no duplicate arc for repeated pair" (fun () ->
        let c = Circuit.create ~n_qubits:2 [ Gate.cx 0 1; Gate.cx 0 1 ] in
        let d = Dag.of_circuit c in
        Alcotest.(check (list int)) "single arc" [ 1 ] (Dag.successors d 0);
        check_int "indegree" 1 (Dag.in_degree d 1));
    test_case "reachable is reflexive and transitive" (fun () ->
        let d = Dag.of_circuit (fig1_circuit ()) in
        check_bool "self" true (Dag.reachable d 1 1);
        check_bool "0 -> 2" true (Dag.reachable d 0 2);
        check_bool "2 -> 0" false (Dag.reachable d 2 0));
    test_case "descendants" (fun () ->
        let d = Dag.of_circuit (fig1_circuit ()) in
        Alcotest.(check (array bool)) "from g3" [| true; true; true |]
          (Dag.descendants d 0);
        Alcotest.(check (array bool)) "from g5" [| false; false; true |]
          (Dag.descendants d 2));
    test_case "topological order is a permutation respecting edges" (fun () ->
        let rng = Rng.create 3 in
        let c = Random_circuit.uniform rng ~n_qubits:6 ~n_two_qubit:40 ~single_ratio:0.5 in
        let d = Dag.of_circuit c in
        let order = Dag.topological_order d in
        check_int "length" (Dag.n_gates d) (List.length order);
        let pos = Array.make (Dag.n_gates d) 0 in
        List.iteri (fun i v -> pos.(v) <- i) order;
        for v = 0 to Dag.n_gates d - 1 do
          List.iter
            (fun w -> check_bool "edge order" true (pos.(v) < pos.(w)))
            (Dag.successors d v)
        done);
    test_case "serialized" (fun () ->
        let d = Dag.of_circuit (fig1_circuit ()) in
        check_bool "0 before 2" true (Dag.serialized d [ 0 ] [ 2 ]);
        check_bool "not 2 before 0" false (Dag.serialized d [ 2 ] [ 0 ]));
  ]

let circuit_arb =
  QCheck.make
    ~print:(fun (n, gates) -> Printf.sprintf "%d qubits, %d gates" n (List.length gates))
    QCheck.Gen.(
      sized (fun size ->
          let n = 2 + (size mod 8) in
          let* m = int_bound 30 in
          let gate =
            let* a = int_bound (n - 1) in
            let* b = int_bound (n - 1) in
            return (a, b)
          in
          let* pairs = list_size (return m) gate in
          return (n, List.filter (fun (a, b) -> a <> b) pairs)))

let dag_props =
  [
    QCheck.Test.make ~name:"program order is a topological order" ~count:200
      circuit_arb (fun (n, pairs) ->
        let c = Circuit.create ~n_qubits:n (List.map (fun (a, b) -> Gate.cx a b) pairs) in
        let d = Dag.of_circuit c in
        (* every DAG arc goes forward in program order *)
        let ok = ref true in
        for v = 0 to Dag.n_gates d - 1 do
          List.iter (fun w -> if w <= v then ok := false) (Dag.successors d v)
        done;
        !ok);
    QCheck.Test.make ~name:"preds and succs are mutual" ~count:200 circuit_arb
      (fun (n, pairs) ->
        let c = Circuit.create ~n_qubits:n (List.map (fun (a, b) -> Gate.cx a b) pairs) in
        let d = Dag.of_circuit c in
        let ok = ref true in
        for v = 0 to Dag.n_gates d - 1 do
          List.iter
            (fun w -> if not (List.mem v (Dag.predecessors d w)) then ok := false)
            (Dag.successors d v)
        done;
        !ok);
  ]

(* ------------------------------------------------------------------ *)
(* Layers                                                              *)
(* ------------------------------------------------------------------ *)

let layers_tests =
  [
    test_case "slices of the Fig. 1 circuit" (fun () ->
        Alcotest.(check (list (list (pair int int)))) "serial"
          [ [ (0, 1) ]; [ (1, 2) ]; [ (0, 2) ] ]
          (Layers.slices (fig1_circuit ())));
    test_case "parallel gates share a slice" (fun () ->
        let c =
          Circuit.create ~n_qubits:4 [ Gate.cx 0 1; Gate.cx 2 3; Gate.cx 1 2 ]
        in
        Alcotest.(check (list (list (pair int int)))) "two slices"
          [ [ (0, 1); (2, 3) ]; [ (1, 2) ] ]
          (Layers.slices c));
    test_case "slice count equals two-qubit depth" (fun () ->
        let rng = Rng.create 5 in
        for seed = 0 to 9 do
          ignore seed;
          let c = Random_circuit.uniform rng ~n_qubits:5 ~n_two_qubit:25 ~single_ratio:0.3 in
          check_int "depth" (Circuit.two_qubit_depth c)
            (List.length (Layers.slices c))
        done);
    test_case "layer_of increases along edges" (fun () ->
        let c = fig1_circuit () in
        let d = Dag.of_circuit c in
        let l = Layers.layer_of d in
        Alcotest.(check (array int)) "layers" [| 0; 1; 2 |] l);
  ]

(* ------------------------------------------------------------------ *)
(* Qasm                                                                *)
(* ------------------------------------------------------------------ *)

let qasm_tests =
  [
    test_case "emit contains header and gates" (fun () ->
        let s = Qasm.to_string (fig1_circuit ()) in
        let contains needle =
          let nl = String.length needle and hl = String.length s in
          let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
          go 0
        in
        check_bool "version" true (contains "OPENQASM 2.0;");
        check_bool "qreg" true (contains "qreg q[3];");
        check_bool "cx" true (contains "cx q[0],q[1];"));
    test_case "round trip" (fun () ->
        let c = fig1_circuit () in
        check_bool "equal" true (Circuit.equal c (Qasm.of_string (Qasm.to_string c))));
    test_case "parser strips parameters" (fun () ->
        let c =
          Qasm.of_string
            "OPENQASM 2.0;\nqreg q[2];\nrz(pi/4) q[0];\ncx q[0],q[1];\n"
        in
        Alcotest.(check string) "name kept" "rz" (Gate.name (Circuit.gate c 0));
        check_int "gates" 2 (Circuit.length c));
    test_case "parser skips comments, barrier, measure, creg" (fun () ->
        let c =
          Qasm.of_string
            "OPENQASM 2.0;\n// a comment\nqreg q[2];\ncreg c[2];\nbarrier q[0];\nh q[1]; // trailing\nmeasure q[0];\n"
        in
        check_int "one gate" 1 (Circuit.length c));
    test_case "parser handles multiple statements per line" (fun () ->
        let c = Qasm.of_string "OPENQASM 2.0; qreg q[2]; h q[0]; cx q[0],q[1];" in
        check_int "two gates" 2 (Circuit.length c));
    test_case "missing qreg rejected with a typed error" (fun () ->
        match Qasm.of_string_result "OPENQASM 2.0;\nh q[0];\n" with
        | Error e ->
            check_int "no single line applies" 0 e.Qasm.line;
            check_bool "mentions qreg" true
              (let m = e.Qasm.message in
               let rec go i =
                 i + 4 <= String.length m
                 && (String.sub m i 4 = "qreg" || go (i + 1))
               in
               go 0)
        | Ok _ -> Alcotest.fail "expected a parse error");
    test_case "wrong register name rejected with its line number" (fun () ->
        match Qasm.of_string_result "OPENQASM 2.0;\nqreg q[2];\nh r[0];\n" with
        | Error e -> check_int "line" 3 e.Qasm.line
        | Ok _ -> Alcotest.fail "expected a parse error");
    test_case "three-operand gate rejected with its line number" (fun () ->
        match
          Qasm.of_string_result "OPENQASM 2.0;\nqreg q[3];\nccx q[0],q[1],q[2];\n"
        with
        | Error e -> check_int "line" 3 e.Qasm.line
        | Ok _ -> Alcotest.fail "expected a parse error");
    test_case "raising API raises Parse_error, not Failure" (fun () ->
        check_bool "typed exception" true
          (try
             ignore (Qasm.of_string "OPENQASM 2.0;\nqreg q[2];\nh r[0];\n");
             false
           with Qasm.Parse_error e -> e.Qasm.line = 3));
    test_case "unreadable file is a typed error, not an exception" (fun () ->
        match Qasm.read_file_result "/nonexistent/q.qasm" with
        | Error e -> check_int "line 0" 0 e.Qasm.line
        | Ok _ -> Alcotest.fail "expected an error");
    test_case "file round trip" (fun () ->
        let c = fig1_circuit () in
        let path = Filename.temp_file "qubikos" ".qasm" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Qasm.write_file path c;
            check_bool "equal" true (Circuit.equal c (Qasm.read_file path))));
  ]

let qasm_props =
  [
    QCheck.Test.make ~name:"random circuits round-trip through QASM" ~count:100
      circuit_arb (fun (n, pairs) ->
        let rng = Rng.create (Hashtbl.hash pairs) in
        let gates =
          List.concat_map
            (fun (a, b) ->
              if Rng.bool rng then [ Gate.cx a b ] else [ Gate.h a; Gate.cx a b ])
            pairs
        in
        let c = Circuit.create ~n_qubits:n gates in
        Circuit.equal c (Qasm.of_string (Qasm.to_string c)));
  ]

(* ------------------------------------------------------------------ *)
(* Random_circuit                                                      *)
(* ------------------------------------------------------------------ *)

let random_circuit_tests =
  [
    test_case "uniform gate counts" (fun () ->
        let rng = Rng.create 1 in
        let c = Random_circuit.uniform rng ~n_qubits:8 ~n_two_qubit:50 ~single_ratio:0.5 in
        check_int "2q" 50 (Circuit.two_qubit_count c);
        check_int "1q" 25 (Circuit.single_qubit_count c));
    test_case "uniform rejects 1 qubit with 2q gates" (fun () ->
        let rng = Rng.create 1 in
        check_bool "raises" true
          (try
             ignore (Random_circuit.uniform rng ~n_qubits:1 ~n_two_qubit:5 ~single_ratio:0.0);
             false
           with Invalid_argument _ -> true));
    test_case "on_interaction_graph draws only graph edges" (fun () ->
        let rng = Rng.create 2 in
        let graph = Generators.cycle 5 in
        let c = Random_circuit.on_interaction_graph rng ~graph ~n_gates:40 in
        let inter = Interaction.of_circuit c in
        Graph.iter_edges
          (fun u v -> check_bool "edge of cycle" true (Graph.mem_edge graph u v))
          inter);
    test_case "layered respects density bounds" (fun () ->
        let rng = Rng.create 3 in
        let c = Random_circuit.layered rng ~n_qubits:10 ~n_layers:5 ~density:1.0 in
        check_int "full matching" 25 (Circuit.two_qubit_count c);
        let c0 = Random_circuit.layered rng ~n_qubits:10 ~n_layers:5 ~density:0.0 in
        check_int "empty" 0 (Circuit.two_qubit_count c0));
    test_case "layered validates density" (fun () ->
        let rng = Rng.create 4 in
        check_bool "raises" true
          (try
             ignore (Random_circuit.layered rng ~n_qubits:4 ~n_layers:2 ~density:1.5);
             false
           with Invalid_argument _ -> true));
  ]

let () =
  Alcotest.run "qls_circuit"
    [
      ("gate", gate_tests);
      ("circuit", circuit_tests);
      ("interaction", interaction_tests);
      ("dag", dag_tests);
      ("dag-properties", List.map QCheck_alcotest.to_alcotest dag_props);
      ("layers", layers_tests);
      ("qasm", qasm_tests);
      ("qasm-properties", List.map QCheck_alcotest.to_alcotest qasm_props);
      ("random-circuit", random_circuit_tests);
    ]
