(* Tests for the CDCL SAT solver: hand instances, pigeonhole refutations
   and random 3-SAT cross-checked against a brute-force evaluator. *)

module Solver = Qls_sat.Solver
module Rng = Qls_graph.Rng

let check_bool = Alcotest.(check bool)
let test_case name f = Alcotest.test_case name `Quick f

let solve_clauses nv clauses =
  let s = Solver.create nv in
  List.iter (Solver.add_clause s) clauses;
  (s, Solver.solve s)

let is_sat = function Solver.Sat -> true | Solver.Unsat | Solver.Unknown -> false
let is_unsat = function Solver.Unsat -> true | Solver.Sat | Solver.Unknown -> false

let model_satisfies s clauses =
  List.for_all
    (fun clause ->
      List.exists
        (fun l ->
          let v = abs l in
          if l > 0 then Solver.value s v else not (Solver.value s v))
        clause)
    clauses

(* Pigeonhole principle: n+1 pigeons, n holes — classic UNSAT family.
   Variable p*n + h + 1 = "pigeon p sits in hole h". *)
let pigeonhole n =
  let var p h = (p * n) + h + 1 in
  let nv = (n + 1) * n in
  let clauses = ref [] in
  for p = 0 to n do
    clauses := List.init n (fun h -> var p h) :: !clauses
  done;
  for h = 0 to n - 1 do
    for p = 0 to n do
      for p' = p + 1 to n do
        clauses := [ -var p h; -var p' h ] :: !clauses
      done
    done
  done;
  (nv, !clauses)

let basic_tests =
  [
    test_case "empty formula is satisfiable" (fun () ->
        let _, r = solve_clauses 3 [] in
        check_bool "sat" true (is_sat r));
    test_case "unit clauses force the model" (fun () ->
        let s, r = solve_clauses 3 [ [ 1 ]; [ -2 ]; [ 3 ] ] in
        check_bool "sat" true (is_sat r);
        check_bool "v1" true (Solver.value s 1);
        check_bool "v2" false (Solver.value s 2);
        check_bool "v3" true (Solver.value s 3));
    test_case "contradicting units are unsat" (fun () ->
        let _, r = solve_clauses 2 [ [ 1 ]; [ -1 ] ] in
        check_bool "unsat" true (is_unsat r));
    test_case "empty clause is unsat" (fun () ->
        let _, r = solve_clauses 2 [ [] ] in
        check_bool "unsat" true (is_unsat r));
    test_case "tautologies are ignored" (fun () ->
        let _, r = solve_clauses 2 [ [ 1; -1 ]; [ 2 ] ] in
        check_bool "sat" true (is_sat r));
    test_case "simple implication chain" (fun () ->
        (* 1, 1->2, 2->3, 3->4 forces all true *)
        let s, r = solve_clauses 4 [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ]; [ -3; 4 ] ] in
        check_bool "sat" true (is_sat r);
        check_bool "v4 forced" true (Solver.value s 4));
    test_case "xor chain needs real search" (fun () ->
        (* (1 xor 2), (2 xor 3), (1 xor 3) is unsat *)
        let _, r =
          solve_clauses 3
            [ [ 1; 2 ]; [ -1; -2 ]; [ 2; 3 ]; [ -2; -3 ]; [ 1; 3 ]; [ -1; -3 ] ]
        in
        check_bool "unsat" true (is_unsat r));
    test_case "pigeonhole 2 into 1" (fun () ->
        let nv, clauses = pigeonhole 1 in
        let _, r = solve_clauses nv clauses in
        check_bool "unsat" true (is_unsat r));
    test_case "pigeonhole 4 into 3" (fun () ->
        let nv, clauses = pigeonhole 3 in
        let _, r = solve_clauses nv clauses in
        check_bool "unsat" true (is_unsat r));
    test_case "pigeonhole 6 into 5 (forces clause learning)" (fun () ->
        let nv, clauses = pigeonhole 5 in
        let s, r = solve_clauses nv clauses in
        check_bool "unsat" true (is_unsat r);
        let conflicts, _ = Solver.stats s in
        check_bool "searched" true (conflicts > 0));
    test_case "n holes do fit n pigeons" (fun () ->
        (* drop one pigeon: satisfiable *)
        let n = 4 in
        let var p h = (p * n) + h + 1 in
        let clauses = ref [] in
        for p = 0 to n - 1 do
          clauses := List.init n (fun h -> var p h) :: !clauses
        done;
        for h = 0 to n - 1 do
          for p = 0 to n - 1 do
            for p' = p + 1 to n - 1 do
              clauses := [ -var p h; -var p' h ] :: !clauses
            done
          done
        done;
        let s, r = solve_clauses (n * n) !clauses in
        check_bool "sat" true (is_sat r);
        check_bool "model valid" true (model_satisfies s !clauses));
    test_case "add_clause rejects bad literals" (fun () ->
        let s = Solver.create 2 in
        check_bool "raises" true
          (try
             Solver.add_clause s [ 0 ];
             false
           with Invalid_argument _ -> true);
        check_bool "raises range" true
          (try
             Solver.add_clause s [ 5 ];
             false
           with Invalid_argument _ -> true));
    test_case "value without model rejected" (fun () ->
        let s = Solver.create 1 in
        Solver.add_clause s [ 1 ];
        check_bool "raises" true
          (try
             ignore (Solver.value s 1);
             false
           with Invalid_argument _ -> true));
    test_case "conflict budget reports unknown" (fun () ->
        let nv, clauses = pigeonhole 6 in
        let s = Solver.create nv in
        List.iter (Solver.add_clause s) clauses;
        check_bool "unknown" true (Solver.solve ~conflict_budget:1 s = Solver.Unknown));
  ]

(* Incremental interface: clause addition between solves, assumptions,
   unsat cores, budget flag, cumulative stats, seeded configurations. *)
let incremental_tests =
  [
    test_case "add_clause after solve narrows the models" (fun () ->
        let s = Solver.create 2 in
        Solver.add_clause s [ 1; 2 ];
        check_bool "sat" true (is_sat (Solver.solve s));
        Solver.add_clause s [ -1 ];
        check_bool "still sat" true (is_sat (Solver.solve s));
        check_bool "v2 forced" true (Solver.value s 2);
        check_bool "v1 false" false (Solver.value s 1);
        Solver.add_clause s [ -2 ];
        check_bool "now unsat" true (is_unsat (Solver.solve s));
        check_bool "permanently unsat" true (is_unsat (Solver.solve s)));
    test_case "assumptions hold for one call only" (fun () ->
        let s = Solver.create 2 in
        Solver.add_clause s [ 1; 2 ];
        check_bool "sat under 1" true
          (is_sat (Solver.solve ~assumptions:[ 1; -2 ] s));
        check_bool "v1 assumed" true (Solver.value s 1);
        check_bool "v2 assumed false" false (Solver.value s 2);
        check_bool "sat under -1" true
          (is_sat (Solver.solve ~assumptions:[ -1 ] s));
        check_bool "v1 flipped" false (Solver.value s 1);
        check_bool "v2 forced" true (Solver.value s 2);
        (* nothing persisted: the unconstrained solve is still free *)
        check_bool "sat unassumed" true (is_sat (Solver.solve s)));
    test_case "falsified assumption yields a core, not root unsat" (fun () ->
        let s = Solver.create 3 in
        Solver.add_clause s [ -1; -2 ];
        check_bool "unsat under 1,2" true
          (is_unsat (Solver.solve ~assumptions:[ 1; 2; 3 ] s));
        let core = Solver.unsat_core s in
        check_bool "core nonempty" true (core <> []);
        check_bool "core is a subset of the assumptions" true
          (List.for_all (fun l -> List.mem l [ 1; 2; 3 ]) core);
        check_bool "core avoids the irrelevant assumption" true
          (not (List.mem 3 core));
        (* the core alone must reproduce the refutation *)
        check_bool "core sufficient" true
          (is_unsat (Solver.solve ~assumptions:core s));
        (* and the instance itself is still satisfiable *)
        check_bool "sat without assumptions" true (is_sat (Solver.solve s));
        check_bool "core cleared on sat" true (Solver.unsat_core s = []));
    test_case "contradictory assumptions are unsat with both in core"
      (fun () ->
        let s = Solver.create 2 in
        Solver.add_clause s [ 1; 2 ];
        check_bool "unsat" true (is_unsat (Solver.solve ~assumptions:[ 1; -1 ] s));
        let core = Solver.unsat_core s in
        check_bool "core names the contradiction" true
          (List.mem 1 core && List.mem (-1) core));
    test_case "learned clauses persist across assumption solves" (fun () ->
        (* pigeonhole 5 guarded by variable g: under assumption g the
           instance is unsat and the refutation is learned as clauses over
           the pigeonhole variables and g. A second identical solve reuses
           them and must finish with strictly fewer conflicts. *)
        let nv, clauses = pigeonhole 4 in
        let g = nv + 1 in
        let s = Solver.create (nv + 1) in
        List.iter (fun c -> Solver.add_clause s (-g :: c)) clauses;
        check_bool "unsat under g" true
          (is_unsat (Solver.solve ~assumptions:[ g ] s));
        let first_conflicts, _ = Solver.stats s in
        check_bool "first solve searched" true (first_conflicts > 0);
        check_bool "clauses were learned" true (Solver.learned s > 0);
        check_bool "still unsat under g" true
          (is_unsat (Solver.solve ~assumptions:[ g ] s));
        let second_conflicts, _ = Solver.stats s in
        check_bool "retained learning made the re-solve cheaper" true
          (second_conflicts < first_conflicts);
        check_bool "sat without g" true (is_sat (Solver.solve s));
        check_bool "g deactivated" false (Solver.value s g));
    test_case "budget exhaustion sets the explicit flag" (fun () ->
        let nv, clauses = pigeonhole 6 in
        let s = Solver.create nv in
        List.iter (Solver.add_clause s) clauses;
        check_bool "unknown" true
          (Solver.solve ~conflict_budget:1 s = Solver.Unknown);
        check_bool "flag set" true (Solver.budget_exhausted s);
        let s2 = Solver.create 1 in
        Solver.add_clause s2 [ 1 ];
        check_bool "sat" true (is_sat (Solver.solve s2));
        check_bool "flag clear on completion" false (Solver.budget_exhausted s2));
    test_case "stats accumulate across solves" (fun () ->
        let nv, clauses = pigeonhole 3 in
        let g = nv + 1 in
        let s = Solver.create (nv + 1) in
        List.iter (fun c -> Solver.add_clause s (-g :: c)) clauses;
        let sum_c = ref 0 and sum_d = ref 0 and sum_r = ref 0 and sum_l = ref 0 in
        for _ = 1 to 3 do
          ignore (Solver.solve ~assumptions:[ g ] s);
          let c, d = Solver.stats s in
          sum_c := !sum_c + c;
          sum_d := !sum_d + d;
          sum_r := !sum_r + Solver.restarts s;
          sum_l := !sum_l + Solver.learned s
        done;
        check_bool "solves counted" true (Solver.solves s = 3);
        check_bool "totals are the per-call sums" true
          (Solver.total_stats s = (!sum_c, !sum_d, !sum_r, !sum_l)));
    test_case "config_of_seed is deterministic with seed 0 as default"
      (fun () ->
        check_bool "seed 0 is the default" true
          (Solver.config_of_seed 0 = Solver.default_config);
        List.iter
          (fun seed ->
            let a = Solver.config_of_seed seed in
            check_bool "pure function" true (a = Solver.config_of_seed seed);
            check_bool "seed recorded" true (a.Solver.seed = seed);
            check_bool "decay sane" true
              (a.Solver.decay > 0.0 && a.Solver.decay < 1.0);
            check_bool "restart base sane" true (a.Solver.restart_base > 0);
            check_bool "growth sane" true (a.Solver.restart_growth > 1.0))
          [ 1; 2; 3; 4; 17; 12345 ]);
  ]

(* Brute-force evaluator for cross-checking. *)
let brute_sat nv clauses =
  let rec go assignment v =
    if v > nv then
      List.for_all
        (fun clause ->
          List.exists
            (fun l -> if l > 0 then assignment.(l) else not assignment.(-l))
            clause)
        clauses
    else begin
      assignment.(v) <- true;
      go assignment (v + 1)
      ||
      (assignment.(v) <- false;
       go assignment (v + 1))
    end
  in
  go (Array.make (nv + 1) false) 1

let random_props =
  [
    QCheck.Test.make ~name:"CDCL agrees with brute force on random 3-SAT"
      ~count:300
      QCheck.(int_range 0 100_000)
      (fun seed ->
        let rng = Rng.create seed in
        let nv = 4 + Rng.int rng 7 in
        let n_clauses = 2 + Rng.int rng (4 * nv) in
        let clauses =
          List.init n_clauses (fun _ ->
              List.init 3 (fun _ ->
                  let v = 1 + Rng.int rng nv in
                  if Rng.bool rng then v else -v))
        in
        let s, r = solve_clauses nv clauses in
        match r with
        | Solver.Sat -> model_satisfies s clauses && brute_sat nv clauses
        | Solver.Unsat -> not (brute_sat nv clauses)
        | Solver.Unknown -> false);
    QCheck.Test.make
      ~name:"solving under assumptions matches adding them as units"
      ~count:300
      QCheck.(int_range 0 100_000)
      (fun seed ->
        let rng = Rng.create seed in
        let nv = 4 + Rng.int rng 7 in
        let n_clauses = 2 + Rng.int rng (4 * nv) in
        let clauses =
          List.init n_clauses (fun _ ->
              List.init 3 (fun _ ->
                  let v = 1 + Rng.int rng nv in
                  if Rng.bool rng then v else -v))
        in
        let assumptions =
          List.init
            (Rng.int rng 4)
            (fun _ ->
              let v = 1 + Rng.int rng nv in
              if Rng.bool rng then v else -v)
        in
        (* one incremental solver, queried twice (plain, then assumed) — the
           assumed verdict must match a fresh solver with the assumptions
           baked in as unit clauses *)
        let s = Solver.create nv in
        List.iter (Solver.add_clause s) clauses;
        let plain = Solver.solve s in
        let assumed = Solver.solve ~assumptions s in
        let baked, baked_r =
          solve_clauses nv (List.map (fun l -> [ l ]) assumptions @ clauses)
        in
        ignore baked;
        is_sat assumed = is_sat baked_r
        && is_unsat assumed = is_unsat baked_r
        (* an assumption-unsat must expose a core drawn from assumptions *)
        && (not (is_unsat assumed && is_sat plain)
           || Solver.unsat_core s <> []
              && List.for_all
                   (fun l -> List.mem l assumptions)
                   (Solver.unsat_core s)));
    QCheck.Test.make
      ~name:"diversified portfolio configs agree with brute force"
      ~count:150
      QCheck.(pair (int_range 0 50_000) (int_range 1 8))
      (fun (seed, cfg_seed) ->
        let rng = Rng.create seed in
        let nv = 4 + Rng.int rng 6 in
        let n_clauses = 2 + Rng.int rng (4 * nv) in
        let clauses =
          List.init n_clauses (fun _ ->
              List.init 3 (fun _ ->
                  let v = 1 + Rng.int rng nv in
                  if Rng.bool rng then v else -v))
        in
        let s = Solver.create ~config:(Solver.config_of_seed cfg_seed) nv in
        List.iter (Solver.add_clause s) clauses;
        match Solver.solve s with
        | Solver.Sat -> model_satisfies s clauses && brute_sat nv clauses
        | Solver.Unsat -> not (brute_sat nv clauses)
        | Solver.Unknown -> false);
  ]

let () =
  Alcotest.run "qls_sat"
    [
      ("solver", basic_tests);
      ("incremental", incremental_tests);
      ("random", List.map QCheck_alcotest.to_alcotest random_props);
    ]
