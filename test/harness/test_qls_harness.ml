(* Tests for the Qls_harness campaign engine: task identity and seed
   derivation, the typed error taxonomy, the CRC-sealed JSONL checkpoint
   store (quarantine + compact), the domain pool, per-task isolation
   (exceptions and timeouts, classified retry with backoff), degradation,
   the failure budget, scheduling-independence of results, and
   resume-from-checkpoint. *)

module Task = Qls_harness.Task
module Herror = Qls_harness.Herror
module Pool = Qls_harness.Pool
module Store = Qls_harness.Store
module Runner = Qls_harness.Runner
module Progress = Qls_harness.Progress
module Campaign = Qls_harness.Campaign
module Topologies = Qls_arch.Topologies
module Metrics = Qls_layout.Metrics
module Sabre = Qls_router.Sabre
module Evaluation = Qubikos.Evaluation

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let test_case name f = Alcotest.test_case name `Quick f

let mk_task ?(device = "grid3x3") ?(n_swaps = 2) ?(circuit = 0)
    ?(tool = "sabre") ?(gate_budget = 30) ?(sabre_trials = 2) ?(base_seed = 0)
    () =
  {
    Task.device;
    n_swaps;
    circuit;
    tool;
    gate_budget;
    single_qubit_ratio = 0.0;
    sabre_trials;
    base_seed;
  }

let fresh_store_path () =
  let path = Filename.temp_file "qls_harness_test" ".jsonl" in
  Sys.remove path;
  path

(* A deterministic synthetic workload: outcome is a pure function of the
   task, like real routing, but instant. *)
let synthetic_exec task =
  { Task.swaps = Task.rng_seed task mod 97; seconds = 0.0; attempts = 1 }

let transient_exn msg = Herror.Error (Herror.transient ~site:"test" msg)

(* ------------------------------------------------------------------ *)
(* Task                                                                *)
(* ------------------------------------------------------------------ *)

let task_tests =
  [
    test_case "id distinguishes every field that affects the result"
      (fun () ->
        let base = mk_task () in
        let variants =
          [
            mk_task ~device:"aspen4" ();
            mk_task ~n_swaps:3 ();
            mk_task ~circuit:1 ();
            mk_task ~tool:"tket" ();
            mk_task ~gate_budget:40 ();
            mk_task ~sabre_trials:5 ();
            mk_task ~base_seed:1 ();
          ]
        in
        List.iter
          (fun v ->
            check_bool "distinct id" true (Task.id v <> Task.id base))
          variants);
    test_case "circuit seed matches the sequential suite derivation"
      (fun () ->
        let t = mk_task ~n_swaps:3 ~circuit:2 ~base_seed:7 () in
        check_int "seed" (7 + 3000 + 2) (Task.circuit_seed t));
    test_case "rng seed is a stable pure function of the task" (fun () ->
        let t = mk_task () in
        check_int "stable" (Task.rng_seed t) (Task.rng_seed t);
        check_bool "tool changes the stream" true
          (Task.rng_seed t <> Task.rng_seed (mk_task ~tool:"qmap" ())));
    test_case "ratio divides by the designed optimum" (fun () ->
        let t = mk_task ~n_swaps:4 () in
        match Task.ratio ~task:t { Task.swaps = 10; seconds = 0.0; attempts = 1 } with
        | Some r -> Alcotest.(check (float 1e-9)) "ratio" 2.5 r
        | None -> Alcotest.fail "expected a ratio");
  ]

(* ------------------------------------------------------------------ *)
(* Herror                                                              *)
(* ------------------------------------------------------------------ *)

let herror_tests =
  [
    test_case "retryable is exactly transient and timeout" (fun () ->
        check_bool "transient" true (Herror.retryable (Herror.transient "x"));
        check_bool "timeout" true (Herror.retryable (Herror.timeout 1.0));
        check_bool "permanent" false (Herror.retryable (Herror.permanent "x"));
        check_bool "corrupt" false (Herror.retryable (Herror.corrupt "x")));
    test_case "of_exn classifies exceptions" (fun () ->
        let e = Herror.of_exn ~site:"runner.exec" (Failure "kaput") in
        check_bool "failure is permanent" true (e.Herror.klass = Herror.Permanent);
        check_string "site" "runner.exec" e.Herror.site;
        let e =
          Herror.of_exn ~site:"runner.exec"
            (Unix.Unix_error (Unix.EAGAIN, "read", ""))
        in
        check_bool "eagain is transient" true (e.Herror.klass = Herror.Transient);
        let e =
          Herror.of_exn ~site:"s"
            (Herror.Error (Herror.corrupt ~site:"store.load" "bad line"))
        in
        check_string "Error unwraps with its own site" "store.load" e.Herror.site);
    test_case "injected faults classify by their flag" (fun () ->
        let t =
          Herror.of_exn ~site:"runner.exec"
            (Qls_faults.Injected { site = "runner.exec"; transient = true })
        in
        check_bool "transient" true (t.Herror.klass = Herror.Transient);
        let p =
          Herror.of_exn ~site:"runner.exec"
            (Qls_faults.Injected { site = "runner.exec"; transient = false })
        in
        check_bool "permanent" true (p.Herror.klass = Herror.Permanent));
    test_case "klass names round trip" (fun () ->
        List.iter
          (fun k ->
            check_bool "round trip" true
              (Herror.klass_of_name (Herror.klass_name k) = Some k))
          [ Herror.Transient; Herror.Permanent; Herror.Timeout; Herror.Corrupt ]);
  ]

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let store_tests =
  [
    test_case "round trip preserves ok, degraded and failed entries"
      (fun () ->
        let path = fresh_store_path () in
        let store = Store.open_append path in
        let err = Herror.v ~site:"runner.exec" ~attempts:2 Herror.Timeout "timeout after 1s" in
        Store.append store
          {
            Store.task_id = "a/1";
            status = Task.Done { Task.swaps = 12; seconds = 0.5; attempts = 1 };
          };
        Store.append store
          {
            Store.task_id = "a/2";
            status =
              Task.Failed (Herror.permanent ~site:"runner.exec" "boom \"quoted\"\n");
          };
        Store.append store
          {
            Store.task_id = "a/3";
            status =
              Task.Degraded
                {
                  Task.outcome = { Task.swaps = 9; seconds = 0.25; attempts = 1 };
                  via = "sabre";
                  error = err;
                };
          };
        Store.close store;
        (match Store.load path with
        | [ e1; e2; e3 ] ->
            check_string "id 1" "a/1" e1.Store.task_id;
            (match e1.Store.status with
            | Task.Done o -> check_int "swaps" 12 o.Task.swaps
            | _ -> Alcotest.fail "entry 1 should be ok");
            (match e2.Store.status with
            | Task.Failed e ->
                check_string "escape round trip" "boom \"quoted\"\n"
                  e.Herror.message;
                check_bool "class" true (e.Herror.klass = Herror.Permanent);
                check_string "site" "runner.exec" e.Herror.site
            | _ -> Alcotest.fail "entry 2 should be failed");
            (match e3.Store.status with
            | Task.Degraded d ->
                check_string "via" "sabre" d.Task.via;
                check_int "fallback swaps" 9 d.Task.outcome.Task.swaps;
                check_bool "original error class" true
                  (d.Task.error.Herror.klass = Herror.Timeout);
                check_int "attempts" 2 d.Task.error.Herror.attempts
            | _ -> Alcotest.fail "entry 3 should be degraded")
        | es ->
            Alcotest.failf "expected 3 entries, got %d" (List.length es));
        Sys.remove path);
    test_case "a truncated final line is quarantined, earlier lines survive"
      (fun () ->
        let path = fresh_store_path () in
        let store = Store.open_append path in
        Store.append store
          {
            Store.task_id = "ok";
            status = Task.Done { Task.swaps = 1; seconds = 0.1; attempts = 1 };
          };
        Store.close store;
        let oc = open_out_gen [ Open_append ] 0o644 path in
        output_string oc {|{"id":"half","status":"o|};
        close_out oc;
        let entries, bad = Store.load_verified path in
        check_int "one entry" 1 (List.length entries);
        check_int "one quarantined line" 1 (List.length bad);
        check_int "it is the torn tail" 2 (List.hd bad).Store.line_no;
        Sys.remove path);
    test_case "an interior bit flip is caught by the crc and quarantined"
      (fun () ->
        let path = fresh_store_path () in
        let store = Store.open_append path in
        List.iter
          (fun i ->
            Store.append store
              {
                Store.task_id = Printf.sprintf "t/%d" i;
                status = Task.Done { Task.swaps = i; seconds = 0.1; attempts = 1 };
              })
          [ 0; 1; 2 ];
        Store.close store;
        (* Flip one digit inside the *middle* line's swaps field: the
           JSON still parses, only the checksum can notice. *)
        let lines =
          In_channel.with_open_text path In_channel.input_lines
        in
        let damaged =
          List.mapi
            (fun i line ->
              if i <> 1 then line
              else
                String.map (fun c -> if c = '1' then '7' else c) line)
            lines
        in
        Out_channel.with_open_text path (fun oc ->
            List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) damaged);
        let entries, bad = Store.load_verified path in
        check_int "two entries survive" 2 (List.length entries);
        check_int "one quarantined" 1 (List.length bad);
        check_int "line 2 is the damaged one" 2 (List.hd bad).Store.line_no;
        check_string "reason" "crc mismatch" (List.hd bad).Store.reason;
        Sys.remove path);
    test_case "legacy v1 lines without crc are still accepted" (fun () ->
        let path = fresh_store_path () in
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc
              ("{\"id\":\"old/1\",\"status\":\"ok\",\"swaps\":4,\"seconds\":0.1}\n"
             ^ "{\"id\":\"old/2\",\"status\":\"failed\",\"error\":\"kaput\"}\n"));
        (match Store.load_verified path with
        | [ e1; e2 ], [] ->
            (match e1.Store.status with
            | Task.Done o -> check_int "v1 ok" 4 o.Task.swaps
            | _ -> Alcotest.fail "v1 ok line");
            (match e2.Store.status with
            | Task.Failed e ->
                check_string "v1 message" "kaput" e.Herror.message;
                check_bool "v1 errors default to permanent" true
                  (e.Herror.klass = Herror.Permanent)
            | _ -> Alcotest.fail "v1 failed line")
        | es, bad ->
            Alcotest.failf "expected 2 clean entries, got %d (+%d bad)"
              (List.length es) (List.length bad));
        Sys.remove path);
    test_case "strict unicode escapes: garbage hex is quarantined" (fun () ->
        let path = fresh_store_path () in
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc
              "{\"id\":\"\\u+9ab\",\"status\":\"ok\",\"swaps\":1,\"seconds\":0.1}\n");
        let entries, bad = Store.load_verified path in
        check_int "rejected" 0 (List.length entries);
        check_int "quarantined" 1 (List.length bad);
        Sys.remove path);
    test_case "unicode escapes decode as UTF-8, not a truncated byte"
      (fun () ->
        let path = fresh_store_path () in
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc
              "{\"id\":\"q\\u00e9\\u20ac\",\"status\":\"ok\",\"swaps\":1,\"seconds\":0.1}\n");
        (match Store.load path with
        | [ e ] -> check_string "utf-8" "q\xc3\xa9\xe2\x82\xac" e.Store.task_id
        | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es));
        Sys.remove path);
    test_case "completed keeps the last entry per task" (fun () ->
        let completed =
          Store.completed
            [
              { Store.task_id = "t"; status = Task.Failed (Herror.permanent "first") };
              {
                Store.task_id = "t";
                status = Task.Done { Task.swaps = 3; seconds = 0.2; attempts = 1 };
              };
            ]
        in
        match Hashtbl.find_opt completed "t" with
        | Some (Task.Done o) -> check_int "last wins" 3 o.Task.swaps
        | _ -> Alcotest.fail "expected the ok entry");
    test_case "compact drops superseded and corrupt lines atomically"
      (fun () ->
        let path = fresh_store_path () in
        let store = Store.open_append path in
        Store.append store
          { Store.task_id = "t/0"; status = Task.Failed (Herror.timeout 1.0) };
        Store.append store
          {
            Store.task_id = "t/1";
            status = Task.Done { Task.swaps = 5; seconds = 0.1; attempts = 1 };
          };
        Store.append store
          {
            Store.task_id = "t/0";
            status = Task.Done { Task.swaps = 2; seconds = 0.4; attempts = 1 };
          };
        Store.close store;
        (* Splice a corrupt line into the middle of the file. *)
        let lines = In_channel.with_open_text path In_channel.input_lines in
        Out_channel.with_open_text path (fun oc ->
            List.iteri
              (fun i l ->
                if i = 1 then Out_channel.output_string oc "garbage{{{\n";
                Out_channel.output_string oc (l ^ "\n"))
              lines);
        let stats = Store.compact path in
        check_int "kept" 2 stats.Store.kept;
        check_int "superseded" 1 stats.Store.superseded;
        check_int "quarantined" 1 stats.Store.quarantined;
        (match Store.load_verified path with
        | [ e0; e1 ], [] ->
            check_string "first-appearance order" "t/0" e0.Store.task_id;
            (match e0.Store.status with
            | Task.Done o -> check_int "last status wins" 2 o.Task.swaps
            | _ -> Alcotest.fail "t/0 should be ok after compact");
            check_string "second" "t/1" e1.Store.task_id
        | es, bad ->
            Alcotest.failf "expected 2 clean entries, got %d (+%d bad)"
              (List.length es) (List.length bad));
        check_bool "quarantine file exists" true
          (Sys.file_exists (path ^ ".quarantine"));
        Sys.remove path;
        Sys.remove (path ^ ".quarantine"));
  ]

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let pool_tests =
  [
    test_case "parallel map equals sequential map, in order" (fun () ->
        let tasks = Array.init 50 Fun.id in
        let f x = (x * 37) mod 101 in
        let seq = Pool.map ~jobs:1 ~f tasks in
        let par = Pool.map ~jobs:4 ~f tasks in
        Alcotest.(check (array int)) "identical" seq par);
    test_case "more workers than tasks is fine" (fun () ->
        let r = Pool.map ~jobs:8 ~f:succ [| 1; 2 |] in
        Alcotest.(check (array int)) "results" [| 2; 3 |] r);
    test_case "empty input" (fun () ->
        check_int "no results" 0 (Array.length (Pool.map ~jobs:4 ~f:succ [||])));
    test_case "a worker exception is re-raised, not a missing-result crash"
      (fun () ->
        (* Before PR 3 a worker exception killed its domain silently and
           the caller died on "Pool.run: missing result" with the real
           failure lost. The pool must now join every domain and re-raise
           the first worker exception on the calling domain. *)
        let f x = if x = 13 then failwith "boom" else x * 2 in
        check_bool "failure surfaces" true
          (try
             ignore (Pool.map ~jobs:4 ~f (Array.init 40 Fun.id));
             false
           with Failure m -> m = "boom"));
    test_case "worker exception with jobs = 1 (inline path)" (fun () ->
        check_bool "failure surfaces" true
          (try
             ignore (Pool.map ~jobs:1 ~f:(fun _ -> failwith "inline") [| 0 |]);
             false
           with Failure m -> m = "inline"));
    test_case "only the first exception wins when several workers fail"
      (fun () ->
        (* Every task fails; whichever exception is recorded first must be
           the one re-raised — a Failure from [f], never an internal
           missing-result Invalid_argument. *)
        check_bool "a task failure, not an internal error" true
          (try
             ignore
               (Pool.map ~jobs:4
                  ~f:(fun x -> failwith (string_of_int x))
                  (Array.init 20 Fun.id));
             false
           with
           | Failure _ -> true
           | Invalid_argument _ -> false));
    test_case "results before the failure point are not required" (fun () ->
        (* Failing on the very first task index must still tear down
           cleanly even though no result was ever produced. *)
        check_bool "clean teardown" true
          (try
             ignore (Pool.map ~jobs:2 ~f:(fun _ -> failwith "early") [| 1; 2; 3 |]);
             false
           with Failure m -> m = "early"));
  ]

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let immediate = { Runner.default with Runner.backoff = 0.0 }

let runner_tests =
  [
    test_case "an exception becomes a typed permanent error" (fun () ->
        match Runner.run Runner.default (fun () -> failwith "kaput") with
        | Error e ->
            check_bool "permanent" true (e.Herror.klass = Herror.Permanent);
            check_bool "mentions the exception" true
              (String.index_opt e.Herror.message 'k' <> None);
            check_int "one attempt" 1 e.Herror.attempts
        | Ok _ -> Alcotest.fail "expected an error");
    test_case "a slow task exceeds its wall-clock budget" (fun () ->
        match
          Runner.run
            { immediate with Runner.timeout = Some 0.05 }
            (fun () -> Thread.delay 0.3)
        with
        | Error e -> check_bool "timeout class" true (e.Herror.klass = Herror.Timeout)
        | Ok () -> Alcotest.fail "expected a timeout");
    test_case "a fast task under a timeout succeeds" (fun () ->
        match
          Runner.run { immediate with Runner.timeout = Some 5.0 } (fun () -> 42)
        with
        | Ok v -> check_int "result" 42 v
        | Error e -> Alcotest.failf "unexpected error: %s" (Herror.to_string e));
    test_case "bounded retry recovers a flaky (transient) task" (fun () ->
        let attempts = Atomic.make 0 in
        let flaky () =
          if Atomic.fetch_and_add attempts 1 < 2 then raise (transient_exn "flaky")
          else 7
        in
        (match Runner.run { immediate with Runner.retries = 2 } flaky with
        | Ok v -> check_int "third attempt" 7 v
        | Error e -> Alcotest.failf "unexpected error: %s" (Herror.to_string e));
        check_int "attempts" 3 (Atomic.get attempts));
    test_case "a permanent error is never retried" (fun () ->
        let attempts = Atomic.make 0 in
        let always () =
          Atomic.incr attempts;
          failwith "deterministic"
        in
        (match Runner.run { immediate with Runner.retries = 5 } always with
        | Error e ->
            check_bool "permanent" true (e.Herror.klass = Herror.Permanent);
            check_int "terminal after one attempt" 1 e.Herror.attempts
        | Ok _ -> Alcotest.fail "expected an error");
        check_int "executed exactly once" 1 (Atomic.get attempts));
    test_case "retry budget exhausts and reports attempts" (fun () ->
        let attempts = Atomic.make 0 in
        (match
           Runner.run
             { immediate with Runner.retries = 1 }
             (fun () ->
               Atomic.incr attempts;
               raise (transient_exn "always"))
         with
        | Error e -> check_int "attempts recorded" 2 e.Herror.attempts
        | Ok _ -> Alcotest.fail "expected exhaustion");
        check_int "two attempts" 2 (Atomic.get attempts));
    test_case "backoff schedule is deterministic, jittered, exponential"
      (fun () ->
        let config =
          { Runner.default with Runner.backoff = 0.1; backoff_max = 10.0 }
        in
        let d0 = Runner.backoff_delay config ~seed:42 ~attempt:0 in
        let d0' = Runner.backoff_delay config ~seed:42 ~attempt:0 in
        let d3 = Runner.backoff_delay config ~seed:42 ~attempt:3 in
        Alcotest.(check (float 0.0)) "deterministic" d0 d0';
        check_bool "within jitter band 0" true (d0 >= 0.05 && d0 < 0.15);
        check_bool "within jitter band 3" true (d3 >= 0.4 && d3 < 1.2);
        check_bool "seeds decorrelate" true
          (Runner.backoff_delay config ~seed:1 ~attempt:0
          <> Runner.backoff_delay config ~seed:2 ~attempt:0));
    test_case "backoff is capped" (fun () ->
        let config =
          { Runner.default with Runner.backoff = 1.0; backoff_max = 2.0 }
        in
        check_bool "cap" true
          (Runner.backoff_delay config ~seed:0 ~attempt:20 < 3.0));
  ]

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

let campaign_config ?(jobs = 1) ?timeout ?store_path ?(resume = false)
    ?failure_budget ?fallback () =
  {
    (Campaign.default_config ()) with
    jobs;
    timeout;
    backoff = 0.0;
    store_path;
    resume;
    failure_budget;
    fallback;
    report = None;
  }

let synthetic_tasks n =
  List.init n (fun i ->
      mk_task ~circuit:(i / 4)
        ~tool:(List.nth [ "sabre"; "mlqls"; "qmap"; "tket" ] (i mod 4))
        ())

let swaps_of_rows rows =
  List.map
    (fun r ->
      match r.Campaign.status with
      | Task.Done o -> (Task.id r.Campaign.task, o.Task.swaps)
      | Task.Degraded _ -> Alcotest.fail "unexpected degradation"
      | Task.Failed e ->
          Alcotest.failf "unexpected failure: %s" (Herror.to_string e))
    rows

let campaign_tests =
  [
    test_case "pool results are identical to sequential execution" (fun () ->
        let tasks = synthetic_tasks 32 in
        let seq =
          Campaign.run (campaign_config ~jobs:1 ()) ~exec:synthetic_exec tasks
        in
        let par =
          Campaign.run (campaign_config ~jobs:4 ()) ~exec:synthetic_exec tasks
        in
        Alcotest.(check (list (pair string int)))
          "scheduling independent" (swaps_of_rows seq) (swaps_of_rows par));
    test_case "routing campaign is scheduling independent (real tools)"
      (fun () ->
        let device = Topologies.grid 3 3 in
        let config =
          {
            (Evaluation.default_figure_config device) with
            swap_counts = [ 1; 2 ];
            circuits_per_point = 2;
            gate_budget = 25;
            sabre_trials = 2;
          }
        in
        let tools =
          [ Sabre.router ~options:(Sabre.with_trials 2 Sabre.default_options) () ]
        in
        let rows jobs = Evaluation.run_campaign ~tools ~jobs ~config device in
        Alcotest.(check (list (pair string int)))
          "jobs=1 equals jobs=3"
          (swaps_of_rows (rows 1))
          (swaps_of_rows (rows 3)));
    test_case "resume skips exactly the completed task set" (fun () ->
        let tasks = synthetic_tasks 16 in
        let first, rest =
          List.filteri (fun i _ -> i < 6) tasks,
          List.filteri (fun i _ -> i >= 6) tasks
        in
        let path = fresh_store_path () in
        let executed = Atomic.make 0 in
        let counting_exec t =
          Atomic.incr executed;
          synthetic_exec t
        in
        (* First (killed) run: only 6 tasks reach the store. *)
        ignore
          (Campaign.run
             (campaign_config ~store_path:path ())
             ~exec:counting_exec first);
        check_int "checkpoint has the first batch" 6
          (List.length (Store.load path));
        (* Resumed run over the full set. *)
        Atomic.set executed 0;
        let rows =
          Campaign.run
            (campaign_config ~jobs:2 ~store_path:path ~resume:true ())
            ~exec:counting_exec tasks
        in
        check_int "only the remainder executed" (List.length rest)
          (Atomic.get executed);
        check_int "store now covers every task" (List.length tasks)
          (List.length (Store.load path));
        let resumed, fresh =
          List.partition (fun r -> r.Campaign.resumed) rows
        in
        check_int "resumed rows" 6 (List.length resumed);
        check_int "fresh rows" (List.length rest) (List.length fresh);
        (* Resumed results agree with what a fresh run would compute. *)
        List.iter
          (fun r ->
            match r.Campaign.status with
            | Task.Done o ->
                check_int "resumed result is the computed result"
                  (synthetic_exec r.Campaign.task).Task.swaps o.Task.swaps
            | Task.Degraded _ -> Alcotest.fail "unexpected degradation"
            | Task.Failed e ->
                Alcotest.failf "unexpected failure: %s" (Herror.to_string e))
          rows;
        Sys.remove path);
    test_case "a raising task fails alone, siblings are unharmed" (fun () ->
        let tasks = synthetic_tasks 12 in
        let poison = Task.id (List.nth tasks 5) in
        let exec t =
          if Task.id t = poison then failwith "router exploded"
          else synthetic_exec t
        in
        let rows = Campaign.run (campaign_config ~jobs:3 ()) ~exec tasks in
        check_int "one failure" 1 (List.length (Campaign.failures rows));
        check_int "rest succeeded" 11 (List.length (Campaign.outcomes rows));
        match (List.nth rows 5).Campaign.status with
        | Task.Failed e ->
            check_bool "typed as permanent" true
              (e.Herror.klass = Herror.Permanent);
            check_string "observed at the exec site" "runner.exec" e.Herror.site
        | _ -> Alcotest.fail "poisoned task should fail");
    test_case "a task over its timeout fails alone" (fun () ->
        let tasks = synthetic_tasks 8 in
        let slow = Task.id (List.nth tasks 2) in
        let exec t =
          if Task.id t = slow then Thread.delay 0.4;
          synthetic_exec t
        in
        let rows =
          Campaign.run
            (campaign_config ~jobs:2 ~timeout:0.05 ())
            ~exec tasks
        in
        (match (List.nth rows 2).Campaign.status with
        | Task.Failed e ->
            check_bool "timeout class" true (e.Herror.klass = Herror.Timeout)
        | _ -> Alcotest.fail "slow task should time out");
        check_int "siblings unharmed" 7 (List.length (Campaign.outcomes rows)));
    test_case "a failed tool degrades to its fallback, recorded as such"
      (fun () ->
        let tasks = synthetic_tasks 8 in
        let exec t =
          if t.Task.tool = "qmap" then failwith "solver blew up"
          else synthetic_exec t
        in
        let fallback = function "qmap" -> Some "sabre" | _ -> None in
        let rows =
          Campaign.run (campaign_config ~jobs:2 ~fallback ()) ~exec tasks
        in
        let rescued = Campaign.degraded rows in
        check_int "both qmap tasks degraded" 2 (List.length rescued);
        check_int "no failures" 0 (List.length (Campaign.failures rows));
        check_int "others untouched" 6 (List.length (Campaign.outcomes rows));
        List.iter
          (fun ((task : Task.t), (d : Task.degradation)) ->
            check_string "degraded task is the qmap one" "qmap" task.Task.tool;
            check_string "via" "sabre" d.Task.via;
            (* The outcome is the fallback task's deterministic result. *)
            check_int "fallback outcome"
              (synthetic_exec { task with Task.tool = "sabre" }).Task.swaps
              d.Task.outcome.Task.swaps;
            check_bool "original error kept" true
              (d.Task.error.Herror.klass = Herror.Permanent))
          rescued);
    test_case "degradation failing too leaves the original error" (fun () ->
        let tasks = synthetic_tasks 4 in
        let exec t =
          if t.Task.tool = "qmap" || t.Task.tool = "sabre" then
            failwith "everything down"
          else synthetic_exec t
        in
        let fallback = function "qmap" -> Some "sabre" | _ -> None in
        let rows = Campaign.run (campaign_config ~fallback ()) ~exec tasks in
        check_int "qmap and sabre failed" 2 (List.length (Campaign.failures rows));
        check_int "nothing degraded" 0 (List.length (Campaign.degraded rows)));
    test_case "failure budget aborts a doomed campaign early" (fun () ->
        let tasks = synthetic_tasks 64 in
        let executed = Atomic.make 0 in
        let exec _ =
          Atomic.incr executed;
          failwith "dead cluster"
        in
        let rows =
          Campaign.run
            (campaign_config ~failure_budget:0.5 ())
            ~exec tasks
        in
        (match Campaign.aborted rows with
        | Some why ->
            check_bool "mentions the budget" true
              (String.length why > 0)
        | None -> Alcotest.fail "expected an abort");
        check_bool "stopped early" true (Atomic.get executed < 20);
        check_int "every task still has a row" 64 (List.length rows));
    test_case "aborted tasks are not checkpointed, so resume re-runs them"
      (fun () ->
        let tasks = synthetic_tasks 32 in
        let path = fresh_store_path () in
        let dead = Atomic.make true in
        let exec t =
          if Atomic.get dead then failwith "dead cluster"
          else synthetic_exec t
        in
        ignore
          (Campaign.run
             (campaign_config ~store_path:path ~failure_budget:0.5 ())
             ~exec tasks);
        let checkpointed = List.length (Store.load path) in
        check_bool "some tasks never reached the store" true
          (checkpointed < 32);
        (* The cluster recovers; resume must finish the rest. *)
        Atomic.set dead false;
        let rows =
          Campaign.run
            (campaign_config ~store_path:path ~resume:true ())
            ~exec tasks
        in
        check_int "all rows fresh or resumed" 32 (List.length rows);
        check_int "every remaining task now succeeded"
          (32 - checkpointed)
          (List.length (Campaign.outcomes rows));
        Sys.remove path);
    test_case "progress tracks counts, degradation and per-tool gaps"
      (fun () ->
        let p = Progress.create ~total:5 in
        Progress.record ~ratio:2.0 ~tool:"sabre" ~outcome:`Ok p;
        Progress.record ~ratio:4.0 ~tool:"sabre" ~outcome:`Ok p;
        Progress.record ~tool:"tket" ~outcome:`Failed p;
        Progress.record ~ratio:9.0 ~tool:"qmap" ~outcome:`Degraded p;
        Progress.record_resumed p;
        check_int "finished" 5 (Progress.finished p);
        let line = Progress.render p in
        let contains re =
          let rec go i =
            i + String.length re <= String.length line
            && (String.sub line i (String.length re) = re || go (i + 1))
          in
          go 0
        in
        check_bool "mentions the mean gap" true (contains "sabre 3.0x");
        check_bool "mentions degradation" true (contains "degraded:1");
        check_bool "degraded ratio not folded into qmap's gap" false
          (contains "qmap"));
  ]

(* ------------------------------------------------------------------ *)
(* Aggregation resilience (Metrics.mean_opt + empty-point skip)        *)
(* ------------------------------------------------------------------ *)

let aggregation_tests =
  [
    test_case "mean_opt is None on empty, mean otherwise" (fun () ->
        check_bool "empty" true (Metrics.mean_opt [] = None);
        match Metrics.mean_opt [ 2.0; 4.0 ] with
        | Some m -> Alcotest.(check (float 1e-9)) "mean" 3.0 m
        | None -> Alcotest.fail "expected a mean");
    test_case "a point whose tasks all failed is skipped, not fatal"
      (fun () ->
        let device = Topologies.grid 3 3 in
        let config =
          {
            (Evaluation.default_figure_config device) with
            swap_counts = [ 2 ];
            circuits_per_point = 2;
            gate_budget = 25;
          }
        in
        let tasks = Evaluation.campaign_tasks ~config device in
        (* Every tool except sabre dies; aggregation must survive and
           produce only the sabre point. *)
        let exec t =
          if t.Task.tool <> "sabre" then failwith "down"
          else synthetic_exec t
        in
        let rows =
          Campaign.run (campaign_config ~jobs:2 ()) ~exec tasks
        in
        let points = Evaluation.aggregate_campaign ~config ~device rows in
        check_int "only the surviving tool" 1 (List.length points);
        check_string "it is sabre" "sabre"
          (List.hd points).Evaluation.tool_name);
    test_case "degraded rows count as coverage, not as the tool's samples"
      (fun () ->
        let device = Topologies.grid 3 3 in
        let config =
          {
            (Evaluation.default_figure_config device) with
            swap_counts = [ 2 ];
            circuits_per_point = 2;
            gate_budget = 25;
          }
        in
        let tasks = Evaluation.campaign_tasks ~config device in
        let exec t =
          if t.Task.tool = "qmap" then failwith "down" else synthetic_exec t
        in
        let fallback = function "qmap" -> Some "sabre" | _ -> None in
        let rows = Campaign.run (campaign_config ~fallback ()) ~exec tasks in
        let points = Evaluation.aggregate_campaign ~config ~device rows in
        (* qmap has no samples of its own -> skipped, but its rescue is
           visible: no qmap point, and the degraded count lives on rows. *)
        check_bool "qmap point skipped" true
          (not
             (List.exists (fun p -> p.Evaluation.tool_name = "qmap") points));
        check_int "its two instances were rescued" 2
          (List.length (Campaign.degraded rows)));
    test_case "all tasks failing aggregates to an empty figure" (fun () ->
        let device = Topologies.grid 3 3 in
        let config =
          {
            (Evaluation.default_figure_config device) with
            swap_counts = [ 1 ];
            circuits_per_point = 1;
          }
        in
        let tasks = Evaluation.campaign_tasks ~config device in
        let rows =
          Campaign.run (campaign_config ())
            ~exec:(fun _ -> failwith "everything is broken")
            tasks
        in
        check_int "no points, no exception" 0
          (List.length (Evaluation.aggregate_campaign ~config ~device rows)));
  ]

(* ------------------------------------------------------------------ *)
(* Attempt-count surfacing: Runner.run_counted, the campaign's Done    *)
(* path, and the store round-trip (with v2 compatibility)              *)
(* ------------------------------------------------------------------ *)

let attempts_tests =
  [
    test_case "run_counted reports 1 attempt on first-try success" (fun () ->
        match Runner.run_counted immediate (fun () -> 9) with
        | Ok (v, attempts) ->
            check_int "value" 9 v;
            check_int "attempts" 1 attempts
        | Error e -> Alcotest.failf "unexpected error: %s" (Herror.to_string e));
    test_case "run_counted reports the real attempt count after retries"
      (fun () ->
        let calls = Atomic.make 0 in
        let flaky () =
          if Atomic.fetch_and_add calls 1 < 2 then raise (transient_exn "flaky")
          else 7
        in
        match Runner.run_counted { immediate with Runner.retries = 2 } flaky with
        | Ok (v, attempts) ->
            check_int "value" 7 v;
            check_int "three attempts" 3 attempts
        | Error e -> Alcotest.failf "unexpected error: %s" (Herror.to_string e));
    test_case "a retried task's Done row carries its attempt count \
               through the campaign and the store"
      (fun () ->
        let path = fresh_store_path () in
        let calls = Atomic.make 0 in
        let exec task =
          if Atomic.fetch_and_add calls 1 = 0 then
            raise (transient_exn "warmup")
          else synthetic_exec task
        in
        let config =
          { (campaign_config ~store_path:path ()) with Campaign.retries = 2 }
        in
        (match Campaign.run config ~exec [ mk_task () ] with
        | [ { Campaign.status = Task.Done o; _ } ] ->
            check_int "second attempt succeeded" 2 o.Task.attempts
        | _ -> Alcotest.fail "expected one Done row");
        (match Store.load path with
        | [ { Store.status = Task.Done o; _ } ] ->
            check_int "store preserves attempts" 2 o.Task.attempts
        | _ -> Alcotest.fail "expected one stored ok line");
        Sys.remove path);
    test_case "degraded lines round-trip both the error's and the \
               fallback's attempt counts"
      (fun () ->
        let path = fresh_store_path () in
        let store = Store.open_append path in
        let err =
          Herror.v ~site:"runner.exec" ~attempts:3 Herror.Timeout "slow"
        in
        Store.append store
          {
            Store.task_id = "d/1";
            status =
              Task.Degraded
                {
                  Task.outcome = { Task.swaps = 9; seconds = 0.25; attempts = 2 };
                  via = "sabre";
                  error = err;
                };
          };
        Store.close store;
        (match Store.load path with
        | [ { Store.status = Task.Degraded d; _ } ] ->
            check_int "fallback attempts" 2 d.Task.outcome.Task.attempts;
            check_int "original error attempts" 3 d.Task.error.Herror.attempts
        | _ -> Alcotest.fail "expected one degraded entry");
        Sys.remove path);
    test_case "v2 lines without attempt keys load with attempts = 1"
      (fun () ->
        let path = fresh_store_path () in
        let oc = open_out path in
        (* Pre-attempts ok and degraded lines, unsealed (v1 framing is
           still accepted) — exactly what an old store contains. *)
        output_string oc
          {|{"id":"old/ok","status":"ok","swaps":4,"seconds":0.5}|};
        output_char oc '\n';
        output_string oc
          {|{"id":"old/degr","status":"degraded","via":"sabre","swaps":6,"seconds":0.2,"eclass":"timeout","esite":"runner.exec","error":"slow","attempts":2}|};
        output_char oc '\n';
        close_out oc;
        let entries, corrupt = Store.load_verified path in
        Sys.remove path;
        check_int "nothing quarantined" 0 (List.length corrupt);
        match entries with
        | [ e1; e2 ] ->
            (match e1.Store.status with
            | Task.Done o ->
                check_int "ok defaults to one attempt" 1 o.Task.attempts
            | _ -> Alcotest.fail "entry 1 should be ok");
            (match e2.Store.status with
            | Task.Degraded d ->
                check_int "fallback defaults to one attempt" 1
                  d.Task.outcome.Task.attempts;
                check_int "error keeps its own attempts" 2
                  d.Task.error.Herror.attempts
            | _ -> Alcotest.fail "entry 2 should be degraded")
        | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l));
  ]

(* ------------------------------------------------------------------ *)
(* Cross-domain races: Progress counters/render and the stderr_report  *)
(* sequence counter hammered from several domains at once              *)
(* ------------------------------------------------------------------ *)

let concurrency_tests =
  [
    test_case "progress survives multi-domain record/render/eta hammering"
      (fun () ->
        let domains = 4 and per = 2_000 in
        let p = Progress.create ~total:(domains * per) in
        let worker d () =
          let tool = Printf.sprintf "tool%d" d in
          for i = 1 to per do
            (match i mod 3 with
            | 0 -> Progress.record ~tool ~outcome:`Failed p
            | 1 -> Progress.record ~ratio:2.0 ~tool ~outcome:`Ok p
            | _ -> Progress.record ~tool ~outcome:`Degraded p);
            (* Readers race the writers on purpose: [render] holds the
               tool mutex while [finished]/[eta_seconds] read the atomic
               counters — the pre-fix code read unguarded mutables here
               and could tear or deadlock. *)
            if i mod 128 = 0 then ignore (Progress.render p);
            ignore (Progress.finished p);
            ignore (Progress.eta_seconds p)
          done
        in
        let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
        List.iter Domain.join ds;
        check_int "no lost ticks" (domains * per) (Progress.finished p);
        check_bool "eta settles to None when done" true
          (Progress.eta_seconds p = None);
        (* Tools are listed in String.compare order whatever the domain
           interleaving was. *)
        let line = Progress.render p in
        let pos sub =
          let n = String.length sub in
          let rec go i =
            if i + n > String.length line then
              Alcotest.failf "render misses %S in %S" sub line
            else if String.sub line i n = sub then i
            else go (i + 1)
          in
          go 0
        in
        check_bool "tools sorted by name" true
          (pos "tool0" < pos "tool1"
          && pos "tool1" < pos "tool2"
          && pos "tool2" < pos "tool3"));
    test_case "tool_gaps snapshots exact sums under table-resize pressure"
      (fun () ->
        (* Unlike the hammering test above (4 fixed tools), every domain
           keeps inserting FRESH tool names, so the table resizes while
           other domains read it through [tool_gaps]. Without the mutex
           around both sides, a reader walks a half-rehashed table:
           entries vanish, sums tear, or the walk crashes. *)
        let domains = 4 and tools_per = 100 and hits = 20 in
        let p = Progress.create ~total:(domains * tools_per * hits) in
        let worker d () =
          for t = 0 to tools_per - 1 do
            let tool = Printf.sprintf "d%d.tool%03d" d t in
            for h = 1 to hits do
              Progress.record ~ratio:(float_of_int h) ~tool ~outcome:`Ok p
            done;
            ignore (Progress.tool_gaps p)
          done
        in
        let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
        List.iter Domain.join ds;
        let gaps = Progress.tool_gaps p in
        check_int "every tool surfaced" (domains * tools_per)
          (List.length gaps);
        (* Each tool saw ratios 1..hits exactly once: its mean is exact in
           binary floating point, so equality is [Float.equal], not an
           epsilon — any torn read-modify-write shows up. *)
        let expect = float_of_int (hits + 1) /. 2.0 in
        List.iter
          (fun (tool, gap) ->
            check_bool
              (Printf.sprintf "exact mean for %s" tool)
              true
              (Float.equal gap expect))
          gaps;
        let names = List.map fst gaps in
        check_bool "snapshot sorted by tool name" true
          (List.equal String.equal names (List.sort String.compare names)));
    test_case "stderr_report meters exactly total/20 lines from N domains"
      (fun () ->
        let total = 200 and domains = 4 in
        let emitted = Atomic.make 0 in
        let report =
          Campaign.stderr_report ~tty:false
            ~emit:(fun line ->
              check_bool "non-tty lines end in newline" true
                (String.length line > 0 && line.[String.length line - 1] = '\n');
              Atomic.incr emitted)
            ~total
        in
        let ds =
          List.init domains (fun _ ->
              Domain.spawn (fun () ->
                  for _ = 1 to total / domains do
                    report "campaign 1/200"
                  done))
        in
        List.iter Domain.join ds;
        (* every = total/20 = 10; the shared atomic counter fires on each
           multiple of 10 up to 200 — exactly 20 emissions. The pre-fix
           [int ref] lost increments across domains, skipping multiples
           and emitting a wrong, run-dependent number of lines. *)
        check_int "exactly 20 metered lines" 20 (Atomic.get emitted));
    test_case "stderr_report in tty mode rewrites every line in place"
      (fun () ->
        let calls = ref [] in
        let report =
          Campaign.stderr_report ~tty:true
            ~emit:(fun s -> calls := s :: !calls)
            ~total:3
        in
        report "a";
        report "b";
        check_int "every call emits" 2 (List.length !calls);
        check_bool "carriage-return rewrite" true
          (List.for_all (fun s -> String.length s > 0 && s.[0] = '\r') !calls));
  ]

let () =
  Alcotest.run "qls_harness"
    [
      ("task", task_tests);
      ("herror", herror_tests);
      ("store", store_tests);
      ("pool", pool_tests);
      ("runner", runner_tests);
      ("campaign", campaign_tests);
      ("aggregation", aggregation_tests);
      ("attempts", attempts_tests);
      ("concurrency", concurrency_tests);
    ]
