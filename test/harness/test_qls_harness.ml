(* Tests for the Qls_harness campaign engine: task identity and seed
   derivation, the JSONL checkpoint store, the domain pool, per-task
   isolation (exceptions and timeouts), scheduling-independence of
   results, and resume-from-checkpoint. *)

module Task = Qls_harness.Task
module Pool = Qls_harness.Pool
module Store = Qls_harness.Store
module Runner = Qls_harness.Runner
module Progress = Qls_harness.Progress
module Campaign = Qls_harness.Campaign
module Topologies = Qls_arch.Topologies
module Metrics = Qls_layout.Metrics
module Sabre = Qls_router.Sabre
module Evaluation = Qubikos.Evaluation

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let test_case name f = Alcotest.test_case name `Quick f

let mk_task ?(device = "grid3x3") ?(n_swaps = 2) ?(circuit = 0)
    ?(tool = "sabre") ?(gate_budget = 30) ?(sabre_trials = 2) ?(base_seed = 0)
    () =
  {
    Task.device;
    n_swaps;
    circuit;
    tool;
    gate_budget;
    single_qubit_ratio = 0.0;
    sabre_trials;
    base_seed;
  }

let fresh_store_path () =
  let path = Filename.temp_file "qls_harness_test" ".jsonl" in
  Sys.remove path;
  path

(* A deterministic synthetic workload: outcome is a pure function of the
   task, like real routing, but instant. *)
let synthetic_exec task =
  { Task.swaps = Task.rng_seed task mod 97; seconds = 0.0 }

(* ------------------------------------------------------------------ *)
(* Task                                                                *)
(* ------------------------------------------------------------------ *)

let task_tests =
  [
    test_case "id distinguishes every field that affects the result"
      (fun () ->
        let base = mk_task () in
        let variants =
          [
            mk_task ~device:"aspen4" ();
            mk_task ~n_swaps:3 ();
            mk_task ~circuit:1 ();
            mk_task ~tool:"tket" ();
            mk_task ~gate_budget:40 ();
            mk_task ~sabre_trials:5 ();
            mk_task ~base_seed:1 ();
          ]
        in
        List.iter
          (fun v ->
            check_bool "distinct id" true (Task.id v <> Task.id base))
          variants);
    test_case "circuit seed matches the sequential suite derivation"
      (fun () ->
        let t = mk_task ~n_swaps:3 ~circuit:2 ~base_seed:7 () in
        check_int "seed" (7 + 3000 + 2) (Task.circuit_seed t));
    test_case "rng seed is a stable pure function of the task" (fun () ->
        let t = mk_task () in
        check_int "stable" (Task.rng_seed t) (Task.rng_seed t);
        check_bool "tool changes the stream" true
          (Task.rng_seed t <> Task.rng_seed (mk_task ~tool:"qmap" ())));
    test_case "ratio divides by the designed optimum" (fun () ->
        let t = mk_task ~n_swaps:4 () in
        match Task.ratio ~task:t { Task.swaps = 10; seconds = 0.0 } with
        | Some r -> Alcotest.(check (float 1e-9)) "ratio" 2.5 r
        | None -> Alcotest.fail "expected a ratio");
  ]

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let store_tests =
  [
    test_case "round trip preserves ok and failed entries" (fun () ->
        let path = fresh_store_path () in
        let store = Store.open_append path in
        Store.append store
          {
            Store.task_id = "a/1";
            status = Task.Done { Task.swaps = 12; seconds = 0.5 };
          };
        Store.append store
          { Store.task_id = "a/2"; status = Task.Failed "boom \"quoted\"\n" };
        Store.close store;
        (match Store.load path with
        | [ e1; e2 ] ->
            check_string "id 1" "a/1" e1.Store.task_id;
            (match e1.Store.status with
            | Task.Done o -> check_int "swaps" 12 o.Task.swaps
            | Task.Failed _ -> Alcotest.fail "entry 1 should be ok");
            (match e2.Store.status with
            | Task.Failed msg ->
                check_string "escape round trip" "boom \"quoted\"\n" msg
            | Task.Done _ -> Alcotest.fail "entry 2 should be failed")
        | es ->
            Alcotest.failf "expected 2 entries, got %d" (List.length es));
        Sys.remove path);
    test_case "a truncated final line is ignored, earlier lines survive"
      (fun () ->
        let path = fresh_store_path () in
        let store = Store.open_append path in
        Store.append store
          {
            Store.task_id = "ok";
            status = Task.Done { Task.swaps = 1; seconds = 0.1 };
          };
        Store.close store;
        let oc = open_out_gen [ Open_append ] 0o644 path in
        output_string oc {|{"id":"half","status":"o|};
        close_out oc;
        check_int "one entry" 1 (List.length (Store.load path));
        Sys.remove path);
    test_case "completed keeps the last entry per task" (fun () ->
        let completed =
          Store.completed
            [
              { Store.task_id = "t"; status = Task.Failed "first" };
              {
                Store.task_id = "t";
                status = Task.Done { Task.swaps = 3; seconds = 0.2 };
              };
            ]
        in
        match Hashtbl.find_opt completed "t" with
        | Some (Task.Done o) -> check_int "last wins" 3 o.Task.swaps
        | _ -> Alcotest.fail "expected the ok entry");
  ]

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let pool_tests =
  [
    test_case "parallel map equals sequential map, in order" (fun () ->
        let tasks = Array.init 50 Fun.id in
        let f x = (x * 37) mod 101 in
        let seq = Pool.map ~jobs:1 ~f tasks in
        let par = Pool.map ~jobs:4 ~f tasks in
        Alcotest.(check (array int)) "identical" seq par);
    test_case "more workers than tasks is fine" (fun () ->
        let r = Pool.map ~jobs:8 ~f:succ [| 1; 2 |] in
        Alcotest.(check (array int)) "results" [| 2; 3 |] r);
    test_case "empty input" (fun () ->
        check_int "no results" 0 (Array.length (Pool.map ~jobs:4 ~f:succ [||])));
  ]

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let runner_tests =
  [
    test_case "an exception becomes an error string" (fun () ->
        match Runner.run Runner.default (fun () -> failwith "kaput") with
        | Error msg ->
            check_bool "mentions the exception" true
              (String.length msg > 0
              && String.index_opt msg 'k' <> None)
        | Ok _ -> Alcotest.fail "expected an error");
    test_case "a slow task exceeds its wall-clock budget" (fun () ->
        match
          Runner.run
            { Runner.timeout = Some 0.05; retries = 0 }
            (fun () -> Thread.delay 0.3)
        with
        | Error msg ->
            check_bool "timeout message" true
              (String.length msg >= 7 && String.sub msg 0 7 = "timeout")
        | Ok () -> Alcotest.fail "expected a timeout");
    test_case "a fast task under a timeout succeeds" (fun () ->
        match
          Runner.run { Runner.timeout = Some 5.0; retries = 0 } (fun () -> 42)
        with
        | Ok v -> check_int "result" 42 v
        | Error e -> Alcotest.failf "unexpected error: %s" e);
    test_case "bounded retry recovers a flaky task" (fun () ->
        let attempts = Atomic.make 0 in
        let flaky () =
          if Atomic.fetch_and_add attempts 1 < 2 then failwith "flaky" else 7
        in
        (match Runner.run { Runner.timeout = None; retries = 2 } flaky with
        | Ok v -> check_int "third attempt" 7 v
        | Error e -> Alcotest.failf "unexpected error: %s" e);
        check_int "attempts" 3 (Atomic.get attempts));
    test_case "retry budget exhausts" (fun () ->
        match
          Runner.run
            { Runner.timeout = None; retries = 1 }
            (fun () -> failwith "always")
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected exhaustion");
  ]

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

let campaign_config ?(jobs = 1) ?timeout ?store_path ?(resume = false) () =
  {
    (Campaign.default_config ()) with
    jobs;
    timeout;
    store_path;
    resume;
    report = None;
  }

let synthetic_tasks n =
  List.init n (fun i ->
      mk_task ~circuit:(i / 4)
        ~tool:(List.nth [ "sabre"; "mlqls"; "qmap"; "tket" ] (i mod 4))
        ())

let swaps_of_rows rows =
  List.map
    (fun r ->
      match r.Campaign.status with
      | Task.Done o -> (Task.id r.Campaign.task, o.Task.swaps)
      | Task.Failed msg -> Alcotest.failf "unexpected failure: %s" msg)
    rows

let campaign_tests =
  [
    test_case "pool results are identical to sequential execution" (fun () ->
        let tasks = synthetic_tasks 32 in
        let seq =
          Campaign.run (campaign_config ~jobs:1 ()) ~exec:synthetic_exec tasks
        in
        let par =
          Campaign.run (campaign_config ~jobs:4 ()) ~exec:synthetic_exec tasks
        in
        Alcotest.(check (list (pair string int)))
          "scheduling independent" (swaps_of_rows seq) (swaps_of_rows par));
    test_case "routing campaign is scheduling independent (real tools)"
      (fun () ->
        let device = Topologies.grid 3 3 in
        let config =
          {
            (Evaluation.default_figure_config device) with
            swap_counts = [ 1; 2 ];
            circuits_per_point = 2;
            gate_budget = 25;
            sabre_trials = 2;
          }
        in
        let tools =
          [ Sabre.router ~options:(Sabre.with_trials 2 Sabre.default_options) () ]
        in
        let rows jobs = Evaluation.run_campaign ~tools ~jobs ~config device in
        Alcotest.(check (list (pair string int)))
          "jobs=1 equals jobs=3"
          (swaps_of_rows (rows 1))
          (swaps_of_rows (rows 3)));
    test_case "resume skips exactly the completed task set" (fun () ->
        let tasks = synthetic_tasks 16 in
        let first, rest =
          List.filteri (fun i _ -> i < 6) tasks,
          List.filteri (fun i _ -> i >= 6) tasks
        in
        let path = fresh_store_path () in
        let executed = Atomic.make 0 in
        let counting_exec t =
          Atomic.incr executed;
          synthetic_exec t
        in
        (* First (killed) run: only 6 tasks reach the store. *)
        ignore
          (Campaign.run
             (campaign_config ~store_path:path ())
             ~exec:counting_exec first);
        check_int "checkpoint has the first batch" 6
          (List.length (Store.load path));
        (* Resumed run over the full set. *)
        Atomic.set executed 0;
        let rows =
          Campaign.run
            (campaign_config ~jobs:2 ~store_path:path ~resume:true ())
            ~exec:counting_exec tasks
        in
        check_int "only the remainder executed" (List.length rest)
          (Atomic.get executed);
        check_int "store now covers every task" (List.length tasks)
          (List.length (Store.load path));
        let resumed, fresh =
          List.partition (fun r -> r.Campaign.resumed) rows
        in
        check_int "resumed rows" 6 (List.length resumed);
        check_int "fresh rows" (List.length rest) (List.length fresh);
        (* Resumed results agree with what a fresh run would compute. *)
        List.iter
          (fun r ->
            match r.Campaign.status with
            | Task.Done o ->
                check_int "resumed result is the computed result"
                  (synthetic_exec r.Campaign.task).Task.swaps o.Task.swaps
            | Task.Failed msg -> Alcotest.failf "unexpected failure: %s" msg)
          rows;
        Sys.remove path);
    test_case "a raising task fails alone, siblings are unharmed" (fun () ->
        let tasks = synthetic_tasks 12 in
        let poison = Task.id (List.nth tasks 5) in
        let exec t =
          if Task.id t = poison then failwith "router exploded"
          else synthetic_exec t
        in
        let rows = Campaign.run (campaign_config ~jobs:3 ()) ~exec tasks in
        check_int "one failure" 1 (List.length (Campaign.failures rows));
        check_int "rest succeeded" 11 (List.length (Campaign.outcomes rows));
        match (List.nth rows 5).Campaign.status with
        | Task.Failed msg ->
            check_bool "carries the exception" true
              (String.length msg > 0)
        | Task.Done _ -> Alcotest.fail "poisoned task should fail");
    test_case "a task over its timeout fails alone" (fun () ->
        let tasks = synthetic_tasks 8 in
        let slow = Task.id (List.nth tasks 2) in
        let exec t =
          if Task.id t = slow then Thread.delay 0.4;
          synthetic_exec t
        in
        let rows =
          Campaign.run
            (campaign_config ~jobs:2 ~timeout:0.05 ())
            ~exec tasks
        in
        (match (List.nth rows 2).Campaign.status with
        | Task.Failed msg ->
            check_bool "timeout reported" true
              (String.length msg >= 7 && String.sub msg 0 7 = "timeout")
        | Task.Done _ -> Alcotest.fail "slow task should time out");
        check_int "siblings unharmed" 7 (List.length (Campaign.outcomes rows)));
    test_case "progress tracks counts and per-tool gaps" (fun () ->
        let p = Progress.create ~total:4 in
        Progress.record ~ratio:2.0 ~tool:"sabre" ~ok:true p;
        Progress.record ~ratio:4.0 ~tool:"sabre" ~ok:true p;
        Progress.record ~tool:"tket" ~ok:false p;
        Progress.record_resumed p;
        check_int "finished" 4 (Progress.finished p);
        let line = Progress.render p in
        check_bool "mentions the mean gap" true
          (let re = "sabre 3.0x" in
           let rec contains i =
             i + String.length re <= String.length line
             && (String.sub line i (String.length re) = re || contains (i + 1))
           in
           contains 0));
  ]

(* ------------------------------------------------------------------ *)
(* Aggregation resilience (Metrics.mean_opt + empty-point skip)        *)
(* ------------------------------------------------------------------ *)

let aggregation_tests =
  [
    test_case "mean_opt is None on empty, mean otherwise" (fun () ->
        check_bool "empty" true (Metrics.mean_opt [] = None);
        match Metrics.mean_opt [ 2.0; 4.0 ] with
        | Some m -> Alcotest.(check (float 1e-9)) "mean" 3.0 m
        | None -> Alcotest.fail "expected a mean");
    test_case "a point whose tasks all failed is skipped, not fatal"
      (fun () ->
        let device = Topologies.grid 3 3 in
        let config =
          {
            (Evaluation.default_figure_config device) with
            swap_counts = [ 2 ];
            circuits_per_point = 2;
            gate_budget = 25;
          }
        in
        let tasks = Evaluation.campaign_tasks ~config device in
        (* Every tool except sabre dies; aggregation must survive and
           produce only the sabre point. *)
        let exec t =
          if t.Task.tool <> "sabre" then failwith "down"
          else synthetic_exec t
        in
        let rows =
          Campaign.run (campaign_config ~jobs:2 ()) ~exec tasks
        in
        let points = Evaluation.aggregate_campaign ~config ~device rows in
        check_int "only the surviving tool" 1 (List.length points);
        check_string "it is sabre" "sabre"
          (List.hd points).Evaluation.tool_name);
    test_case "all tasks failing aggregates to an empty figure" (fun () ->
        let device = Topologies.grid 3 3 in
        let config =
          {
            (Evaluation.default_figure_config device) with
            swap_counts = [ 1 ];
            circuits_per_point = 1;
          }
        in
        let tasks = Evaluation.campaign_tasks ~config device in
        let rows =
          Campaign.run (campaign_config ())
            ~exec:(fun _ -> failwith "everything is broken")
            tasks
        in
        check_int "no points, no exception" 0
          (List.length (Evaluation.aggregate_campaign ~config ~device rows)));
  ]

let () =
  Alcotest.run "qls_harness"
    [
      ("task", task_tests);
      ("store", store_tests);
      ("pool", pool_tests);
      ("runner", runner_tests);
      ("campaign", campaign_tests);
      ("aggregation", aggregation_tests);
    ]
