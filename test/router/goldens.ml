(* Golden recordings of routed outputs — regenerate with gen_goldens.exe.
   sabre/tket cases recorded BEFORE the router hot-path refactor (PR 3);
   qmap cases recorded with the PR 9 Zobrist closed set and deferred
   materialisation on the >53-qubit devices that code targets. Any
   further hot-path work must reproduce all of them bit-identically. *)

type case = {
  device : string;
  gate_budget : int;
  seed : int;
  router : string;
  swaps : int;
  digest : string;  (* MD5 over initial mapping + ops token stream *)
}
let cases =
  [
    { device = "aspen4"; gate_budget = 150; seed = 0; router = "sabre";
      swaps = 3; digest = "3ca99fc0c720846fb2ed7b45eab65f06" };
    { device = "aspen4"; gate_budget = 150; seed = 0; router = "tket";
      swaps = 79; digest = "606de0a1cddd3ea4d275348fc752f2af" };
    { device = "aspen4"; gate_budget = 150; seed = 1; router = "sabre";
      swaps = 71; digest = "a3edf0600f489ed4cf31aeb8b42ea56f" };
    { device = "aspen4"; gate_budget = 150; seed = 1; router = "tket";
      swaps = 93; digest = "a0dfad5b586d191a384725d34eeed987" };
    { device = "aspen4"; gate_budget = 150; seed = 7; router = "sabre";
      swaps = 58; digest = "3eadc878a6beefcf67f76fcbf8124b1d" };
    { device = "aspen4"; gate_budget = 150; seed = 7; router = "tket";
      swaps = 4; digest = "931a704ac7e750df4837f7436faa5678" };
    { device = "aspen4"; gate_budget = 150; seed = 42; router = "sabre";
      swaps = 86; digest = "5c51753b43c9edd1d18e75e6b407b4b3" };
    { device = "aspen4"; gate_budget = 150; seed = 42; router = "tket";
      swaps = 123; digest = "b4f4e3b1b3dce5b329cd69a56a72ba69" };
    { device = "sycamore54"; gate_budget = 250; seed = 0; router = "sabre";
      swaps = 3; digest = "20bdf345e48d4d689c59ef944315ea1f" };
    { device = "sycamore54"; gate_budget = 250; seed = 0; router = "tket";
      swaps = 336; digest = "a32a850a88c3d0dde0f17f018bbf3216" };
    { device = "sycamore54"; gate_budget = 250; seed = 1; router = "sabre";
      swaps = 273; digest = "2da29f3862b67dff5d2c85cc73fdfe31" };
    { device = "sycamore54"; gate_budget = 250; seed = 1; router = "tket";
      swaps = 377; digest = "b60c7483cbb5421962c98045d240c099" };
    { device = "sycamore54"; gate_budget = 250; seed = 7; router = "sabre";
      swaps = 235; digest = "58e4f0bc508372ff61f8b1a403074ea9" };
    { device = "sycamore54"; gate_budget = 250; seed = 7; router = "tket";
      swaps = 260; digest = "75051cfe9a7653c287a529c35a718101" };
    { device = "sycamore54"; gate_budget = 250; seed = 42; router = "sabre";
      swaps = 205; digest = "ba32266d0d6f9dbd9bb972191a46adc5" };
    { device = "sycamore54"; gate_budget = 250; seed = 42; router = "tket";
      swaps = 171; digest = "b03bd81f3e037e14612ffa401171ac98" };
    { device = "rochester"; gate_budget = 53; seed = 0; router = "qmap";
      swaps = 663; digest = "4249c3414ff8ab5ecd8dd60874de2bf8" };
    { device = "rochester"; gate_budget = 53; seed = 1; router = "qmap";
      swaps = 604; digest = "53975efe1782451a847be9bca40a1d7b" };
    { device = "eagle"; gate_budget = 127; seed = 0; router = "qmap";
      swaps = 3177; digest = "807aaca8e21597a179f38ed1056c4f06" };
    { device = "eagle"; gate_budget = 127; seed = 1; router = "qmap";
      swaps = 2459; digest = "23818146682678ca08b4916baec42edf" };
  ]
