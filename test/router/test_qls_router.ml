(* Tests for the qls_router library: the routing skeleton, placement,
   the four QLS tools, the exact solver (cross-checked against a
   brute-force oracle) and the registry. *)

module Gate = Qls_circuit.Gate
module Circuit = Qls_circuit.Circuit
module Dag = Qls_circuit.Dag
module Random_circuit = Qls_circuit.Random_circuit
module Topologies = Qls_arch.Topologies
module Device = Qls_arch.Device
module Mapping = Qls_layout.Mapping
module Transpiled = Qls_layout.Transpiled
module Verifier = Qls_layout.Verifier
module Route_state = Qls_router.Route_state
module Placement = Qls_router.Placement
module Router = Qls_router.Router
module Sabre = Qls_router.Sabre
module Tket_router = Qls_router.Tket_router
module Astar_router = Qls_router.Astar_router
module Mlqls = Qls_router.Mlqls
module Exact = Qls_router.Exact
module Token_swap = Qls_router.Token_swap
module Olsq = Qls_router.Olsq
module Transition_router = Qls_router.Transition_router
module Registry = Qls_router.Registry
module Rng = Qls_graph.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let test_case name f = Alcotest.test_case name `Quick f

(* Mirrors gen_goldens.fingerprint: MD5 over initial mapping + ops. Used
   by the goldens and by every byte-identity assertion below. *)
let fingerprint t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "init:";
  Array.iter
    (fun p -> Buffer.add_string buf (Printf.sprintf "%d," p))
    (Mapping.to_array (Transpiled.initial_mapping t));
  Buffer.add_string buf "|ops:";
  List.iter
    (function
      | Transpiled.Gate i -> Buffer.add_string buf (Printf.sprintf "G%d;" i)
      | Transpiled.Swap (p, p') ->
          Buffer.add_string buf (Printf.sprintf "S%d:%d;" p p'))
    (Transpiled.ops t);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* A circuit whose gates are all executable under the identity mapping on
   a line: consecutive-qubit CNOTs. *)
let adjacent_circuit n_qubits n_gates =
  Circuit.create ~n_qubits
    (List.init n_gates (fun i -> Gate.cx (i mod (n_qubits - 1)) ((i mod (n_qubits - 1)) + 1)))

(* The triangle circuit of the paper's Fig. 1. *)
let triangle () =
  Circuit.create ~n_qubits:3 [ Gate.cx 0 1; Gate.cx 1 2; Gate.cx 0 2 ]

(* ------------------------------------------------------------------ *)
(* Route_state                                                         *)
(* ------------------------------------------------------------------ *)

let route_state_tests =
  [
    test_case "advance executes an adjacent circuit completely" (fun () ->
        let device = Topologies.line 5 in
        let source = adjacent_circuit 5 12 in
        let st =
          Route_state.create ~device ~source
            ~initial:(Placement.identity device source)
        in
        check_int "all emitted" 12 (Route_state.advance st);
        check_bool "finished" true (Route_state.finished st);
        let t = Route_state.finish st in
        check_int "no swaps" 0 (Verifier.check_exn t).Verifier.swap_count);
    test_case "blocked front after advance" (fun () ->
        let device = Topologies.line 3 in
        let source = triangle () in
        let st =
          Route_state.create ~device ~source
            ~initial:(Placement.identity device source)
        in
        ignore (Route_state.advance st);
        check_int "one blocked" 1 (List.length (Route_state.front st));
        check_int "distance 2" 2
          (Route_state.gate_distance st (List.hd (Route_state.front st))));
    test_case "apply_swap updates mapping and unblocks" (fun () ->
        let device = Topologies.line 3 in
        let source = triangle () in
        let st =
          Route_state.create ~device ~source
            ~initial:(Placement.identity device source)
        in
        ignore (Route_state.advance st);
        Route_state.apply_swap st 1 2;
        check_int "emits the last gate" 1 (Route_state.advance st);
        check_int "one swap" 1 (Route_state.swap_count st);
        let t = Route_state.finish st in
        check_int "verified swaps" 1 (Verifier.check_exn t).Verifier.swap_count);
    test_case "apply_swap rejects non-couplers" (fun () ->
        let device = Topologies.line 3 in
        let source = triangle () in
        let st =
          Route_state.create ~device ~source
            ~initial:(Placement.identity device source)
        in
        check_bool "raises" true
          (try
             Route_state.apply_swap st 0 2;
             false
           with Invalid_argument _ -> true));
    test_case "swap candidates touch front-layer qubits" (fun () ->
        let device = Topologies.line 5 in
        let source = Circuit.create ~n_qubits:5 [ Gate.cx 0 4 ] in
        let st =
          Route_state.create ~device ~source
            ~initial:(Placement.identity device source)
        in
        ignore (Route_state.advance st);
        Alcotest.(check (list (pair int int))) "edges at 0 and 4"
          [ (0, 1); (3, 4) ]
          (List.sort compare (Route_state.swap_candidates st)));
    test_case "extended set follows successors breadth-first" (fun () ->
        let device = Topologies.line 4 in
        let source =
          Circuit.create ~n_qubits:4
            [ Gate.cx 0 2; Gate.cx 0 1; Gate.cx 1 2; Gate.cx 2 3 ]
        in
        let st =
          Route_state.create ~device ~source
            ~initial:(Placement.identity device source)
        in
        ignore (Route_state.advance st);
        (* gate 0 (0,2) is blocked; its successors 1, 2 then 3 follow *)
        Alcotest.(check (list int)) "lookahead order" [ 1; 2; 3 ]
          (Route_state.extended_set st ~size:10);
        Alcotest.(check (list int)) "capped" [ 1 ]
          (Route_state.extended_set st ~size:1));
    test_case "remaining_layers matches ASAP slices initially" (fun () ->
        let rng = Rng.create 5 in
        let source = Random_circuit.uniform rng ~n_qubits:6 ~n_two_qubit:20 ~single_ratio:0.0 in
        let device = Topologies.grid 2 3 in
        let st =
          Route_state.create ~device ~source
            ~initial:(Placement.identity device source)
        in
        let expected = Qls_circuit.Layers.slices_of_dag (Route_state.dag st) in
        Alcotest.(check (list (list int))) "layers" expected
          (Route_state.remaining_layers st ~max_layers:max_int));
    test_case "finish rejects unfinished states" (fun () ->
        let device = Topologies.line 3 in
        let st =
          Route_state.create ~device ~source:(triangle ())
            ~initial:(Mapping.identity ~n_program:3 ~n_physical:3)
        in
        check_bool "raises" true
          (try
             ignore (Route_state.finish st);
             false
           with Invalid_argument _ -> true));
    test_case "progress counters and snapshots" (fun () ->
        let device = Topologies.line 3 in
        let source = triangle () in
        let st =
          Route_state.create ~device ~source
            ~initial:(Placement.identity device source)
        in
        check_int "nothing done" 0 (Route_state.done_count st);
        check_int "all remaining" 3 (Route_state.remaining st);
        ignore (Route_state.advance st);
        check_int "two done" 2 (Route_state.done_count st);
        check_int "one left" 1 (Route_state.remaining st);
        check_bool "ops recorded" true (List.length (Route_state.ops_so_far st) = 2);
        Alcotest.(check (list (pair int int))) "physical front" [ (0, 2) ]
          (Route_state.front_pairs_physical st);
        check_bool "snapshot is the mapping" true
          (Mapping.equal (Route_state.snapshot_mapping st) (Route_state.mapping st)));
    test_case "force_route_first unblocks the earliest gate" (fun () ->
        let device = Topologies.line 5 in
        let source = Circuit.create ~n_qubits:5 [ Gate.cx 0 4 ] in
        let st =
          Route_state.create ~device ~source
            ~initial:(Placement.identity device source)
        in
        ignore (Route_state.advance st);
        Route_state.force_route_first st;
        check_int "now executable" 1 (Route_state.advance st);
        check_int "3 swaps along the line" 3 (Route_state.swap_count st));
    test_case "create rejects disconnected devices with a typed error"
      (fun () ->
        (* Two disjoint 2-qubit couplers: routing across the gap is
           ill-posed, and the old behaviour was a mid-round crash deep in
           a router ([failwith "no progress"] / [Rng.pick []]). *)
        let g = Qls_graph.Graph.create 4 [ (0, 1); (2, 3) ] in
        let device =
          Device.create ~allow_disconnected:true ~name:"split" g
        in
        let source = Circuit.create ~n_qubits:4 [ Gate.cx 0 2 ] in
        check_bool "raises Invalid_argument" true
          (try
             ignore
               (Route_state.create ~device ~source
                  ~initial:(Mapping.identity ~n_program:4 ~n_physical:4));
             false
           with Invalid_argument msg ->
             (* The message names the defect, not just "bad input". *)
             let contains hay needle =
               let nh = String.length hay and nn = String.length needle in
               let rec go i =
                 i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
               in
               go 0
             in
             contains msg "disconnected"));
    test_case "single-qubit gates keep their per-qubit order" (fun () ->
        let device = Topologies.line 3 in
        let source =
          Circuit.create ~n_qubits:3
            [ Gate.h 0; Gate.cx 0 1; Gate.x 0; Gate.h 2; Gate.cx 1 2; Gate.x 2 ]
        in
        let st =
          Route_state.create ~device ~source
            ~initial:(Placement.identity device source)
        in
        ignore (Route_state.advance st);
        let t = Route_state.finish st in
        check_int "valid, no swaps" 0 (Verifier.check_exn t).Verifier.swap_count;
        check_int "all gates present" 6 (List.length (Transpiled.ops t)));
  ]

(* ------------------------------------------------------------------ *)
(* Placement                                                           *)
(* ------------------------------------------------------------------ *)

let placement_tests =
  [
    test_case "identity and random are valid mappings" (fun () ->
        let device = Topologies.grid 3 3 in
        let c = triangle () in
        let rng = Rng.create 1 in
        check_int "identity" 0 (Mapping.phys (Placement.identity device c) 0);
        let m = Placement.random rng device c in
        check_int "programs" 3 (Mapping.n_program m));
    test_case "vf2 placement solves an embeddable circuit" (fun () ->
        let device = Topologies.grid 3 3 in
        let c = Circuit.create ~n_qubits:4 [ Gate.cx 0 1; Gate.cx 1 2; Gate.cx 2 3 ] in
        match Placement.vf2 device c with
        | None -> Alcotest.fail "path embeds in grid"
        | Some m -> check_int "swap-free" 0 (Placement.spread_cost device c m));
    test_case "vf2 placement fails on non-embeddable circuits" (fun () ->
        let device = Topologies.line 4 in
        check_bool "triangle on a line" true (Placement.vf2 device (triangle ()) = None));
    test_case "degree_greedy is injective" (fun () ->
        let rng = Rng.create 2 in
        let device = Topologies.grid 3 3 in
        let c = Random_circuit.uniform rng ~n_qubits:9 ~n_two_qubit:20 ~single_ratio:0.0 in
        let m = Placement.degree_greedy rng device c in
        let a = Mapping.to_array m in
        check_int "all distinct" 9 (List.length (List.sort_uniq compare (Array.to_list a))));
    test_case "spread_cost is zero iff executable in place" (fun () ->
        let device = Topologies.line 5 in
        let c = adjacent_circuit 5 6 in
        check_int "adjacent" 0
          (Placement.spread_cost device c (Placement.identity device c)));
  ]

(* ------------------------------------------------------------------ *)
(* Router property: every tool's output verifies, and never beats the   *)
(* exact optimum.                                                       *)
(* ------------------------------------------------------------------ *)

let mk_random_circuit seed =
  let rng = Rng.create seed in
  let n_gates = 4 + Rng.int rng 12 in
  Random_circuit.uniform rng ~n_qubits:6 ~n_two_qubit:n_gates ~single_ratio:0.3

let all_tools =
  [
    Sabre.router ();
    Sabre.router ~options:{ Sabre.default_options with lookahead_decay = Some 0.7 } ();
    Tket_router.router ();
    Astar_router.router ();
    Mlqls.router ();
    Transition_router.router ();
  ]

let router_props =
  List.map
    (fun tool ->
      QCheck.Test.make
        ~name:(Printf.sprintf "%s output always verifies" tool.Router.name)
        ~count:40
        QCheck.(int_range 0 100_000)
        (fun seed ->
          let c = mk_random_circuit seed in
          let device = Topologies.grid 2 3 in
          let _, report = Router.run_verified tool device c in
          report.Verifier.swap_count >= 0))
    all_tools
  @ [
      QCheck.Test.make ~name:"no heuristic beats the exact optimum" ~count:15
        QCheck.(int_range 0 100_000)
        (fun seed ->
          let c = mk_random_circuit seed in
          let device = Topologies.grid 2 3 in
          match Exact.minimum_swaps ~max_swaps:8 device c with
          | Exact.Unknown_above _ -> QCheck.assume_fail ()
          | Exact.Optimal { swaps = opt; _ } ->
              List.for_all
                (fun tool -> Router.swap_count tool device c >= opt)
                all_tools);
    ]

(* ------------------------------------------------------------------ *)
(* SABRE specifics                                                     *)
(* ------------------------------------------------------------------ *)

let sabre_tests =
  [
    test_case "solves the Fig. 1 instance with one swap" (fun () ->
        let device = Topologies.line 4 in
        let t =
          Sabre.route
            ~options:(Sabre.with_trials 8 Sabre.default_options)
            device (triangle ())
        in
        check_int "one swap" 1 (Verifier.check_exn t).Verifier.swap_count);
    test_case "zero swaps when given a perfect initial mapping" (fun () ->
        let device = Topologies.line 5 in
        let c = adjacent_circuit 5 10 in
        let t = Sabre.route ~initial:(Placement.identity device c) device c in
        check_int "zero" 0 (Verifier.check_exn t).Verifier.swap_count);
    test_case "more trials never hurt (nested seeds)" (fun () ->
        let rng = Rng.create 9 in
        let device = Topologies.grid 3 3 in
        let c = Random_circuit.uniform rng ~n_qubits:9 ~n_two_qubit:40 ~single_ratio:0.0 in
        let swaps k =
          Transpiled.swap_count
            (Sabre.route ~options:(Sabre.with_trials k Sabre.default_options) device c)
        in
        check_bool "monotone" true (swaps 6 <= swaps 1));
    test_case "route_traced records decisions" (fun () ->
        let device = Topologies.line 4 in
        let t, decisions =
          Sabre.route_traced
            ~initial:(Mapping.of_array ~n_physical:4 [| 0; 1; 2 |])
            device (triangle ())
        in
        check_bool "some decision" true (List.length decisions > 0);
        check_bool "valid" true (Verifier.is_valid t);
        List.iter
          (fun d ->
            check_bool "chosen among candidates" true
              (List.mem_assoc d.Sabre.chosen d.Sabre.candidates);
            check_bool "candidates scored ascending" true
              (let scores = List.map snd d.Sabre.candidates in
               List.sort compare scores = scores))
          decisions);
    test_case "lookahead decay changes the name" (fun () ->
        let r =
          Sabre.router
            ~options:{ Sabre.default_options with lookahead_decay = Some 0.5 }
            ()
        in
        Alcotest.(check string) "name" "sabre-decay" r.Router.name;
        Alcotest.(check string) "stock name" "sabre" (Sabre.router ()).Router.name);
    test_case "deterministic for a fixed seed" (fun () ->
        let device = Topologies.grid 3 3 in
        let rng = Rng.create 77 in
        let c = Random_circuit.uniform rng ~n_qubits:9 ~n_two_qubit:30 ~single_ratio:0.0 in
        let t1 = Sabre.route device c and t2 = Sabre.route device c in
        check_int "same result" (Transpiled.swap_count t1) (Transpiled.swap_count t2));
    test_case "route rejects invalid options with typed errors" (fun () ->
        let device = Topologies.line 4 in
        let c = triangle () in
        let rejects what opts =
          check_bool what true
            (try
               ignore (Sabre.route ~options:opts device c);
               false
             with Invalid_argument _ -> true)
        in
        rejects "NaN extended_set_weight"
          { Sabre.default_options with Sabre.extended_set_weight = Float.nan };
        rejects "negative extended_set_weight"
          { Sabre.default_options with Sabre.extended_set_weight = -0.5 };
        rejects "NaN decay_increment"
          { Sabre.default_options with Sabre.decay_increment = Float.nan };
        rejects "negative decay_increment"
          { Sabre.default_options with Sabre.decay_increment = -1e-3 };
        rejects "NaN lookahead_decay"
          { Sabre.default_options with Sabre.lookahead_decay = Some Float.nan };
        rejects "negative lookahead_decay"
          { Sabre.default_options with Sabre.lookahead_decay = Some (-0.7) };
        rejects "zero decay_reset_interval"
          { Sabre.default_options with Sabre.decay_reset_interval = 0 };
        rejects "negative extended_set_size"
          { Sabre.default_options with Sabre.extended_set_size = -1 };
        (* route_traced shares the validation. *)
        check_bool "route_traced rejects too" true
          (try
             ignore
               (Sabre.route_traced
                  ~options:
                    {
                      Sabre.default_options with
                      Sabre.extended_set_weight = Float.nan;
                    }
                  device c);
             false
           with Invalid_argument _ -> true);
        (* And the defaults still route. *)
        check_bool "defaults valid" true
          (Verifier.is_valid (Sabre.route device c)));
  ]

(* ------------------------------------------------------------------ *)
(* Parallel multi-trial SABRE: the pool fan-out must reproduce the      *)
(* sequential trial loop byte for byte, at every trial count and seed.  *)
(* ------------------------------------------------------------------ *)

let parallel_trial_tests =
  [
    test_case "parallel trials byte-identical to sequential (trial/seed grid)"
      (fun () ->
        let device = Topologies.grid 3 3 in
        let rng = Rng.create 123 in
        let c =
          Random_circuit.uniform rng ~n_qubits:9 ~n_two_qubit:30
            ~single_ratio:0.2
        in
        List.iter
          (fun trials ->
            List.iter
              (fun seed ->
                let opts = { Sabre.default_options with Sabre.trials; seed } in
                (* jobs:1 degenerates Pool.run to the historical inline
                   loop; the default fans out across domains. *)
                let seq = Sabre.route ~options:opts ~jobs:1 device c in
                let par = Sabre.route ~options:opts device c in
                Alcotest.(check string)
                  (Printf.sprintf "trials=%d seed=%d" trials seed)
                  (fingerprint seq) (fingerprint par))
              [ 0; 1; 7; 42 ])
          [ 1; 2; 4; 8 ]);
    test_case "parallel trials honour an expired ambient deadline" (fun () ->
        let device = Topologies.grid 3 3 in
        let rng = Rng.create 321 in
        let c =
          Random_circuit.uniform rng ~n_qubits:9 ~n_two_qubit:40
            ~single_ratio:0.0
        in
        let token = Qls_cancel.make ~deadline_ms:1 () in
        Unix.sleepf 0.005;
        check_bool "Expired propagates out of the fan-out" true
          (try
             Qls_cancel.with_token token (fun () ->
                 ignore
                   (Sabre.route
                      ~options:(Sabre.with_trials 4 Sabre.default_options)
                      device c);
                 false)
           with Qls_cancel.Expired _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* A* closed set: exact at every device size (the >256-qubit collision  *)
(* regression).                                                         *)
(* ------------------------------------------------------------------ *)

let closed_set_tests =
  [
    test_case "distinguishes mappings the old 1-byte key conflated"
      (fun () ->
        let n_phys = 300 in
        (* The pre-rewrite closed-set key, reproduced verbatim: each
           physical index truncated to one byte. On any device with more
           than 256 physical qubits this conflates distinct mappings —
           the old A* then treated the second as already expanded and
           silently pruned live search states. *)
        let old_key m =
          let arr = Mapping.to_array m in
          let b = Bytes.create (Array.length arr) in
          Array.iteri (fun i p -> Bytes.set b i (Char.chr (p land 0xff))) arr;
          Bytes.to_string b
        in
        let a = Mapping.of_array ~n_physical:n_phys [| 1 |] in
        let b = Mapping.of_array ~n_physical:n_phys [| 257 |] in
        check_bool "mappings are distinct" false (Mapping.equal a b);
        Alcotest.(check string) "old key collides (the bug)" (old_key a)
          (old_key b);
        let closed = Astar_router.Closed.create ~n_prog:1 ~n_phys in
        check_bool "insert a" true (Astar_router.Closed.add closed a);
        check_bool "b not conflated with a" false
          (Astar_router.Closed.mem closed b);
        check_bool "insert b" true (Astar_router.Closed.add closed b);
        check_bool "a still present" true (Astar_router.Closed.mem closed a);
        check_bool "b present" true (Astar_router.Closed.mem closed b);
        check_bool "re-insert a refused" false
          (Astar_router.Closed.add closed a));
    test_case "qmap routes correctly on a 300-qubit path device" (fun () ->
        (* End-to-end on the device class the old key corrupted: qubits
           past index 255 alias below-256 positions under 1-byte
           truncation. *)
        let device =
          Device.create ~name:"line300"
            (Qls_graph.Graph.create 300
               (List.init 299 (fun i -> (i, i + 1))))
        in
        let c =
          Circuit.create ~n_qubits:300
            [ Gate.cx 254 256; Gate.cx 255 257; Gate.cx 253 258 ]
        in
        let t = Astar_router.route device c in
        check_bool "verifies" true (Verifier.is_valid t));
  ]

let closed_set_props =
  [
    QCheck.Test.make ~name:"closed set add/mem is exact on 300 qubits"
      ~count:50
      QCheck.(int_range 0 100_000)
      (fun seed ->
        let rng = Rng.create seed in
        let n_phys = 300 in
        let m1 = Mapping.random rng ~n_program:5 ~n_physical:n_phys in
        let m2 = Mapping.random rng ~n_program:5 ~n_physical:n_phys in
        let closed = Astar_router.Closed.create ~n_prog:5 ~n_phys in
        ignore (Astar_router.Closed.add closed m1);
        Astar_router.Closed.mem closed m1
        && Mapping.equal m1 m2 = Astar_router.Closed.mem closed m2);
  ]

(* ------------------------------------------------------------------ *)
(* Other tools                                                         *)
(* ------------------------------------------------------------------ *)

let tool_tests =
  [
    test_case "tket solves embeddable circuits with zero swaps" (fun () ->
        let device = Topologies.grid 3 3 in
        let c = Circuit.create ~n_qubits:5 [ Gate.cx 0 1; Gate.cx 1 2; Gate.cx 2 3; Gate.cx 3 4 ] in
        let t = Tket_router.route device c in
        check_int "vf2 placement" 0 (Verifier.check_exn t).Verifier.swap_count);
    test_case "tket handles the triangle on a line" (fun () ->
        let device = Topologies.line 4 in
        let t = Tket_router.route device (triangle ()) in
        check_bool "needs >= 1 swap" true ((Verifier.check_exn t).Verifier.swap_count >= 1));
    test_case "qmap solves an in-place layer with zero swaps" (fun () ->
        let device = Topologies.line 5 in
        let c = adjacent_circuit 5 8 in
        let t = Astar_router.route ~initial:(Placement.identity device c) device c in
        check_int "zero" 0 (Verifier.check_exn t).Verifier.swap_count);
    test_case "qmap fallback path still verifies" (fun () ->
        (* node_budget 0 forces the shortest-path fallback on every layer *)
        let device = Topologies.grid 3 3 in
        let rng = Rng.create 4 in
        let c = Random_circuit.uniform rng ~n_qubits:9 ~n_two_qubit:25 ~single_ratio:0.0 in
        let t =
          Astar_router.route
            ~options:{ Astar_router.default_options with node_budget = 0 }
            device c
        in
        check_bool "valid" true (Verifier.is_valid t));
    test_case "mlqls placement is injective and complete" (fun () ->
        let device = Topologies.grid 3 4 in
        let rng = Rng.create 6 in
        let c = Random_circuit.uniform rng ~n_qubits:10 ~n_two_qubit:30 ~single_ratio:0.0 in
        let m = Mlqls.place device c in
        check_int "programs" 10 (Mapping.n_program m);
        let a = Mapping.to_array m in
        check_int "injective" 10 (List.length (List.sort_uniq compare (Array.to_list a))));
    test_case "mlqls on a circuit with no two-qubit gates" (fun () ->
        let device = Topologies.line 3 in
        let c = Circuit.create ~n_qubits:3 [ Gate.h 0; Gate.h 1 ] in
        let t = Mlqls.route device c in
        check_int "zero swaps" 0 (Verifier.check_exn t).Verifier.swap_count);
    test_case "mlqls multilevel placement beats random on clustered circuits"
      (fun () ->
        let device = Topologies.grid 4 4 in
        let rng = Rng.create 8 in
        (* two tight clusters of qubits *)
        let gates =
          List.init 60 (fun i ->
              let base = if i mod 2 = 0 then 0 else 8 in
              let a = base + Rng.int rng 4 and b = base + Rng.int rng 4 in
              if a = b then Gate.cx a ((base + ((a + 1 - base) mod 4))) else Gate.cx a b)
        in
        let c = Circuit.create ~n_qubits:16 gates in
        let ml = Mlqls.weighted_cost device c (Mlqls.place device c) in
        let rnd = Mlqls.weighted_cost device c (Placement.random rng device c) in
        check_bool "not worse" true (ml <= rnd));
  ]

(* ------------------------------------------------------------------ *)
(* Exact solver                                                        *)
(* ------------------------------------------------------------------ *)

let exact_tests =
  [
    test_case "triangle on a line needs exactly one swap" (fun () ->
        match Exact.minimum_swaps (Topologies.line 4) (triangle ()) with
        | Exact.Optimal { swaps; witness } ->
            check_int "optimal" 1 swaps;
            check_bool "witness valid" true (Verifier.is_valid witness)
        | Exact.Unknown_above _ -> Alcotest.fail "should be solvable");
    test_case "triangle on a ring is swap-free" (fun () ->
        match Exact.minimum_swaps (Topologies.ring 3) (triangle ()) with
        | Exact.Optimal { swaps; _ } -> check_int "optimal" 0 swaps
        | Exact.Unknown_above _ -> Alcotest.fail "should be solvable");
    test_case "empty circuit costs nothing" (fun () ->
        let c = Circuit.create ~n_qubits:3 [ Gate.h 0 ] in
        match Exact.minimum_swaps (Topologies.line 3) c with
        | Exact.Optimal { swaps; witness } ->
            check_int "zero" 0 swaps;
            check_int "h preserved" 1 (List.length (Transpiled.ops witness))
        | Exact.Unknown_above _ -> Alcotest.fail "trivial");
    test_case "check is monotone in the swap budget" (fun () ->
        let device = Topologies.line 4 in
        (* feasible at k implies feasible at any k' >= k, and the witness
           never uses more than the budget *)
        match Exact.check ~swaps:1 device (triangle ()) with
        | Exact.Feasible _ -> (
            match Exact.check ~swaps:3 device (triangle ()) with
            | Exact.Feasible t ->
                check_bool "within budget" true (Transpiled.swap_count t <= 3)
            | _ -> Alcotest.fail "monotonicity broken")
        | _ -> Alcotest.fail "base case");
    test_case "infeasible below the optimum" (fun () ->
        check_bool "0 swaps impossible" true
          (Exact.check ~swaps:0 (Topologies.line 4) (triangle ()) = Exact.Infeasible));
    test_case "unknown on zero budget" (fun () ->
        check_bool "honest" true
          (Exact.check ~node_budget:0 ~swaps:1 (Topologies.line 4) (triangle ())
           = Exact.Unknown));
    test_case "negative swap count rejected" (fun () ->
        check_bool "raises" true
          (try
             ignore (Exact.check ~swaps:(-1) (Topologies.line 3) (triangle ()));
             false
           with Invalid_argument _ -> true));
    test_case "router interface returns the witness" (fun () ->
        let r = Exact.router () in
        let t, report = Router.run_verified r (Topologies.line 4) (triangle ()) in
        check_int "optimal" 1 report.Verifier.swap_count;
        check_bool "ops complete" true (List.length (Transpiled.ops t) = 4));
  ]

let exact_props =
  [
    QCheck.Test.make ~name:"exact agrees with the brute-force oracle" ~count:25
      QCheck.(int_range 0 100_000)
      (fun seed ->
        let rng = Rng.create seed in
        let n_gates = 2 + Rng.int rng 6 in
        let c = Random_circuit.uniform rng ~n_qubits:4 ~n_two_qubit:n_gates ~single_ratio:0.0 in
        let device =
          if Rng.bool rng then Topologies.line 4 else Topologies.ring 4
        in
        let brute = Brute.minimum_swaps device c in
        match Exact.minimum_swaps ~max_swaps:6 device c with
        | Exact.Optimal { swaps; witness } ->
            swaps = brute && Verifier.is_valid witness
        | Exact.Unknown_above _ -> false);
    QCheck.Test.make ~name:"exact witness swap count equals the reported optimum"
      ~count:20
      QCheck.(int_range 0 100_000)
      (fun seed ->
        let rng = Rng.create seed in
        let c = Random_circuit.uniform rng ~n_qubits:5 ~n_two_qubit:6 ~single_ratio:0.2 in
        let device = Topologies.grid 2 3 in
        match Exact.minimum_swaps ~max_swaps:6 device c with
        | Exact.Optimal { swaps; witness } -> Transpiled.swap_count witness = swaps
        | Exact.Unknown_above _ -> false);
  ]

(* ------------------------------------------------------------------ *)
(* OLSQ-style SAT solver                                               *)
(* ------------------------------------------------------------------ *)

let olsq_tests =
  [
    test_case "triangle on a line needs exactly one swap (SAT)" (fun () ->
        match Olsq.minimum_swaps (Topologies.line 4) (triangle ()) with
        | Olsq.Optimal { swaps; witness } ->
            check_int "optimal" 1 swaps;
            check_bool "witness valid" true (Verifier.is_valid witness)
        | Olsq.Unknown_above _ -> Alcotest.fail "should be solvable");
    test_case "swap-free instance solved with zero swaps" (fun () ->
        let c = adjacent_circuit 5 8 in
        match Olsq.minimum_swaps (Topologies.line 5) c with
        | Olsq.Optimal { swaps; _ } -> check_int "zero" 0 swaps
        | Olsq.Unknown_above _ -> Alcotest.fail "trivial");
    test_case "circuit with only 1q gates" (fun () ->
        let c = Circuit.create ~n_qubits:3 [ Gate.h 0; Gate.h 1 ] in
        match Olsq.check ~swaps:0 (Topologies.line 3) c with
        | Olsq.Feasible w -> check_int "gates kept" 2 (List.length (Transpiled.ops w))
        | _ -> Alcotest.fail "trivial");
    test_case "infeasible below the optimum" (fun () ->
        check_bool "unsat" true
          (Olsq.check ~swaps:0 (Topologies.line 4) (triangle ()) = Olsq.Infeasible));
    test_case "conflict budget reports unknown" (fun () ->
        let rng = Rng.create 3 in
        let c = Random_circuit.uniform rng ~n_qubits:9 ~n_two_qubit:30 ~single_ratio:0.0 in
        check_bool "unknown" true
          (Olsq.check ~conflict_budget:0 ~swaps:2 (Topologies.grid 3 3) c
           = Olsq.Unknown));
    test_case "negative swaps rejected" (fun () ->
        check_bool "raises" true
          (try
             ignore (Olsq.check ~swaps:(-1) (Topologies.line 3) (triangle ()));
             false
           with Invalid_argument _ -> true));
  ]

let olsq_props =
  [
    QCheck.Test.make ~name:"SAT solver agrees with the search solver" ~count:25
      QCheck.(int_range 0 100_000)
      (fun seed ->
        let rng = Rng.create seed in
        let n_gates = 2 + Rng.int rng 8 in
        let c = Random_circuit.uniform rng ~n_qubits:5 ~n_two_qubit:n_gates ~single_ratio:0.2 in
        let device = Topologies.grid 2 3 in
        match (Olsq.minimum_swaps device c, Exact.minimum_swaps device c) with
        | Olsq.Optimal { swaps = a; witness }, Exact.Optimal { swaps = b; _ } ->
            a = b && Verifier.is_valid witness
        | _ -> false);
    QCheck.Test.make ~name:"SAT solver agrees with the brute-force oracle"
      ~count:15
      QCheck.(int_range 0 100_000)
      (fun seed ->
        let rng = Rng.create seed in
        let c = Random_circuit.uniform rng ~n_qubits:4 ~n_two_qubit:6 ~single_ratio:0.0 in
        let device = if Rng.bool rng then Topologies.line 4 else Topologies.ring 4 in
        let brute = Brute.minimum_swaps device c in
        match Olsq.minimum_swaps device c with
        | Olsq.Optimal { swaps; _ } -> swaps = brute
        | Olsq.Unknown_above _ -> false);
  ]

(* ------------------------------------------------------------------ *)
(* OLSQ incremental sessions + portfolio                               *)
(* ------------------------------------------------------------------ *)

let olsq_incremental_tests =
  [
    test_case "incremental walk matches the fresh walk on the triangle"
      (fun () ->
        let device = Topologies.line 4 and c = triangle () in
        match
          ( Olsq.minimum_swaps ~mode:`Incremental device c,
            Olsq.minimum_swaps ~mode:`Fresh device c )
        with
        | Olsq.Optimal { swaps = a; witness }, Olsq.Optimal { swaps = b; _ } ->
            check_int "same optimum" a b;
            check_int "one swap" 1 a;
            check_bool "witness valid" true (Verifier.is_valid witness)
        | _ -> Alcotest.fail "both walks must conclude");
    test_case "session refutes then certifies under assumptions" (fun () ->
        let sess = Olsq.Incremental.create ~max_swaps:3 (Topologies.line 4) (triangle ()) in
        check_int "session bound" 3 (Olsq.Incremental.max_swaps sess);
        check_bool "0 infeasible" true
          (Olsq.Incremental.check sess ~swaps:0 = Olsq.Infeasible);
        (match Olsq.Incremental.check sess ~swaps:1 with
        | Olsq.Feasible w ->
            check_int "one swap" 1 (Transpiled.swap_count w);
            check_bool "valid" true (Verifier.is_valid w)
        | _ -> Alcotest.fail "1 swap must suffice");
        check_int "one solve per bound" 2 (Olsq.Incremental.solves sess);
        check_bool "bound above session max rejected" true
          (try
             ignore (Olsq.Incremental.check sess ~swaps:4);
             false
           with Invalid_argument _ -> true));
    test_case "portfolio race agrees with the single-config verdict"
      (fun () ->
        let device = Topologies.line 4 and c = triangle () in
        let r = Olsq.race_check ~seeds:[ 0; 1; 2 ] ~swaps:0 device c in
        check_bool "raced verdict" true (r.Olsq.value = Olsq.Infeasible);
        check_int "raced count" 3 r.Olsq.raced;
        check_bool "winner from the seed list" true
          (List.mem r.Olsq.winner_seed [ 0; 1; 2 ]);
        check_bool "cancelled bounded" true
          (r.Olsq.cancelled >= 0 && r.Olsq.cancelled < 3);
        match Olsq.race_minimum_swaps ~seeds:[ 0; 1 ] device c with
        | { Olsq.value = Olsq.Optimal { swaps; _ }; _ } ->
            check_int "raced optimum" 1 swaps
        | _ -> Alcotest.fail "raced walk must conclude");
    test_case "empty portfolio rejected" (fun () ->
        check_bool "raises" true
          (try
             ignore
               (Olsq.race_check ~seeds:[] ~swaps:0 (Topologies.line 4)
                  (triangle ()));
             false
           with Invalid_argument _ -> true));
    test_case "1q-only witnesses pin the identity initial mapping" (fun () ->
        (* regression: Exact.check used to free-fill an all-(-1) placement
           here while Olsq used Mapping.identity — all three checkers must
           agree on the same witness semantics *)
        let c = Circuit.create ~n_qubits:3 [ Gate.h 0; Gate.h 2; Gate.h 1 ] in
        let device = Topologies.line 4 in
        let ident = Mapping.identity ~n_program:3 ~n_physical:4 in
        let initial_of = function
          | Some w -> Transpiled.initial_mapping w
          | None -> Alcotest.fail "expected Feasible"
        in
        let from_exact =
          match Exact.check ~swaps:0 device c with
          | Exact.Feasible w -> Some w
          | _ -> None
        and from_olsq =
          match Olsq.check ~swaps:0 device c with
          | Olsq.Feasible w -> Some w
          | _ -> None
        and from_session =
          let sess = Olsq.Incremental.create ~max_swaps:2 device c in
          match Olsq.Incremental.check sess ~swaps:0 with
          | Olsq.Feasible w -> Some w
          | _ -> None
        in
        check_bool "exact identity" true
          (Mapping.equal ident (initial_of from_exact));
        check_bool "olsq identity" true
          (Mapping.equal ident (initial_of from_olsq));
        check_bool "session identity" true
          (Mapping.equal ident (initial_of from_session)));
  ]

let olsq_incremental_props =
  [
    QCheck.Test.make
      ~name:"fresh and incremental verdicts agree at every bound" ~count:20
      QCheck.(int_range 0 100_000)
      (fun seed ->
        let rng = Rng.create seed in
        let n_gates = 2 + Rng.int rng 6 in
        let c =
          Random_circuit.uniform rng ~n_qubits:4 ~n_two_qubit:n_gates
            ~single_ratio:0.2
        in
        let device =
          if Rng.bool rng then Topologies.line 4 else Topologies.ring 4
        in
        let k_max = 3 in
        let sess = Olsq.Incremental.create ~max_swaps:k_max device c in
        List.for_all
          (fun k ->
            let fresh = Olsq.check ~swaps:k device c in
            let incr = Olsq.Incremental.check sess ~swaps:k in
            match (fresh, incr) with
            | Olsq.Feasible a, Olsq.Feasible b ->
                Verifier.is_valid a && Verifier.is_valid b
                && Transpiled.swap_count a <= k
                && Transpiled.swap_count b <= k
            | Olsq.Infeasible, Olsq.Infeasible -> true
            | _ -> false)
          (List.init (k_max + 1) Fun.id));
    QCheck.Test.make
      ~name:"portfolio optimum equals the single-config optimum" ~count:10
      QCheck.(int_range 0 100_000)
      (fun seed ->
        let rng = Rng.create seed in
        let c =
          Random_circuit.uniform rng ~n_qubits:4 ~n_two_qubit:(2 + Rng.int rng 5)
            ~single_ratio:0.0
        in
        let device = Topologies.line 4 in
        let raced = Olsq.race_minimum_swaps ~seeds:[ 0; 1; 2 ] device c in
        match (raced.Olsq.value, Olsq.minimum_swaps device c) with
        | Olsq.Optimal { swaps = a; _ }, Olsq.Optimal { swaps = b; _ } -> a = b
        | _ -> false);
  ]

(* ------------------------------------------------------------------ *)
(* Token swapping                                                      *)
(* ------------------------------------------------------------------ *)

let token_swap_tests =
  [
    test_case "already satisfied targets need no swaps" (fun () ->
        let device = Topologies.grid 3 3 in
        let m = Mapping.identity ~n_program:9 ~n_physical:9 in
        let target q = Token_swap.Fixed q in
        Alcotest.(check (list (pair int int))) "empty" []
          (Token_swap.route device ~current:m ~target));
    test_case "routes a transposition on a line" (fun () ->
        let device = Topologies.line 4 in
        let m = Mapping.identity ~n_program:4 ~n_physical:4 in
        let target q =
          if q = 0 then Token_swap.Fixed 1
          else if q = 1 then Token_swap.Fixed 0
          else Token_swap.Free
        in
        let swaps = Token_swap.route device ~current:m ~target in
        let m' = Token_swap.apply device m swaps in
        check_int "q0" 1 (Mapping.phys m' 0);
        check_int "q1" 0 (Mapping.phys m' 1);
        check_int "one swap" 1 (List.length swaps));
    test_case "routes across empty slots" (fun () ->
        let device = Topologies.line 5 in
        let m = Mapping.of_array ~n_physical:5 [| 0; 1 |] in
        let target q = if q = 0 then Token_swap.Fixed 4 else Token_swap.Free in
        let swaps = Token_swap.route device ~current:m ~target in
        let m' = Token_swap.apply device m swaps in
        check_int "q0 at the end" 4 (Mapping.phys m' 0));
    test_case "rejects colliding targets" (fun () ->
        let device = Topologies.line 3 in
        let m = Mapping.identity ~n_program:3 ~n_physical:3 in
        check_bool "raises" true
          (try
             ignore
               (Token_swap.route device ~current:m ~target:(fun _ ->
                    Token_swap.Fixed 1));
             false
           with Invalid_argument _ -> true));
    test_case "optimal finds the 3-cycle rotation on a triangle" (fun () ->
        let device = Topologies.ring 3 in
        let m = Mapping.identity ~n_program:3 ~n_physical:3 in
        let target q = Token_swap.Fixed ((q + 1) mod 3) in
        match Token_swap.optimal device ~current:m ~target with
        | None -> Alcotest.fail "solvable"
        | Some swaps -> check_int "two swaps" 2 (List.length swaps));
  ]

let token_swap_props =
  [
    QCheck.Test.make ~name:"token swapping always reaches the target" ~count:100
      QCheck.(pair (int_range 0 10_000) (int_range 0 2))
      (fun (seed, dev_choice) ->
        let device =
          match dev_choice with
          | 0 -> Topologies.grid 3 3
          | 1 -> Topologies.line 7
          | _ -> Topologies.aspen4 ()
        in
        let n = Device.n_qubits device in
        let rng = Rng.create seed in
        let n_prog = max 1 (n - Rng.int rng 3) in
        let current = Mapping.random rng ~n_program:n_prog ~n_physical:n in
        (* a random injective partial target *)
        let perm = Rng.permutation rng n in
        let target q = if q mod 2 = 0 then Token_swap.Fixed perm.(q) else Token_swap.Free in
        let swaps = Token_swap.route device ~current ~target in
        let final = Token_swap.apply device current swaps in
        Token_swap.count_misplaced final ~target = 0);
    QCheck.Test.make ~name:"greedy is never better than optimal" ~count:30
      QCheck.(int_range 0 10_000)
      (fun seed ->
        let device = Topologies.line 5 in
        let rng = Rng.create seed in
        let current = Mapping.random rng ~n_program:5 ~n_physical:5 in
        let perm = Rng.permutation rng 5 in
        let target q = Token_swap.Fixed perm.(q) in
        let greedy = Token_swap.route device ~current ~target in
        match Token_swap.optimal ~max_swaps:12 device ~current ~target with
        | None -> false
        | Some best -> List.length best <= List.length greedy);
  ]

(* ------------------------------------------------------------------ *)
(* Goldens: routed outputs bit-identical to the pre-refactor recordings *)
(* ------------------------------------------------------------------ *)

let golden_tests =
  List.map
    (fun (c : Goldens.case) ->
      test_case
        (Printf.sprintf "%s on %s seed %d" c.Goldens.router c.Goldens.device
           c.Goldens.seed)
        (fun () ->
          let device =
            match Qls_arch.Topologies.by_name c.Goldens.device with
            | Some d -> d
            | None -> Alcotest.fail ("unknown device " ^ c.Goldens.device)
          in
          let config =
            {
              Qubikos.Generator.default_config with
              n_swaps = 3;
              gate_budget = c.Goldens.gate_budget;
              seed = c.Goldens.seed;
            }
          in
          let inst = Qubikos.Generator.generate ~config device in
          let circuit = inst.Qubikos.Benchmark.circuit in
          let t =
            match c.Goldens.router with
            | "sabre" -> Sabre.route device circuit
            | "tket" -> Tket_router.route device circuit
            | "qmap" -> Astar_router.route device circuit
            | r -> Alcotest.fail ("unknown router " ^ r)
          in
          check_int "swap count" c.Goldens.swaps (Transpiled.swap_count t);
          Alcotest.(check string) "ops digest" c.Goldens.digest (fingerprint t)))
    Goldens.cases

(* ------------------------------------------------------------------ *)
(* Hot-path invariants: lookahead queries are round-invariant, and the  *)
(* routers build them once per round (the PR 3 hoisting).               *)
(* ------------------------------------------------------------------ *)

let hot_path_props =
  [
    QCheck.Test.make
      ~name:"lookahead queries are invariant across a candidate sweep"
      ~count:40
      QCheck.(int_range 0 100_000)
      (fun seed ->
        (* The hoisting in sabre/tket is sound iff extended_set,
           remaining_layers and swap_candidates return the same values
           when recomputed per candidate as when computed once at the top
           of the round — nothing between candidate evaluations mutates
           the state. *)
        let rng = Rng.create seed in
        let c =
          Random_circuit.uniform rng ~n_qubits:6 ~n_two_qubit:15
            ~single_ratio:0.0
        in
        let device = Topologies.grid 2 3 in
        let st =
          Route_state.create ~device ~source:c
            ~initial:(Placement.identity device c)
        in
        ignore (Route_state.advance st);
        Route_state.finished st
        ||
        let es = Route_state.extended_set st ~size:20 in
        let rl = Route_state.remaining_layers st ~max_layers:3 in
        let cands = Route_state.swap_candidates st in
        List.for_all
          (fun _cand ->
            Route_state.extended_set st ~size:20 = es
            && Route_state.remaining_layers st ~max_layers:3 = rl
            && Route_state.swap_candidates st = cands)
          cands);
  ]

let hot_path_tests =
  [
    test_case "sabre builds the extended set once per round" (fun () ->
        let device = Topologies.aspen4 () in
        let rng = Rng.create 3 in
        let c =
          Random_circuit.uniform rng ~n_qubits:16 ~n_two_qubit:60
            ~single_ratio:0.0
        in
        Route_state.Debug.reset ();
        let t = Sabre.route device c in
        let cnt = Route_state.Debug.counters () in
        check_bool "verifies" true (Verifier.is_valid t);
        let rounds = cnt.Route_state.Debug.swap_candidate_scans in
        check_bool "routing happened" true (rounds > 0);
        check_bool "at most one build per round" true
          (cnt.Route_state.Debug.extended_set_builds <= rounds);
        (* The pre-hoisting code built one extended set per candidate;
           on aspen4 a blocked round offers >= 3 candidates, so the old
           behaviour would violate the bound above by >= 3x. *)
        let st =
          Route_state.create ~device ~source:c
            ~initial:(Placement.identity device c)
        in
        ignore (Route_state.advance st);
        if not (Route_state.finished st) then
          check_bool ">= 3 candidates per blocked round" true
            (List.length (Route_state.swap_candidates st) >= 3));
    test_case "tket builds remaining layers once per round" (fun () ->
        let device = Topologies.aspen4 () in
        let rng = Rng.create 5 in
        let c =
          Random_circuit.uniform rng ~n_qubits:16 ~n_two_qubit:60
            ~single_ratio:0.0
        in
        Route_state.Debug.reset ();
        let t = Tket_router.route device c in
        let cnt = Route_state.Debug.counters () in
        check_bool "verifies" true (Verifier.is_valid t);
        let rounds = cnt.Route_state.Debug.swap_candidate_scans in
        check_bool "routing happened" true (rounds > 0);
        check_bool "at most one build per round" true
          (cnt.Route_state.Debug.remaining_layers_builds <= rounds));
    test_case "delta-maintained physical front: scans stay below rescans"
      (fun () ->
        (* The physical front is an active set updated by deltas on
           advance/apply_swap; before PR 9 each swap_candidates call
           re-scanned all n_qubits counts. The counter totals entries
           examined, so rounds * n_qubits is the old cost floor and any
           total strictly below it proves the delta path is live. *)
        let device = Topologies.aspen4 () in
        let n_qubits = Device.n_qubits device in
        let rng = Rng.create 3 in
        let c =
          Random_circuit.uniform rng ~n_qubits:16 ~n_two_qubit:60
            ~single_ratio:0.0
        in
        Route_state.Debug.reset ();
        let t = Sabre.route device c in
        let cnt = Route_state.Debug.counters () in
        check_bool "verifies" true (Verifier.is_valid t);
        let rounds = cnt.Route_state.Debug.swap_candidate_scans in
        check_bool "routing happened" true (rounds > 0);
        check_bool "front entries were scanned" true
          (cnt.Route_state.Debug.phys_front_scanned > 0);
        check_bool "below the full-rescan floor" true
          (cnt.Route_state.Debug.phys_front_scanned < rounds * n_qubits));
    test_case "extended set and layers cached across swap-only rounds"
      (fun () ->
        (* cx 0 4 on a 5-line stays blocked through several SWAP rounds:
           the front never changes, so the cache must serve every repeat
           query and only an advance that emits gates may invalidate. *)
        let device = Topologies.line 5 in
        let source =
          Circuit.create ~n_qubits:5 [ Gate.cx 0 4; Gate.cx 0 1 ]
        in
        let st =
          Route_state.create ~device ~source
            ~initial:(Placement.identity device source)
        in
        ignore (Route_state.advance st);
        Route_state.Debug.reset ();
        let builds () =
          (Route_state.Debug.counters ()).Route_state.Debug.extended_set_builds
        in
        let lbuilds () =
          (Route_state.Debug.counters ())
            .Route_state.Debug.remaining_layers_builds
        in
        let es1 = Route_state.extended_set st ~size:10 in
        check_int "first query builds" 1 (builds ());
        let es2 = Route_state.extended_set st ~size:10 in
        check_int "repeat query cached" 1 (builds ());
        Alcotest.(check (list int)) "cached value identical" es1 es2;
        let rl1 = Route_state.remaining_layers st ~max_layers:3 in
        check_int "layers first query builds" 1 (lbuilds ());
        (* A SWAP round that unblocks nothing must not invalidate. *)
        Route_state.apply_swap st 0 1;
        check_int "swap round: still zero emitted" 0 (Route_state.advance st);
        ignore (Route_state.extended_set st ~size:10);
        ignore (Route_state.remaining_layers st ~max_layers:3);
        check_int "swap-only round served from cache" 1 (builds ());
        check_int "layers too" 1 (lbuilds ());
        Alcotest.(check (list (list int)))
          "layers value stable" rl1
          (Route_state.remaining_layers st ~max_layers:3);
        (* A different size is a different key: rebuild. *)
        ignore (Route_state.extended_set st ~size:1);
        check_int "size change rebuilds" 2 (builds ());
        (* Progress (advance that emits) invalidates. *)
        Route_state.force_route_first st;
        check_bool "progress made" true (Route_state.advance st > 0);
        ignore (Route_state.extended_set st ~size:10);
        check_int "front change rebuilds" 3 (builds ()));
  ]

(* ------------------------------------------------------------------ *)
(* Tie-break epsilon modes                                             *)
(* ------------------------------------------------------------------ *)

let tie_break_tests =
  [
    test_case "sabre: both tie-break modes deterministic, default absolute"
      (fun () ->
        check_bool "default is absolute" true
          (not Sabre.default_options.Sabre.relative_tie_break);
        let device = Topologies.grid 3 3 in
        let rng = Rng.create 11 in
        let c =
          Random_circuit.uniform rng ~n_qubits:9 ~n_two_qubit:40
            ~single_ratio:0.0
        in
        let route opts = Sabre.route ~options:opts device c in
        let abs1 = route Sabre.default_options
        and abs2 = route Sabre.default_options in
        let rel_opts =
          { Sabre.default_options with Sabre.relative_tie_break = true }
        in
        let rel1 = route rel_opts and rel2 = route rel_opts in
        check_bool "absolute mode deterministic" true
          (Transpiled.ops abs1 = Transpiled.ops abs2);
        check_bool "relative mode deterministic" true
          (Transpiled.ops rel1 = Transpiled.ops rel2);
        check_bool "absolute verifies" true (Verifier.is_valid abs1);
        check_bool "relative verifies" true (Verifier.is_valid rel1));
    test_case "sabre: both modes solve Fig. 1 optimally" (fun () ->
        let device = Topologies.line 4 in
        let swaps opts =
          (Verifier.check_exn
             (Sabre.route ~options:(Sabre.with_trials 8 opts) device
                (triangle ())))
            .Verifier.swap_count
        in
        check_int "absolute" 1 (swaps Sabre.default_options);
        check_int "relative" 1
          (swaps { Sabre.default_options with Sabre.relative_tie_break = true }));
    test_case "tket: both tie-break modes deterministic, default absolute"
      (fun () ->
        check_bool "default is absolute" true
          (not Tket_router.default_options.Tket_router.relative_tie_break);
        let device = Topologies.grid 3 3 in
        let rng = Rng.create 13 in
        let c =
          Random_circuit.uniform rng ~n_qubits:9 ~n_two_qubit:40
            ~single_ratio:0.0
        in
        let route opts = Tket_router.route ~options:opts device c in
        let abs1 = route Tket_router.default_options
        and abs2 = route Tket_router.default_options in
        let rel_opts =
          {
            Tket_router.default_options with
            Tket_router.relative_tie_break = true;
          }
        in
        let rel1 = route rel_opts and rel2 = route rel_opts in
        check_bool "absolute mode deterministic" true
          (Transpiled.ops abs1 = Transpiled.ops abs2);
        check_bool "relative mode deterministic" true
          (Transpiled.ops rel1 = Transpiled.ops rel2);
        check_bool "absolute verifies" true (Verifier.is_valid abs1);
        check_bool "relative verifies" true (Verifier.is_valid rel1));
  ]

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry_tests =
  [
    test_case "paper tools in paper order" (fun () ->
        Alcotest.(check (list string)) "names"
          [ "sabre"; "mlqls"; "qmap"; "tket" ]
          (List.map (fun r -> r.Router.name) (Registry.paper_tools ())));
    test_case "by_name resolves all registered names" (fun () ->
        List.iter
          (fun name ->
            check_bool name true (Option.is_some (Registry.by_name name)))
          Registry.names);
    test_case "by_name aliases" (fun () ->
        check_bool "lightsabre" true (Option.is_some (Registry.by_name "lightsabre"));
        check_bool "ml-qls" true (Option.is_some (Registry.by_name "ml-qls")));
    test_case "by_name rejects unknown" (fun () ->
        check_bool "none" true (Registry.by_name "quantum-magic" = None));
  ]

(* ------------------------------------------------------------------ *)
(* Tracing transparency: arming Qls_obs must not change routed output  *)
(* (the instrumentation consumes no RNG and mutates no router state)   *)
(* ------------------------------------------------------------------ *)

let tracing_tests =
  [
    test_case "routed outputs are bit-identical with tracing on and off"
      (fun () ->
        let device = Topologies.grid 3 3 in
        let rng = Rng.create 2024 in
        let circuit =
          Random_circuit.uniform rng ~n_qubits:9 ~n_two_qubit:40
            ~single_ratio:0.2
        in
        let routers =
          [
            ("sabre", fun () -> Sabre.route device circuit);
            ("tket", fun () -> Tket_router.route device circuit);
            ("qmap", fun () -> Astar_router.route device circuit);
            ("mlqls", fun () -> Mlqls.route device circuit);
          ]
        in
        let plain = List.map (fun (n, r) -> (n, fingerprint (r ()))) routers in
        let path = Filename.temp_file "qls_router_trace" ".jsonl" in
        Qls_obs.tracing_to path;
        let traced =
          Fun.protect ~finally:Qls_obs.shutdown (fun () ->
              List.map (fun (n, r) -> (n, fingerprint (r ()))) routers)
        in
        List.iter2
          (fun (name, off) (_, on) ->
            Alcotest.(check string)
              (name ^ " unchanged by tracing") off on)
          plain traced;
        (* And the trace actually recorded router work. *)
        let records, bad = Qls_obs.load_jsonl path in
        Sys.remove path;
        check_int "trace intact" 0 bad;
        let has name = List.exists (fun r -> r.Qls_obs.r_name = name) records in
        check_bool "sabre rounds traced" true (has "sabre.round");
        check_bool "tket rounds traced" true (has "tket.round");
        check_bool "astar layers traced" true (has "astar.layer");
        check_bool "mlqls placement traced" true (has "mlqls.place"));
  ]

(* ------------------------------------------------------------------ *)
(* Cancellation: round loops must poll the ambient token. Regression   *)
(* for the transition router, whose routing loop had no checkpoint —   *)
(* an expired deadline was silently ignored until the route finished.  *)
(* ------------------------------------------------------------------ *)

let cancellation_tests =
  [
    test_case "transition router honours an expired ambient deadline"
      (fun () ->
        let device = Topologies.grid 3 3 in
        let rng = Rng.create 77 in
        let c =
          Random_circuit.uniform rng ~n_qubits:9 ~n_two_qubit:60
            ~single_ratio:0.0
        in
        let token = Qls_cancel.make ~deadline_ms:1 () in
        Unix.sleepf 0.005;
        check_bool "Expired raised from the round loop" true
          (try
             Qls_cancel.with_token token (fun () ->
                 ignore (Transition_router.route device c);
                 false)
           with Qls_cancel.Expired _ -> true));
    test_case "qmap honours an expired deadline mid-search" (fun () ->
        let device = Topologies.grid 3 3 in
        let rng = Rng.create 78 in
        let c =
          Random_circuit.uniform rng ~n_qubits:9 ~n_two_qubit:60
            ~single_ratio:0.0
        in
        let token = Qls_cancel.make ~deadline_ms:1 () in
        Unix.sleepf 0.005;
        check_bool "Expired raised" true
          (try
             Qls_cancel.with_token token (fun () ->
                 ignore (Astar_router.route device c);
                 false)
           with Qls_cancel.Expired _ -> true));
  ]

let () =
  Alcotest.run "qls_router"
    [
      ("route-state", route_state_tests);
      ("placement", placement_tests);
      ("router-properties", List.map QCheck_alcotest.to_alcotest router_props);
      ("sabre", sabre_tests);
      ("sabre-parallel", parallel_trial_tests);
      ("closed-set", closed_set_tests);
      ("closed-set-properties", List.map QCheck_alcotest.to_alcotest closed_set_props);
      ("tools", tool_tests);
      ("exact", exact_tests);
      ("exact-properties", List.map QCheck_alcotest.to_alcotest exact_props);
      ("olsq", olsq_tests);
      ("olsq-properties", List.map QCheck_alcotest.to_alcotest olsq_props);
      ("olsq-incremental", olsq_incremental_tests);
      ( "olsq-incremental-properties",
        List.map QCheck_alcotest.to_alcotest olsq_incremental_props );
      ("token-swap", token_swap_tests);
      ("token-swap-properties", List.map QCheck_alcotest.to_alcotest token_swap_props);
      ("goldens", golden_tests);
      ("hot-path", hot_path_tests);
      ("hot-path-properties", List.map QCheck_alcotest.to_alcotest hot_path_props);
      ("tie-break", tie_break_tests);
      ("registry", registry_tests);
      ("cancellation", cancellation_tests);
      ("tracing", tracing_tests);
    ]
