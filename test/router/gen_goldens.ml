(* Regenerates the golden recordings in goldens.ml.

   The goldens pin the exact routed output (ops sequence + swap count) of
   the stock SABRE and tket routers on fixed-seed QUBIKOS instances, so
   any hot-path refactor can prove its outputs bit-identical to the
   recordings. Run

     dune exec test/router/gen_goldens.exe

   and paste the printed list into goldens.ml ONLY when an intentional
   behaviour change invalidates the recordings (say so in the commit
   message); a perf-only change must never need to. *)

module Topologies = Qls_arch.Topologies
module Transpiled = Qls_layout.Transpiled
module Mapping = Qls_layout.Mapping
module Sabre = Qls_router.Sabre
module Tket_router = Qls_router.Tket_router
module Astar_router = Qls_router.Astar_router

let devices = [ ("aspen4", 150); ("sycamore54", 250) ]
let seeds = [ 0; 1; 7; 42 ]

(* qmap (A-star) goldens live on the big devices where its closed-set and
   layer-search rewrites actually bite — rochester (53q) and eagle
   (127q); two seeds keep the suite fast (the eagle search dominates). *)
let qmap_devices = [ ("rochester", 53); ("eagle", 127) ]
let qmap_seeds = [ 0; 1 ]
let n_swaps = 3

let fingerprint t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "init:";
  Array.iter
    (fun p -> Buffer.add_string buf (Printf.sprintf "%d," p))
    (Mapping.to_array (Transpiled.initial_mapping t));
  Buffer.add_string buf "|ops:";
  List.iter
    (function
      | Transpiled.Gate i -> Buffer.add_string buf (Printf.sprintf "G%d;" i)
      | Transpiled.Swap (p, p') ->
          Buffer.add_string buf (Printf.sprintf "S%d:%d;" p p'))
    (Transpiled.ops t);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let instance device_name gate_budget seed =
  let device =
    match Topologies.by_name device_name with
    | Some d -> d
    | None -> failwith ("unknown device " ^ device_name)
  in
  let config =
    { Qubikos.Generator.default_config with n_swaps; gate_budget; seed }
  in
  (device, Qubikos.Generator.generate ~config device)

let () =
  print_endline "let cases =";
  print_endline "  [";
  let record dev_name gate_budget seed router_name t =
    Printf.printf
      "    { device = %S; gate_budget = %d; seed = %d; router = %S;\n\
      \      swaps = %d; digest = %S };\n"
      dev_name gate_budget seed router_name (Transpiled.swap_count t)
      (fingerprint t)
  in
  List.iter
    (fun (dev_name, gate_budget) ->
      List.iter
        (fun seed ->
          let device, inst = instance dev_name gate_budget seed in
          let circuit = inst.Qubikos.Benchmark.circuit in
          record dev_name gate_budget seed "sabre" (Sabre.route device circuit);
          record dev_name gate_budget seed "tket"
            (Tket_router.route device circuit))
        seeds)
    devices;
  List.iter
    (fun (dev_name, gate_budget) ->
      List.iter
        (fun seed ->
          let device, inst = instance dev_name gate_budget seed in
          let circuit = inst.Qubikos.Benchmark.circuit in
          record dev_name gate_budget seed "qmap"
            (Astar_router.route device circuit))
        qmap_seeds)
    qmap_devices;
  print_endline "  ]"
