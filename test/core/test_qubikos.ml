(* Tests for the qubikos core library: benchmark generation, the
   optimality certificate, QUEKO, and the evaluation harness. *)

module Gate = Qls_circuit.Gate
module Circuit = Qls_circuit.Circuit
module Interaction = Qls_circuit.Interaction
module Topologies = Qls_arch.Topologies
module Device = Qls_arch.Device
module Mapping = Qls_layout.Mapping
module Transpiled = Qls_layout.Transpiled
module Verifier = Qls_layout.Verifier
module Router = Qls_router.Router
module Sabre = Qls_router.Sabre
module Exact = Qls_router.Exact
module Graph = Qls_graph.Graph
module Vf2 = Qls_graph.Vf2
module Benchmark = Qubikos.Benchmark
module Generator = Qubikos.Generator
module Certificate = Qubikos.Certificate
module Queko = Qubikos.Queko
module Evaluation = Qubikos.Evaluation

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let test_case name f = Alcotest.test_case name `Quick f

let gen ?(device = Topologies.grid 3 3) ?(n_swaps = 2) ?(gate_budget = 0)
    ?(saturation_cap = max_int) ?(single_qubit_ratio = 0.0) ?(seed = 0) () =
  Generator.generate
    ~config:
      {
        Generator.n_swaps;
        gate_budget;
        single_qubit_ratio;
        saturation_cap;
        seed;
      }
    device

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let generator_tests =
  [
    test_case "designed schedule uses exactly the claimed swaps" (fun () ->
        let b = gen ~n_swaps:3 () in
        check_int "claimed" 3 b.Benchmark.optimal_swaps;
        check_int "designed" 3 (Transpiled.swap_count b.Benchmark.designed));
    test_case "section count equals swap count" (fun () ->
        let b = gen ~n_swaps:4 () in
        check_int "sections" 4 (List.length b.Benchmark.sections));
    test_case "gate budget pads with fillers" (fun () ->
        let b = gen ~n_swaps:1 ~gate_budget:60 () in
        check_int "total" 60 (Benchmark.two_qubit_count b);
        check_bool "has fillers" true (Benchmark.filler_count b > 0));
    test_case "oversized backbone is kept whole" (fun () ->
        let b = gen ~n_swaps:4 ~gate_budget:1 () in
        check_int "no fillers" 0 (Benchmark.filler_count b);
        check_bool "backbone intact" true (Benchmark.two_qubit_count b > 1));
    test_case "single-qubit ratio" (fun () ->
        let b = gen ~n_swaps:1 ~gate_budget:40 ~single_qubit_ratio:0.5 () in
        check_int "about half" 20 (Circuit.single_qubit_count b.Benchmark.circuit));
    test_case "same seed reproduces the instance" (fun () ->
        let a = gen ~n_swaps:2 ~gate_budget:50 ~seed:9 () in
        let b = gen ~n_swaps:2 ~gate_budget:50 ~seed:9 () in
        check_bool "identical circuits" true
          (Circuit.equal a.Benchmark.circuit b.Benchmark.circuit));
    test_case "different seeds differ" (fun () ->
        let a = gen ~n_swaps:2 ~gate_budget:50 ~seed:1 () in
        let b = gen ~n_swaps:2 ~gate_budget:50 ~seed:2 () in
        check_bool "different" false
          (Circuit.equal a.Benchmark.circuit b.Benchmark.circuit));
    test_case "n_swaps < 1 rejected" (fun () ->
        check_bool "raises" true
          (try
             ignore (gen ~n_swaps:0 ());
             false
           with Invalid_argument _ -> true));
    test_case "complete device rejected" (fun () ->
        let k4 =
          Device.create ~name:"k4" (Qls_graph.Generators.complete 4)
        in
        check_bool "raises" true
          (try
             ignore (gen ~device:k4 ());
             false
           with Invalid_argument _ -> true));
    test_case "generate_suite uses consecutive seeds" (fun () ->
        let suite =
          Generator.generate_suite
            ~config:{ Generator.default_config with n_swaps = 1; seed = 5 }
            ~count:3 (Topologies.grid 3 3)
        in
        Alcotest.(check (list int)) "seeds" [ 5; 6; 7 ]
          (List.map (fun b -> b.Benchmark.seed) suite));
    test_case "special gate is last backbone gate of its section" (fun () ->
        let b = gen ~n_swaps:3 ~gate_budget:60 () in
        List.iter
          (fun s ->
            let last =
              List.fold_left max (-1) s.Benchmark.backbone_circuit_indices
            in
            check_int "special last" s.Benchmark.special_circuit_index last)
          b.Benchmark.sections);
    test_case "sections' interaction graphs never embed (Lemma 1)" (fun () ->
        let b = gen ~device:(Topologies.aspen4 ()) ~n_swaps:3 ~seed:13 () in
        List.iter
          (fun s ->
            let keep =
              List.filter
                (fun v -> Graph.degree s.Benchmark.interaction v > 0)
                (List.init (Graph.n_vertices s.Benchmark.interaction) Fun.id)
            in
            let pattern, _ = Graph.induced s.Benchmark.interaction keep in
            check_bool "not embeddable" false
              (Vf2.exists ~pattern ~target:(Device.graph b.Benchmark.device) ()))
          b.Benchmark.sections);
    test_case "works on every paper device" (fun () ->
        List.iter
          (fun device ->
            let b = gen ~device ~n_swaps:2 ~gate_budget:0 ~seed:3 () in
            check_int "swaps" 2 (Transpiled.swap_count b.Benchmark.designed))
          (Topologies.all_paper_devices ()));
    test_case "saturation cap keeps circuits small" (fun () ->
        let big = gen ~device:(Topologies.aspen4 ()) ~n_swaps:1 ~saturation_cap:0 ~seed:21 () in
        check_bool "small sections" true (Benchmark.two_qubit_count big <= 20));
  ]

let generator_props =
  [
    QCheck.Test.make ~name:"random instances pass the full certificate" ~count:30
      QCheck.(pair (int_range 1 4) (int_range 0 10_000))
      (fun (n_swaps, seed) ->
        let device =
          match seed mod 3 with
          | 0 -> Topologies.grid 3 3
          | 1 -> Topologies.aspen4 ()
          | _ -> Topologies.ring 8
        in
        let b = gen ~device ~n_swaps ~gate_budget:(20 * n_swaps) ~seed () in
        Result.is_ok (Certificate.check b));
    QCheck.Test.make ~name:"fillers never reduce the designed swap count"
      ~count:20
      QCheck.(int_range 0 10_000)
      (fun seed ->
        (* instances with and without fillers share the backbone seed; both
           must verify at the same optimal count *)
        let bare = gen ~n_swaps:2 ~gate_budget:0 ~seed () in
        let padded = gen ~n_swaps:2 ~gate_budget:80 ~seed () in
        Transpiled.swap_count bare.Benchmark.designed
        = Transpiled.swap_count padded.Benchmark.designed);
    QCheck.Test.make ~name:"backbone indices are sorted, unique and in range"
      ~count:30
      QCheck.(int_range 0 10_000)
      (fun seed ->
        let b = gen ~n_swaps:3 ~gate_budget:70 ~seed () in
        let idx = Benchmark.backbone_indices b in
        let sorted = List.sort_uniq compare idx in
        idx = sorted
        && List.for_all
             (fun i -> i >= 0 && i < Circuit.length b.Benchmark.circuit)
             idx);
  ]

(* ------------------------------------------------------------------ *)
(* Certificate                                                         *)
(* ------------------------------------------------------------------ *)

let certificate_tests =
  [
    test_case "passes on a fresh instance" (fun () ->
        Certificate.check_exn (gen ~n_swaps:3 ~gate_budget:50 ()));
    test_case "detects a wrong claimed swap count" (fun () ->
        let b = gen ~n_swaps:2 () in
        let tampered = { b with Benchmark.optimal_swaps = 3 } in
        match Certificate.check tampered with
        | Ok () -> Alcotest.fail "expected failure"
        | Error fs ->
            check_bool "wrong count" true
              (List.exists
                 (function Certificate.Wrong_swap_count _ -> true | _ -> false)
                 fs));
    test_case "detects an embeddable section graph" (fun () ->
        let b = gen ~n_swaps:1 () in
        let tampered_sections =
          List.map
            (fun s ->
              {
                s with
                Benchmark.interaction =
                  Qls_graph.Generators.path (Device.n_qubits b.Benchmark.device);
              })
            b.Benchmark.sections
        in
        match Certificate.check { b with Benchmark.sections = tampered_sections } with
        | Ok () -> Alcotest.fail "expected failure"
        | Error fs ->
            check_bool "embeddable" true
              (List.exists
                 (function Certificate.Section_embeddable _ -> true | _ -> false)
                 fs));
    test_case "detects a broken designed schedule" (fun () ->
        let b = gen ~n_swaps:1 () in
        let designed =
          Transpiled.create
            ~source:b.Benchmark.circuit ~device:b.Benchmark.device
            ~initial:b.Benchmark.initial_mapping
            (List.filter
               (function Transpiled.Swap _ -> false | Transpiled.Gate _ -> true)
               (Transpiled.ops b.Benchmark.designed))
        in
        match Certificate.check { b with Benchmark.designed = designed } with
        | Ok () -> Alcotest.fail "expected failure"
        | Error fs ->
            check_bool "invalid designed" true
              (List.exists
                 (function
                   | Certificate.Designed_invalid _ | Certificate.Wrong_swap_count _ ->
                       true
                   | _ -> false)
                 fs));
    test_case "detects broken section serialisation" (fun () ->
        (* Hand-build a fake 2-section benchmark whose sections are fully
           parallel: two disjoint adjacent pairs. *)
        let device = Topologies.line 4 in
        let circuit =
          Circuit.create ~n_qubits:4 [ Gate.cx 0 1; Gate.cx 2 3 ]
        in
        let initial = Mapping.identity ~n_program:4 ~n_physical:4 in
        let designed =
          Transpiled.create ~source:circuit ~device ~initial
            [ Transpiled.Gate 0; Transpiled.Swap (0, 1); Transpiled.Gate 1;
              Transpiled.Swap (2, 3) ]
        in
        let star5 = Qls_graph.Generators.star 5 in
        let section index special_ci swap =
          {
            Benchmark.index;
            swap;
            anchor = 0;
            target = 3;
            special_circuit_index = special_ci;
            backbone_circuit_indices = [ special_ci ];
            interaction = star5;
            mapping_before = initial;
            mapping_after = Mapping.swap_physical initial (fst swap) (snd swap);
          }
        in
        let fake =
          {
            Benchmark.device;
            circuit;
            optimal_swaps = 2;
            initial_mapping = initial;
            designed;
            sections = [ section 1 0 (0, 1); section 2 1 (2, 3) ];
            seed = 0;
          }
        in
        match Certificate.check fake with
        | Ok () -> Alcotest.fail "expected failure"
        | Error fs ->
            check_bool "parallel sections caught" true
              (List.exists
                 (function
                   | Certificate.Sections_parallel _ | Certificate.Dependency_broken _ ->
                       true
                   | _ -> false)
                 fs));
    test_case "check_exact confirms small instances" (fun () ->
        let b = gen ~n_swaps:2 ~saturation_cap:1 ~seed:4 () in
        let r = Certificate.check_exact b in
        check_bool "certified" true r.Certificate.certified;
        check_bool "exact agrees" true (r.Certificate.exact_agrees = Some true));
    test_case "check_exact reports budget exhaustion honestly" (fun () ->
        let b = gen ~n_swaps:2 ~seed:4 () in
        (* each method is starved through its own budget, in its own unit:
           conflicts for Sat, search-tree nodes for Search *)
        let r = Certificate.check_exact ~conflict_budget:0 b in
        check_bool "sat unknown" true (r.Certificate.exact_agrees = None);
        let r =
          Certificate.check_exact ~solver:Certificate.Search ~node_budget:1 b
        in
        check_bool "search unknown" true (r.Certificate.exact_agrees = None));
    test_case "check_exact sat path ignores node_budget" (fun () ->
        (* regression: node_budget used to be passed through as the SAT
           conflict budget, silently rescaling it *)
        let b = gen ~n_swaps:2 ~saturation_cap:1 ~seed:4 () in
        let r = Certificate.check_exact ~node_budget:1 b in
        check_bool "still confirmed" true
          (r.Certificate.exact_agrees = Some true));
    test_case "check_exact portfolio records a winner seed" (fun () ->
        let b = gen ~n_swaps:2 ~saturation_cap:1 ~seed:4 () in
        let r = Certificate.check_exact ~portfolio_seeds:[ 0; 1 ] b in
        check_bool "confirmed" true (r.Certificate.exact_agrees = Some true);
        check_bool "winner recorded" true
          (match r.Certificate.winner_seed with
          | Some s -> List.mem s [ 0; 1 ]
          | None -> false));
    test_case "pp_failure output is non-empty for all cases" (fun () ->
        List.iter
          (fun f ->
            check_bool "non-empty" true
              (String.length (Format.asprintf "%a" Certificate.pp_failure f) > 0))
          [
            Certificate.Section_embeddable 1;
            Certificate.Dependency_broken { section = 1; gate = 2 };
            Certificate.Sections_parallel { earlier = 1; later = 2 };
            Certificate.Designed_invalid "x";
            Certificate.Wrong_swap_count { designed = 1; claimed = 2 };
          ]);
  ]

(* ------------------------------------------------------------------ *)
(* Queko                                                               *)
(* ------------------------------------------------------------------ *)

let queko_tests =
  [
    test_case "instances are swap-free" (fun () ->
        for seed = 0 to 4 do
          let q = Queko.generate ~seed ~depth:8 (Topologies.grid 3 3) in
          check_bool "swap-free" true (Queko.verify_swap_free q)
        done);
    test_case "designed depth is exact" (fun () ->
        let q = Queko.generate ~seed:1 ~depth:12 (Topologies.aspen4 ()) in
        check_int "depth" 12 (Circuit.two_qubit_depth q.Queko.circuit);
        check_int "recorded" 12 q.Queko.optimal_depth);
    test_case "hidden mapping executes the circuit in place" (fun () ->
        let q = Queko.generate ~seed:2 ~depth:6 (Topologies.grid 3 3) in
        let device = q.Queko.device in
        List.iter
          (fun (a, b) ->
            check_bool "coupled" true
              (Device.coupled device
                 (Mapping.phys q.Queko.hidden_mapping a)
                 (Mapping.phys q.Queko.hidden_mapping b)))
          (Circuit.two_qubit_pairs q.Queko.circuit));
    test_case "vf2 placement solves QUEKO outright (the paper's point)" (fun () ->
        let q = Queko.generate ~seed:3 ~depth:10 (Topologies.grid 3 3) in
        match Qls_router.Placement.vf2 q.Queko.device q.Queko.circuit with
        | None -> Alcotest.fail "QUEKO must be solvable by isomorphism"
        | Some m ->
            check_int "zero spread" 0
              (Qls_router.Placement.spread_cost q.Queko.device q.Queko.circuit m));
    test_case "suites have the advertised depths and are swap-free" (fun () ->
        let device = Topologies.grid 3 3 in
        let suite = Queko.generate_suite ~seed:4 Queko.Tfl device in
        Alcotest.(check (list int)) "depths" (Queko.suite_depths Queko.Tfl)
          (List.map (fun q -> q.Queko.optimal_depth) suite);
        List.iter
          (fun q ->
            check_int "depth exact" q.Queko.optimal_depth
              (Circuit.two_qubit_depth q.Queko.circuit))
          suite);
    test_case "depth_ratio is 1.0 for the hidden-mapping execution" (fun () ->
        let device = Topologies.grid 3 3 in
        let q = Queko.generate ~seed:5 ~depth:8 device in
        (* execute in place under the hidden mapping: no swaps *)
        let ops =
          List.init (Circuit.length q.Queko.circuit) (fun i -> Transpiled.Gate i)
        in
        let t =
          Transpiled.create ~source:q.Queko.circuit ~device
            ~initial:q.Queko.hidden_mapping ops
        in
        check_bool "valid" true (Qls_layout.Verifier.is_valid t);
        Alcotest.(check (float 1e-9)) "ratio" 1.0 (Queko.depth_ratio q t));
    test_case "depth_ratio rejects foreign circuits" (fun () ->
        let device = Topologies.grid 3 3 in
        let q = Queko.generate ~seed:6 ~depth:5 device in
        let other = Circuit.create ~n_qubits:9 [ Gate.cx 0 1 ] in
        let t =
          Transpiled.create ~source:other ~device
            ~initial:(Mapping.identity ~n_program:9 ~n_physical:9)
            [ Transpiled.Gate 0 ]
        in
        check_bool "raises" true
          (try
             ignore (Queko.depth_ratio q t);
             false
           with Invalid_argument _ -> true));
    test_case "parameter validation" (fun () ->
        check_bool "depth" true
          (try
             ignore (Queko.generate ~depth:0 (Topologies.line 3));
             false
           with Invalid_argument _ -> true);
        check_bool "density" true
          (try
             ignore (Queko.generate ~density:1.5 ~depth:2 (Topologies.line 3));
             false
           with Invalid_argument _ -> true));
    test_case "QUBIKOS sections defeat per-section VF2 stitching (III-C)" (fun () ->
        (* Solving section 1 by isomorphism and extending it greedily to
           section 2 can fail even though a global optimum exists — the
           paper's argument for why QUBIKOS is hard. We verify the sections
           are at least not independently solvable after the special gate
           breaks the mapping. *)
        let b = gen ~device:(Topologies.aspen4 ()) ~n_swaps:2 ~seed:2 () in
        match b.Benchmark.sections with
        | [ s1; _ ] ->
            let keep =
              List.filter
                (fun v -> Graph.degree s1.Benchmark.interaction v > 0)
                (List.init (Graph.n_vertices s1.Benchmark.interaction) Fun.id)
            in
            let pattern, _ = Graph.induced s1.Benchmark.interaction keep in
            check_bool "section 1 not embeddable" false
              (Vf2.exists ~pattern ~target:(Device.graph b.Benchmark.device) ())
        | _ -> Alcotest.fail "expected two sections");
  ]

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let evaluation_tests =
  [
    test_case "paper gate budgets" (fun () ->
        check_int "aspen" 300 (Evaluation.paper_gate_budget (Topologies.aspen4 ()));
        check_int "sycamore" 1500 (Evaluation.paper_gate_budget (Topologies.sycamore54 ()));
        check_int "rochester" 1500 (Evaluation.paper_gate_budget (Topologies.rochester ()));
        check_int "eagle" 3000 (Evaluation.paper_gate_budget (Topologies.eagle127 ())));
    test_case "run_point produces sane ratios" (fun () ->
        let device = Topologies.grid 3 3 in
        let config =
          {
            (Evaluation.default_figure_config device) with
            circuits_per_point = 2;
            gate_budget = 40;
            sabre_trials = 2;
          }
        in
        let tools = [ Sabre.router ~options:(Sabre.with_trials 2 Sabre.default_options) () ] in
        let points = Evaluation.run_point ~tools ~config ~n_swaps:2 device in
        check_int "one tool" 1 (List.length points);
        let p = List.hd points in
        check_bool "ratio >= 1" true (p.Evaluation.ratio >= 1.0 -. 1e-9);
        check_int "optimal recorded" 2 p.Evaluation.optimal;
        check_bool "min <= max" true (p.Evaluation.min_swaps <= p.Evaluation.max_swaps));
    test_case "run_figure covers all swap counts" (fun () ->
        let device = Topologies.grid 3 3 in
        let config =
          {
            (Evaluation.default_figure_config device) with
            swap_counts = [ 1; 2 ];
            circuits_per_point = 1;
            gate_budget = 30;
          }
        in
        let tools = [ Sabre.router () ] in
        let points = Evaluation.run_figure ~tools ~config device in
        Alcotest.(check (list int)) "swap counts" [ 1; 2 ]
          (List.map (fun p -> p.Evaluation.optimal) points));
    test_case "tool_gap_summary averages per tool" (fun () ->
        let mk tool ratio =
          {
            Evaluation.device_name = "d";
            tool_name = tool;
            optimal = 1;
            circuits = 1;
            degraded = 0;
            mean_swaps = ratio;
            ratio;
            min_swaps = 0;
            max_swaps = 0;
            mean_seconds = 0.0;
          }
        in
        let summary =
          Evaluation.tool_gap_summary [ mk "a" 2.0; mk "a" 4.0; mk "b" 1.0 ]
        in
        Alcotest.(check (list (pair string (float 1e-9)))) "sorted by gap"
          [ ("b", 1.0); ("a", 3.0) ]
          summary);
    test_case "optimality study on the 3x3 grid" (fun () ->
        let rows =
          Evaluation.run_optimality_study ~circuits_per_count:2
            ~swap_counts:[ 1; 2 ] ~gate_budget:20 (Topologies.grid 3 3)
        in
        check_int "two rows" 2 (List.length rows);
        List.iter
          (fun r ->
            check_int "all certified" r.Evaluation.o_circuits r.Evaluation.o_certified;
            check_int "all exact-confirmed" r.Evaluation.o_circuits
              r.Evaluation.o_exact_confirmed)
          rows);
    test_case "pp functions produce aligned tables" (fun () ->
        let device = Topologies.grid 3 3 in
        let config =
          {
            (Evaluation.default_figure_config device) with
            swap_counts = [ 1 ];
            circuits_per_point = 1;
            gate_budget = 20;
          }
        in
        let points =
          Evaluation.run_figure ~tools:[ Sabre.router () ] ~config device
        in
        let s = Format.asprintf "@[<v>%a@]" Evaluation.pp_points points in
        check_bool "has header" true (String.length s > 40));
  ]

let serialize_tests =
  [
    test_case "round trip preserves everything the certificate needs" (fun () ->
        let b = gen ~device:(Topologies.aspen4 ()) ~n_swaps:3 ~gate_budget:80
            ~single_qubit_ratio:0.2 ~seed:6 () in
        let b' = Qubikos.Serialize.of_string (Qubikos.Serialize.to_string b) in
        check_bool "circuit" true (Circuit.equal b.Benchmark.circuit b'.Benchmark.circuit);
        check_int "optimal" b.Benchmark.optimal_swaps b'.Benchmark.optimal_swaps;
        check_int "seed" b.Benchmark.seed b'.Benchmark.seed;
        check_bool "initial mapping" true
          (Mapping.equal b.Benchmark.initial_mapping b'.Benchmark.initial_mapping);
        check_int "sections" (List.length b.Benchmark.sections)
          (List.length b'.Benchmark.sections);
        Certificate.check_exn b');
    test_case "file round trip" (fun () ->
        let b = gen ~n_swaps:2 ~gate_budget:40 ~seed:3 () in
        let path = Filename.temp_file "qubikos" ".qbk" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Qubikos.Serialize.save path b;
            let b' = Qubikos.Serialize.load path in
            check_bool "designed ops equal" true
              (Transpiled.ops b.Benchmark.designed
               = Transpiled.ops b'.Benchmark.designed)));
    test_case "anonymous devices are rejected" (fun () ->
        let device =
          Device.create ~name:"custom" (Qls_graph.Generators.path 5)
        in
        let b = gen ~device ~n_swaps:1 () in
        check_bool "raises" true
          (try
             ignore (Qubikos.Serialize.to_string b);
             false
           with Invalid_argument _ -> true));
    test_case "version and device errors are reported" (fun () ->
        check_bool "bad version" true
          (try
             ignore (Qubikos.Serialize.of_string "QUBIKOS 99\n");
             false
           with Failure _ -> true);
        check_bool "bad device" true
          (try
             ignore (Qubikos.Serialize.of_string "QUBIKOS 1\ndevice nope\n");
             false
           with Failure _ -> true);
        check_bool "garbage" true
          (try
             ignore (Qubikos.Serialize.of_string "hello world\n");
             false
           with Failure _ -> true));
    test_case "tampered claims are caught by the certificate after reload"
      (fun () ->
        let b = gen ~device:(Topologies.grid 3 3) ~n_swaps:2 ~gate_budget:30 ~seed:8 () in
        let text = Qubikos.Serialize.to_string b in
        let buf = Buffer.create (String.length text) in
        String.split_on_char '\n' text
        |> List.iter (fun l ->
               Buffer.add_string buf
                 (if l = "optimal_swaps 2" then "optimal_swaps 3" else l);
               Buffer.add_char buf '\n');
        let b' = Qubikos.Serialize.of_string (Buffer.contents buf) in
        check_bool "certificate rejects" true
          (Result.is_error (Certificate.check b')));
  ]

let () =
  Alcotest.run "qubikos"
    [
      ("generator", generator_tests);
      ("generator-properties", List.map QCheck_alcotest.to_alcotest generator_props);
      ("certificate", certificate_tests);
      ("queko", queko_tests);
      ("evaluation", evaluation_tests);
      ("serialize", serialize_tests);
    ]
