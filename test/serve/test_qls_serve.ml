(* Tests for the serving subsystem: protocol framing and parsing, cache
   key injectivity (QCheck), the bounded single-flight LRU cache, the
   long-lived Pool.submit API, typed tool validation, and an end-to-end
   daemon over a temporary Unix socket (cache hits byte-identical to
   cold responses and to the offline library route). *)

module Protocol = Qls_serve.Protocol
module Cache = Qls_serve.Cache
module Server = Qls_serve.Server
module Pool = Qls_harness.Pool
module Herror = Qls_harness.Herror
module Evaluation = Qubikos.Evaluation

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let test_case name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Protocol framing                                                    *)
(* ------------------------------------------------------------------ *)

(* Run the framing over a real pipe: the same channel machinery the
   daemon uses on sockets. *)
let roundtrip payloads =
  let r, w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr w in
  let ic = Unix.in_channel_of_descr r in
  List.iter (Protocol.write_frame oc) payloads;
  close_out oc;
  let rec read acc =
    match Protocol.read_frame ic with
    | Some p -> read (p :: acc)
    | None -> List.rev acc
  in
  let got = read [] in
  close_in ic;
  got

let test_frame_roundtrip () =
  let payloads =
    [ {|{"verb":"stats"}|}; ""; "payload\nwith\nnewlines"; String.make 4096 'x' ]
  in
  let got = roundtrip payloads in
  check_int "frame count" (List.length payloads) (List.length got);
  List.iter2 (fun a b -> check_string "frame payload" a b) payloads got

let read_of_string s =
  let path = Filename.temp_file "qls_serve_frame" ".bin" in
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc;
  let ic = open_in_bin path in
  let result =
    match Protocol.read_frame ic with
    | exception Protocol.Bad_request m -> Error m
    | exception End_of_file -> Error "truncated frame"
    | Some p -> Ok (Some p)
    | None -> Ok None
  in
  close_in ic;
  Sys.remove path;
  result

let test_frame_malformed () =
  (match read_of_string "" with
  | Ok None -> ()
  | _ -> Alcotest.fail "clean EOF should be None");
  (match read_of_string "nonsense\n{}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-decimal length must be rejected");
  (match read_of_string "-3\nabc\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative length must be rejected");
  (match read_of_string "10\nabc" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated payload must be rejected");
  (match read_of_string "3\nabcX" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing terminator must be rejected");
  (* CRLF header is tolerated for hand-typed clients *)
  match read_of_string "2\r\nhi\n" with
  | Ok (Some "hi") -> ()
  | _ -> Alcotest.fail "CRLF header should be tolerated"

let test_request_parse () =
  (match Protocol.request_of_payload {|{"verb":"stats"}|} with
  | Protocol.Stats -> ()
  | _ -> Alcotest.fail "stats");
  (match Protocol.request_of_payload {|{"verb":"route"}|} with
  | Protocol.Route p ->
      check_string "default arch" "aspen4" p.gen.arch;
      check_int "default swaps" 5 p.gen.n_swaps;
      check_bool "default gates" true (Option.is_none p.gen.gates);
      check_string "default tool" "sabre" p.tool;
      check_int "default trials" 20 p.trials
  | _ -> Alcotest.fail "route");
  (match
     Protocol.request_of_payload
       {|{"verb":"certify","arch":"grid3x3","swaps":2,"gates":30,"seed":7}|}
   with
  | Protocol.Certify { gen = g; deadline_ms = None } ->
      check_string "arch" "grid3x3" g.arch;
      check_int "swaps" 2 g.n_swaps;
      check_bool "gates" true (match g.gates with Some 30 -> true | _ -> false);
      check_int "seed" 7 g.seed
  | _ -> Alcotest.fail "certify");
  let rejects payload =
    match Protocol.request_of_payload payload with
    | exception Protocol.Bad_request _ -> ()
    | _ -> Alcotest.fail ("should reject: " ^ payload)
  in
  rejects {|{"verb":"warp"}|};
  rejects {|{"arch":"aspen4"}|};
  rejects {|{"verb":"route","swaps":"many"}|};
  rejects {|not json|};
  (* evaluate has no optimum to compare an inline circuit against *)
  rejects {|{"verb":"evaluate","qasm":"OPENQASM 2.0;"}|};
  check_bool "id" true
    (match Protocol.request_id {|{"id":"r1","verb":"stats"}|} with
    | Some "r1" -> true
    | _ -> false)

let test_request_parse_deadline () =
  (match
     Protocol.request_of_payload {|{"verb":"route","deadline_ms":250}|}
   with
  | Protocol.Route p ->
      check_bool "route deadline" true
        (match p.deadline_ms with Some 250 -> true | _ -> false)
  | _ -> Alcotest.fail "route with deadline");
  (match
     Protocol.request_of_payload
       {|{"verb":"certify","arch":"grid3x3","swaps":2,"deadline_ms":100}|}
   with
  | Protocol.Certify { deadline_ms = Some 100; _ } -> ()
  | _ -> Alcotest.fail "certify with deadline");
  (match Protocol.request_of_payload {|{"verb":"route"}|} with
  | Protocol.Route { deadline_ms = None; _ } -> ()
  | _ -> Alcotest.fail "absent deadline is None");
  (match Protocol.request_of_payload {|{"verb":"health"}|} with
  | Protocol.Health -> ()
  | _ -> Alcotest.fail "health verb");
  let rejects payload =
    match Protocol.request_of_payload payload with
    | exception Protocol.Bad_request _ -> ()
    | _ -> Alcotest.fail ("should reject: " ^ payload)
  in
  rejects {|{"verb":"route","deadline_ms":0}|};
  rejects {|{"verb":"route","deadline_ms":-5}|};
  rejects {|{"verb":"route","deadline_ms":"fast"}|}

(* ------------------------------------------------------------------ *)
(* Timeout-aware fd framing: chunked reads, oversize, idle, io budget  *)
(* ------------------------------------------------------------------ *)

let encode_frames payloads =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf '\n';
      Buffer.add_string buf p;
      Buffer.add_char buf '\n')
    payloads;
  Buffer.contents buf

(* Push [bytes] through a real pipe and read frames back with the fd
   reader, optionally forcing pathological read sizes via the hook. *)
let read_frames_fd ?read_hook bytes =
  let r, w = Unix.pipe () in
  let writer =
    Thread.create
      (fun () ->
        let n = String.length bytes in
        let pos = ref 0 in
        while !pos < n do
          pos := !pos + Unix.write_substring w bytes !pos (n - !pos)
        done;
        Unix.close w)
      ()
  in
  let rd = Protocol.reader ?read_hook r in
  let rec go acc =
    match Protocol.read_frame_fd rd with
    | Protocol.Frame p -> go (p :: acc)
    | Protocol.Eof -> Ok (List.rev acc)
    | Protocol.Idle -> Error "unexpected idle"
    | exception Protocol.Bad_request m -> Error m
  in
  let out = go [] in
  Thread.join writer;
  Unix.close r;
  out

let test_fd_reader_one_byte_reads () =
  let payloads =
    [ {|{"verb":"stats"}|}; ""; "payload\nwith\nnewlines"; String.make 300 'q' ]
  in
  match read_frames_fd ~read_hook:(fun _ -> 1) (encode_frames payloads) with
  | Ok got ->
      check_int "frame count" (List.length payloads) (List.length got);
      List.iter2 (fun a b -> check_string "reassembled" a b) payloads got
  | Error m -> Alcotest.fail ("one-byte reads failed: " ^ m)

let test_fd_reader_oversize_frame () =
  (* an oversize declaration must yield one clean Bad_request before any
     payload allocation, not a hang or a torn read *)
  let header = string_of_int (Protocol.max_frame + 1) ^ "\n" in
  match read_frames_fd header with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversize frame must be rejected"

let test_fd_reader_idle_timeout () =
  let r, w = Unix.pipe () in
  let rd = Protocol.reader ~idle_timeout:0.05 r in
  (match Protocol.read_frame_fd rd with
  | Protocol.Idle -> ()
  | _ -> Alcotest.fail "a silent connection must be reported Idle");
  Unix.close r;
  Unix.close w

let test_fd_reader_io_timeout_mid_frame () =
  let r, w = Unix.pipe () in
  (* a slow-loris client: frame started, never finished *)
  ignore (Unix.write_substring w "4\nab" 0 4);
  let rd = Protocol.reader ~io_timeout:0.05 r in
  (match Protocol.read_frame_fd rd with
  | exception Protocol.Bad_request _ -> ()
  | _ -> Alcotest.fail "a stalled mid-frame read must be Bad_request");
  Unix.close r;
  Unix.close w

let chunked_frame_props =
  let open QCheck in
  let payload = string_gen_of_size (Gen.int_range 0 64) Gen.printable in
  [
    Test.make ~name:"fd reader reassembles frames under arbitrary chunking"
      ~count:60
      (pair (list_of_size (Gen.int_range 1 6) payload)
         (list_of_size (Gen.int_range 1 16) (int_range 1 7)))
      (fun (payloads, chunks) ->
        let chunks = Array.of_list chunks in
        let i = ref 0 in
        let hook want =
          let c = chunks.(!i mod Array.length chunks) in
          incr i;
          min want c
        in
        match read_frames_fd ~read_hook:hook (encode_frames payloads) with
        | Ok got -> got = payloads
        | Error _ -> false);
  ]

(* ------------------------------------------------------------------ *)
(* Cache keys: injectivity (QCheck)                                    *)
(* ------------------------------------------------------------------ *)

let key_props =
  let open QCheck in
  let component = string_gen_of_size (Gen.int_range 0 12) Gen.printable in
  let tuple =
    quad component component component (pair small_signed_int small_signed_int)
  in
  [
    Test.make ~name:"route_key injective over its 5-tuple" ~count:500
      (pair tuple tuple)
      (fun ((d1, c1, t1, (tr1, s1)), (d2, c2, t2, (tr2, s2))) ->
        let k1 =
          Protocol.route_key ~device:d1 ~circuit:c1 ~tool:t1 ~trials:tr1
            ~seed:s1
        and k2 =
          Protocol.route_key ~device:d2 ~circuit:c2 ~tool:t2 ~trials:tr2
            ~seed:s2
        in
        String.equal k1 k2
        = (String.equal d1 d2 && String.equal c1 c2 && String.equal t1 t2
           && tr1 = tr2 && s1 = s2));
    Test.make ~name:"gen_key injective over generator params" ~count:500
      (pair
         (quad component small_signed_int (option small_nat) small_signed_int)
         (quad component small_signed_int (option small_nat) small_signed_int))
      (fun ((a1, n1, g1, s1), (a2, n2, g2, s2)) ->
        let mk arch n_swaps gates seed =
          Protocol.gen_key { Protocol.arch; n_swaps; gates; seed }
        in
        String.equal (mk a1 n1 g1 s1) (mk a2 n2 g2 s2)
        = (String.equal a1 a2 && n1 = n2
           && (match (g1, g2) with
              | None, None -> true
              | Some x, Some y -> x = y
              | _ -> false)
           && s1 = s2));
  ]

let test_circuit_hash () =
  let h1 = Protocol.circuit_hash "OPENQASM 2.0;\ncx q[0],q[1];" in
  let h2 = Protocol.circuit_hash "OPENQASM 2.0;\ncx q[0],q[1];" in
  let h3 = Protocol.circuit_hash "OPENQASM 2.0;\ncx q[1],q[0];" in
  check_string "deterministic" h1 h2;
  check_bool "content-sensitive" false (String.equal h1 h3);
  check_int "16 hex digits" 16 (String.length h1)

(* ------------------------------------------------------------------ *)
(* Cache: LRU, single-flight, stats                                    *)
(* ------------------------------------------------------------------ *)

let test_cache_hit_miss () =
  let c = Cache.create ~capacity:8 "t" in
  let calls = ref 0 in
  let compute () = incr calls; "v" in
  let v1, hit1 = Cache.find_or_compute c ~key:"k" compute in
  let v2, hit2 = Cache.find_or_compute c ~key:"k" compute in
  check_string "value" "v" v1;
  check_bool "cold is a miss" false hit1;
  check_bool "second is a hit" true hit2;
  check_bool "hit is the same result" true (String.equal v1 v2);
  check_int "computed once" 1 !calls;
  let s = Cache.stats c in
  check_int "hits" 1 s.Cache.hits;
  check_int "misses" 1 s.Cache.misses;
  check_int "size" 1 s.Cache.size

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 "t" in
  let get key = Cache.find_or_compute c ~key (fun () -> key) in
  ignore (get "a");
  ignore (get "b");
  ignore (get "a");
  (* a is now more recently used than b *)
  ignore (get "c");
  (* over capacity: b (LRU) must go, a must stay *)
  let _, hit_a = get "a" in
  check_bool "a survived" true hit_a;
  let _, hit_b = get "b" in
  check_bool "b was evicted" false hit_b;
  check_int "one eviction before b came back"
    2 (* b's eviction, then a's or c's when b was re-added over capacity *)
    (Cache.stats c).Cache.evictions

let test_cache_capacity_zero () =
  let c = Cache.create ~capacity:0 "t" in
  let calls = ref 0 in
  let compute () = incr calls; !calls in
  let _, h1 = Cache.find_or_compute c ~key:"k" compute in
  let _, h2 = Cache.find_or_compute c ~key:"k" compute in
  check_bool "never hits" false (h1 || h2);
  check_int "always computes" 2 !calls

let test_cache_single_flight () =
  let c = Cache.create ~capacity:8 "t" in
  let computes = Atomic.make 0 in
  let compute () =
    Atomic.incr computes;
    Thread.delay 0.05;
    "slow"
  in
  let results = Array.make 8 ("", false) in
  let threads =
    List.init 8 (fun i ->
        Thread.create
          (fun () -> results.(i) <- Cache.find_or_compute c ~key:"k" compute)
          ())
  in
  List.iter Thread.join threads;
  check_int "exactly one computation" 1 (Atomic.get computes);
  Array.iter (fun (v, _) -> check_string "all see the value" "slow" v) results;
  let hits = Array.to_list results |> List.filter snd |> List.length in
  check_int "waiters count as hits" 7 hits;
  let s = Cache.stats c in
  check_int "stats misses" 1 s.Cache.misses;
  check_int "stats hits" 7 s.Cache.hits

let test_cache_failure_releases_slot () =
  let c = Cache.create ~capacity:8 "t" in
  (match Cache.find_or_compute c ~key:"k" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception must propagate");
  let v, hit = Cache.find_or_compute c ~key:"k" (fun () -> "ok") in
  check_string "slot released" "ok" v;
  check_bool "recompute is a miss" false hit

(* ------------------------------------------------------------------ *)
(* Pool.submit / drain                                                 *)
(* ------------------------------------------------------------------ *)

let test_pool_submit_completes () =
  let p = Pool.start ~jobs:2 () in
  let acc = Atomic.make 0 in
  let pending = Atomic.make 0 in
  for i = 1 to 50 do
    Atomic.incr pending;
    match
      Pool.submit p
        ~work:(fun () -> i)
        ~complete:(fun r ->
          (match r with
          | Ok v -> ignore (Atomic.fetch_and_add acc v)
          | Error _ -> ());
          Atomic.decr pending)
    with
    | Pool.Submitted -> ()
    | _ -> Alcotest.fail "submit refused with an unbounded queue"
  done;
  Pool.drain p;
  check_int "all completions ran" 0 (Atomic.get pending);
  check_int "results delivered" (50 * 51 / 2) (Atomic.get acc)

let test_pool_error_result () =
  let p = Pool.start ~jobs:1 () in
  let got = Atomic.make "" in
  (match
     Pool.submit p
       ~work:(fun () -> failwith "task blew up")
       ~complete:(fun r ->
         match r with
         | Error (Failure m) -> Atomic.set got m
         | _ -> ())
   with
  | Pool.Submitted -> ()
  | _ -> Alcotest.fail "submit refused");
  Pool.drain p;
  check_string "exception delivered as Error" "task blew up" (Atomic.get got)

let test_pool_rejects_when_full () =
  let p = Pool.start ~jobs:1 ~capacity:1 () in
  let gate = Atomic.make true in
  let started = Atomic.make false in
  let submit_blocker () =
    Pool.submit p
      ~work:(fun () ->
        Atomic.set started true;
        while Atomic.get gate do
          Thread.yield ()
        done)
      ~complete:(fun _ -> ())
  in
  check_bool "blocker admitted" true
    (match submit_blocker () with Pool.Submitted -> true | _ -> false);
  (* wait until the worker picked it up, so the queue is empty again *)
  while not (Atomic.get started) do
    Thread.yield ()
  done;
  let ok2 =
    Pool.submit p ~work:(fun () -> ()) ~complete:(fun _ -> ())
  in
  check_bool "one queued job fits" true
    (match ok2 with Pool.Submitted -> true | _ -> false);
  let ok3 =
    Pool.submit p ~work:(fun () -> ()) ~complete:(fun _ -> ())
  in
  check_bool "beyond capacity is refused" true
    (match ok3 with Pool.Rejected_full -> true | _ -> false);
  check_int "queue depth visible" 1 (Pool.queue_depth p);
  Atomic.set gate false;
  Pool.drain p;
  check_bool "post-drain submits are refused" true
    (match Pool.submit p ~work:(fun () -> ()) ~complete:(fun _ -> ()) with
    | Pool.Rejected_closed -> true
    | _ -> false)

let test_pool_callback_error_contained () =
  let seen = Atomic.make 0 in
  let p =
    Pool.start ~jobs:1 ~on_callback_error:(fun _ -> Atomic.incr seen) ()
  in
  let after = Atomic.make false in
  ignore
    (Pool.submit p ~work:(fun () -> ()) ~complete:(fun _ -> failwith "cb"));
  ignore
    (Pool.submit p
       ~work:(fun () -> ())
       ~complete:(fun _ -> Atomic.set after true));
  Pool.drain p;
  check_int "callback failure reported" 1 (Atomic.get seen);
  check_bool "worker survived it" true (Atomic.get after)

(* ------------------------------------------------------------------ *)
(* Deadlines and watchdog supervision                                  *)
(* ------------------------------------------------------------------ *)

let test_cancel_token () =
  (* the ambient token defaults to the inert one: polls are free no-ops *)
  Qls_cancel.poll ();
  let t = Qls_cancel.make ~deadline_ms:1 () in
  (match
     Qls_cancel.with_token t (fun () ->
         Thread.delay 0.01;
         Qls_cancel.poll ();
         `Completed)
   with
  | exception Qls_cancel.Expired { elapsed_ms; limit_ms } ->
      check_int "limit carried" 1 limit_ms;
      check_bool "elapsed >= limit" true (elapsed_ms >= limit_ms)
  | `Completed -> Alcotest.fail "an expired token must raise at the poll");
  (* without a deadline the poll stamps the heartbeat and never raises *)
  let t2 = Qls_cancel.make () in
  Qls_cancel.with_token t2 (fun () ->
      Thread.delay 0.005;
      Qls_cancel.poll ());
  check_bool "heartbeat stamped" true
    (Qls_cancel.last_poll_ms t2 >= Qls_cancel.created_ms t2);
  match Qls_cancel.make ~deadline_ms:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "deadline_ms < 1 must be rejected"

let test_pool_deadline_expires () =
  let p = Pool.start ~jobs:1 () in
  let got = Atomic.make None in
  let token = Qls_cancel.make ~deadline_ms:5 () in
  ignore
    (Pool.submit p ~token
       ~work:(fun () ->
         Thread.delay 0.05;
         Qls_cancel.poll ();
         1)
       ~complete:(fun r -> Atomic.set got (Some r)));
  Pool.drain p;
  match Atomic.get got with
  | Some (Error (Qls_cancel.Expired { elapsed_ms; limit_ms })) ->
      check_int "limit carried through the pool" 5 limit_ms;
      check_bool "elapsed >= limit" true (elapsed_ms >= limit_ms)
  | _ -> Alcotest.fail "the deadline must expire inside the pooled job"

let test_pool_watchdog_replaces_lost_worker () =
  let p =
    Pool.start ~jobs:1
      ~watchdog:{ Pool.hang_threshold_ms = 150; tick_ms = 25 }
      ()
  in
  let verdict = Atomic.make None in
  ignore
    (Pool.submit p
       ~work:(fun () -> Thread.delay 0.6)
       ~complete:(fun r -> Atomic.set verdict (Some r)));
  (* the watchdog must deliver the loss well before the stall ends *)
  let give_up = Unix.gettimeofday () +. 5.0 in
  while
    Option.is_none (Atomic.get verdict) && Unix.gettimeofday () < give_up
  do
    Thread.delay 0.01
  done;
  (match Atomic.get verdict with
  | Some (Error (Pool.Worker_lost { stalled_ms; _ })) ->
      check_bool "stall measured past the threshold" true (stalled_ms >= 150)
  | _ -> Alcotest.fail "watchdog must deliver Worker_lost");
  check_int "loss counted" 1 (Pool.lost_workers p);
  check_int "replacement spawned" 1 (Pool.live_workers p);
  check_bool "watchdog is ticking" true
    (match Pool.watchdog_age_ms p with Some a -> a >= 0 | None -> false);
  (* the replacement worker restores capacity *)
  let served = Atomic.make false in
  ignore
    (Pool.submit p
       ~work:(fun () -> ())
       ~complete:(fun r ->
         match r with Ok () -> Atomic.set served true | Error _ -> ()));
  Pool.drain p;
  check_bool "replacement serves new work" true (Atomic.get served);
  (* let the abandoned domain run off its stall before the process ends *)
  Thread.delay 0.7

(* ------------------------------------------------------------------ *)
(* Typed tool validation (campaign --tools)                            *)
(* ------------------------------------------------------------------ *)

let test_validate_tools () =
  Evaluation.validate_tools [ "sabre"; "tket" ];
  (* all unknown names in one typed, Permanent, pre-spawn error *)
  match Evaluation.validate_tools [ "sabre"; "nope"; "bogus" ] with
  | exception Herror.Error e ->
      check_bool "permanent" true
        (match e.Herror.klass with Herror.Permanent -> true | _ -> false);
      check_string "site" "campaign.tools" e.Herror.site;
      let m = e.Herror.message in
      let has needle =
        let n = String.length needle and h = String.length m in
        let rec go i =
          i + n <= h && (String.equal (String.sub m i n) needle || go (i + 1))
        in
        go 0
      in
      check_bool "lists every unknown name and the registry" true
        (has "nope" && has "bogus" && has "sabre")
  | () -> Alcotest.fail "unknown tools must raise"

let test_campaign_tasks_validates () =
  let device = Qls_arch.Topologies.grid 3 3 in
  let config =
    {
      (Evaluation.default_figure_config device) with
      swap_counts = [ 2 ];
      circuits_per_point = 1;
    }
  in
  match Evaluation.campaign_tasks ~names:[ "warp-drive" ] ~config device with
  | exception Herror.Error e -> check_string "site" "campaign.tools" e.Herror.site
  | _ -> Alcotest.fail "campaign_tasks must validate tool names up front"

(* ------------------------------------------------------------------ *)
(* End-to-end: daemon over a temporary Unix socket                     *)
(* ------------------------------------------------------------------ *)

let fresh_socket () =
  let path = Filename.temp_file "qls_serve_test" ".sock" in
  Sys.remove path;
  path

let with_server config f =
  let server = Server.create config in
  let th = Thread.create (fun () -> Server.run server) () in
  Fun.protect
    ~finally:(fun () ->
      Server.initiate_shutdown server;
      Thread.join th)
    (fun () -> f server)

let connect path =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.connect fd (ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let rpc (_, ic, oc) payload =
  Protocol.write_frame oc payload;
  match Protocol.read_frame ic with
  | Some r -> r
  | None -> Alcotest.fail "connection closed before response"

let field resp key =
  match List.assoc_opt key (Qls_sealed.fields_of_line resp) with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "response lacks %S: %s" key resp)

let test_server_end_to_end () =
  let socket = fresh_socket () in
  with_server
    { Server.default_config with socket_path = Some socket; jobs = 2 }
    (fun _ ->
      let c = connect socket in
      let req =
        {|{"verb":"route","arch":"grid3x3","swaps":2,"gates":24,"seed":3,"tool":"sabre","trials":1}|}
      in
      let cold = rpc c req in
      let hot = rpc c req in
      (* cache hits replay the cold response byte for byte *)
      check_string "hit is bit-identical to cold" cold hot;
      check_string "ok" "true" (field cold "ok");
      (* and both match the offline library computation exactly *)
      let device = Option.get (Qls_arch.Topologies.by_name "grid3x3") in
      let config =
        {
          Qubikos.Generator.default_config with
          n_swaps = 2;
          gate_budget = 24;
          seed = 3;
        }
      in
      let bench = Qubikos.Generator.generate ~config device in
      let router =
        Option.get (Qls_router.Registry.by_name ~sabre_trials:1 "sabre")
      in
      let _, report =
        Qls_router.Router.run_verified router device
          bench.Qubikos.Benchmark.circuit
      in
      check_string "swaps match offline route"
        (string_of_int report.Qls_layout.Verifier.swap_count)
        (field cold "swaps");
      check_string "depth matches offline route"
        (string_of_int report.Qls_layout.Verifier.depth)
        (field cold "depth");
      check_string "optimal is the certified optimum"
        (string_of_int bench.Qubikos.Benchmark.optimal_swaps)
        (field cold "optimal");
      (* evaluate reports the ratio against the optimum *)
      let ev =
        rpc c
          {|{"verb":"evaluate","arch":"grid3x3","swaps":2,"gates":24,"seed":3,"tool":"sabre","trials":1}|}
      in
      check_string "evaluate ok" "true" (field ev "ok");
      check_bool "evaluate has ratio" true
        (Option.is_some
           (List.assoc_opt "ratio" (Qls_sealed.fields_of_line ev)));
      (* certify *)
      let ce =
        rpc c {|{"verb":"certify","arch":"grid3x3","swaps":2,"gates":24,"seed":3}|}
      in
      check_string "certified" "true" (field ce "certified");
      check_string "certified optimum" "2" (field ce "optimal");
      (* errors are typed, not dropped connections *)
      let bad = rpc c {|{"verb":"route","arch":"atlantis"}|} in
      check_string "bad arch is bad_request" "bad_request" (field bad "kind");
      let badv = rpc c {|{"verb":"warp"}|} in
      check_string "unknown verb is bad_request" "bad_request"
        (field badv "kind");
      (* stats shows the cache working *)
      let st = rpc c {|{"verb":"stats"}|} in
      check_string "stats ok" "true" (field st "ok");
      check_bool "route cache saw a hit" true
        (int_of_string (field st "route_hits") >= 1);
      check_bool "route cache saw exactly one miss for the repeated key" true
        (int_of_string (field st "route_misses") >= 1);
      let fd, ic, _ = c in
      close_in_noerr ic;
      ignore fd);
  check_bool "socket unlinked after drain" false (Sys.file_exists socket)

let test_server_overload () =
  let socket = fresh_socket () in
  with_server
    {
      Server.default_config with
      socket_path = Some socket;
      jobs = 1;
      queue_capacity = 0;
    }
    (fun _ ->
      let c = connect socket in
      (* capacity 0: every poolable request is shed with the typed
         overloaded response; stats still answers inline *)
      let r = rpc c {|{"verb":"route","arch":"grid3x3","swaps":2}|} in
      check_string "typed overload" "overloaded" (field r "kind");
      check_string "not ok" "false" (field r "ok");
      check_bool "reports capacity" true
        (Option.is_some
           (List.assoc_opt "queue_capacity" (Qls_sealed.fields_of_line r)));
      let st = rpc c {|{"verb":"stats"}|} in
      check_string "stats still served" "true" (field st "ok");
      check_bool "overload counted" true
        (int_of_string (field st "overloaded") >= 1);
      let _, ic, _ = c in
      close_in_noerr ic)

let test_server_request_log () =
  let socket = fresh_socket () in
  let log = Filename.temp_file "qls_serve_test" ".jsonl" in
  Sys.remove log;
  with_server
    {
      Server.default_config with
      socket_path = Some socket;
      jobs = 1;
      request_log = Some log;
    }
    (fun _ ->
      let c = connect socket in
      ignore (rpc c {|{"verb":"route","arch":"grid3x3","swaps":2,"trials":1}|});
      ignore (rpc c {|{"verb":"route","arch":"grid3x3","swaps":2,"trials":1}|});
      ignore (rpc c {|{"verb":"warp"}|});
      let _, ic, _ = c in
      close_in_noerr ic);
  (* after the drain the sealed log is whole and complete *)
  let lines, corrupt = Qls_sealed.Log.load ~strict:true log in
  check_int "no corrupt lines" 0 (List.length corrupt);
  check_int "every request logged" 3 (List.length lines);
  let statuses =
    List.map
      (fun (_, payload) ->
        match List.assoc_opt "status" (Qls_sealed.fields_of_line payload) with
        | Some s -> s
        | None -> "?")
      lines
  in
  check_int "two ok lines" 2
    (List.length (List.filter (String.equal "ok") statuses));
  check_int "one bad_request line" 1
    (List.length (List.filter (String.equal "bad_request") statuses));
  Sys.remove log

let install_plan spec =
  match Qls_faults.parse spec with
  | Ok plan -> Qls_faults.install plan
  | Error m -> Alcotest.fail ("bad fault spec: " ^ m)

let test_server_deadline () =
  let socket = fresh_socket () in
  with_server
    { Server.default_config with socket_path = Some socket; jobs = 1 }
    (fun _ ->
      let c = connect socket in
      (* a deterministic 50 ms stall at the start of the request body,
         far beyond the request's 10 ms budget *)
      install_plan "seed=1;serve.work.hang:delay@0.05:1.0";
      let r =
        Fun.protect ~finally:Qls_faults.clear (fun () ->
            rpc c
              {|{"verb":"route","arch":"grid3x3","swaps":2,"gates":24,"seed":5,"tool":"sabre","trials":1,"deadline_ms":10}|})
      in
      check_string "typed deadline response" "deadline_exceeded"
        (field r "kind");
      check_string "not ok" "false" (field r "ok");
      let elapsed = int_of_string (field r "elapsed_ms") in
      let limit = int_of_string (field r "limit_ms") in
      check_int "limit echoes the request" 10 limit;
      check_bool "elapsed covers the whole budget" true (elapsed >= limit);
      (* the worker survives and the cache slot is not poisoned: the same
         request without a deadline completes — and matches the offline
         library route exactly *)
      let ok =
        rpc c
          {|{"verb":"route","arch":"grid3x3","swaps":2,"gates":24,"seed":5,"tool":"sabre","trials":1}|}
      in
      check_string "worker reusable after expiry" "true" (field ok "ok");
      let device = Option.get (Qls_arch.Topologies.by_name "grid3x3") in
      let config =
        {
          Qubikos.Generator.default_config with
          n_swaps = 2;
          gate_budget = 24;
          seed = 5;
        }
      in
      let bench = Qubikos.Generator.generate ~config device in
      let router =
        Option.get (Qls_router.Registry.by_name ~sabre_trials:1 "sabre")
      in
      let _, report =
        Qls_router.Router.run_verified router device
          bench.Qubikos.Benchmark.circuit
      in
      check_string "answer unchanged by the earlier expiry"
        (string_of_int report.Qls_layout.Verifier.swap_count)
        (field ok "swaps");
      let st = rpc c {|{"verb":"stats"}|} in
      check_bool "deadline_exceeded counted" true
        (int_of_string (field st "deadline_exceeded") >= 1);
      check_bool "uptime reported" true
        (float_of_string (field st "uptime_s") >= 0.);
      let _, ic, _ = c in
      close_in_noerr ic)

let test_server_worker_lost () =
  let socket = fresh_socket () in
  with_server
    {
      Server.default_config with
      socket_path = Some socket;
      jobs = 1;
      hang_threshold = Some 0.2;
    }
    (fun _ ->
      let c = connect socket in
      (* stall the request body 0.6 s against a 0.2 s hang threshold:
         the watchdog must answer this client and replace the worker *)
      install_plan "seed=1;serve.work.hang:delay@0.6:1.0";
      let r =
        Fun.protect ~finally:Qls_faults.clear (fun () ->
            rpc c
              {|{"verb":"route","arch":"grid3x3","swaps":2,"gates":24,"seed":9,"tool":"sabre","trials":1}|})
      in
      check_string "typed internal response" "internal" (field r "kind");
      check_string "not ok" "false" (field r "ok");
      (* the replacement worker restores capacity *)
      let ok =
        rpc c
          {|{"verb":"route","arch":"grid3x3","swaps":2,"gates":24,"seed":10,"tool":"sabre","trials":1}|}
      in
      check_string "replacement serves" "true" (field ok "ok");
      let h = rpc c {|{"verb":"health"}|} in
      check_string "health ok" "true" (field h "ok");
      check_string "still ready" "true" (field h "ready");
      check_int "loss visible in health" 1
        (int_of_string (field h "lost_workers"));
      check_int "capacity restored" 1 (int_of_string (field h "live_workers"));
      check_bool "watchdog age reported" true
        (int_of_string (field h "watchdog_age_ms") >= 0);
      let st = rpc c {|{"verb":"stats"}|} in
      check_bool "internal counted" true
        (int_of_string (field st "internal") >= 1);
      check_int "lost_workers in stats" 1
        (int_of_string (field st "lost_workers"));
      let _, ic, _ = c in
      close_in_noerr ic);
  (* let the abandoned domain run off its stall before the process ends *)
  Thread.delay 0.7

let test_server_health () =
  let socket = fresh_socket () in
  with_server
    { Server.default_config with socket_path = Some socket; jobs = 2 }
    (fun _ ->
      let c = connect socket in
      let h = rpc c {|{"verb":"health"}|} in
      check_string "ok" "true" (field h "ok");
      check_string "ready" "true" (field h "ready");
      check_string "not draining" "false" (field h "draining");
      check_int "all workers live" 2 (int_of_string (field h "live_workers"));
      check_int "none lost" 0 (int_of_string (field h "lost_workers"));
      check_bool "listeners bound" true
        (int_of_string (field h "listeners") >= 1);
      check_int "queue empty" 0 (int_of_string (field h "queue_depth"));
      let _, ic, _ = c in
      close_in_noerr ic)

let () =
  Alcotest.run "qls_serve"
    [
      ( "protocol",
        [
          test_case "frame roundtrip" test_frame_roundtrip;
          test_case "malformed frames" test_frame_malformed;
          test_case "request parsing" test_request_parse;
          test_case "deadline_ms and health parsing" test_request_parse_deadline;
          test_case "circuit hash" test_circuit_hash;
        ] );
      ( "fd-framing",
        [
          test_case "one-byte reads reassemble" test_fd_reader_one_byte_reads;
          test_case "oversize frame is one clean Bad_request"
            test_fd_reader_oversize_frame;
          test_case "idle connections are reaped" test_fd_reader_idle_timeout;
          test_case "mid-frame stalls are Bad_request"
            test_fd_reader_io_timeout_mid_frame;
        ]
        @ List.map QCheck_alcotest.to_alcotest chunked_frame_props );
      ("cache-keys", List.map QCheck_alcotest.to_alcotest key_props);
      ( "cache",
        [
          test_case "hit/miss accounting" test_cache_hit_miss;
          test_case "LRU eviction" test_cache_lru_eviction;
          test_case "capacity zero disables retention" test_cache_capacity_zero;
          test_case "single-flight" test_cache_single_flight;
          test_case "failed compute releases the slot"
            test_cache_failure_releases_slot;
        ] );
      ( "pool",
        [
          test_case "submit completes with results" test_pool_submit_completes;
          test_case "work exceptions become Error" test_pool_error_result;
          test_case "bounded queue refuses overflow" test_pool_rejects_when_full;
          test_case "callback exceptions are contained"
            test_pool_callback_error_contained;
        ] );
      ( "deadlines-watchdog",
        [
          test_case "token expiry semantics" test_cancel_token;
          test_case "pooled job deadline expires" test_pool_deadline_expires;
          test_case "watchdog replaces a lost worker"
            test_pool_watchdog_replaces_lost_worker;
        ] );
      ( "tool-validation",
        [
          test_case "validate_tools raises typed Herror" test_validate_tools;
          test_case "campaign_tasks validates up front"
            test_campaign_tasks_validates;
        ] );
      ( "server",
        [
          test_case "end-to-end route/evaluate/certify/stats"
            test_server_end_to_end;
          test_case "typed overload under zero capacity" test_server_overload;
          test_case "sealed request log survives drain" test_server_request_log;
          test_case "deadline_exceeded is typed and non-poisoning"
            test_server_deadline;
          test_case "hung worker is declared lost and replaced"
            test_server_worker_lost;
          test_case "health reports readiness" test_server_health;
        ] );
    ]
