(* Tests for the qls_layout library: mappings, transpiled circuits, the
   verifier and metrics. *)

module Gate = Qls_circuit.Gate
module Circuit = Qls_circuit.Circuit
module Topologies = Qls_arch.Topologies
module Mapping = Qls_layout.Mapping
module Transpiled = Qls_layout.Transpiled
module Verifier = Qls_layout.Verifier
module Metrics = Qls_layout.Metrics
module Fidelity = Qls_layout.Fidelity
module Rng = Qls_graph.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let test_case name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Mapping                                                             *)
(* ------------------------------------------------------------------ *)

let mapping_tests =
  [
    test_case "identity" (fun () ->
        let m = Mapping.identity ~n_program:3 ~n_physical:5 in
        check_int "phys" 2 (Mapping.phys m 2);
        Alcotest.(check (option int)) "prog" (Some 2) (Mapping.prog m 2);
        Alcotest.(check (option int)) "empty slot" None (Mapping.prog m 4));
    test_case "identity rejects too many program qubits" (fun () ->
        check_bool "raises" true
          (try
             ignore (Mapping.identity ~n_program:5 ~n_physical:3);
             false
           with Invalid_argument _ -> true));
    test_case "of_array validates collisions" (fun () ->
        check_bool "raises" true
          (try
             ignore (Mapping.of_array ~n_physical:4 [| 1; 1 |]);
             false
           with Invalid_argument _ -> true));
    test_case "of_array validates range" (fun () ->
        check_bool "raises" true
          (try
             ignore (Mapping.of_array ~n_physical:4 [| 0; 9 |]);
             false
           with Invalid_argument _ -> true));
    test_case "swap_physical moves both occupants" (fun () ->
        let m = Mapping.of_array ~n_physical:4 [| 0; 1 |] in
        let m' = Mapping.swap_physical m 0 1 in
        check_int "q0" 1 (Mapping.phys m' 0);
        check_int "q1" 0 (Mapping.phys m' 1));
    test_case "swap_physical with an empty slot" (fun () ->
        let m = Mapping.of_array ~n_physical:4 [| 0 |] in
        let m' = Mapping.swap_physical m 0 3 in
        check_int "moved" 3 (Mapping.phys m' 0);
        Alcotest.(check (option int)) "old slot empty" None (Mapping.prog m' 0));
    test_case "swap_physical is an involution" (fun () ->
        let rng = Rng.create 5 in
        let m = Mapping.random rng ~n_program:6 ~n_physical:9 in
        let m' = Mapping.swap_physical (Mapping.swap_physical m 2 7) 2 7 in
        check_bool "identity" true (Mapping.equal m m'));
    test_case "swap_physical rejects identical qubits" (fun () ->
        let m = Mapping.identity ~n_program:2 ~n_physical:4 in
        check_bool "raises" true
          (try
             ignore (Mapping.swap_physical m 1 1);
             false
           with Invalid_argument _ -> true));
    test_case "apply_swaps composes left to right" (fun () ->
        let m = Mapping.of_array ~n_physical:3 [| 0 |] in
        let m' = Mapping.apply_swaps m [ (0, 1); (1, 2) ] in
        check_int "walked" 2 (Mapping.phys m' 0));
    test_case "compose_program_perm" (fun () ->
        let m = Mapping.of_array ~n_physical:4 [| 2; 3 |] in
        let m' = Mapping.compose_program_perm m [| 1; 0 |] in
        check_int "q0 takes q1's slot" 3 (Mapping.phys m' 0);
        check_int "q1 takes q0's slot" 2 (Mapping.phys m' 1));
    test_case "to_array is a copy" (fun () ->
        let m = Mapping.identity ~n_program:3 ~n_physical:3 in
        let a = Mapping.to_array m in
        a.(0) <- 99;
        check_int "unchanged" 0 (Mapping.phys m 0));
  ]

let mapping_props =
  [
    QCheck.Test.make ~name:"phys and prog are mutually inverse" ~count:200
      QCheck.(int_range 0 10_000)
      (fun seed ->
        let rng = Rng.create seed in
        let m = Mapping.random rng ~n_program:7 ~n_physical:12 in
        let ok = ref true in
        for q = 0 to 6 do
          if Mapping.prog m (Mapping.phys m q) <> Some q then ok := false
        done;
        for p = 0 to 11 do
          match Mapping.prog m p with
          | Some q -> if Mapping.phys m q <> p then ok := false
          | None -> ()
        done;
        !ok);
    QCheck.Test.make ~name:"random mappings are injective" ~count:200
      QCheck.(int_range 0 10_000)
      (fun seed ->
        let rng = Rng.create seed in
        let m = Mapping.random rng ~n_program:9 ~n_physical:9 in
        let a = Mapping.to_array m in
        List.length (List.sort_uniq compare (Array.to_list a)) = 9);
  ]

(* ------------------------------------------------------------------ *)
(* Transpiled — the paper's Fig. 1(e) worked example                   *)
(* ------------------------------------------------------------------ *)

(* Fig. 1: the triangle circuit mapped to the 4-qubit line with
   q0->p0, q1->p1, q2->p2 and one SWAP(p1, p2) before the final CNOT. *)
let fig1e () =
  let source =
    Circuit.create ~n_qubits:3
      [ Gate.h 0; Gate.h 1; Gate.cx 0 1; Gate.cx 1 2; Gate.cx 0 2 ]
  in
  let device = Topologies.line 4 in
  let initial = Mapping.of_array ~n_physical:4 [| 0; 1; 2 |] in
  let ops =
    [
      Transpiled.Gate 0; Transpiled.Gate 1; Transpiled.Gate 2; Transpiled.Gate 3;
      Transpiled.Swap (1, 2); Transpiled.Gate 4;
    ]
  in
  Transpiled.create ~source ~device ~initial ops

let transpiled_tests =
  [
    test_case "create validates sizes" (fun () ->
        let source = Circuit.create ~n_qubits:3 [ Gate.h 0 ] in
        let device = Topologies.line 4 in
        check_bool "raises" true
          (try
             ignore
               (Transpiled.create ~source ~device
                  ~initial:(Mapping.identity ~n_program:2 ~n_physical:4)
                  []);
             false
           with Invalid_argument _ -> true));
    test_case "swap accounting" (fun () ->
        let t = fig1e () in
        check_int "one swap" 1 (Transpiled.swap_count t);
        Alcotest.(check (list (pair int int))) "swaps" [ (1, 2) ] (Transpiled.swaps t));
    test_case "final mapping reflects the swap" (fun () ->
        let m = Transpiled.final_mapping (fig1e ()) in
        check_int "q1 moved" 2 (Mapping.phys m 1);
        check_int "q2 moved" 1 (Mapping.phys m 2));
    test_case "mapping_at before and after the swap" (fun () ->
        let t = fig1e () in
        check_int "before" 1 (Mapping.phys (Transpiled.mapping_at t 4) 1);
        check_int "after" 2 (Mapping.phys (Transpiled.mapping_at t 5) 1));
    test_case "physical circuit matches Fig. 1(e)" (fun () ->
        let pc = Transpiled.to_physical_circuit (fig1e ()) in
        check_int "qubits" 4 (Circuit.n_qubits pc);
        check_int "gates" 6 (Circuit.length pc);
        check_bool "swap gate present" true (Gate.is_swap (Circuit.gate pc 4));
        (* final CNOT runs on physical (0, 1) after the swap *)
        check_bool "final cnot relocated" true
          (Gate.equal (Gate.cx 0 1) (Circuit.gate pc 5)));
    test_case "depth computed on the physical circuit" (fun () ->
        check_bool "positive" true (Transpiled.depth (fig1e ()) > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Verifier                                                            *)
(* ------------------------------------------------------------------ *)

let verifier_tests =
  [
    test_case "the Fig. 1(e) result is valid with 1 swap" (fun () ->
        match Verifier.check (fig1e ()) with
        | Error _ -> Alcotest.fail "expected valid"
        | Ok r -> check_int "swap count" 1 r.Verifier.swap_count);
    test_case "missing gate detected" (fun () ->
        let t = fig1e () in
        let ops = List.filteri (fun i _ -> i <> 3) (Transpiled.ops t) in
        let t' =
          Transpiled.create ~source:(Transpiled.source t)
            ~device:(Transpiled.device t)
            ~initial:(Transpiled.initial_mapping t) ops
        in
        match Verifier.check t' with
        | Ok _ -> Alcotest.fail "expected invalid"
        | Error vs ->
            check_bool "missing" true
              (List.exists (function Verifier.Missing_gate 3 -> true | _ -> false) vs));
    test_case "duplicate gate detected" (fun () ->
        let t = fig1e () in
        let ops = Transpiled.ops t @ [ Transpiled.Gate 0 ] in
        let t' =
          Transpiled.create ~source:(Transpiled.source t)
            ~device:(Transpiled.device t)
            ~initial:(Transpiled.initial_mapping t) ops
        in
        match Verifier.check t' with
        | Ok _ -> Alcotest.fail "expected invalid"
        | Error vs ->
            check_bool "dup" true
              (List.exists
                 (function Verifier.Duplicated_gate 0 -> true | _ -> false)
                 vs));
    test_case "order violation detected" (fun () ->
        let source = Circuit.create ~n_qubits:2 [ Gate.h 0; Gate.x 0 ] in
        let device = Topologies.line 2 in
        let t =
          Transpiled.create ~source ~device
            ~initial:(Mapping.identity ~n_program:2 ~n_physical:2)
            [ Transpiled.Gate 1; Transpiled.Gate 0 ]
        in
        match Verifier.check t with
        | Ok _ -> Alcotest.fail "expected invalid"
        | Error vs ->
            check_bool "order" true
              (List.exists
                 (function Verifier.Order_broken _ -> true | _ -> false)
                 vs));
    test_case "uncoupled gate detected" (fun () ->
        let source = Circuit.create ~n_qubits:3 [ Gate.cx 0 2 ] in
        let device = Topologies.line 3 in
        let t =
          Transpiled.create ~source ~device
            ~initial:(Mapping.identity ~n_program:3 ~n_physical:3)
            [ Transpiled.Gate 0 ]
        in
        match Verifier.check t with
        | Ok _ -> Alcotest.fail "expected invalid"
        | Error vs ->
            check_bool "uncoupled" true
              (List.exists
                 (function
                   | Verifier.Uncoupled_gate { phys = 0, 2; _ } -> true
                   | _ -> false)
                 vs));
    test_case "uncoupled swap detected" (fun () ->
        let source = Circuit.create ~n_qubits:2 [] in
        let device = Topologies.line 3 in
        let t =
          Transpiled.create ~source ~device
            ~initial:(Mapping.identity ~n_program:2 ~n_physical:3)
            [ Transpiled.Swap (0, 2) ]
        in
        match Verifier.check t with
        | Ok _ -> Alcotest.fail "expected invalid"
        | Error vs ->
            check_bool "swap" true
              (List.exists
                 (function Verifier.Uncoupled_swap _ -> true | _ -> false)
                 vs));
    test_case "all violations are collected, not just the first" (fun () ->
        let source = Circuit.create ~n_qubits:3 [ Gate.cx 0 2; Gate.h 1 ] in
        let device = Topologies.line 3 in
        let t =
          Transpiled.create ~source ~device
            ~initial:(Mapping.identity ~n_program:3 ~n_physical:3)
            [ Transpiled.Gate 0 ]
        in
        match Verifier.check t with
        | Ok _ -> Alcotest.fail "expected invalid"
        | Error vs -> check_int "two problems" 2 (List.length vs));
    test_case "check_exn raises with a message" (fun () ->
        let source = Circuit.create ~n_qubits:2 [ Gate.h 0 ] in
        let device = Topologies.line 2 in
        let t =
          Transpiled.create ~source ~device
            ~initial:(Mapping.identity ~n_program:2 ~n_physical:2)
            []
        in
        check_bool "raises" true
          (try
             ignore (Verifier.check_exn t);
             false
           with Failure _ -> true));
    test_case "pp_violation output mentions the gate" (fun () ->
        let s =
          Format.asprintf "%a" Verifier.pp_violation (Verifier.Missing_gate 7)
        in
        check_bool "mentions 7" true (String.contains s '7'));
  ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let check_float = Alcotest.(check (float 1e-9))

let metrics_tests =
  [
    test_case "mean" (fun () -> check_float "mean" 2.5 (Metrics.mean [ 1.; 2.; 3.; 4. ]));
    test_case "mean of empty rejected" (fun () ->
        check_bool "raises" true
          (try
             ignore (Metrics.mean []);
             false
           with Invalid_argument _ -> true));
    test_case "swap_ratio matches the paper's definition" (fun () ->
        check_float "ratio" 2.0 (Metrics.swap_ratio ~optimal:5 ~swap_counts:[ 10; 10 ]);
        check_float "optimal tool" 1.0 (Metrics.swap_ratio ~optimal:4 ~swap_counts:[ 4 ]));
    test_case "swap_ratio validates" (fun () ->
        check_bool "optimal 0" true
          (try
             ignore (Metrics.swap_ratio ~optimal:0 ~swap_counts:[ 1 ]);
             false
           with Invalid_argument _ -> true));
    test_case "geometric mean" (fun () ->
        check_float "gm" 2.0 (Metrics.geometric_mean [ 1.; 2.; 4. ]));
    test_case "geometric mean rejects non-positive" (fun () ->
        check_bool "raises" true
          (try
             ignore (Metrics.geometric_mean [ 1.; 0. ]);
             false
           with Invalid_argument _ -> true));
    test_case "median odd and even" (fun () ->
        check_float "odd" 3.0 (Metrics.median [ 5.; 1.; 3. ]);
        check_float "even" 2.5 (Metrics.median [ 4.; 1.; 2.; 3. ]));
    test_case "stddev" (fun () ->
        check_float "constant" 0.0 (Metrics.stddev [ 2.; 2.; 2. ]);
        check_float "spread" 2.0 (Metrics.stddev [ 2.; 6.; 2.; 6. ]));
    test_case "stddev is the population (/n) variant" (fun () ->
        (* sample (/(n-1)) stddev of [1;2;3;4] would be ~1.29; population
           is sqrt(5/4) ~ 1.118 *)
        check_float "population" (sqrt 1.25) (Metrics.stddev [ 1.; 2.; 3.; 4. ]);
        check_float "singleton is 0" 0.0 (Metrics.stddev [ 7.0 ]));
    test_case "median uses Float.compare, not polymorphic compare" (fun () ->
        (* negative zero and infinities must order as floats *)
        check_float "with -0." 0.0 (Metrics.median [ 0.; -0.; 1.; -1. ]);
        check_float "infinities at the ends" 2.0
          (Metrics.median [ infinity; 2.; neg_infinity ]));
    test_case "median and stddev reject NaN with a typed error" (fun () ->
        (* polymorphic compare sorts NaN below every float, so before the
           typed error a single NaN silently shifted the median *)
        let raises_nan fn f =
          check_bool fn true
            (try
               ignore (f ());
               false
             with Metrics.Nan_input name -> name = fn)
        in
        raises_nan "Metrics.median" (fun () ->
            Metrics.median [ 1.; Float.nan; 3. ]);
        raises_nan "Metrics.stddev" (fun () ->
            Metrics.stddev [ Float.nan; 2. ]));
  ]

let fidelity_tests =
  let noise_for t = Qls_arch.Noise.uniform ~q1:1e-3 ~q2:1e-2 (Transpiled.device t) in
  [
    test_case "swap-free circuit pays only gate errors" (fun () ->
        let source = Circuit.create ~n_qubits:2 [ Gate.cx 0 1 ] in
        let device = Topologies.line 2 in
        let t =
          Transpiled.create ~source ~device
            ~initial:(Mapping.identity ~n_program:2 ~n_physical:2)
            [ Transpiled.Gate 0 ]
        in
        let noise = noise_for t in
        check_float "one cx" (log (1.0 -. 1e-2)) (Fidelity.log_success noise t);
        check_float "no swap overhead" 0.0 (Fidelity.swap_overhead_cost noise t));
    test_case "each swap costs three CNOTs of fidelity" (fun () ->
        let t = fig1e () in
        let noise = Qls_arch.Noise.uniform ~q1:0.0 ~q2:1e-2 (Transpiled.device t) in
        check_float "3 cx per swap"
          (3.0 *. log (1.0 -. 1e-2))
          (Fidelity.swap_overhead_cost noise t));
    test_case "success probability multiplies out" (fun () ->
        let t = fig1e () in
        let noise = Qls_arch.Noise.uniform ~q1:1e-3 ~q2:1e-2 (Transpiled.device t) in
        (* 2 h gates, 3 cnots, 1 swap (= 3 cnots) *)
        let expected = ((1.0 -. 1e-3) ** 2.0) *. ((1.0 -. 1e-2) ** 6.0) in
        check_float "product" expected (Fidelity.success_probability noise t));
    test_case "readout adds one factor per program qubit" (fun () ->
        let t = fig1e () in
        let noise =
          Qls_arch.Noise.uniform ~q1:0.0 ~q2:0.0 ~readout:1e-2 (Transpiled.device t)
        in
        check_float "3 readouts"
          (3.0 *. log (1.0 -. 1e-2))
          (Fidelity.log_success ~with_readout:true noise t));
    test_case "mismatched device rejected" (fun () ->
        let t = fig1e () in
        let noise = Qls_arch.Noise.uniform (Topologies.grid 3 3) in
        check_bool "raises" true
          (try
             ignore (Fidelity.log_success noise t);
             false
           with Invalid_argument _ -> true));
    test_case "more swaps, lower fidelity" (fun () ->
        let source = Circuit.create ~n_qubits:2 [ Gate.cx 0 1 ] in
        let device = Topologies.line 3 in
        let initial = Mapping.identity ~n_program:2 ~n_physical:3 in
        let direct =
          Transpiled.create ~source ~device ~initial [ Transpiled.Gate 0 ]
        in
        let wasteful =
          Transpiled.create ~source ~device ~initial
            [ Transpiled.Swap (1, 2); Transpiled.Swap (1, 2); Transpiled.Gate 0 ]
        in
        let noise = Qls_arch.Noise.uniform device in
        check_bool "monotone" true
          (Fidelity.log_success noise wasteful < Fidelity.log_success noise direct));
  ]

let () =
  Alcotest.run "qls_layout"
    [
      ("mapping", mapping_tests);
      ("mapping-properties", List.map QCheck_alcotest.to_alcotest mapping_props);
      ("transpiled", transpiled_tests);
      ("verifier", verifier_tests);
      ("metrics", metrics_tests);
      ("fidelity", fidelity_tests);
    ]
