module Rng = Qls_graph.Rng
module Circuit = Qls_circuit.Circuit
module Gate = Qls_circuit.Gate
module Dag = Qls_circuit.Dag
module Device = Qls_arch.Device
module Mapping = Qls_layout.Mapping
module Transpiled = Qls_layout.Transpiled

type options = {
  trials : int;
  seed : int;
  extended_set_size : int;
  extended_set_weight : float;
  decay_increment : float;
  decay_reset_interval : int;
  lookahead_decay : float option;
  bidirectional_passes : int;
  release_valve_after : int;
  relative_tie_break : bool;
}

let default_options =
  {
    trials = 1;
    seed = 0;
    extended_set_size = 20;
    extended_set_weight = 0.5;
    decay_increment = 0.001;
    decay_reset_interval = 5;
    lookahead_decay = None;
    bidirectional_passes = 2;
    release_valve_after = 32;
    relative_tie_break = false;
  }

(* The historical tie window is an absolute [1e-12], which silently widens
   relative to the scores themselves on large devices (front sums grow
   with device diameter and front size). The relative mode fixes the
   window at 1e-9 of the best score; it changes which candidates count as
   tied, so it sits behind an option and the goldens pin the default. *)
let tied ~opts s best =
  if opts.relative_tie_break then
    Float.abs (s -. best) <= 1e-9 *. Float.max 1.0 best
  else s <= best +. 1e-12

let with_trials trials opts = { opts with trials }

type decision = {
  front_gates : (int * int) list;
  candidates : ((int * int) * float) list;
  chosen : int * int;
}

(* Physical distance of program pair (a, b) if the contents of physical
   qubits p and p' were exchanged. *)
let dist_after_swap device mapping p p' a b =
  let reloc x =
    let px = Mapping.phys mapping x in
    if px = p then p' else if px = p' then p else px
  in
  Device.distance device (reloc a) (reloc b)

(* [extended] is the round's extended set, hoisted by the caller:
   {!Route_state.extended_set} is round-invariant, so building it here —
   once per {e candidate} — would redo the identical BFS
   |candidates| times per round (the recomputation bug this refactor
   removed). *)
let score_swap ~opts ~st ~decay ~extended (p, p') =
  let device = Route_state.device st in
  let dag = Route_state.dag st in
  let mapping = Route_state.mapping st in
  let front = Route_state.front st in
  let basic =
    List.fold_left
      (fun acc v ->
        let a, b = Dag.pair dag v in
        acc +. float_of_int (dist_after_swap device mapping p p' a b))
      0.0 front
    /. float_of_int (max 1 (List.length front))
  in
  let lookahead =
    match extended with
    | [] -> 0.0
    | _ ->
        let acc = ref 0.0 and wsum = ref 0.0 in
        List.iteri
          (fun k v ->
            let a, b = Dag.pair dag v in
            let w =
              match opts.lookahead_decay with
              | None -> 1.0
              | Some gamma -> gamma ** float_of_int k
            in
            acc :=
              !acc +. (w *. float_of_int (dist_after_swap device mapping p p' a b));
            wsum := !wsum +. w)
          extended;
        (* Stock SABRE divides the extended-set cost by |E| (each lookahead
           gate weighted equally — exactly the behaviour the paper's case
           study exposes); with lookahead decay we normalise by the weight
           mass instead so magnitudes stay comparable. *)
        (match opts.lookahead_decay with
        | None -> !acc /. float_of_int (List.length extended)
        | Some _ -> if !wsum > 0.0 then !acc /. !wsum else 0.0)
  in
  let decay_factor = Float.max decay.(p) decay.(p') in
  decay_factor *. (basic +. (opts.extended_set_weight *. lookahead))

(* Pass-level aggregates feed the post-campaign summary even with span
   tracing off; the two [add]s per pass are noise next to routing. *)
let obs_rounds = lazy (Qls_obs.counter "router.rounds")
let obs_gates = lazy (Qls_obs.counter "router.gates")

let routing_pass ~opts ~rng ~trace ~device ~initial circuit =
  let st = Route_state.create ~device ~source:circuit ~initial in
  let n_phys = Device.n_qubits device in
  let decay = Array.make n_phys 1.0 in
  let decisions = ref [] in
  let rounds_since_reset = ref 0 in
  let stuck = ref 0 in
  (* [traced] is read once per pass so the disabled path costs one
     branch per round and allocates nothing (not even the attrs list). *)
  let traced = Qls_obs.enabled () in
  let pass_sp =
    if traced then Qls_obs.start ~site:"router" "sabre.pass" else Qls_obs.none
  in
  let rounds = ref 0 in
  ignore (Route_state.advance st);
  while not (Route_state.finished st) do
    incr rounds;
    (* Deadline/heartbeat checkpoint: one per routing round. *)
    Qls_cancel.poll ();
    let round_sp =
      if traced then Qls_obs.start ~site:"router" "sabre.round"
      else Qls_obs.none
    in
    if !stuck > opts.release_valve_after then begin
      Route_state.force_route_first st;
      stuck := 0;
      Array.fill decay 0 n_phys 1.0
    end
    else begin
      let candidates = Route_state.swap_candidates st in
      let extended =
        Route_state.extended_set st ~size:opts.extended_set_size
      in
      let scored =
        List.map
          (fun sw -> (sw, score_swap ~opts ~st ~decay ~extended sw))
          candidates
      in
      let best_score =
        List.fold_left (fun acc (_, s) -> Float.min acc s) infinity scored
      in
      let ties = List.filter (fun (_, s) -> tied ~opts s best_score) scored in
      let chosen, _ = Rng.pick rng ties in
      if trace then begin
        let dag = Route_state.dag st in
        let front_gates =
          List.map (fun v -> Dag.pair dag v) (List.sort Int.compare (Route_state.front st))
        in
        let sorted =
          List.sort (fun (_, s) (_, s') -> Float.compare s s') scored
        in
        decisions := { front_gates; candidates = sorted; chosen } :: !decisions
      end;
      let p, p' = chosen in
      Route_state.apply_swap st p p';
      decay.(p) <- decay.(p) +. opts.decay_increment;
      decay.(p') <- decay.(p') +. opts.decay_increment;
      incr rounds_since_reset;
      if !rounds_since_reset >= opts.decay_reset_interval then begin
        Array.fill decay 0 n_phys 1.0;
        rounds_since_reset := 0
      end
    end;
    let emitted = Route_state.advance st in
    if traced then
      Qls_obs.stop round_sp ~attrs:[ ("emitted", Qls_obs.Int emitted) ];
    if emitted > 0 then begin
      Array.fill decay 0 n_phys 1.0;
      rounds_since_reset := 0;
      stuck := 0
    end
    else incr stuck
  done;
  Qls_obs.add (Lazy.force obs_rounds) !rounds;
  Qls_obs.add (Lazy.force obs_gates) (Route_state.done_count st);
  if traced then
    Qls_obs.stop pass_sp
      ~attrs:
        [
          ("rounds", Qls_obs.Int !rounds);
          ("swaps", Qls_obs.Int (Route_state.swap_count st));
          ("gates", Qls_obs.Int (Route_state.done_count st));
        ];
  (Route_state.finish st, List.rev !decisions)

let reverse_circuit circuit =
  let gates = Circuit.gates circuit in
  let n = Array.length gates in
  Circuit.of_array ~n_qubits:(Circuit.n_qubits circuit)
    (Array.init n (fun i -> gates.(n - 1 - i)))

(* One SABRE trial: refine the initial mapping with alternating
   forward/backward passes, then run the output pass. *)
let run_trial ~opts ~rng ~trace ~device ~initial circuit =
  let reversed = reverse_circuit circuit in
  let refine_rng = Rng.split rng in
  let mapping = ref initial in
  for pass = 0 to opts.bidirectional_passes - 1 do
    let c = if pass mod 2 = 0 then circuit else reversed in
    let result, _ =
      routing_pass ~opts ~rng:refine_rng ~trace:false ~device ~initial:!mapping c
    in
    mapping := Transpiled.final_mapping result
  done;
  routing_pass ~opts ~rng ~trace ~device ~initial:!mapping circuit

let route ?(options = default_options) ?initial device circuit =
  let opts = options in
  let n_trials = max 1 opts.trials in
  let best = ref None in
  let traced = Qls_obs.enabled () in
  for trial = 0 to n_trials - 1 do
    let rng = Rng.create ((opts.seed * 1_000_003) + trial) in
    let start =
      match initial with
      | Some m -> m
      | None -> Placement.random rng device circuit
    in
    let sp =
      if traced then Qls_obs.start ~site:"router" "sabre.trial"
      else Qls_obs.none
    in
    let result, _ = run_trial ~opts ~rng ~trace:false ~device ~initial:start circuit in
    let swaps = Transpiled.swap_count result in
    if traced then
      Qls_obs.stop sp
        ~attrs:
          [ ("trial", Qls_obs.Int trial); ("swaps", Qls_obs.Int swaps) ];
    match !best with
    | Some (_, best_swaps) when best_swaps <= swaps -> ()
    | Some _ | None -> best := Some (result, swaps)
  done;
  match !best with
  | Some (result, _) -> result
  | None -> assert false

let route_traced ?(options = default_options) ?initial device circuit =
  let opts = options in
  let rng = Rng.create (opts.seed * 1_000_003) in
  let start =
    match initial with
    | Some m -> m
    | None -> Placement.random rng device circuit
  in
  run_trial ~opts ~rng ~trace:true ~device ~initial:start circuit

let router ?(options = default_options) () =
  let name =
    match options.lookahead_decay with
    | None -> "sabre"
    | Some _ -> "sabre-decay"
  in
  {
    Router.name;
    route = (fun ?initial device circuit -> route ~options ?initial device circuit);
  }
