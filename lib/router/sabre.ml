module Rng = Qls_graph.Rng
module Circuit = Qls_circuit.Circuit
module Gate = Qls_circuit.Gate
module Dag = Qls_circuit.Dag
module Device = Qls_arch.Device
module Mapping = Qls_layout.Mapping
module Transpiled = Qls_layout.Transpiled

type options = {
  trials : int;
  seed : int;
  extended_set_size : int;
  extended_set_weight : float;
  decay_increment : float;
  decay_reset_interval : int;
  lookahead_decay : float option;
  bidirectional_passes : int;
  release_valve_after : int;
  relative_tie_break : bool;
}

let default_options =
  {
    trials = 1;
    seed = 0;
    extended_set_size = 20;
    extended_set_weight = 0.5;
    decay_increment = 0.001;
    decay_reset_interval = 5;
    lookahead_decay = None;
    bidirectional_passes = 2;
    release_valve_after = 32;
    relative_tie_break = false;
  }

(* The historical tie window is an absolute [1e-12], which silently widens
   relative to the scores themselves on large devices (front sums grow
   with device diameter and front size). The relative mode fixes the
   window at 1e-9 of the best score; it changes which candidates count as
   tied, so it sits behind an option and the goldens pin the default. *)
let tied ~opts s best =
  if opts.relative_tie_break then
    Float.abs (s -. best) <= 1e-9 *. Float.max 1.0 best
  else s <= best +. 1e-12

let with_trials trials opts = { opts with trials }

(* Option validation at the [route] boundary. A NaN weight is the nasty
   one: every score comparison involving it is false, so the router
   silently degenerates to first-candidate selection and produces a
   plausible-looking but garbage routing. Rejecting up front turns that
   class of misconfiguration into a typed error at the call site. *)
let validate_options opts =
  let check_weight name v =
    if Float.is_nan v then
      invalid_arg (Printf.sprintf "Sabre.route: %s is NaN" name);
    if v < 0.0 then
      invalid_arg (Printf.sprintf "Sabre.route: %s is negative (%g)" name v)
  in
  check_weight "extended_set_weight" opts.extended_set_weight;
  check_weight "decay_increment" opts.decay_increment;
  (match opts.lookahead_decay with
  | Some gamma -> check_weight "lookahead_decay" gamma
  | None -> ());
  if opts.decay_reset_interval < 1 then
    invalid_arg
      (Printf.sprintf "Sabre.route: decay_reset_interval %d < 1 (decay would never reset)"
         opts.decay_reset_interval);
  if opts.extended_set_size < 0 then
    invalid_arg
      (Printf.sprintf "Sabre.route: extended_set_size %d < 0"
         opts.extended_set_size)

type decision = {
  front_gates : (int * int) list;
  candidates : ((int * int) * float) list;
  chosen : int * int;
}

(* [front_phys] / [extended_phys] are the round's front layer and extended
   set projected to physical pairs and packed flat
   ([|pa0; pb0; pa1; pb1; ...|]), hoisted by the caller: both are
   round-invariant ({!Route_state} docs), so building them here — once per
   {e candidate} — would redo identical Dag/Mapping queries |candidates|
   times per round. [dmat] is the device distance matrix
   ({!Device.distance_matrix}), hoisted once per pass: each queried pair
   relocates its endpoints through the pending (p, p') exchange and pays
   two array indexes, with no accessor call and no tuple traversal in the
   innermost loop (DESIGN.md §14). The basic term accumulates in exact
   integer arithmetic (hop distances are small ints, so the sum is
   float-exact and bit-identical to the historical float fold the goldens
   pin); the weighted lookahead keeps the historical float accumulation
   order. *)
let score_swap ~opts ~dmat ~decay ~front_phys ~extended_phys (p, p') =
  let sum_pairs pairs =
    let sum = ref 0 in
    let i = ref 0 in
    let stop = Array.length pairs in
    (* lint: cancel-poll-coverage — fixed scan over the layer's gate-pair array *)
    while !i < stop do
      let pa = pairs.(!i) and pb = pairs.(!i + 1) in
      let ra = if pa = p then p' else if pa = p' then p else pa in
      let rb = if pb = p then p' else if pb = p' then p else pb in
      sum := !sum + dmat.(ra).(rb);
      i := !i + 2
    done;
    !sum
  in
  let basic =
    let n = Array.length front_phys / 2 in
    float_of_int (sum_pairs front_phys) /. float_of_int (max 1 n)
  in
  let lookahead =
    let n = Array.length extended_phys / 2 in
    if n = 0 then 0.0
    else
      match opts.lookahead_decay with
      | None ->
          (* Stock SABRE divides the extended-set cost by |E| (each
             lookahead gate weighted equally — exactly the behaviour the
             paper's case study exposes). *)
          float_of_int (sum_pairs extended_phys) /. float_of_int n
      | Some gamma ->
          (* With lookahead decay we normalise by the weight mass instead
             so magnitudes stay comparable. *)
          let acc = ref 0.0 and wsum = ref 0.0 in
          for k = 0 to n - 1 do
            let pa = extended_phys.(2 * k) and pb = extended_phys.((2 * k) + 1) in
            let ra = if pa = p then p' else if pa = p' then p else pa in
            let rb = if pb = p then p' else if pb = p' then p else pb in
            let w = gamma ** float_of_int k in
            acc := !acc +. (w *. float_of_int dmat.(ra).(rb));
            wsum := !wsum +. w
          done;
          if !wsum > 0.0 then !acc /. !wsum else 0.0
  in
  let decay_factor = Float.max decay.(p) decay.(p') in
  decay_factor *. (basic +. (opts.extended_set_weight *. lookahead))

(* Pass-level aggregates feed the post-campaign summary even with span
   tracing off; the two [add]s per pass are noise next to routing. *)
let obs_rounds = lazy (Qls_obs.counter "router.rounds")
let obs_gates = lazy (Qls_obs.counter "router.gates")

let routing_pass ~opts ~rng ~trace ~device ~initial circuit =
  let st = Route_state.create ~device ~source:circuit ~initial in
  let n_phys = Device.n_qubits device in
  let dmat = Device.distance_matrix device in
  let dag = Route_state.dag st in
  let decay = Array.make n_phys 1.0 in
  let decisions = ref [] in
  let rounds_since_reset = ref 0 in
  let stuck = ref 0 in
  (* [traced] is read once per pass so the disabled path costs one
     branch per round and allocates nothing (not even the attrs list). *)
  let traced = Qls_obs.enabled () in
  let pass_sp =
    if traced then Qls_obs.start ~site:"router" "sabre.pass" else Qls_obs.none
  in
  let rounds = ref 0 in
  ignore (Route_state.advance st);
  while not (Route_state.finished st) do
    incr rounds;
    (* Deadline/heartbeat checkpoint: one per routing round. *)
    Qls_cancel.poll ();
    let round_sp =
      if traced then Qls_obs.start ~site:"router" "sabre.round"
      else Qls_obs.none
    in
    if !stuck > opts.release_valve_after then begin
      Route_state.force_route_first st;
      stuck := 0;
      Array.fill decay 0 n_phys 1.0
    end
    else begin
      let candidates = Route_state.swap_candidates st in
      let extended =
        Route_state.extended_set st ~size:opts.extended_set_size
      in
      (* Project the round-invariant structures to flat physical-pair
         arrays once per round: scoring then touches no Dag/Mapping
         accessor (and chases no list links) at all. *)
      let mapping = Route_state.mapping st in
      let pack vs =
        let n = List.length vs in
        let arr = Array.make (2 * n) 0 in
        List.iteri
          (fun i v ->
            let a, b = Dag.pair dag v in
            arr.(2 * i) <- Mapping.phys mapping a;
            arr.((2 * i) + 1) <- Mapping.phys mapping b)
          vs;
        arr
      in
      let front_phys = pack (Route_state.front st) in
      let extended_phys = pack extended in
      let scored =
        List.map
          (fun sw ->
            (sw, score_swap ~opts ~dmat ~decay ~front_phys ~extended_phys sw))
          candidates
      in
      let best_score =
        List.fold_left (fun acc (_, s) -> Float.min acc s) infinity scored
      in
      let ties = List.filter (fun (_, s) -> tied ~opts s best_score) scored in
      match ties with
      | [] ->
          (* Unreachable on a validated (connected) device — every front
             qubit has at least one coupler, so the candidate list is
             never empty and scores are finite. Kept total anyway: fall
             back to the release valve instead of [Rng.pick] on []. *)
          Route_state.force_route_first st
      | _ ->
          let chosen, _ = Rng.pick rng ties in
          if trace then begin
            let front_gates =
              List.map (fun v -> Dag.pair dag v) (List.sort Int.compare (Route_state.front st))
            in
            let sorted =
              List.sort (fun (_, s) (_, s') -> Float.compare s s') scored
            in
            decisions := { front_gates; candidates = sorted; chosen } :: !decisions
          end;
          let p, p' = chosen in
          Route_state.apply_swap st p p';
          decay.(p) <- decay.(p) +. opts.decay_increment;
          decay.(p') <- decay.(p') +. opts.decay_increment;
          incr rounds_since_reset;
          if !rounds_since_reset >= opts.decay_reset_interval then begin
            Array.fill decay 0 n_phys 1.0;
            rounds_since_reset := 0
          end
    end;
    let emitted = Route_state.advance st in
    if traced then
      Qls_obs.stop round_sp ~attrs:[ ("emitted", Qls_obs.Int emitted) ];
    if emitted > 0 then begin
      Array.fill decay 0 n_phys 1.0;
      rounds_since_reset := 0;
      stuck := 0
    end
    else incr stuck
  done;
  Qls_obs.add (Lazy.force obs_rounds) !rounds;
  Qls_obs.add (Lazy.force obs_gates) (Route_state.done_count st);
  if traced then
    Qls_obs.stop pass_sp
      ~attrs:
        [
          ("rounds", Qls_obs.Int !rounds);
          ("swaps", Qls_obs.Int (Route_state.swap_count st));
          ("gates", Qls_obs.Int (Route_state.done_count st));
        ];
  (Route_state.finish st, List.rev !decisions)

let reverse_circuit circuit =
  let gates = Circuit.gates circuit in
  let n = Array.length gates in
  Circuit.of_array ~n_qubits:(Circuit.n_qubits circuit)
    (Array.init n (fun i -> gates.(n - 1 - i)))

(* One SABRE trial: refine the initial mapping with alternating
   forward/backward passes, then run the output pass. *)
let run_trial ~opts ~rng ~trace ~device ~initial circuit =
  let reversed = reverse_circuit circuit in
  let refine_rng = Rng.split rng in
  let mapping = ref initial in
  for pass = 0 to opts.bidirectional_passes - 1 do
    let c = if pass mod 2 = 0 then circuit else reversed in
    let result, _ =
      routing_pass ~opts ~rng:refine_rng ~trace:false ~device ~initial:!mapping c
    in
    mapping := Transpiled.final_mapping result
  done;
  routing_pass ~opts ~rng ~trace ~device ~initial:!mapping circuit

(* One complete trial, self-contained: the rng is derived from
   (seed, trial) alone and the initial placement from that rng, so a
   trial's result is a pure function of its index — the property that
   lets the parallel path below reproduce the sequential loop bit for
   bit. *)
let run_one ~opts ~traced ~device ~initial circuit trial =
  let rng = Rng.create ((opts.seed * 1_000_003) + trial) in
  let start =
    match initial with
    | Some m -> m
    | None -> Placement.random rng device circuit
  in
  let sp =
    if traced then Qls_obs.start ~site:"router" "sabre.trial" else Qls_obs.none
  in
  let result, _ = run_trial ~opts ~rng ~trace:false ~device ~initial:start circuit in
  let swaps = Transpiled.swap_count result in
  if traced then
    Qls_obs.stop sp
      ~attrs:[ ("trial", Qls_obs.Int trial); ("swaps", Qls_obs.Int swaps) ];
  (result, swaps)

let route ?(options = default_options) ?jobs ?initial device circuit =
  let opts = options in
  validate_options opts;
  let n_trials = max 1 opts.trials in
  let traced = Qls_obs.enabled () in
  let results =
    if n_trials = 1 then
      (* Single trial runs inline: no domains, no tokens — the
         bench/serve hot path is unchanged. *)
      [| run_one ~opts ~traced ~device ~initial circuit 0 |]
    else begin
      (* Trials are independent, so they fan out across domains
         ([Pool.run ~jobs:1] degenerates to the historical inline loop —
         the equivalence property races that against the parallel
         default). Each shard runs under its own child of the caller's
         ambient cancellation token: ambient tokens are domain-local, so
         without the explicit hand-off a deadline set by a serve request
         or a campaign watchdog would silently stop applying inside the
         fan-out. Results come back in trial order regardless of
         completion order. *)
      let parent = Qls_cancel.current () in
      let jobs =
        match jobs with
        | Some j -> max 1 j
        | None -> min n_trials (Qls_harness.Pool.recommended_jobs ())
      in
      Qls_harness.Pool.run ~jobs
        ~f:(fun trial () ->
          Qls_cancel.with_token (Qls_cancel.child parent) (fun () ->
              run_one ~opts ~traced ~device ~initial circuit trial))
        (Array.make n_trials ())
    end
  in
  (* Left fold over trial order, earlier trial winning ties — exactly the
     historical sequential selection, so parallel and sequential routing
     agree byte for byte (the property test pins this). *)
  let best =
    Array.fold_left
      (fun acc ((_, swaps) as cand) ->
        match acc with
        | Some (_, best_swaps) when best_swaps <= swaps -> acc
        | Some _ | None -> Some cand)
      None results
  in
  match best with
  | Some (result, _) -> result
  | None -> assert false

let route_traced ?(options = default_options) ?initial device circuit =
  let opts = options in
  validate_options opts;
  let rng = Rng.create (opts.seed * 1_000_003) in
  let start =
    match initial with
    | Some m -> m
    | None -> Placement.random rng device circuit
  in
  run_trial ~opts ~rng ~trace:true ~device ~initial:start circuit

let router ?(options = default_options) () =
  let name =
    match options.lookahead_decay with
    | None -> "sabre"
    | Some _ -> "sabre-decay"
  in
  {
    Router.name;
    route = (fun ?initial device circuit -> route ~options ?initial device circuit);
  }
