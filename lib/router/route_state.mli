(** Shared routing machinery.

    Every heuristic router in this library follows the same skeleton:
    keep a current mapping, greedily emit every executable gate (eager
    execution never costs SWAPs), and when the front layer is blocked,
    insert a SWAP chosen by the router's own cost function. This module
    owns that skeleton — front-layer maintenance, dependency bookkeeping,
    single-qubit gate scheduling, op-sequence accumulation — so router
    modules contain only their decision logic.

    Single-qubit gates never constrain layout; they are re-attached in a
    per-qubit-order-preserving way: each is emitted immediately before the
    first two-qubit gate that follows it on its qubit (or at the very end).
    The {!Qls_layout.Verifier} accepts the result by construction.

    {2 Round invariance}

    {!swap_candidates}, {!extended_set} and {!remaining_layers} are pure
    queries: they depend only on the current front layer, DAG and mapping,
    all of which change exclusively through {!advance}, {!apply_swap} and
    {!force_route_first}. Between two such mutations — i.e. for the whole
    of one routing round — their results are invariant, so routers must
    build each {e once per round} and reuse the value across every
    candidate SWAP they score. The {!Debug} counters exist to keep that
    contract observable. *)

type t
(** Mutable routing state. Internally owns preallocated scratch arrays
    (physical-front counts, coupler marks, BFS visited marks, an epoch-
    tagged in-degree copy) that the lookahead queries reuse across rounds;
    every query restores its scratch before returning, so the state stays
    single-owner with no cross-call aliasing. A state must only be used
    from one domain at a time. *)

(** Counters of lookahead-structure constructions, for the benchmark
    harness and the hoisting regression tests. Process-global and atomic
    (campaigns route on several domains). *)
module Debug : sig
  type counters = {
    extended_set_builds : int;
    remaining_layers_builds : int;
    swap_candidate_scans : int;
    phys_front_scanned : int;
        (** physical-front entries examined across all
            {!swap_candidates} calls. The active set is delta-maintained,
            so this totals the {e front sizes}, not
            [scans * n_qubits] — the regression tests pin the gap. *)
  }

  val reset : unit -> unit
  (** Zero all counters. *)

  val counters : unit -> counters
  (** Current counts since the last {!reset}. The build counters count
      {e rebuilds} (cache misses), not calls: {!extended_set} and
      {!remaining_layers} results are cached across rounds whose
      {!advance} emitted nothing (SWAP-only rounds leave the front — and
      hence both structures — unchanged), so a correctly hoisted router
      sees at most one [extended_set_builds] (resp.
      [remaining_layers_builds]) per {e front change}, which is at most
      one per [swap_candidate_scans] and typically far fewer. A
      delta-maintained state likewise keeps [phys_front_scanned] far
      below [swap_candidate_scans * n_qubits]. *)
end

val create :
  device:Qls_arch.Device.t ->
  source:Qls_circuit.Circuit.t ->
  initial:Qls_layout.Mapping.t ->
  t
(** Fresh state; no gates are emitted yet (call {!advance}).
    @raise Invalid_argument if the mapping sizes disagree with the circuit
    or device, or if the device's coupling graph is disconnected — routing
    across components is ill-posed, and failing here (typed, at the
    boundary) replaces the crashes the routers used to hit mid-round
    ([failwith "no progress"], [Rng.pick] on an empty candidate list). *)

val device : t -> Qls_arch.Device.t
(** The target device. *)

val dag : t -> Qls_circuit.Dag.t
(** The two-qubit dependency DAG of the source circuit. *)

val mapping : t -> Qls_layout.Mapping.t
(** Current program→physical mapping. *)

val front : t -> int list
(** DAG vertices whose predecessors have all executed — the SABRE
    "front layer" [F]. *)

val done_count : t -> int
(** Number of two-qubit gates already emitted. *)

val remaining : t -> int
(** Number of two-qubit gates not yet emitted. *)

val finished : t -> bool
(** Whether every two-qubit gate has been emitted. *)

val gate_distance : t -> int -> int
(** [gate_distance t v] is the current physical distance between the two
    qubits of DAG vertex [v]. *)

val executable : t -> int -> bool
(** Whether DAG vertex [v] is executable under the current mapping
    (distance 1). *)

val advance : t -> int
(** Emit every currently executable front gate, transitively; returns how
    many two-qubit gates were emitted. After [advance t = 0] and
    [not (finished t)], the front layer is blocked and a SWAP is needed. *)

val apply_swap : t -> int -> int -> unit
(** [apply_swap t p p'] records a SWAP on the coupled physical pair and
    updates the mapping.
    @raise Invalid_argument if [(p, p')] is not a coupler. *)

val swap_count : t -> int
(** SWAPs inserted so far. *)

val force_route_first : t -> unit
(** Escape hatch (LightSABRE's "release valve"): route the lowest-index
    blocked front gate along a shortest physical path, inserting the
    SWAPs directly. Guarantees that the next {!advance} makes progress,
    which keeps every heuristic router's main loop terminating. No-op on
    an empty front. *)

val swap_candidates : t -> (int * int) list
(** Couplers touching at least one physical qubit that currently holds a
    front-layer program qubit — the standard SWAP candidate set, in
    canonical ({!Qls_arch.Device.edges}) order. The physical front is an
    active {e set} delta-maintained across {!advance}/{!apply_swap}, so
    this costs O(front qubits + couplers incident to the front) — it
    never re-scans the per-qubit count array, which on a 127-qubit device
    dominated small-front rounds. Round-invariant: build once per routing
    round. *)

val extended_set : t -> size:int -> int list
(** The SABRE "extended set": up to [size] DAG vertices following the
    front layer, collected breadth-first through the successor relation
    (nearer successors first). Round-invariant: build once per round and
    share it across every candidate scored that round. The result is
    additionally cached inside the state, keyed on (front generation,
    [size]): SWAP-only rounds never change the front, so consecutive
    blocked rounds reuse the list and only an {!advance} that emitted
    gates forces a rebuild (DESIGN.md §14). *)

val remaining_layers : t -> max_layers:int -> int list list
(** ASAP timeslices of the not-yet-emitted two-qubit gates, starting from
    the current front layer, capped at [max_layers] slices. This is the
    lookahead structure of the t|ket⟩-style router. Round-invariant:
    build once per round and share it across every candidate scored that
    round. Cached across SWAP-only rounds exactly like {!extended_set},
    keyed on (front generation, [max_layers]). *)

val front_pairs_physical : t -> (int * int) list
(** Physical qubit pairs of the front-layer gates. *)

val snapshot_mapping : t -> Qls_layout.Mapping.t
(** Alias of {!mapping} (mappings are immutable values). *)

val finish : t -> Qls_layout.Transpiled.t
(** Emit the trailing single-qubit gates and package the result.
    @raise Invalid_argument if two-qubit gates remain. *)

val ops_so_far : t -> Qls_layout.Transpiled.op list
(** The op sequence accumulated so far (earliest first). *)
