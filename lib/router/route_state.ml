module Circuit = Qls_circuit.Circuit
module Gate = Qls_circuit.Gate
module Dag = Qls_circuit.Dag
module Device = Qls_arch.Device
module Mapping = Qls_layout.Mapping
module Transpiled = Qls_layout.Transpiled

(* Build counters for the round-invariant lookahead structures. The
   routers are expected to build each at most once per routing round; the
   bench (bench/router_bench.ml) and the hoisting regression tests read
   these to prove it. Atomic because campaign workers route on several
   domains at once. *)
module Debug = struct
  type counters = {
    extended_set_builds : int;
    remaining_layers_builds : int;
    swap_candidate_scans : int;
    phys_front_scanned : int;
  }

  let es_builds = Atomic.make 0
  let rl_builds = Atomic.make 0
  let sc_scans = Atomic.make 0
  let pf_scanned = Atomic.make 0

  let reset () =
    Atomic.set es_builds 0;
    Atomic.set rl_builds 0;
    Atomic.set sc_scans 0;
    Atomic.set pf_scanned 0

  let counters () =
    {
      extended_set_builds = Atomic.get es_builds;
      remaining_layers_builds = Atomic.get rl_builds;
      swap_candidate_scans = Atomic.get sc_scans;
      phys_front_scanned = Atomic.get pf_scanned;
    }
end

type t = {
  device : Device.t;
  source : Circuit.t;
  dag : Dag.t;
  initial : Mapping.t;
  mutable mapping : Mapping.t;
  mutable ops_rev : Transpiled.op list;
  indeg : int array;          (* remaining unexecuted predecessors per DAG vertex *)
  mutable front : int list;   (* vertices with indeg 0, not yet emitted *)
  mutable emitted : int;      (* two-qubit gates emitted *)
  mutable n_swaps : int;
  pending_1q : int list array; (* per program qubit: 1q gate indices, ascending *)
  (* Hot-path scratch, owned by this state and reused across rounds; see
     "Router hot path" in DESIGN.md for the ownership rules. Every public
     query restores its scratch to the neutral state before returning, so
     calls never observe each other. *)
  phys_front : int array;     (* per physical qubit: front gates touching it *)
  (* Dense int-set over the physical qubits with phys_front > 0, delta-
     maintained by [bump_front]/[apply_swap]: [active_phys.(0..active_count)]
     are the members (unordered), [active_pos.(p)] is p's slot or -1.
     Lets {!swap_candidates} walk O(front qubits) instead of re-scanning
     all [n_phys] counts every round. *)
  active_phys : int array;
  active_pos : int array;
  mutable active_count : int;
  edge_mark : bool array;     (* per coupler index: candidate-dedup marks *)
  edge_ids : int array;       (* candidate coupler-index collection buffer *)
  es_seen : bool array;       (* per DAG vertex: extended-set BFS marks *)
  es_queue : int Queue.t;     (* extended-set BFS queue, cleared per use *)
  indeg_scratch : int array;  (* lazily-initialised indeg copy (by epoch) *)
  indeg_epoch : int array;    (* validity epoch of indeg_scratch entries *)
  mutable epoch : int;        (* current remaining_layers epoch *)
  (* Front-generation caches. [front_gen] counts front-layer changes:
     it bumps exactly when {!advance} emits gates (the only path that
     adds or removes front vertices). The lookahead structures below are
     pure functions of the front set and the DAG — never of the mapping —
     so across the swap-only rounds between emissions they are reused
     as-is instead of rebuilt. The [Debug] build counters count actual
     rebuilds, which is how the bench and the hot-path tests prove the
     delta maintenance (builds per round drops below 1). *)
  mutable front_gen : int;
  mutable es_cache : (int * int * int list) option;
      (* (front_gen, size, result) *)
  mutable rl_cache : (int * int * int list list) option;
      (* (front_gen, max_layers, result) *)
}

let activate t p =
  if t.active_pos.(p) < 0 then begin
    t.active_pos.(p) <- t.active_count;
    t.active_phys.(t.active_count) <- p;
    t.active_count <- t.active_count + 1
  end

let deactivate t p =
  let i = t.active_pos.(p) in
  if i >= 0 then begin
    let last = t.active_count - 1 in
    let q = t.active_phys.(last) in
    t.active_phys.(i) <- q;
    t.active_pos.(q) <- i;
    t.active_count <- last;
    t.active_pos.(p) <- -1
  end

(* [phys_front] bookkeeping: every front gate contributes one count to the
   physical qubit of each of its two program qubits (the two are always
   distinct physical qubits, so a gate never double-counts one qubit).
   The active set follows the 0 <-> positive transitions. *)
let bump_front t v delta =
  let a, b = Dag.pair t.dag v in
  let pa = Mapping.phys t.mapping a and pb = Mapping.phys t.mapping b in
  let bump p =
    let c = t.phys_front.(p) + delta in
    t.phys_front.(p) <- c;
    if c > 0 then activate t p else deactivate t p
  in
  bump pa;
  bump pb

let create ~device ~source ~initial =
  if Mapping.n_program initial <> Circuit.n_qubits source then
    invalid_arg "Route_state.create: mapping size mismatch";
  if Mapping.n_physical initial <> Device.n_qubits device then
    invalid_arg "Route_state.create: device size mismatch";
  (* Routing is ill-posed on a disconnected coupling graph: a gate whose
     qubits sit in different components can never become adjacent, and the
     routers' BFS/candidate machinery would fail deep inside a round
     ([failwith]/[Rng.pick []]) instead of at the boundary. Devices built
     through {!Device.create} are connected by construction; this guards
     states built on permissive constructions. *)
  if not (Qls_graph.Graph.is_connected (Device.graph device)) then
    invalid_arg
      (Printf.sprintf
         "Route_state.create: device %S has a disconnected coupling graph \
          (routing cannot bring cross-component qubits adjacent)"
         (Device.name device));
  let dag = Dag.of_circuit source in
  let n = Dag.n_gates dag in
  let indeg = Array.init n (fun v -> Dag.in_degree dag v) in
  let front = Dag.front_layer dag in
  let pending_1q = Array.make (max 1 (Circuit.n_qubits source)) [] in
  Array.iteri
    (fun i g ->
      match g with
      | Gate.G1 { q; _ } -> pending_1q.(q) <- i :: pending_1q.(q)
      | Gate.G2 _ -> ())
    (Circuit.gates source);
  Array.iteri (fun q l -> pending_1q.(q) <- List.rev l) pending_1q;
  let t =
    {
      device;
      source;
      dag;
      initial;
      mapping = initial;
      ops_rev = [];
      indeg;
      front;
      emitted = 0;
      n_swaps = 0;
      pending_1q;
      phys_front = Array.make (Device.n_qubits device) 0;
      active_phys = Array.make (Device.n_qubits device) 0;
      active_pos = Array.make (Device.n_qubits device) (-1);
      active_count = 0;
      edge_mark = Array.make (Device.n_edges device) false;
      edge_ids = Array.make (Device.n_edges device) 0;
      es_seen = Array.make n false;
      es_queue = Queue.create ();
      indeg_scratch = Array.make n 0;
      indeg_epoch = Array.make n 0;
      epoch = 0;
      front_gen = 0;
      es_cache = None;
      rl_cache = None;
    }
  in
  List.iter (fun v -> bump_front t v 1) t.front;
  t

let device t = t.device
let dag t = t.dag
let mapping t = t.mapping
let front t = t.front
let done_count t = t.emitted
let remaining t = Dag.n_gates t.dag - t.emitted
let finished t = remaining t = 0

let gate_distance t v =
  let a, b = Dag.pair t.dag v in
  (Device.distance_row t.device (Mapping.phys t.mapping a)).(Mapping.phys t.mapping b)

let executable t v = gate_distance t v = 1

(* Emit the pending single-qubit gates on qubit [q] that precede source
   position [before]. *)
let flush_1q t q ~before =
  let rec go = function
    | i :: rest when i < before ->
        t.ops_rev <- Transpiled.Gate i :: t.ops_rev;
        go rest
    | rest -> rest
  in
  t.pending_1q.(q) <- go t.pending_1q.(q)

let emit_gate t v =
  let a, b = Dag.pair t.dag v in
  let ci = Dag.circuit_index t.dag v in
  flush_1q t a ~before:ci;
  flush_1q t b ~before:ci;
  t.ops_rev <- Transpiled.Gate ci :: t.ops_rev;
  t.emitted <- t.emitted + 1;
  List.iter
    (fun w ->
      t.indeg.(w) <- t.indeg.(w) - 1;
      if t.indeg.(w) = 0 then begin
        t.front <- w :: t.front;
        bump_front t w 1
      end)
    (Dag.successors t.dag v)

let advance t =
  let emitted_total = ref 0 in
  let progress = ref true in
  (* lint: cancel-poll-coverage — each pass emits at least one gate or exits; bounded by gate count *)
  while !progress do
    progress := false;
    let exec, blocked = List.partition (fun v -> executable t v) t.front in
    if not (List.is_empty exec) then begin
      (* Keep deterministic order: lower DAG index first. *)
      let exec = List.sort Int.compare exec in
      List.iter (fun v -> bump_front t v (-1)) exec;
      t.front <- blocked;
      List.iter (fun v -> emit_gate t v) exec;
      emitted_total := !emitted_total + List.length exec;
      progress := true
    end
  done;
  if !emitted_total > 0 then t.front_gen <- t.front_gen + 1;
  !emitted_total

let apply_swap t p p' =
  if not (Device.coupled t.device p p') then
    invalid_arg
      (Printf.sprintf "Route_state.apply_swap: (%d,%d) is not a coupler" p p');
  t.mapping <- Mapping.swap_physical t.mapping p p';
  (* The occupants of p and p' exchanged, and with them their front
     counts; the active set follows the two slots' new counts. *)
  let c = t.phys_front.(p) in
  t.phys_front.(p) <- t.phys_front.(p');
  t.phys_front.(p') <- c;
  if t.phys_front.(p) > 0 then activate t p else deactivate t p;
  if t.phys_front.(p') > 0 then activate t p' else deactivate t p';
  t.n_swaps <- t.n_swaps + 1;
  t.ops_rev <- Transpiled.Swap (p, p') :: t.ops_rev

let swap_count t = t.n_swaps

let force_route_first t =
  match List.sort Int.compare t.front with
  | [] -> ()
  | v :: _ -> (
      let a, b = Dag.pair t.dag v in
      let pa = Mapping.phys t.mapping a and pb = Mapping.phys t.mapping b in
      match Qls_graph.Bfs.path (Device.graph t.device) pa pb with
      | None | Some [] | Some [ _ ] -> ()
      | Some path ->
          (* Walk qubit [a] along the path until adjacent to [b]. *)
          let rec go = function
            | p :: p' :: (_ :: _ as rest) ->
                apply_swap t p p';
                go (p' :: rest)
            | _ -> ()
          in
          go path)

let swap_candidates t =
  Atomic.incr Debug.sc_scans;
  (* Walk only the delta-maintained active set (physical qubits with a
     front count), collect their incident couplers, dedup with the
     edge-mark scratch, and restore ascending canonical order — exactly
     the list the old filter over [Device.edges] produced, now at
     O(front qubits + front couplers) per round: the historical full
     [phys_front] re-scan paid O(n_phys) per round regardless of front
     size. [pf_scanned] records the entries actually examined so the
     hot-path tests can prove the delta maintenance. *)
  Atomic.fetch_and_add Debug.pf_scanned t.active_count |> ignore;
  let k = ref 0 in
  for i = 0 to t.active_count - 1 do
    let p = t.active_phys.(i) in
    Array.iter
      (fun e ->
        if not t.edge_mark.(e) then begin
          t.edge_mark.(e) <- true;
          t.edge_ids.(!k) <- e;
          incr k
        end)
      (Device.incident_edges t.device p)
  done;
  let ids = Array.sub t.edge_ids 0 !k in
  Array.sort Int.compare ids;
  Array.fold_right
    (fun e acc ->
      t.edge_mark.(e) <- false;
      Device.edge_at t.device e :: acc)
    ids []

let build_extended_set t ~size =
  Atomic.incr Debug.es_builds;
  (* Breadth-first through successors of the front layer, skipping
     already-emitted vertices; nearer successors first, capped at [size].
     Visited marks live in the [es_seen] scratch and are cleared on the
     way out (only front + result vertices were ever marked). *)
  let seen = t.es_seen in
  List.iter (fun v -> seen.(v) <- true) t.front;
  Queue.clear t.es_queue;
  let out = ref [] in
  let count = ref 0 in
  List.iter (fun v -> Queue.add v t.es_queue) (List.sort Int.compare t.front);
  (* lint: cancel-poll-coverage — BFS capped by [size] and each DAG node enqueues once *)
  while !count < size && not (Queue.is_empty t.es_queue) do
    let v = Queue.pop t.es_queue in
    List.iter
      (fun w ->
        if !count < size && not seen.(w) then begin
          seen.(w) <- true;
          out := w :: !out;
          incr count;
          Queue.add w t.es_queue
        end)
      (Dag.successors t.dag v)
  done;
  let result = List.rev !out in
  List.iter (fun v -> seen.(v) <- false) t.front;
  List.iter (fun v -> seen.(v) <- false) result;
  result

(* The extended set depends only on the front set, the DAG, and [size]:
   a swap-only round leaves all three untouched, so the cached list is
   exactly what a rebuild would produce. Callers already treat the
   result as read-only (they map over it), so sharing one list across
   rounds is safe. *)
let extended_set t ~size =
  match t.es_cache with
  | Some (gen, sz, cached) when gen = t.front_gen && sz = size -> cached
  | _ ->
      let result = build_extended_set t ~size in
      t.es_cache <- Some (t.front_gen, size, result);
      result

let build_remaining_layers t ~max_layers =
  Atomic.incr Debug.rl_builds;
  (* Simulate ASAP emission on the scratch in-degree array. Entries are
     initialised lazily from [indeg] the first time this epoch touches
     them, so a call costs O(gates reached), never O(all gates) — the old
     implementation paid an [Array.copy] of the whole array per call. *)
  t.epoch <- t.epoch + 1;
  let ep = t.epoch in
  let layers = ref [] in
  let current = ref (List.sort Int.compare t.front) in
  let n_layers = ref 0 in
  (* lint: cancel-poll-coverage — bounded by max_layers *)
  while not (List.is_empty !current) && !n_layers < max_layers do
    layers := !current :: !layers;
    incr n_layers;
    let next = ref [] in
    List.iter
      (fun v ->
        List.iter
          (fun w ->
            if t.indeg_epoch.(w) <> ep then begin
              t.indeg_scratch.(w) <- t.indeg.(w);
              t.indeg_epoch.(w) <- ep
            end;
            t.indeg_scratch.(w) <- t.indeg_scratch.(w) - 1;
            if t.indeg_scratch.(w) = 0 then next := w :: !next)
          (Dag.successors t.dag v))
      !current;
    current := List.sort Int.compare !next
  done;
  List.rev !layers

(* Same front-generation reuse as {!extended_set}: the simulated ASAP
   layers are a function of the unrouted set and the DAG only, both
   unchanged across swap-only rounds. *)
let remaining_layers t ~max_layers =
  match t.rl_cache with
  | Some (gen, ml, cached) when gen = t.front_gen && ml = max_layers -> cached
  | _ ->
      let result = build_remaining_layers t ~max_layers in
      t.rl_cache <- Some (t.front_gen, max_layers, result);
      result

let front_pairs_physical t =
  List.map
    (fun v ->
      let a, b = Dag.pair t.dag v in
      (Mapping.phys t.mapping a, Mapping.phys t.mapping b))
    t.front

let snapshot_mapping t = t.mapping

let ops_so_far t = List.rev t.ops_rev

let finish t =
  if not (finished t) then
    invalid_arg "Route_state.finish: two-qubit gates remain";
  Array.iteri
    (fun q pending ->
      ignore q;
      List.iter (fun i -> t.ops_rev <- Transpiled.Gate i :: t.ops_rev) pending)
    t.pending_1q;
  Array.iteri (fun q _ -> t.pending_1q.(q) <- []) t.pending_1q;
  Transpiled.create ~source:t.source ~device:t.device ~initial:t.initial
    (List.rev t.ops_rev)
