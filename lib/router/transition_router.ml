module Rng = Qls_graph.Rng
module Dag = Qls_circuit.Dag
module Device = Qls_arch.Device
module Mapping = Qls_layout.Mapping

type options = { seed : int; vf2_node_limit : int }

let default_options = { seed = 0; vf2_node_limit = 200_000 }

(* Choose a coupler for every blocked front gate: process gates by
   decreasing distance, give each the free coupler minimising the summed
   relocation distance of its two qubits. *)
let choose_targets rng device mapping front_pairs =
  let couplers = Array.of_list (Device.edges device) in
  let used = Array.make (Device.n_qubits device) false in
  let assignments = ref [] in
  let dmat = Device.distance_matrix device in
  let pairs =
    List.sort
      (fun (a, b) (a', b') ->
        let d (x, y) = dmat.(Mapping.phys mapping x).(Mapping.phys mapping y) in
        Int.compare (d (a', b')) (d (a, b)))
      front_pairs
  in
  List.iter
    (fun (a, b) ->
      let pa = Mapping.phys mapping a and pb = Mapping.phys mapping b in
      let row_a = dmat.(pa) and row_b = dmat.(pb) in
      let best = ref None in
      Array.iter
        (fun (x, y) ->
          if (not used.(x)) && not used.(y) then begin
            let cost_xy = row_a.(x) + row_b.(y) in
            let cost_yx = row_a.(y) + row_b.(x) in
            let cost, oriented =
              if cost_xy <= cost_yx then (cost_xy, (x, y)) else (cost_yx, (y, x))
            in
            let key = (cost, Rng.int rng 1_000_000) in
            match !best with
            | Some (_, bkey) when bkey <= key -> ()
            | _ -> best := Some (oriented, key)
          end)
        couplers;
      match !best with
      | Some ((x, y), _) ->
          used.(x) <- true;
          used.(y) <- true;
          assignments := (a, x) :: (b, y) :: !assignments
      | None ->
          (* No free coupler left for this gate in this round; it will be
             picked up in a later round once the earlier gates executed. *)
          ())
    pairs;
  !assignments

let route ?(options = default_options) ?initial device circuit =
  let opts = options in
  let rng = Rng.create opts.seed in
  let start =
    match initial with
    | Some m -> m
    | None -> (
        match Placement.vf2 ~node_limit:opts.vf2_node_limit device circuit with
        | Some m -> m
        | None -> Placement.degree_greedy rng device circuit)
  in
  let st = Route_state.create ~device ~source:circuit ~initial:start in
  ignore (Route_state.advance st);
  while not (Route_state.finished st) do
    Qls_cancel.poll ();
    let dag = Route_state.dag st in
    let front_pairs = List.map (Dag.pair dag) (Route_state.front st) in
    let mapping = Route_state.mapping st in
    let assignments = choose_targets rng device mapping front_pairs in
    let target q =
      match List.assoc_opt q assignments with
      | Some p -> Token_swap.Fixed p
      | None -> Token_swap.Free
    in
    let swaps = Token_swap.route device ~current:mapping ~target in
    List.iter (fun (x, y) -> Route_state.apply_swap st x y) swaps;
    let emitted = Route_state.advance st in
    if emitted = 0 then
      failwith "Transition_router: token swap produced no progress (bug)"
  done;
  Route_state.finish st

let router ?(options = default_options) () =
  {
    Router.name = "transition";
    route = (fun ?initial device circuit -> route ~options ?initial device circuit);
  }
