module Rng = Qls_graph.Rng
module Dag = Qls_circuit.Dag
module Device = Qls_arch.Device
module Mapping = Qls_layout.Mapping

type options = {
  lookahead_slices : int;
  slice_discount : float;
  seed : int;
  vf2_node_limit : int;
  release_valve_after : int;
  relative_tie_break : bool;
}

let default_options =
  {
    lookahead_slices = 4;
    slice_discount = 0.7;
    seed = 0;
    vf2_node_limit = 200_000;
    release_valve_after = 32;
    relative_tie_break = false;
  }

(* Same scale-dependence fix as Sabre.tied: the absolute 1e-12 window is
   the historical default the goldens pin; the relative mode tracks the
   score magnitude. *)
let tied ~opts s best =
  if opts.relative_tie_break then
    Float.abs (s -. best) <= 1e-9 *. Float.max 1.0 best
  else s <= best +. 1e-12

(* [layers_phys] is the round's slice lookahead projected to flat
   physical-pair arrays (one [|pa0; pb0; ...|] per slice), hoisted by the
   caller: {!Route_state.remaining_layers} is round-invariant (and
   simulates the whole lookahead window), so rebuilding it per candidate
   multiplied the round cost by |candidates| for no change in the result.
   [dmat] is the hoisted {!Device.distance_matrix} (DESIGN.md §14): each
   queried pair relocates its endpoints through the pending (p, p')
   exchange and pays two array indexes. The float accumulation order
   matches the historical per-vertex traversal, so scores stay
   bit-identical. *)
let score_swap ~opts ~dmat ~layers_phys (p, p') =
  let total = ref 0.0 in
  List.iteri
    (fun k layer ->
      let w = opts.slice_discount ** float_of_int k in
      let i = ref 0 in
      let stop = Array.length layer in
      (* lint: cancel-poll-coverage — fixed scan over the slice's gate-pair array *)
      while !i < stop do
        let pa = layer.(!i) and pb = layer.(!i + 1) in
        let ra = if pa = p then p' else if pa = p' then p else pa in
        let rb = if pb = p then p' else if pb = p' then p else pb in
        total := !total +. (w *. float_of_int dmat.(ra).(rb));
        i := !i + 2
      done)
    layers_phys;
  !total

(* Same registry names as Sabre's — the obs registry hands back one
   shared counter per name, so the summary aggregates across routers. *)
let obs_rounds = lazy (Qls_obs.counter "router.rounds")
let obs_gates = lazy (Qls_obs.counter "router.gates")

let route ?(options = default_options) ?initial device circuit =
  let opts = options in
  let rng = Rng.create opts.seed in
  let start =
    match initial with
    | Some m -> m
    | None -> (
        match Placement.vf2 ~node_limit:opts.vf2_node_limit device circuit with
        | Some m -> m
        | None -> Placement.degree_greedy rng device circuit)
  in
  let st = Route_state.create ~device ~source:circuit ~initial:start in
  let dmat = Device.distance_matrix device in
  let dag = Route_state.dag st in
  let stuck = ref 0 in
  let traced = Qls_obs.enabled () in
  let pass_sp =
    if traced then Qls_obs.start ~site:"router" "tket.route" else Qls_obs.none
  in
  let rounds = ref 0 in
  ignore (Route_state.advance st);
  while not (Route_state.finished st) do
    incr rounds;
    (* Deadline/heartbeat checkpoint: one per routing round. *)
    Qls_cancel.poll ();
    let round_sp =
      if traced then Qls_obs.start ~site:"router" "tket.round" else Qls_obs.none
    in
    if !stuck > opts.release_valve_after then begin
      Route_state.force_route_first st;
      stuck := 0
    end
    else begin
      let candidates = Route_state.swap_candidates st in
      let layers =
        Route_state.remaining_layers st ~max_layers:opts.lookahead_slices
      in
      let mapping = Route_state.mapping st in
      let layers_phys =
        List.map
          (fun layer ->
            let n = List.length layer in
            let arr = Array.make (2 * n) 0 in
            List.iteri
              (fun i v ->
                let a, b = Dag.pair dag v in
                arr.(2 * i) <- Mapping.phys mapping a;
                arr.((2 * i) + 1) <- Mapping.phys mapping b)
              layer;
            arr)
          layers
      in
      let scored =
        List.map
          (fun sw -> (sw, score_swap ~opts ~dmat ~layers_phys sw))
          candidates
      in
      let best = List.fold_left (fun acc (_, s) -> Float.min acc s) infinity scored in
      let ties = List.filter (fun (_, s) -> tied ~opts s best) scored in
      match ties with
      | [] ->
          (* Unreachable on a validated (connected) device; kept total
             rather than [Rng.pick]-crashing on []. *)
          Route_state.force_route_first st
      | _ ->
          let (p, p'), _ = Rng.pick rng ties in
          Route_state.apply_swap st p p'
    end;
    let emitted = Route_state.advance st in
    if traced then
      Qls_obs.stop round_sp ~attrs:[ ("emitted", Qls_obs.Int emitted) ];
    if emitted > 0 then stuck := 0 else incr stuck
  done;
  Qls_obs.add (Lazy.force obs_rounds) !rounds;
  Qls_obs.add (Lazy.force obs_gates) (Route_state.done_count st);
  if traced then
    Qls_obs.stop pass_sp
      ~attrs:
        [
          ("rounds", Qls_obs.Int !rounds);
          ("swaps", Qls_obs.Int (Route_state.swap_count st));
        ];
  Route_state.finish st

let router ?(options = default_options) () =
  {
    Router.name = "tket";
    route = (fun ?initial device circuit -> route ~options ?initial device circuit);
  }
