(** A QMAP-style layer-by-layer A* mapper (Zulehner, Paler & Wille 2018/19;
    the algorithm behind MQT QMAP's heuristic mode).

    The circuit's two-qubit gates are partitioned into ASAP layers of
    parallel gates. For each layer in sequence, an A* search over SWAP
    sequences transforms the current mapping into one under which {e every}
    gate of the layer is executable; the search cost is the number of
    SWAPs, the heuristic is the summed distance excess of the layer's
    gates (divided by 2, admissible: one SWAP improves at most two layer
    gates by one each), optionally augmented with a discounted next-layer
    lookahead term (QMAP's default behaviour, which sacrifices
    admissibility for speed, exactly as the original tool does).

    Satisfying whole layers at a time is QMAP's signature locality: it
    produces clean per-layer mappings but no global routing plan, which is
    the behaviour behind the very large optimality gaps the paper measures
    on big devices (§IV-B).

    When A* exceeds its node budget on a layer the router falls back to
    shortest-path routing of that layer's gates one by one (QMAP similarly
    bounds its search frontier). *)

type options = {
  lookahead_weight : float;
      (** weight of the next-layer heuristic term, 0 = admissible,
          default 0.5 *)
  node_budget : int;
      (** A* queue insertions allowed per layer (bounds time {e and} peak
          memory, since each queued state carries a mapping), default
          10_000 *)
  seed : int;  (** tie-breaking stream for the fallback *)
}

val default_options : options
(** Lookahead 0.5, budget 10k. *)

(** The A* closed set: collision-free at every device size. The
    pre-rewrite key truncated each physical index to one byte, so on
    devices with more than 256 physical qubits distinct mappings
    collided and live search states were silently pruned. Keys are now
    an incrementally-maintained Zobrist hash verified against the stored
    mappings. Exposed so the >256-qubit collision regression test can
    probe the key discipline directly. *)
module Closed : sig
  type t

  val create : n_prog:int -> n_phys:int -> t
  (** Fresh closed set for mappings of [n_prog] program qubits onto
      [n_phys] physical qubits. Deterministic: same dimensions, same
      keys. *)

  val add : t -> Qls_layout.Mapping.t -> bool
  (** [add t m] inserts [m]; [true] iff it was not already present.
      Distinct mappings are never conflated, whatever the device size. *)

  val mem : t -> Qls_layout.Mapping.t -> bool
  (** Membership, exact. *)
end

val route :
  ?options:options ->
  ?initial:Qls_layout.Mapping.t ->
  Qls_arch.Device.t ->
  Qls_circuit.Circuit.t ->
  Qls_layout.Transpiled.t
(** Run the mapper. The default initial placement is identity (QMAP's
    heuristic default), which is part of why its gap is large. *)

val router : ?options:options -> unit -> Router.t
(** Package as ["qmap"]. *)
