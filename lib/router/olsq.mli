(** OLSQ2-style SAT formulation of optimal layout synthesis.

    This is the reproduction's closest analogue of the paper's §IV-A
    verifier: like OLSQ2 (Lin et al., DAC 2023), it encodes the
    transition form [C0·T0·C1·…·Tk-1·Ck] into propositional clauses and
    gives them to a CDCL SAT solver ({!Qls_sat.Solver}); iterating over
    the SWAP bound [k] yields the provable optimum.

    Encoding for a bound [k], blocks [t ∈ 0..k]:
    - [x(q,p,t)] — program qubit [q] sits on physical qubit [p] during
      block [t] (exactly-one per [(q,t)], at-most-one per [(p,t)]);
    - [b(g,t)] — gate [g] executes in block [t] (exactly-one per [g];
      predecessors in the dependency DAG must land in an earlier-or-equal
      block);
    - adjacency — [b(g,t) ∧ x(a,p,t)] forces [x(b,p',t)] for some
      neighbour [p'] of [p];
    - [s(e,t)] — transition [t] applies the SWAP on coupler [e], or the
      distinguished "no swap" option (exactly-one per [t]); frame clauses
      carry every qubit's position from block [t] to [t+1] accordingly.

    Two ways to walk the bound: {!minimum_swaps} in [`Fresh] mode
    re-encodes per bound (the historical behaviour); the default
    [`Incremental] mode encodes once at the maximum bound and decides
    each [k] under assumptions forcing the trailing transitions to the
    "no swap" option, so clauses learned refuting bound [k] carry into
    the attempt at [k+1] (see {!Incremental}). {!race_check} /
    {!race_minimum_swaps} additionally race deterministically seeded
    solver configurations on OCaml 5 domains.

    Exponential like every complete method — intended for the §IV-A
    regime, and cross-validated in the test suite against
    {!Qls_router.Exact} and the brute-force oracle. *)

type verdict =
  | Feasible of Qls_layout.Transpiled.t
      (** witness decoded from the SAT model and re-verified *)
  | Infeasible  (** UNSAT: no solution within the SWAP bound *)
  | Unknown  (** conflict budget exhausted *)

val check :
  ?conflict_budget:int ->
  ?config:Qls_sat.Solver.config ->
  swaps:int ->
  Qls_arch.Device.t ->
  Qls_circuit.Circuit.t ->
  verdict
(** Decide "executable with at most [swaps] SWAPs" by a fresh SAT solve
    (default budget: 2 million conflicts; default configuration:
    {!Qls_sat.Solver.default_config}).
    @raise Invalid_argument if [swaps < 0] or the circuit has more
    qubits than the device. *)

type optimum =
  | Optimal of { swaps : int; witness : Qls_layout.Transpiled.t }
  | Unknown_above of { refuted_below : int }

val minimum_swaps :
  ?max_swaps:int ->
  ?conflict_budget:int ->
  ?config:Qls_sat.Solver.config ->
  ?mode:[ `Incremental | `Fresh ] ->
  Qls_arch.Device.t ->
  Qls_circuit.Circuit.t ->
  optimum
(** Iterative deepening over the SWAP bound (default [max_swaps] 8).
    [`Incremental] (the default) runs the walk through one
    {!Incremental.session}; [`Fresh] re-encodes and re-solves each bound
    from scratch. Both modes decide the same bounds in the same order and
    return equal verdicts — [`Fresh] exists as the baseline the SAT bench
    measures the incremental path against. [conflict_budget] is
    {e per bound} in both modes. *)

(** One encoding, many bounds: a session holds a single incremental
    {!Qls_sat.Solver} over the bound-[max_swaps] transition encoding plus
    earliest-block canonicity clauses (a satisfiability-preserving
    symmetry breaker: with a "no swap" transition at [t], a gate may only
    sit in block [t+1] if one of its DAG predecessors does). Bound
    [k <= max_swaps] is decided under assumptions [s(none, t)] for
    [t ∈ k..max_swaps-1] — nothing is re-encoded, and learned clauses,
    activities and phases persist across bounds. *)
module Incremental : sig
  type session

  val create :
    ?config:Qls_sat.Solver.config ->
    ?max_swaps:int ->
    Qls_arch.Device.t ->
    Qls_circuit.Circuit.t ->
    session
  (** Encode the instance once at bound [max_swaps] (default 8).
      @raise Invalid_argument if the circuit has more qubits than the
      device. *)

  val max_swaps : session -> int
  (** The session's encoding bound: the largest [swaps] {!check}
      accepts. *)

  val check : ?conflict_budget:int -> session -> swaps:int -> verdict
  (** Decide bound [swaps] under assumptions (default budget: 2 million
      conflicts, counted per call). Verdicts agree with the fresh
      {!Olsq.check} at every bound.
      @raise Invalid_argument if [swaps < 0] or [swaps > max_swaps]. *)

  val solves : session -> int
  (** SAT solve calls made through this session. *)

  val total_conflicts : session -> int
  (** Conflicts summed over all solve calls of this session — the number
      the SAT bench compares against the fresh-solve baseline. *)
end

(** {1 Portfolio racing}

    Race one solver configuration per seed (derived via
    {!Qls_sat.Solver.config_of_seed} — never ambient randomness) on OCaml
    5 domains through {!Qls_harness.Pool}; the first finished verdict
    cancels the others via {!Qls_cancel.cancel}. Which configuration wins
    depends on machine timing, but the {e set} of configurations raced is
    a pure function of [seeds], and the recorded [winner_seed] makes any
    race replayable deterministically: re-run the winning configuration
    alone ([check ~config:(config_of_seed winner_seed)]) and it produces
    the same verdict it produced in the race. Worker domains run under
    fresh cancellation tokens, so an ambient deadline on the calling
    domain is not consulted while the race runs. *)

type 'a raced = {
  value : 'a;  (** the winning worker's result *)
  winner_seed : int;  (** seed of the configuration that finished first *)
  raced : int;  (** number of configurations raced *)
  cancelled : int;  (** workers that observed cancellation and stopped *)
}

val default_seeds : int list
(** [[0; 1; 2; 3]] — seed 0 is the canonical default configuration, so
    the portfolio always contains the single-config behaviour. *)

val race_check :
  ?jobs:int ->
  ?seeds:int list ->
  ?conflict_budget:int ->
  swaps:int ->
  Qls_arch.Device.t ->
  Qls_circuit.Circuit.t ->
  verdict raced
(** {!check} raced across configurations. [jobs] caps the worker domains
    (default: [min (length seeds) (Pool.recommended_jobs ())]).
    @raise Invalid_argument on an empty [seeds], [swaps < 0], or a
    circuit larger than the device. *)

val race_minimum_swaps :
  ?jobs:int ->
  ?seeds:int list ->
  ?max_swaps:int ->
  ?conflict_budget:int ->
  Qls_arch.Device.t ->
  Qls_circuit.Circuit.t ->
  optimum raced
(** The incremental k-walk raced across configurations: each worker runs
    its own {!Incremental.session}; the first to complete the whole walk
    wins.
    @raise Invalid_argument on an empty [seeds]. *)
