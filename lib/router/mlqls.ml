module Rng = Qls_graph.Rng
module Circuit = Qls_circuit.Circuit
module Device = Qls_arch.Device
module Mapping = Qls_layout.Mapping

type options = {
  coarsen_to : int;
  refine_sweeps : int;
  seed : int;
  routing : Sabre.options;
}

let default_options =
  {
    coarsen_to = 8;
    refine_sweeps = 4;
    seed = 0;
    routing = { Sabre.default_options with bidirectional_passes = 0 };
  }

(* Weighted interaction graphs as hash tables keyed by canonical pairs. *)
module Wgraph = struct
  type t = {
    n : int;
    weights : (int * int, int) Hashtbl.t;
    adj : (int, (int * int) list) Hashtbl.t; (* vertex -> (nbr, weight) *)
  }

  let canon u v = if u < v then (u, v) else (v, u)

  (* Weight entries in ascending canonical-pair order: hash order must
     never leak into placement decisions. *)
  let sorted_entries weights =
    Hashtbl.fold (fun k w acc -> (k, w) :: acc) weights []
    |> List.sort (fun ((a, b), _) ((c, d), _) ->
           match Int.compare a c with 0 -> Int.compare b d | n -> n)

  let of_pairs n pairs =
    let weights = Hashtbl.create 64 in
    List.iter
      (fun (a, b) ->
        let key = canon a b in
        Hashtbl.replace weights key
          (1 + Option.value ~default:0 (Hashtbl.find_opt weights key)))
      pairs;
    let adj = Hashtbl.create 64 in
    let add v nbr w =
      Hashtbl.replace adj v ((nbr, w) :: Option.value ~default:[] (Hashtbl.find_opt adj v))
    in
    List.iter
      (fun ((u, v), w) ->
        add u v w;
        add v u w)
      (sorted_entries weights);
    { n; weights; adj }

  let neighbors g v = Option.value ~default:[] (Hashtbl.find_opt g.adj v)

  let weighted_degree g v =
    List.fold_left (fun acc (_, w) -> acc + w) 0 (neighbors g v)
end

(* One coarsening level: a heavy-edge matching. [parent.(v)] is the coarse
   vertex id of fine vertex [v]; [children.(c)] lists the fine vertices of
   coarse vertex [c] (one or two). *)
type level = { parent : int array; children : int list array }

let coarsen_once rng (g : Wgraph.t) =
  let n = g.Wgraph.n in
  let matched = Array.make n false in
  let parent = Array.make n (-1) in
  let pairs = ref [] in
  let order = Rng.permutation rng n in
  Array.iter
    (fun v ->
      if not matched.(v) then begin
        (* Heaviest unmatched neighbour. *)
        let best =
          List.fold_left
            (fun best (u, w) ->
              if matched.(u) then best
              else
                match best with
                | Some (_, bw) when bw >= w -> best
                | Some _ | None -> Some (u, w))
            None (Wgraph.neighbors g v)
        in
        match best with
        | Some (u, _) ->
            matched.(v) <- true;
            matched.(u) <- true;
            pairs := (v, u) :: !pairs
        | None -> ()
      end)
    order;
  let next_id = ref 0 in
  let fresh () =
    let i = !next_id in
    incr next_id;
    i
  in
  let children_tbl = Hashtbl.create 64 in
  List.iter
    (fun (v, u) ->
      let c = fresh () in
      parent.(v) <- c;
      parent.(u) <- c;
      Hashtbl.add children_tbl c [ v; u ])
    !pairs;
  for v = 0 to n - 1 do
    if parent.(v) < 0 then begin
      let c = fresh () in
      parent.(v) <- c;
      Hashtbl.add children_tbl c [ v ]
    end
  done;
  let n_coarse = !next_id in
  let children = Array.make n_coarse [] in
  (* lint: nondet-source — each coarse id writes its own slot exactly once *)
  Hashtbl.iter (fun c vs -> children.(c) <- vs) children_tbl;
  (* Project the weighted edges. *)
  let coarse_pairs = ref [] in
  List.iter
    (fun ((u, v), w) ->
      let cu = parent.(u) and cv = parent.(v) in
      if cu <> cv then
        for _ = 1 to w do
          coarse_pairs := (cu, cv) :: !coarse_pairs
        done)
    (Wgraph.sorted_entries g.Wgraph.weights);
  (Wgraph.of_pairs n_coarse !coarse_pairs, { parent; children })

let weighted_cost device circuit mapping =
  let g =
    Wgraph.of_pairs (Circuit.n_qubits circuit) (Circuit.two_qubit_pairs circuit)
  in
  (* lint: nondet-source — integer sum; commutative, order-insensitive *)
  Hashtbl.fold
    (fun (u, v) w acc ->
      acc
      + (w * (Device.distance_row device (Mapping.phys mapping u)).(Mapping.phys mapping v)))
    g.Wgraph.weights 0

(* Greedy weighted placement of a (coarse) graph onto the device. *)
let greedy_place rng device (g : Wgraph.t) =
  let n = g.Wgraph.n in
  let n_phys = Device.n_qubits device in
  let anchor = Array.make n (-1) in
  let taken = Array.make n_phys false in
  let order =
    List.sort
      (fun a b -> Int.compare (Wgraph.weighted_degree g b) (Wgraph.weighted_degree g a))
      (List.init n Fun.id)
  in
  List.iter
    (fun v ->
      let placed = List.filter (fun (u, _) -> anchor.(u) >= 0) (Wgraph.neighbors g v) in
      let best = ref None in
      for p = 0 to n_phys - 1 do
        if not taken.(p) then begin
          let row = Device.distance_row device p in
          let cost =
            List.fold_left
              (fun acc (u, w) -> acc + (w * row.(anchor.(u))))
              0 placed
          in
          let key = (cost, -Device.degree device p, Rng.int rng 1_000_000) in
          match !best with
          | Some (_, bkey) when bkey <= key -> ()
          | Some _ | None -> best := Some (p, key)
        end
      done;
      match !best with
      | Some (p, _) ->
          anchor.(v) <- p;
          taken.(p) <- true
      | None -> invalid_arg "Mlqls: device smaller than cluster count")
    order;
  (anchor, taken)

(* Pairwise-exchange refinement on anchors (occupied<->occupied and
   occupied<->free), first-improvement sweeps. *)
let refine device (g : Wgraph.t) anchor taken ~sweeps =
  let n_phys = Device.n_qubits device in
  let holder = Array.make n_phys (-1) in
  Array.iteri (fun v p -> holder.(p) <- v) anchor;
  let delta_for v new_p =
    (* Cost change of moving vertex v to physical new_p (assumed free or
       holding a vertex that simultaneously moves to v's spot). *)
    let row_new = Device.distance_row device new_p in
    let row_old = Device.distance_row device anchor.(v) in
    List.fold_left
      (fun acc (u, w) ->
        if u = v then acc
        else acc + (w * (row_new.(anchor.(u)) - row_old.(anchor.(u)))))
      0 (Wgraph.neighbors g v)
  in
  for _ = 1 to sweeps do
    for p = 0 to n_phys - 1 do
      let v = holder.(p) in
      if v >= 0 then
        (* Try exchanging with every other physical qubit. *)
        for p' = 0 to n_phys - 1 do
          if p' <> anchor.(v) then begin
            let u = holder.(p') in
            let gain =
              if u < 0 then delta_for v p'
              else begin
                (* Swap v and u; account for their mutual edge exactly by
                   evaluating the cost difference directly. *)
                let pair_cost () =
                  let row_v = Device.distance_row device anchor.(v) in
                  let row_u = Device.distance_row device anchor.(u) in
                  List.fold_left
                    (fun acc (x, w) -> acc + (w * row_v.(anchor.(x))))
                    0 (Wgraph.neighbors g v)
                  + List.fold_left
                      (fun acc (x, w) -> acc + (w * row_u.(anchor.(x))))
                      0 (Wgraph.neighbors g u)
                in
                let before = pair_cost () in
                let av = anchor.(v) and au = anchor.(u) in
                anchor.(v) <- au;
                anchor.(u) <- av;
                let after = pair_cost () in
                anchor.(v) <- av;
                anchor.(u) <- au;
                after - before
              end
            in
            if gain < 0 then begin
              let old_p = anchor.(v) in
              if u < 0 then begin
                anchor.(v) <- p';
                holder.(p') <- v;
                holder.(old_p) <- -1;
                taken.(p') <- true;
                taken.(old_p) <- false
              end
              else begin
                anchor.(v) <- p';
                anchor.(u) <- old_p;
                holder.(p') <- v;
                holder.(old_p) <- u
              end
            end
          end
        done
    done
  done

let place ?(options = default_options) device circuit =
  let opts = options in
  let rng = Rng.create opts.seed in
  let n_prog = Circuit.n_qubits circuit in
  let finest = Wgraph.of_pairs n_prog (Circuit.two_qubit_pairs circuit) in
  (* Coarsen. *)
  let rec build g levels =
    if g.Wgraph.n <= opts.coarsen_to then (g, levels)
    else begin
      let coarse, level = coarsen_once rng g in
      if coarse.Wgraph.n = g.Wgraph.n then (g, levels)
      else build coarse ((g, level) :: levels)
    end
  in
  let coarsest, levels = build finest [] in
  (* Place coarsest, then uncoarsen with refinement. *)
  let anchor, taken = greedy_place rng device coarsest in
  refine device coarsest anchor taken ~sweeps:opts.refine_sweeps;
  let current_anchor = ref anchor in
  let current_taken = ref taken in
  List.iter
    (fun (fine_graph, level) ->
      let n_fine = fine_graph.Wgraph.n in
      let fine_anchor = Array.make n_fine (-1) in
      let n_phys = Device.n_qubits device in
      let taken' = Array.make n_phys false in
      (* First children inherit the coarse anchor. *)
      Array.iteri
        (fun c vs ->
          match vs with
          | [] -> ()
          | v :: _ ->
              fine_anchor.(v) <- !current_anchor.(c);
              taken'.(!current_anchor.(c)) <- true)
        level.children;
      (* Remaining children take the nearest free physical qubit. *)
      Array.iteri
        (fun c vs ->
          match vs with
          | [] | [ _ ] -> ()
          | _ :: rest ->
              List.iter
                (fun v ->
                  let src = !current_anchor.(c) in
                  let dist = Qls_graph.Bfs.distances (Device.graph device) src in
                  let best = ref (-1) in
                  for p = 0 to n_phys - 1 do
                    if
                      (not taken'.(p))
                      && (!best < 0 || dist.(p) < dist.(!best))
                    then best := p
                  done;
                  if !best < 0 then invalid_arg "Mlqls: out of physical qubits";
                  fine_anchor.(v) <- !best;
                  taken'.(!best) <- true)
                rest)
        level.children;
      refine device fine_graph fine_anchor taken' ~sweeps:opts.refine_sweeps;
      current_anchor := fine_anchor;
      current_taken := taken')
    levels;
  ignore !current_taken;
  Mapping.of_array ~n_physical:(Device.n_qubits device) !current_anchor

let route ?(options = default_options) ?initial device circuit =
  let opts = options in
  let start =
    match initial with
    | Some m -> m
    | None ->
        (* Covers coarsening, greedy anchor placement and the per-level
           refinement sweeps; the routing phase shows up as Sabre's own
           spans. *)
        Qls_obs.with_span ~site:"router" "mlqls.place" (fun () ->
            place ~options device circuit)
  in
  Sabre.route ~options:opts.routing ~initial:start device circuit

let router ?(options = default_options) () =
  {
    Router.name = "mlqls";
    route = (fun ?initial device circuit -> route ~options ?initial device circuit);
  }
