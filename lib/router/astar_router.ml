module Rng = Qls_graph.Rng
module Pqueue = Qls_graph.Pqueue
module Dag = Qls_circuit.Dag
module Device = Qls_arch.Device
module Mapping = Qls_layout.Mapping

type options = { lookahead_weight : float; node_budget : int; seed : int }

let default_options = { lookahead_weight = 0.5; node_budget = 10_000; seed = 0 }

(* Collision-free closed set over mapping states.

   The historical key encoded each physical index as one byte
   ([Char.chr (p land 0xff)]): on any device with more than 256 physical
   qubits, distinct mappings silently collided, pruning live states from
   the search and corrupting results. Keys are now a Zobrist hash — one
   fixed pseudo-random integer per (program qubit, physical position),
   XOR-combined over the occupied positions — verified against the stored
   mappings on hash match, so equality is exact at every device size. The
   hash is maintained incrementally across SWAPs (two XOR pairs), so a
   closed-set probe costs O(1) where the Bytes key cost O(n) plus a
   string allocation per probe. *)
module Closed = struct
  (* Open-addressed (linear probing) set of mapping states keyed by the
     Zobrist hash. Slots hold the key and the stored mapping; distinct
     mappings that share a hash (the astronomically-rare collision)
     simply occupy separate slots on the same probe chain, and every
     key match is verified against the stored mapping, so membership is
     exact. The A* probes this once per {e push} — hundreds of
     thousands of times per circuit, almost always answering "absent" —
     and open addressing answers that with a couple of adjacent array
     loads where a chained table paid a bucket allocation and a pointer
     chase. *)
  type t = {
    z : int array; (* (physical p, program q) -> z.(p * n_prog + q) *)
    n_prog : int;
    mutable keys : int array; (* Zobrist key per occupied slot *)
    mutable vals : Mapping.t option array; (* [None] = empty slot *)
    mutable mask : int; (* capacity - 1, capacity a power of two *)
    mutable count : int;
  }

  let initial_capacity = 8192

  (* The Zobrist table is a pure function of the state-space dimensions:
     every search on a device of the same shape derives the same keys, so
     searches stay replayable from their inputs alone. *)
  let create ~n_prog ~n_phys =
    let rng = Rng.create ((n_prog * 0x9e3779b9) lxor n_phys) in
    let z =
      Array.init (max 1 (n_prog * n_phys)) (fun _ ->
          Int64.to_int (Rng.bits64 rng) land max_int)
    in
    {
      z;
      n_prog;
      keys = Array.make initial_capacity 0;
      vals = Array.make initial_capacity None;
      mask = initial_capacity - 1;
      count = 0;
    }

  let slot t p q = t.z.((p * t.n_prog) + q)

  let hash t m =
    let q2p = Mapping.phys_table m in
    let h = ref 0 in
    for q = 0 to t.n_prog - 1 do
      h := !h lxor slot t q2p.(q) q
    done;
    !h

  (* Hash after exchanging the contents of positions [p] and [p'] of a
     mapping currently hashing to [h]. [a]/[b] are the program qubits on
     [p]/[p'] before the exchange ([-1] = empty slot; int sentinel, not
     an option, so the per-push path allocates nothing). *)
  let hash_after_swap t h ~p ~p' ~a ~b =
    let h = if a < 0 then h else h lxor slot t p a lxor slot t p' a in
    if b < 0 then h else h lxor slot t p' b lxor slot t p b

  let grow t =
    let old_keys = t.keys and old_vals = t.vals in
    let cap = (t.mask + 1) * 2 in
    t.keys <- Array.make cap 0;
    t.vals <- Array.make cap None;
    t.mask <- cap - 1;
    Array.iteri
      (fun i v ->
        match v with
        | None -> ()
        | Some _ ->
            let j = ref (old_keys.(i) land t.mask) in
            (* lint: cancel-poll-coverage — probe chain, bounded by table capacity (load factor <= 1/2) *)
            while Option.is_some t.vals.(!j) do
              j := (!j + 1) land t.mask
            done;
            t.keys.(!j) <- old_keys.(i);
            t.vals.(!j) <- v)
      old_vals

  let mem_hashed t h m =
    let i = ref (h land t.mask) in
    let found = ref false in
    let stop = ref false in
    (* lint: cancel-poll-coverage — probe chain, bounded by table capacity (load factor <= 1/2) *)
    while not !stop do
      match t.vals.(!i) with
      | None -> stop := true
      | Some stored ->
          if t.keys.(!i) = h && Mapping.equal stored m then begin
            found := true;
            stop := true
          end
          else i := (!i + 1) land t.mask
    done;
    !found

  (* Exactness without materialisation: [mem_swapped t h m ~p ~p']
     answers "is [swap_physical m p p'] present?" by comparing each
     key-matching slot against [m]'s table with the exchange applied on
     the fly — equality is checked on the real tables (true
     transpositions and the rare hash collision both resolve exactly),
     yet the candidate mapping is never allocated. *)
  let mem_swapped t h m ~p ~p' =
    let q2p = Mapping.phys_table m in
    let n = Array.length q2p in
    let i = ref (h land t.mask) in
    let found = ref false in
    let stop = ref false in
    (* lint: cancel-poll-coverage — probe chain, bounded by table capacity (load factor <= 1/2) *)
    while not !stop do
      match t.vals.(!i) with
      | None -> stop := true
      | Some stored ->
          if
            t.keys.(!i) = h
            && begin
                 let q2s = Mapping.phys_table stored in
                 Array.length q2s = n
                 &&
                 let rec go q =
                   q >= n
                   || (let pq = q2p.(q) in
                       let rq =
                         if pq = p then p' else if pq = p' then p else pq
                       in
                       q2s.(q) = rq)
                      && go (q + 1)
                 in
                 go 0
               end
          then begin
            found := true;
            stop := true
          end
          else i := (!i + 1) land t.mask
    done;
    !found

  (* One probe chain walk: insert at the first empty slot unless an
     equal mapping sits on the chain. The pop loop calls this once per
     expanded state. *)
  let add_hashed t h m =
    if 2 * (t.count + 1) > t.mask + 1 then grow t;
    let i = ref (h land t.mask) in
    let result = ref true in
    let stop = ref false in
    (* lint: cancel-poll-coverage — probe chain, bounded by table capacity (load factor <= 1/2) *)
    while not !stop do
      match t.vals.(!i) with
      | None ->
          t.keys.(!i) <- h;
          t.vals.(!i) <- Some m;
          t.count <- t.count + 1;
          stop := true
      | Some stored ->
          if t.keys.(!i) = h && Mapping.equal stored m then begin
            result := false;
            stop := true
          end
          else i := (!i + 1) land t.mask
    done;
    !result

  let mem t m = mem_hashed t (hash t m) m
  let add t m = add_hashed t (hash t m) m
end

(* Distance excess of a gate set under a mapping (row-threaded). *)
let excess device mapping pairs =
  List.fold_left
    (fun acc (a, b) ->
      acc + (Device.distance_row device (Mapping.phys mapping a)).(Mapping.phys mapping b) - 1)
    0 pairs

let heuristic_of ~opts ~layer_excess ~look_excess ~has_lookahead =
  let h_layer = float_of_int ((layer_excess + 1) / 2) in
  let h_look =
    if has_lookahead then opts.lookahead_weight *. float_of_int look_excess /. 2.0
    else 0.0
  in
  h_layer +. h_look

(* A* from [mapping] to a mapping making every pair in [target_pairs]
   adjacent. Returns the SWAP sequence, or [None] when the node budget is
   exhausted.

   Search states carry their layer/lookahead distance excess and Zobrist
   hash, all maintained by O(pairs touching the swapped coupler) deltas,
   so neither the heuristic nor the goal test nor the closed-set key ever
   re-walks the whole layer or mapping. Expansion order, heuristic values
   and budget accounting are exactly those of the historical
   recompute-everything search (the deltas are integer-exact), so results
   are bit-identical on every device where the old Bytes key was
   collision-free — the qmap goldens pin this. Transposition detection
   falls out of the closed-set probe at push time: a state reachable by
   several SWAP orders is inserted once and never re-expanded. *)
let astar ~opts device mapping ~target_pairs ~lookahead_pairs =
  let n_prog = Mapping.n_program mapping in
  let n_phys = Device.n_qubits device in
  let dmat = Device.distance_matrix device in
  let open_set = Pqueue.create () in
  let closed = Closed.create ~n_prog ~n_phys in
  (* Per program qubit: the target/lookahead pairs it appears in, for the
     delta updates. *)
  let tp_touch = Array.make (max 1 n_prog) [] in
  let lp_touch = Array.make (max 1 n_prog) [] in
  List.iter
    (fun ((a, b) as pr) ->
      tp_touch.(a) <- pr :: tp_touch.(a);
      tp_touch.(b) <- pr :: tp_touch.(b))
    target_pairs;
  List.iter
    (fun ((a, b) as pr) ->
      lp_touch.(a) <- pr :: lp_touch.(a);
      lp_touch.(b) <- pr :: lp_touch.(b))
    lookahead_pairs;
  let has_lookahead =
    match lookahead_pairs with [] -> false | _ :: _ -> true
  in
  (* Excess delta contributed by the pairs touching the swapped qubits
     ([q2p] is the pre-swap program→physical table, exchange (p, p')
     pending; [a]/[b] are the occupants of [p]/[p'], [-1] = empty).
     Each visited pair relocates its endpoints through the pending
     exchange — post-swap distance without materialising the swapped
     mapping — and pays four array indexes total. Pairs touching both
     swapped program qubits are visited once (skipped on the second
     pass; program qubits are non-negative, so the [-1] sentinel never
     spuriously matches). *)
  let delta touch q2p p p' a b =
    let acc = ref 0 in
    let visit (x, y) =
      let px = q2p.(x) and py = q2p.(y) in
      let rx = if px = p then p' else if px = p' then p else px in
      let ry = if py = p then p' else if py = p' then p else py in
      acc := !acc + dmat.(rx).(ry) - dmat.(px).(py)
    in
    if a >= 0 then List.iter visit touch.(a);
    if b >= 0 then
      List.iter (fun ((x, y) as pr) -> if x <> a && y <> a then visit pr) touch.(b);
    !acc
  in
  (* Expansion candidates: couplers touching a physical qubit that holds
     a target-layer qubit. The search expands thousands of nodes per
     layer, so rather than collecting, deduplicating and sorting the
     incident-edge lists per node (plus a list allocation per
     expansion), each expansion marks the target qubits' current
     positions in [pmark] and walks the canonical coupler array once.
     Ascending coupler index {e is} the canonical order, so the set and
     the order of the generated successors — and hence the search result
     — are exactly those of the historical collect-and-sort. *)
  let edges = Array.of_list (Device.edges device) in
  let pmark = Array.make n_phys false in
  let mark_targets q2p v =
    List.iter
      (fun (a, b) ->
        pmark.(q2p.(a)) <- v;
        pmark.(q2p.(b)) <- v)
      target_pairs
  in
  (* The budget counts queue insertions: each stored state holds a full
     mapping, so this also bounds peak memory. *)
  let pushed = ref 0 in
  let layer_ex0 = excess device mapping target_pairs in
  let look_ex0 = excess device mapping lookahead_pairs in
  let zob0 = Closed.hash closed mapping in
  (* Queued states carry (base mapping, pending swap): the swapped
     mapping is materialised only when a state is popped (or on the rare
     exact closed-set verification), so the dominant per-push cost — two
     O(n) array copies — is paid only for expanded states, not for every
     queue insertion. The pending swap and the swap trail are packed as
     [p * n_phys + p'] ints ([-1] = no pending swap), and the three small
     non-negative scalars (g, layer excess, lookahead excess) share one
     int at 21 bits each — g is capped by the node budget and the
     excesses by the layer's total distance, all far below [2^21] — so a
     push allocates exactly one 4-word state tuple and one trail cons. *)
  let pack_scalars g lex kex = g lor (lex lsl 21) lor (kex lsl 42) in
  let mask21 = (1 lsl 21) - 1 in
  Pqueue.push open_set
    (heuristic_of ~opts ~layer_excess:layer_ex0 ~look_excess:look_ex0
       ~has_lookahead)
    (mapping, -1, pack_scalars 0 layer_ex0 look_ex0, [], zob0);
  let result = ref None in
  let budget_hit = ref false in
  let expanded = ref 0 in
  while Option.is_none !result && (not !budget_hit) && not (Pqueue.is_empty open_set) do
    (* One search layer can expand far longer than a router round, so the
       per-round checkpoint alone gives poor cancellation latency here;
       poll on a stride that keeps the check off the per-pop hot cost. *)
    incr expanded;
    if !expanded land 1023 = 0 then Qls_cancel.poll ();
    match Pqueue.pop open_set with
    | None -> ()
    | Some (_, (base, pend, scalars, swaps_rev, zob)) ->
        let g = scalars land mask21 in
        let layer_ex = (scalars lsr 21) land mask21 in
        let look_ex = (scalars lsr 42) land mask21 in
        let m =
          if pend < 0 then base
          else Mapping.swap_physical base (pend / n_phys) (pend mod n_phys)
        in
        if Closed.add_hashed closed zob m then begin
          if layer_ex = 0 then
            result :=
              Some (List.rev_map (fun c -> (c / n_phys, c mod n_phys)) swaps_rev)
          else begin
            let q2p = Mapping.phys_table m in
            mark_targets q2p true;
            for e = 0 to Array.length edges - 1 do
              let p, p' = edges.(e) in
              if (pmark.(p) || pmark.(p')) && not !budget_hit then begin
                let code = (p * n_phys) + p' in
                (* Undoing the pending swap recreates this state's parent,
                   which was added to the closed set when it was expanded:
                   that probe always answers "present", so it is skipped
                   outright — same outcome (no push, no budget charge),
                   none of the bucket-walk cost, every pop. *)
                let a = Mapping.occupant m p and b = Mapping.occupant m p' in
                let zob' = Closed.hash_after_swap closed zob ~p ~p' ~a ~b in
                if
                  code <> pend && not (Closed.mem_swapped closed zob' m ~p ~p')
                then begin
                  incr pushed;
                  if !pushed > opts.node_budget then budget_hit := true
                  else begin
                    let layer_ex' = layer_ex + delta tp_touch q2p p p' a b in
                    let look_ex' =
                      if has_lookahead then look_ex + delta lp_touch q2p p p' a b
                      else 0
                    in
                    let g' = g + 1 in
                    let f =
                      float_of_int g'
                      +. heuristic_of ~opts ~layer_excess:layer_ex'
                           ~look_excess:look_ex' ~has_lookahead
                    in
                    Pqueue.push open_set f
                      ( m,
                        code,
                        pack_scalars g' layer_ex' look_ex',
                        code :: swaps_rev,
                        zob' )
                  end
                end
              end
            done;
            mark_targets q2p false
          end
        end
  done;
  !result

(* Budget fallback: route the layer's gates one at a time along shortest
   paths. Total on validated (connected) devices: a BFS path always
   exists; on anything else unroutable gates are skipped rather than
   crashed on ({!Route_state.create} rejects such devices up front). *)
let fallback_swaps device mapping target_pairs =
  let m = ref mapping in
  let swaps = ref [] in
  List.iter
    (fun (a, b) ->
      let pa = Mapping.phys !m a and pb = Mapping.phys !m b in
      if (Device.distance_row device pa).(pb) > 1 then
        match Qls_graph.Bfs.path (Device.graph device) pa pb with
        | None | Some [] | Some [ _ ] -> ()
        | Some path ->
            let rec go = function
              | p :: p' :: (_ :: _ as rest) ->
                  swaps := (p, p') :: !swaps;
                  m := Mapping.swap_physical !m p p';
                  go (p' :: rest)
              | _ -> ()
            in
            go path)
    target_pairs;
  List.rev !swaps

let obs_rounds = lazy (Qls_obs.counter "router.rounds")
let obs_gates = lazy (Qls_obs.counter "router.gates")

let route ?(options = default_options) ?initial device circuit =
  let opts = options in
  let start =
    match initial with
    | Some m -> m
    | None -> Placement.identity device circuit
  in
  let st = Route_state.create ~device ~source:circuit ~initial:start in
  let traced = Qls_obs.enabled () in
  let pass_sp =
    if traced then Qls_obs.start ~site:"router" "astar.route" else Qls_obs.none
  in
  let rounds = ref 0 in
  ignore (Route_state.advance st);
  while not (Route_state.finished st) do
    incr rounds;
    (* Deadline/heartbeat checkpoint: one per routed layer. *)
    Qls_cancel.poll ();
    let layer_sp =
      if traced then Qls_obs.start ~site:"router" "astar.layer"
      else Qls_obs.none
    in
    let dag = Route_state.dag st in
    let layers = Route_state.remaining_layers st ~max_layers:2 in
    let target, lookahead =
      match layers with
      | [] -> ([], [])
      | [ l0 ] -> (l0, [])
      | l0 :: l1 :: _ -> (l0, l1)
    in
    let target_pairs = List.map (Dag.pair dag) target in
    let lookahead_pairs = List.map (Dag.pair dag) lookahead in
    let mapping = Route_state.mapping st in
    let swaps =
      match astar ~opts device mapping ~target_pairs ~lookahead_pairs with
      | Some swaps -> swaps
      | None -> fallback_swaps device mapping target_pairs
    in
    List.iter (fun (p, p') -> Route_state.apply_swap st p p') swaps;
    let emitted = Route_state.advance st in
    if traced then
      Qls_obs.stop layer_sp
        ~attrs:
          [
            ("emitted", Qls_obs.Int emitted);
            ("swaps", Qls_obs.Int (List.length swaps));
          ];
    (* The A* goal guarantees the whole layer became executable; the
       fallback guarantees at least one gate did (devices that could
       starve it are rejected by {!Route_state.create}). *)
    if emitted = 0 then
      failwith "Astar_router: no progress after layer search (bug)"
  done;
  Qls_obs.add (Lazy.force obs_rounds) !rounds;
  Qls_obs.add (Lazy.force obs_gates) (Route_state.done_count st);
  if traced then
    Qls_obs.stop pass_sp
      ~attrs:
        [
          ("rounds", Qls_obs.Int !rounds);
          ("swaps", Qls_obs.Int (Route_state.swap_count st));
        ];
  Route_state.finish st

let router ?(options = default_options) () =
  {
    Router.name = "qmap";
    route = (fun ?initial device circuit -> route ~options ?initial device circuit);
  }
