module Rng = Qls_graph.Rng
module Pqueue = Qls_graph.Pqueue
module Dag = Qls_circuit.Dag
module Device = Qls_arch.Device
module Mapping = Qls_layout.Mapping

type options = { lookahead_weight : float; node_budget : int; seed : int }

let default_options = { lookahead_weight = 0.5; node_budget = 10_000; seed = 0 }

let mapping_key mapping =
  let arr = Mapping.to_array mapping in
  let b = Bytes.create (Array.length arr) in
  Array.iteri (fun i p -> Bytes.set b i (Char.chr (p land 0xff))) arr;
  Bytes.to_string b

(* Distance excess of a gate set under a mapping. *)
let excess device mapping pairs =
  List.fold_left
    (fun acc (a, b) ->
      acc + Device.distance device (Mapping.phys mapping a) (Mapping.phys mapping b) - 1)
    0 pairs

let heuristic ~opts device mapping ~target_pairs ~lookahead_pairs =
  let h_layer = float_of_int ((excess device mapping target_pairs + 1) / 2) in
  let h_look =
    match lookahead_pairs with
    | [] -> 0.0
    | ps -> opts.lookahead_weight *. float_of_int (excess device mapping ps) /. 2.0
  in
  h_layer +. h_look

(* A* from [mapping] to a mapping making every pair in [target_pairs]
   adjacent. Returns the SWAP sequence, or [None] when the node budget is
   exhausted. *)
let astar ~opts device mapping ~target_pairs ~lookahead_pairs =
  let open_set = Pqueue.create () in
  let closed = Hashtbl.create 4096 in
  (* Couplers touching a physical qubit that holds a target-layer qubit.
     The search expands thousands of nodes per layer, so this walks the
     precomputed incident-edge lists with scratch reused across
     expansions instead of rebuilding a set and rescanning every coupler
     per node; ascending edge index restores canonical order, so the
     expansion order (and hence the result) is unchanged. *)
  let edge_mark = Array.make (Device.n_edges device) false in
  let edge_ids = Array.make (Device.n_edges device) 0 in
  let relevant m =
    let k = ref 0 in
    let add p =
      Array.iter
        (fun e ->
          if not edge_mark.(e) then begin
            edge_mark.(e) <- true;
            edge_ids.(!k) <- e;
            incr k
          end)
        (Device.incident_edges device p)
    in
    List.iter
      (fun (a, b) ->
        add (Mapping.phys m a);
        add (Mapping.phys m b))
      target_pairs;
    let ids = Array.sub edge_ids 0 !k in
    Array.sort Int.compare ids;
    Array.fold_right
      (fun e acc ->
        edge_mark.(e) <- false;
        Device.edge_at device e :: acc)
      ids []
  in
  (* The budget counts queue insertions: each stored state holds a full
     mapping, so this also bounds peak memory. *)
  let pushed = ref 0 in
  Pqueue.push open_set
    (heuristic ~opts device mapping ~target_pairs ~lookahead_pairs)
    (mapping, 0, []);
  let result = ref None in
  let budget_hit = ref false in
  while Option.is_none !result && (not !budget_hit) && not (Pqueue.is_empty open_set) do
    match Pqueue.pop open_set with
    | None -> ()
    | Some (_, (m, g, swaps_rev)) ->
        let key = mapping_key m in
        if not (Hashtbl.mem closed key) then begin
          Hashtbl.add closed key ();
          if excess device m target_pairs = 0 then
            result := Some (List.rev swaps_rev)
          else
            List.iter
              (fun (p, p') ->
                let m' = Mapping.swap_physical m p p' in
                let key' = mapping_key m' in
                if not (Hashtbl.mem closed key') && not !budget_hit then begin
                  incr pushed;
                  if !pushed > opts.node_budget then budget_hit := true
                  else begin
                    let g' = g + 1 in
                    let f =
                      float_of_int g'
                      +. heuristic ~opts device m' ~target_pairs ~lookahead_pairs
                    in
                    Pqueue.push open_set f (m', g', (p, p') :: swaps_rev)
                  end
                end)
              (relevant m)
        end
  done;
  !result

(* Budget fallback: route the layer's gates one at a time along shortest
   paths. *)
let fallback_swaps device mapping target_pairs =
  let m = ref mapping in
  let swaps = ref [] in
  List.iter
    (fun (a, b) ->
      let pa = Mapping.phys !m a and pb = Mapping.phys !m b in
      if Device.distance device pa pb > 1 then
        match Qls_graph.Bfs.path (Device.graph device) pa pb with
        | None | Some [] | Some [ _ ] -> ()
        | Some path ->
            let rec go = function
              | p :: p' :: (_ :: _ as rest) ->
                  swaps := (p, p') :: !swaps;
                  m := Mapping.swap_physical !m p p';
                  go (p' :: rest)
              | _ -> ()
            in
            go path)
    target_pairs;
  List.rev !swaps

let obs_rounds = lazy (Qls_obs.counter "router.rounds")
let obs_gates = lazy (Qls_obs.counter "router.gates")

let route ?(options = default_options) ?initial device circuit =
  let opts = options in
  let start =
    match initial with
    | Some m -> m
    | None -> Placement.identity device circuit
  in
  let st = Route_state.create ~device ~source:circuit ~initial:start in
  let traced = Qls_obs.enabled () in
  let pass_sp =
    if traced then Qls_obs.start ~site:"router" "astar.route" else Qls_obs.none
  in
  let rounds = ref 0 in
  ignore (Route_state.advance st);
  while not (Route_state.finished st) do
    incr rounds;
    (* Deadline/heartbeat checkpoint: one per routed layer. *)
    Qls_cancel.poll ();
    let layer_sp =
      if traced then Qls_obs.start ~site:"router" "astar.layer"
      else Qls_obs.none
    in
    let dag = Route_state.dag st in
    let layers = Route_state.remaining_layers st ~max_layers:2 in
    let target, lookahead =
      match layers with
      | [] -> ([], [])
      | [ l0 ] -> (l0, [])
      | l0 :: l1 :: _ -> (l0, l1)
    in
    let target_pairs = List.map (Dag.pair dag) target in
    let lookahead_pairs = List.map (Dag.pair dag) lookahead in
    let mapping = Route_state.mapping st in
    let swaps =
      match astar ~opts device mapping ~target_pairs ~lookahead_pairs with
      | Some swaps -> swaps
      | None -> fallback_swaps device mapping target_pairs
    in
    List.iter (fun (p, p') -> Route_state.apply_swap st p p') swaps;
    let emitted = Route_state.advance st in
    if traced then
      Qls_obs.stop layer_sp
        ~attrs:
          [
            ("emitted", Qls_obs.Int emitted);
            ("swaps", Qls_obs.Int (List.length swaps));
          ];
    (* The A* goal guarantees the whole layer became executable; the
       fallback guarantees at least one gate did. *)
    if emitted = 0 then
      failwith "Astar_router: no progress after layer search (bug)"
  done;
  Qls_obs.add (Lazy.force obs_rounds) !rounds;
  Qls_obs.add (Lazy.force obs_gates) (Route_state.done_count st);
  if traced then
    Qls_obs.stop pass_sp
      ~attrs:
        [
          ("rounds", Qls_obs.Int !rounds);
          ("swaps", Qls_obs.Int (Route_state.swap_count st));
        ];
  Route_state.finish st

let router ?(options = default_options) () =
  {
    Router.name = "qmap";
    route = (fun ?initial device circuit -> route ~options ?initial device circuit);
  }
