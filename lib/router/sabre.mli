(** SABRE / LightSABRE (Li, Ding & Xie 2019; Zou et al. 2024).

    The stock configuration reproduces the published Qiskit cost model the
    paper's case study (§IV-C) hinges on: when the front layer is blocked,
    every SWAP touching a front-layer qubit is scored

    {v
      score(s) = max(decay) * ( basic(F) / |F|  +  w * lookahead(E) / |E| )
    v}

    where [basic] sums post-SWAP physical distances over the front layer
    [F], [lookahead] sums them over the {e extended set} [E] (the next
    [extended_set_size = 20] two-qubit gates, each weighted equally,
    [w = 0.5]), and [decay] penalises recently swapped qubits
    ([+0.001] per use, reset every [5] rounds and on progress). The paper
    shows this equal weighting of near and far lookahead gates produces
    provably suboptimal routing on QUBIKOS circuits and suggests decaying
    the lookahead with distance-from-execution; [lookahead_decay]
    implements that fix and is exercised by the case-study experiment.

    LightSABRE refinements implemented: best-of-N randomised trials and a
    release valve that escapes oscillation by routing the oldest blocked
    gate along a shortest path.

    Initial mappings, unless supplied, are refined with SABRE's
    bidirectional passes: forward and backward routing passes alternate,
    each seeding the next pass's initial mapping with the final mapping of
    the previous one. *)

type options = {
  trials : int;  (** independent randomised trials, best SWAP count wins *)
  seed : int;  (** base RNG seed; trial [i] uses an independent stream *)
  extended_set_size : int;  (** lookahead window, Qiskit default 20 *)
  extended_set_weight : float;  (** lookahead weight [w], Qiskit default 0.5 *)
  decay_increment : float;  (** per-use decay bump, Qiskit default 0.001 *)
  decay_reset_interval : int;  (** rounds between decay resets, default 5 *)
  lookahead_decay : float option;
      (** [None] = stock equal weighting; [Some gamma] weights the [k]-th
          extended-set gate by [gamma^k] (paper §IV-C's proposed fix) *)
  bidirectional_passes : int;
      (** mapping-refinement passes before the final forward pass;
          [2] gives the classic forward-backward-forward SABRE *)
  release_valve_after : int;
      (** consecutive non-progressing SWAPs tolerated before the release
          valve fires *)
  relative_tie_break : bool;
      (** [false] (default, golden-pinned): candidates within an absolute
          [1e-12] of the best score count as tied — scale-dependent on
          large devices, where scores grow with the front. [true]:
          the window is relative,
          [|s - best| <= 1e-9 * max 1.0 best]. *)
}

val default_options : options
(** Qiskit-flavoured defaults: 1 trial, extended set 20 @ 0.5, decay
    0.001/5, no lookahead decay, 2 refinement passes, valve after 32. *)

val with_trials : int -> options -> options
(** Functional update of {!field-trials}. *)

val route :
  ?options:options ->
  ?jobs:int ->
  ?initial:Qls_layout.Mapping.t ->
  Qls_arch.Device.t ->
  Qls_circuit.Circuit.t ->
  Qls_layout.Transpiled.t
(** Run SABRE. When [initial] is given, trials keep that placement fixed
    and only randomise tie-breaking (router-only evaluation mode).

    With [trials > 1] the trials run in parallel on a
    {!Qls_harness.Pool} of domains (single-trial routing stays inline and
    spawns nothing). [jobs] caps the worker domains (clamped to [>= 1];
    default [min trials (Pool.recommended_jobs ())]; [~jobs:1] runs the
    trials inline on the calling domain). Each trial's RNG stream and
    initial placement are functions of [(seed, trial)] alone and the best
    result is selected by a fold in trial order (earlier trial wins
    SWAP-count ties), so the routed circuit is byte-identical to the
    historical sequential loop at any parallelism. Each trial runs under a {!Qls_cancel.child} of the
    caller's ambient token: deadlines and cancellation propagate into the
    fan-out, and trial heartbeats keep the parent token live.

    Options are validated on entry: NaN or negative
    [extended_set_weight] / [decay_increment] / [lookahead_decay], a
    [decay_reset_interval < 1] or a negative [extended_set_size] raise
    [Invalid_argument] instead of silently corrupting SWAP scoring (a NaN
    weight makes every comparison false, degrading selection to
    first-candidate with no error anywhere).

    @raise Invalid_argument on invalid [options]. *)

val router : ?options:options -> unit -> Router.t
(** Package as a {!Router.t} named ["sabre"] (or ["sabre-decay"] when
    [lookahead_decay] is set). *)

(** Instrumentation for the §IV-C case study: the scores SABRE assigned to
    each candidate SWAP at one decision point. *)
type decision = {
  front_gates : (int * int) list;  (** program-qubit pairs blocked in [F] *)
  candidates : ((int * int) * float) list;
      (** physical SWAP candidates with their scores, best first *)
  chosen : int * int;  (** the SWAP SABRE picked *)
}

val route_traced :
  ?options:options ->
  ?initial:Qls_layout.Mapping.t ->
  Qls_arch.Device.t ->
  Qls_circuit.Circuit.t ->
  Qls_layout.Transpiled.t * decision list
(** Single-trial routing that records every SWAP decision (uses trial 0's
    stream; ignores [trials]). *)
