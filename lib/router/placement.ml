module Graph = Qls_graph.Graph
module Rng = Qls_graph.Rng
module Vf2_impl = Qls_graph.Vf2
module Circuit = Qls_circuit.Circuit
module Interaction = Qls_circuit.Interaction
module Device = Qls_arch.Device
module Mapping = Qls_layout.Mapping

let random rng device circuit =
  Mapping.random rng ~n_program:(Circuit.n_qubits circuit)
    ~n_physical:(Device.n_qubits device)

let identity device circuit =
  Mapping.identity ~n_program:(Circuit.n_qubits circuit)
    ~n_physical:(Device.n_qubits device)

let vf2 ?node_limit device circuit =
  match
    Vf2_impl.find ?node_limit
      ~pattern:(Interaction.of_circuit circuit)
      ~target:(Device.graph device) ()
  with
  | None -> None
  | Some assignment ->
      Some (Mapping.of_array ~n_physical:(Device.n_qubits device) assignment)

let degree_greedy rng device circuit =
  let inter = Interaction.of_circuit circuit in
  let n_prog = Circuit.n_qubits circuit in
  let n_phys = Device.n_qubits device in
  if n_prog > n_phys then
    invalid_arg "Placement.degree_greedy: circuit larger than device";
  let order =
    List.sort
      (fun q q' -> Int.compare (Graph.degree inter q') (Graph.degree inter q))
      (List.init n_prog Fun.id)
  in
  let assignment = Array.make n_prog (-1) in
  let taken = Array.make n_phys false in
  let place q =
    let placed_partners =
      List.filter (fun q' -> assignment.(q') >= 0) (Graph.neighbors inter q)
    in
    let candidates = List.filter (fun p -> not taken.(p)) (List.init n_phys Fun.id) in
    let score p =
      let row = Device.distance_row device p in
      let dist_sum =
        List.fold_left (fun acc q' -> acc + row.(assignment.(q'))) 0 placed_partners
      in
      (* Lower is better: distance first, then prefer high physical degree
         (negated), then a random jitter for tie diversity. *)
      (dist_sum, -Device.degree device p, Rng.int rng 1_000_000)
    in
    let best =
      List.fold_left
        (fun best p ->
          let s = score p in
          match best with
          | None -> Some (p, s)
          | Some (_, bs) -> if s < bs then Some (p, s) else best)
        None candidates
    in
    match best with
    | Some (p, _) ->
        assignment.(q) <- p;
        taken.(p) <- true
    | None -> assert false
  in
  List.iter place order;
  Mapping.of_array ~n_physical:n_phys assignment

let spread_cost device circuit mapping =
  let inter = Interaction.of_circuit circuit in
  let dmat = Device.distance_matrix device in
  Graph.fold_edges
    (fun q q' acc ->
      acc + dmat.(Mapping.phys mapping q).(Mapping.phys mapping q') - 1)
    inter 0
