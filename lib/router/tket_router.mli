(** A t|ket⟩-style slice-lookahead router (Cowtan et al., "On the qubit
    routing problem", 2019).

    t|ket⟩'s routing pass views the circuit as a sequence of timeslices of
    parallel two-qubit gates. When the current slice is blocked it scores
    candidate SWAPs by the summed post-SWAP distances over the next
    [lookahead_slices] timeslices, geometrically discounted by
    [slice_discount], and applies the best one. Compared with SABRE it has
    no per-qubit decay and its lookahead window is structured by slices
    rather than by a fixed gate count; its initial placement is a
    graph-similarity heuristic rather than SABRE's bidirectional
    refinement. Both differences are faithful to the tools' published
    designs and explain the qualitatively larger optimality gap the paper
    measures for t|ket⟩ (§IV-B).

    The initial placement, unless supplied, tries a full subgraph
    monomorphism first (t|ket⟩'s graph placement solves SWAP-free
    instances outright) and falls back to interaction-degree greedy
    placement. *)

type options = {
  lookahead_slices : int;  (** slices scored per decision, default 4 *)
  slice_discount : float;  (** geometric slice weight, default 0.7 *)
  seed : int;  (** tie-breaking stream *)
  vf2_node_limit : int;  (** budget for the placement isomorphism try *)
  release_valve_after : int;  (** anti-oscillation threshold *)
  relative_tie_break : bool;
      (** [false] (default, golden-pinned): absolute [1e-12] tie window;
          [true]: relative window
          [|s - best| <= 1e-9 * max 1.0 best] (see {!Sabre.options}). *)
}

val default_options : options
(** 4 slices at discount 0.7, seed 0. *)

val route :
  ?options:options ->
  ?initial:Qls_layout.Mapping.t ->
  Qls_arch.Device.t ->
  Qls_circuit.Circuit.t ->
  Qls_layout.Transpiled.t
(** Run the router. *)

val router : ?options:options -> unit -> Router.t
(** Package as ["tket"]. *)
