module Graph = Qls_graph.Graph
module Circuit = Qls_circuit.Circuit
module Gate = Qls_circuit.Gate
module Dag = Qls_circuit.Dag
module Device = Qls_arch.Device
module Mapping = Qls_layout.Mapping
module Transpiled = Qls_layout.Transpiled
module Verifier = Qls_layout.Verifier

type verdict = Feasible of Transpiled.t | Infeasible | Unknown

type optimum =
  | Optimal of { swaps : int; witness : Transpiled.t }
  | Unknown_above of { refuted_below : int }

exception Budget_exhausted
exception Found of int array * int array * (int * int) array
(* labels per DAG vertex; placement (program qubit -> physical, -1 if free);
   the SWAP edges actually used *)

let default_budget = 50_000_000

(* Build the transpiled witness from a solution of the transition
   encoding. *)
let build_witness ~device ~circuit ~dag ~k ~swap_edges ~labels ~placement =
  let n_prog = Circuit.n_qubits circuit in
  let n_phys = Device.n_qubits device in
  (* Complete the placement for program qubits with no two-qubit gates. *)
  let placement = Array.copy placement in
  let used = Array.make n_phys false in
  Array.iter (fun p -> if p >= 0 then used.(p) <- true) placement;
  let free = ref [] in
  for p = n_phys - 1 downto 0 do
    if not used.(p) then free := p :: !free
  done;
  Array.iteri
    (fun q p ->
      if p < 0 then
        match !free with
        | f :: rest ->
            placement.(q) <- f;
            free := rest
        | [] -> assert false)
    placement;
  let initial = Mapping.of_array ~n_physical:n_phys placement in
  (* Single-qubit gates are re-attached before the first later two-qubit
     gate on their qubit. *)
  let pending_1q = Array.make (max 1 n_prog) [] in
  Array.iteri
    (fun i g ->
      match g with
      | Gate.G1 { q; _ } -> pending_1q.(q) <- i :: pending_1q.(q)
      | Gate.G2 _ -> ())
    (Circuit.gates circuit);
  Array.iteri (fun q l -> pending_1q.(q) <- List.rev l) pending_1q;
  let ops = ref [] in
  let flush_1q q ~before =
    let rec go = function
      | i :: rest when i < before ->
          ops := Transpiled.Gate i :: !ops;
          go rest
      | rest -> rest
    in
    pending_1q.(q) <- go pending_1q.(q)
  in
  let n = Dag.n_gates dag in
  for block = 0 to k do
    for v = 0 to n - 1 do
      if labels.(v) = block then begin
        let a, b = Dag.pair dag v in
        let ci = Dag.circuit_index dag v in
        flush_1q a ~before:ci;
        flush_1q b ~before:ci;
        ops := Transpiled.Gate ci :: !ops
      end
    done;
    if block < k then begin
      let p, p' = swap_edges.(block) in
      ops := Transpiled.Swap (p, p') :: !ops
    end
  done;
  Array.iter (List.iter (fun i -> ops := Transpiled.Gate i :: !ops)) pending_1q;
  let t = Transpiled.create ~source:circuit ~device ~initial (List.rev !ops) in
  (* The witness must verify — a failure here is a solver bug. *)
  ignore (Verifier.check_exn t);
  t

(* Unified search for a solution with at most [k] SWAPs.

   Transition view: a transpiled circuit is C0 T0 C1 ... Ts-1 Cs (s <= k).
   The search interleaves three kinds of decisions:

   - {b gate order} — gates are processed in a dynamically chosen
     topological order that prefers gates whose qubits are already placed
     (no branching), then gates with one placed qubit, then fresh ones — a
     fail-first ordering that keeps loosely constrained gates (fillers)
     from exploding the placement branching before a conflict in the
     constrained backbone is reached;
   - {b block labels} — for a fixed placement and SWAP sequence, each gate
     greedily takes the earliest feasible block (a canonical form:
     re-labelling any solution this way keeps it a solution, so only
     greedy labellings need exploring);
   - {b SWAP edges} — chosen lazily: the coupler for transition [T_s] is
     branched over only when some gate first fails to fit in blocks
     [0..s]. All work done before that point is shared across the coupler
     choices, which is what makes refutation (full exhaustion) tractable.

   [sigma.(l)] maps an initial physical position to its position after the
   first [l] SWAPs; a gate on initial positions (u, v) fits block [l] iff
   [sigma.(l)] sends them to coupled positions. *)
let search ~budget ~nodes ~dag ~k ~n_phys ~coupled ~couplers =
  let n = Dag.n_gates dag in
  let labels = Array.make n (-1) in
  let processed = Array.make n false in
  let pending = Array.init n (fun v -> List.length (Dag.predecessors dag v)) in
  let place = Array.make n_phys (-1) in
  (* physical -> program *)
  let placed = Hashtbl.create 32 in
  (* program -> physical *)
  let sigma = Array.init (k + 1) (fun _ -> Array.init n_phys Fun.id) in
  let chosen_swaps = Array.make (max 1 k) (0, 0) in
  let n_chosen = ref 0 in
  let allowed l u v = coupled sigma.(l).(u) sigma.(l).(v) in
  let pick_next () =
    let best = ref None in
    for v = n - 1 downto 0 do
      if (not processed.(v)) && pending.(v) = 0 then begin
        let a, b = Dag.pair dag v in
        let rank =
          match (Hashtbl.mem placed a, Hashtbl.mem placed b) with
          | true, true -> 0
          | true, false | false, true -> 1
          | false, false -> 2
        in
        match !best with
        | Some (brank, _) when brank < rank -> ()
        | Some _ | None -> best := Some (rank, v)
      end
    done;
    !best
  in
  let maxpred v =
    List.fold_left (fun acc p -> max acc labels.(p)) 0 (Dag.predecessors dag v)
  in
  let bump () =
    incr nodes;
    if !nodes > budget then raise Budget_exhausted
  in
  let rec assign count =
    bump ();
    if count = n then begin
      (* lint: nondet-source — max over keys is order-insensitive *)
      let max_q = Hashtbl.fold (fun q _ acc -> max acc q) placed (-1) in
      let placement = Array.make (max_q + 1) (-1) in
      (* lint: nondet-source — each key writes its own slot exactly once *)
      Hashtbl.iter (fun q p -> placement.(q) <- p) placed;
      raise
        (Found
           ( Array.copy labels,
             placement,
             Array.sub chosen_swaps 0 !n_chosen ))
    end;
    match pick_next () with
    | None -> ()
    | Some (_, v) ->
        processed.(v) <- true;
        List.iter (fun w -> pending.(w) <- pending.(w) - 1) (Dag.successors dag v);
        let a, b = Dag.pair dag v in
        let from = maxpred v in
        (match (Hashtbl.find_opt placed a, Hashtbl.find_opt placed b) with
        | Some u, Some vpos -> label_gate v count ~from u vpos
        | Some u, None ->
            for vpos = 0 to n_phys - 1 do
              if place.(vpos) < 0 then begin
                place.(vpos) <- b;
                Hashtbl.add placed b vpos;
                label_gate v count ~from u vpos;
                Hashtbl.remove placed b;
                place.(vpos) <- -1
              end
            done
        | None, Some vpos ->
            for u = 0 to n_phys - 1 do
              if place.(u) < 0 then begin
                place.(u) <- a;
                Hashtbl.add placed a u;
                label_gate v count ~from u vpos;
                Hashtbl.remove placed a;
                place.(u) <- -1
              end
            done
        | None, None ->
            for u = 0 to n_phys - 1 do
              if place.(u) < 0 then begin
                place.(u) <- a;
                Hashtbl.add placed a u;
                for vpos = 0 to n_phys - 1 do
                  if place.(vpos) < 0 then begin
                    place.(vpos) <- b;
                    Hashtbl.add placed b vpos;
                    label_gate v count ~from u vpos;
                    Hashtbl.remove placed b;
                    place.(vpos) <- -1
                  end
                done;
                Hashtbl.remove placed a;
                place.(u) <- -1
              end
            done);
        List.iter (fun w -> pending.(w) <- pending.(w) + 1) (Dag.successors dag v);
        processed.(v) <- false
  (* Give gate [v] (on initial positions [u], [vpos]) its earliest feasible
     block >= [from], extending the SWAP sequence on demand. *)
  and label_gate v count ~from u vpos =
    let rec attempt l =
      bump ();
      if l > k then () (* no block fits within the SWAP budget *)
      else if l <= !n_chosen then begin
        if allowed l u vpos then begin
          labels.(v) <- l;
          assign (count + 1);
          labels.(v) <- -1
        end
        else attempt (l + 1)
      end
      else begin
        (* l = n_chosen + 1: branch the coupler for transition T_{l-1}. *)
        let prev = sigma.(l - 1) in
        let next = sigma.(l) in
        Array.iter
          (fun (p, p') ->
            chosen_swaps.(l - 1) <- (p, p');
            incr n_chosen;
            Array.blit prev 0 next 0 n_phys;
            for i = 0 to n_phys - 1 do
              if next.(i) = p then next.(i) <- p'
              else if next.(i) = p' then next.(i) <- p
            done;
            if allowed l u vpos then begin
              labels.(v) <- l;
              assign (count + 1);
              labels.(v) <- -1
            end
            else attempt (l + 1);
            decr n_chosen)
          couplers
      end
    in
    attempt from
  in
  assign 0

let check ?(node_budget = default_budget) ~swaps device circuit =
  if swaps < 0 then invalid_arg "Exact.check: negative swap count";
  if Circuit.n_qubits circuit > Device.n_qubits device then
    invalid_arg "Exact.check: circuit larger than device";
  let k = swaps in
  let dag = Dag.of_circuit circuit in
  let n = Dag.n_gates dag in
  let n_phys = Device.n_qubits device in
  let couplers = Array.of_list (Device.edges device) in
  let coupling = Device.graph device in
  let nodes = ref 0 in
  if n = 0 then begin
    (* No two-qubit gates: zero swaps suffice. Emit the 1q gates in program
       order under the identity mapping — the same witness semantics as
       [Olsq.check]'s gate-free branch, so both checkers pin the same
       initial mapping for 1q-only circuits. *)
    let initial =
      Mapping.identity ~n_program:(Circuit.n_qubits circuit) ~n_physical:n_phys
    in
    let ops =
      List.init (Circuit.length circuit) (fun i -> Transpiled.Gate i)
    in
    let witness = Transpiled.create ~source:circuit ~device ~initial ops in
    ignore (Verifier.check_exn witness);
    Feasible witness
  end
  else begin
    let result = ref Infeasible in
    (try
       search ~budget:node_budget ~nodes ~dag ~k ~n_phys
         ~coupled:(fun u v -> Graph.mem_edge coupling u v)
         ~couplers
     with
    | Budget_exhausted -> result := Unknown
    | Found (labels, placement, swap_edges) ->
        let n_prog = Circuit.n_qubits circuit in
        let full = Array.make n_prog (-1) in
        Array.iteri (fun q p -> if q < n_prog then full.(q) <- p) placement;
        let witness =
          build_witness ~device ~circuit ~dag ~k:(Array.length swap_edges)
            ~swap_edges ~labels ~placement:full
        in
        result := Feasible witness);
    !result
  end

let minimum_swaps ?(max_swaps = 8) ?(node_budget = default_budget) device circuit =
  let rec go k =
    if k > max_swaps then Unknown_above { refuted_below = k }
    else
      match check ~node_budget ~swaps:k device circuit with
      | Feasible witness ->
          (* Every count below [k] was refuted, so the witness uses exactly
             [k] SWAPs; read it off the witness for good measure. *)
          Optimal { swaps = Transpiled.swap_count witness; witness }
      | Infeasible -> go (k + 1)
      | Unknown -> Unknown_above { refuted_below = k }
  in
  go 0

let router ?max_swaps ?node_budget () =
  {
    Router.name = "exact";
    route =
      (fun ?initial device circuit ->
        ignore initial;
        match minimum_swaps ?max_swaps ?node_budget device circuit with
        | Optimal { witness; _ } -> witness
        | Unknown_above { refuted_below } ->
            failwith
              (Printf.sprintf
                 "Exact.router: budget exhausted (only refuted < %d swaps)"
                 refuted_below));
  }
