module Graph = Qls_graph.Graph
module Device = Qls_arch.Device
module Mapping = Qls_layout.Mapping

type target = Fixed of int | Free

let count_misplaced mapping ~target =
  let n = ref 0 in
  for q = 0 to Mapping.n_program mapping - 1 do
    match target q with
    | Fixed p -> if Mapping.phys mapping q <> p then incr n
    | Free -> ()
  done;
  !n

let apply device mapping swaps =
  List.fold_left
    (fun m (p, p') ->
      if not (Device.coupled device p p') then
        invalid_arg
          (Printf.sprintf "Token_swap.apply: (%d,%d) is not a coupler" p p');
      Mapping.swap_physical m p p')
    mapping swaps

let validate_targets device mapping ~target =
  let n_phys = Device.n_qubits device in
  let claimed = Array.make n_phys false in
  for q = 0 to Mapping.n_program mapping - 1 do
    match target q with
    | Free -> ()
    | Fixed p ->
        if p < 0 || p >= n_phys then
          invalid_arg
            (Printf.sprintf "Token_swap: target position %d out of range" p);
        if claimed.(p) then
          invalid_arg
            (Printf.sprintf "Token_swap: position %d demanded twice" p);
        claimed.(p) <- true
  done

(* Greedy prepass: apply the coupler swap with the best strict decrease in
   total distance-to-destination until none remains. *)
let happy_swaps device mapping ~target =
  let dest = Array.make (Device.n_qubits device) (-1) in
  (* dest.(p) = destination of the token currently on p, or -1 *)
  let refresh m =
    Array.fill dest 0 (Array.length dest) (-1);
    for q = 0 to Mapping.n_program m - 1 do
      match target q with
      | Fixed p -> dest.(Mapping.phys m q) <- p
      | Free -> ()
    done
  in
  let gain (x, y) =
    let row_x = Device.distance_row device x in
    let row_y = Device.distance_row device y in
    let d_of row dst = if dst < 0 then 0 else row.(dst) in
    let before = d_of row_x dest.(x) + d_of row_y dest.(y) in
    let after = d_of row_y dest.(x) + d_of row_x dest.(y) in
    before - after
  in
  let swaps = ref [] in
  let m = ref mapping in
  let continue = ref true in
  (* lint: cancel-poll-coverage — every round strictly lowers total token distance or exits; caller's round loop polls *)
  while !continue do
    refresh !m;
    let best =
      List.fold_left
        (fun acc e ->
          let g = gain e in
          match acc with
          | Some (_, bg) when bg >= g -> acc
          | _ -> if g > 0 then Some (e, g) else acc)
        None (Device.edges device)
    in
    match best with
    | Some ((x, y), _) ->
        swaps := (x, y) :: !swaps;
        m := Mapping.swap_physical !m x y
    | None -> continue := false
  done;
  (!m, List.rev !swaps)

(* Spanning-tree token sorting: peel leaves of a BFS spanning tree; for
   each peeled position, walk its final content home along tree paths
   (which stay inside the unpeeled subtree). *)
let tree_sort device mapping ~target =
  let coupling = Device.graph device in
  let n = Device.n_qubits device in
  (* BFS spanning tree. *)
  let parent = Array.make n (-1) in
  let order = Qls_graph.Bfs.order coupling 0 in
  let seen = Array.make n false in
  List.iter
    (fun v ->
      seen.(v) <- true;
      Array.iter
        (fun w -> if (not seen.(w)) && parent.(w) < 0 && w <> 0 then parent.(w) <- v)
        (Graph.neighbors_array coupling v))
    order;
  let tree_deg = Array.make n 0 in
  for v = 1 to n - 1 do
    tree_deg.(v) <- tree_deg.(v) + 1;
    tree_deg.(parent.(v)) <- tree_deg.(parent.(v)) + 1
  done;
  let children = Array.make n [] in
  for v = 1 to n - 1 do
    children.(parent.(v)) <- v :: children.(parent.(v))
  done;
  (* Elimination order: repeatedly remove leaves. *)
  let eliminated = Array.make n false in
  let elim_order = ref [] in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if tree_deg.(v) <= 1 then Queue.add v queue
  done;
  (* lint: cancel-poll-coverage — leaf-elimination queue: each vertex is eliminated at most once *)
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if not eliminated.(v) then begin
      eliminated.(v) <- true;
      elim_order := v :: !elim_order;
      let bump w =
        if not eliminated.(w) then begin
          tree_deg.(w) <- tree_deg.(w) - 1;
          if tree_deg.(w) <= 1 then Queue.add w queue
        end
      in
      if v <> 0 && not eliminated.(parent.(v)) then bump parent.(v);
      List.iter (fun c -> if not eliminated.(c) then bump c) children.(v)
    end
  done;
  let elim_order = List.rev !elim_order in
  Array.fill eliminated 0 n false;
  (* Final content per position: fixed targets first, then keep free
     tokens in place where possible, then fill arbitrarily.
     Content encoding: program qubit id, or -1 for an empty slot. *)
  let final = Array.make n min_int in
  for q = 0 to Mapping.n_program mapping - 1 do
    match target q with Fixed p -> final.(p) <- q | Free -> ()
  done;
  let fixed_q = Array.make (Mapping.n_program mapping) false in
  for q = 0 to Mapping.n_program mapping - 1 do
    match target q with Fixed _ -> fixed_q.(q) <- true | Free -> ()
  done;
  (* Free contents in a stable order: keep position if unclaimed. *)
  let leftovers = ref [] in
  for p = 0 to n - 1 do
    let c = match Mapping.prog mapping p with Some q -> q | None -> -1 in
    let is_free = c < 0 || not fixed_q.(c) in
    if is_free then
      if final.(p) = min_int then final.(p) <- c else leftovers := c :: !leftovers
  done;
  for p = 0 to n - 1 do
    if final.(p) = min_int then begin
      match !leftovers with
      | c :: rest ->
          final.(p) <- c;
          leftovers := rest
      | [] -> assert false
    end
  done;
  let swaps = ref [] in
  let m = ref mapping in
  let content_pos c =
    (* current position of content c (program qubit, or an empty slot) *)
    if c >= 0 then Mapping.phys !m c
    else begin
      (* nearest currently-empty, non-eliminated position: any will do,
         empties are interchangeable *)
      let found = ref (-1) in
      for p = n - 1 downto 0 do
        if (not eliminated.(p)) && Option.is_none (Mapping.prog !m p) then found := p
      done;
      if !found < 0 then invalid_arg "Token_swap: no free slot for empty content";
      !found
    end
  in
  List.iter
    (fun leaf ->
      let c = final.(leaf) in
      let src = content_pos c in
      if src <> leaf then begin
        (* walk content from src to leaf along the tree path *)
        let path =
          let rec up v acc = if v = -1 then acc else up parent.(v) (v :: acc) in
          let root_a = up src [] and root_b = up leaf [] in
          (* strip the common prefix to the LCA *)
          let rec strip xs ys lca =
            match (xs, ys) with
            | x :: xs', y :: ys' when x = y -> strip xs' ys' x
            | _ -> (lca, xs, ys)
          in
          let lca, a_tail, b_tail = strip root_a root_b (-1) in
          List.rev a_tail @ [ lca ] @ b_tail
        in
        let rec walk = function
          | x :: y :: rest ->
              swaps := (x, y) :: !swaps;
              m := Mapping.swap_physical !m x y;
              walk (y :: rest)
          | _ -> ()
        in
        walk path
      end;
      eliminated.(leaf) <- true)
    elim_order;
  (!m, List.rev !swaps)

let route device ~current ~target =
  validate_targets device current ~target;
  let m1, pre = happy_swaps device current ~target in
  if count_misplaced m1 ~target = 0 then pre
  else begin
    let m2, rest = tree_sort device m1 ~target in
    assert (count_misplaced m2 ~target = 0);
    pre @ rest
  end

let optimal ?(max_swaps = 10) device ~current ~target =
  validate_targets device current ~target;
  let key m =
    String.concat ","
      (List.map string_of_int (Array.to_list (Mapping.to_array m)))
  in
  let seen = Hashtbl.create 4096 in
  let queue = Queue.create () in
  Hashtbl.add seen (key current) ();
  Queue.add (current, [], 0) queue;
  let result = ref None in
  (* lint: cancel-poll-coverage — exhaustive BFS capped by max_swaps depth on tiny instances *)
  while Option.is_none !result && not (Queue.is_empty queue) do
    let m, swaps_rev, depth = Queue.pop queue in
    if count_misplaced m ~target = 0 then result := Some (List.rev swaps_rev)
    else if depth < max_swaps then
      List.iter
        (fun (x, y) ->
          let m' = Mapping.swap_physical m x y in
          let k = key m' in
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.add seen k ();
            Queue.add (m', (x, y) :: swaps_rev, depth + 1) queue
          end)
        (Device.edges device)
  done;
  !result
