module Solver = Qls_sat.Solver
module Graph = Qls_graph.Graph
module Circuit = Qls_circuit.Circuit
module Dag = Qls_circuit.Dag
module Device = Qls_arch.Device
module Mapping = Qls_layout.Mapping
module Transpiled = Qls_layout.Transpiled
module Verifier = Qls_layout.Verifier
module Pool = Qls_harness.Pool

type verdict = Feasible of Transpiled.t | Infeasible | Unknown

type optimum =
  | Optimal of { swaps : int; witness : Transpiled.t }
  | Unknown_above of { refuted_below : int }

(* Variable numbering for one bound [k]. *)
type vars = {
  n_prog : int;
  n_phys : int;
  n_gates : int;
  n_edges : int;
  k : int;
}

let x vars q p t =
  1 + (((t * vars.n_prog) + q) * vars.n_phys) + p

let n_x vars = vars.n_prog * vars.n_phys * (vars.k + 1)

let b vars g t = 1 + n_x vars + (g * (vars.k + 1)) + t
let n_b vars = vars.n_gates * (vars.k + 1)

(* Transition choice: edge index e in [0, n_edges), or n_edges = none. *)
let s vars e t = 1 + n_x vars + n_b vars + (t * (vars.n_edges + 1)) + e
let n_s vars = max 0 (vars.k * (vars.n_edges + 1))
let total_vars vars = n_x vars + n_b vars + n_s vars

let encode ~vars ~device ~dag solver =
  let { n_prog; n_phys; n_gates; n_edges; k } = vars in
  let add = Solver.add_clause solver in
  (* 1. each program qubit occupies exactly one position per block *)
  for t = 0 to k do
    for q = 0 to n_prog - 1 do
      add (List.init n_phys (fun p -> x vars q p t));
      for p = 0 to n_phys - 1 do
        for p' = p + 1 to n_phys - 1 do
          add [ -x vars q p t; -x vars q p' t ]
        done
      done
    done;
    (* 2. injectivity: a position holds at most one program qubit *)
    for p = 0 to n_phys - 1 do
      for q = 0 to n_prog - 1 do
        for q' = q + 1 to n_prog - 1 do
          add [ -x vars q p t; -x vars q' p t ]
        done
      done
    done
  done;
  (* 3. each gate executes in exactly one block *)
  for g = 0 to n_gates - 1 do
    add (List.init (k + 1) (fun t -> b vars g t));
    for t = 0 to k do
      for t' = t + 1 to k do
        add [ -b vars g t; -b vars g t' ]
      done
    done;
    (* dependencies: predecessors in an earlier-or-equal block *)
    List.iter
      (fun g' ->
        for t = 0 to k do
          add (-b vars g t :: List.init (t + 1) (fun t' -> b vars g' t'))
        done)
      (Dag.predecessors dag g)
  done;
  (* 4. adjacency: a gate's qubits are coupled during its block *)
  for g = 0 to n_gates - 1 do
    let a, bq = Dag.pair dag g in
    for t = 0 to k do
      for p = 0 to n_phys - 1 do
        add
          (-b vars g t :: -x vars a p t
          :: List.map (fun p' -> x vars bq p' t) (Device.neighbors device p))
      done
    done
  done;
  (* 5. transitions *)
  let edges = Array.of_list (Device.edges device) in
  for t = 0 to k - 1 do
    (* exactly one choice (an edge, or none = index n_edges) *)
    add (List.init (n_edges + 1) (fun e -> s vars e t));
    for e = 0 to n_edges do
      for e' = e + 1 to n_edges do
        add [ -s vars e t; -s vars e' t ]
      done
    done;
    for e = 0 to n_edges - 1 do
      let u, v = edges.(e) in
      for q = 0 to n_prog - 1 do
        for p = 0 to n_phys - 1 do
          let dest = if p = u then v else if p = v then u else p in
          add [ -s vars e t; -x vars q p t; x vars q dest (t + 1) ]
        done
      done
    done;
    (* none: frame axioms *)
    for q = 0 to n_prog - 1 do
      for p = 0 to n_phys - 1 do
        add [ -s vars n_edges t; -x vars q p t; x vars q p (t + 1) ]
      done
    done
  done

let decode ~vars ~device ~dag ~circuit solver =
  let { n_prog; n_phys; n_gates; n_edges; k } = vars in
  let edges = Array.of_list (Device.edges device) in
  (* initial mapping from block 0 *)
  let placement = Array.make n_prog (-1) in
  for q = 0 to n_prog - 1 do
    for p = 0 to n_phys - 1 do
      if Solver.value solver (x vars q p 0) then placement.(q) <- p
    done
  done;
  let initial = Mapping.of_array ~n_physical:n_phys placement in
  (* gate blocks *)
  let block_of = Array.make n_gates 0 in
  for g = 0 to n_gates - 1 do
    for t = 0 to k do
      if Solver.value solver (b vars g t) then block_of.(g) <- t
    done
  done;
  (* single-qubit gate re-attachment, as in Route_state *)
  let pending_1q = Array.make (max 1 n_prog) [] in
  Array.iteri
    (fun i g ->
      match g with
      | Qls_circuit.Gate.G1 { q; _ } -> pending_1q.(q) <- i :: pending_1q.(q)
      | Qls_circuit.Gate.G2 _ -> ())
    (Circuit.gates circuit);
  Array.iteri (fun q l -> pending_1q.(q) <- List.rev l) pending_1q;
  let ops = ref [] in
  let flush_1q q ~before =
    let rec go = function
      | i :: rest when i < before ->
          ops := Transpiled.Gate i :: !ops;
          go rest
      | rest -> rest
    in
    pending_1q.(q) <- go pending_1q.(q)
  in
  for t = 0 to k do
    for g = 0 to n_gates - 1 do
      if block_of.(g) = t then begin
        let a, bq = Dag.pair dag g in
        let ci = Dag.circuit_index dag g in
        flush_1q a ~before:ci;
        flush_1q bq ~before:ci;
        ops := Transpiled.Gate ci :: !ops
      end
    done;
    if t < k then
      for e = 0 to n_edges - 1 do
        if Solver.value solver (s vars e t) then begin
          let u, v = edges.(e) in
          ops := Transpiled.Swap (u, v) :: !ops
        end
      done
  done;
  Array.iter (List.iter (fun i -> ops := Transpiled.Gate i :: !ops)) pending_1q;
  let witness =
    Transpiled.create ~source:circuit ~device ~initial (List.rev !ops)
  in
  ignore (Verifier.check_exn witness);
  witness

(* Canonicity (symmetry breaking), used on the incremental path only: if
   transition [t] is "none" the mappings at blocks [t] and [t+1] coincide,
   so a gate sitting in block [t+1] could equally run in block [t] — unless
   a predecessor occupies block [t+1]. Forbidding the non-canonical
   placements keeps exactly the greedy-earliest representative of every
   solution class, which preserves satisfiability at every bound while
   pruning the permutation symmetry the k-walk would otherwise re-refute at
   each bound. *)
let encode_earliest_block ~vars ~dag solver =
  let { n_gates; n_edges; k; _ } = vars in
  let add = Solver.add_clause solver in
  for g = 0 to n_gates - 1 do
    let preds = Dag.predecessors dag g in
    for t = 0 to k - 1 do
      add
        (-b vars g (t + 1) :: -s vars n_edges t
        :: List.map (fun g' -> b vars g' (t + 1)) preds)
    done
  done

let make_vars device circuit dag ~k =
  {
    n_prog = Circuit.n_qubits circuit;
    n_phys = Device.n_qubits device;
    n_gates = Dag.n_gates dag;
    n_edges = Device.n_edges device;
    k;
  }

(* No two-qubit gates: emit all 1q gates under the identity mapping. Shared
   by the fresh and incremental paths (and mirrored by [Exact.check]) so
   every checker pins the same witness semantics for 1q-only circuits. *)
let gate_free_witness ~vars ~device circuit =
  let initial =
    Mapping.identity ~n_program:vars.n_prog ~n_physical:vars.n_phys
  in
  let ops = List.init (Circuit.length circuit) (fun i -> Transpiled.Gate i) in
  Transpiled.create ~source:circuit ~device ~initial ops

let validate_instance ~fn ~swaps device circuit =
  if swaps < 0 then invalid_arg (fn ^ ": negative swap count");
  if Circuit.n_qubits circuit > Device.n_qubits device then
    invalid_arg (fn ^ ": circuit larger than device")

let check ?(conflict_budget = 2_000_000) ?config ~swaps device circuit =
  validate_instance ~fn:"Olsq.check" ~swaps device circuit;
  let dag = Dag.of_circuit circuit in
  let vars = make_vars device circuit dag ~k:swaps in
  if vars.n_gates = 0 then Feasible (gate_free_witness ~vars ~device circuit)
  else if vars.n_prog = 0 then Infeasible
  else begin
    let solver = Solver.create ?config (total_vars vars) in
    encode ~vars ~device ~dag solver;
    match Solver.solve ~conflict_budget solver with
    | Solver.Sat -> Feasible (decode ~vars ~device ~dag ~circuit solver)
    | Solver.Unsat -> Infeasible
    | Solver.Unknown -> Unknown
  end

(* Incremental sessions: encode once at [k_max], then decide each bound
   [k <= k_max] under assumptions instead of re-encoding. Bound [k] is
   exactly "transitions k .. k_max-1 all take the none option": a solution
   with at most [k] swaps always extends with trailing identity transitions,
   and conversely a model under those assumptions uses at most [k] swaps.
   Refuting bound [k] therefore shares every learned clause, activity and
   saved phase with the attempt at [k+1]. *)
module Incremental = struct
  type session = {
    device : Device.t;
    circuit : Circuit.t;
    dag : Dag.t;
    vars : vars;
    solver : Solver.t option;  (* None: trivial instance, no SAT needed *)
  }

  let create ?config ?(max_swaps = 8) device circuit =
    validate_instance ~fn:"Olsq.Incremental.create" ~swaps:max_swaps device
      circuit;
    let dag = Dag.of_circuit circuit in
    let vars = make_vars device circuit dag ~k:max_swaps in
    let solver =
      if vars.n_gates = 0 || vars.n_prog = 0 then None
      else begin
        let solver = Solver.create ?config (total_vars vars) in
        encode ~vars ~device ~dag solver;
        encode_earliest_block ~vars ~dag solver;
        Some solver
      end
    in
    { device; circuit; dag; vars; solver }

  let max_swaps sess = sess.vars.k

  (* Assume "no swap" for every transition from [swaps] up to the session
     bound: these are exactly the selector literals that specialise the
     k_max encoding to bound [swaps]. *)
  let bound_assumptions sess ~swaps =
    List.init (sess.vars.k - swaps) (fun i ->
        s sess.vars sess.vars.n_edges (swaps + i))

  let check ?(conflict_budget = 2_000_000) sess ~swaps =
    if swaps < 0 then
      invalid_arg "Olsq.Incremental.check: negative swap count";
    if swaps > sess.vars.k then
      invalid_arg
        (Printf.sprintf
           "Olsq.Incremental.check: bound %d exceeds session max_swaps %d"
           swaps sess.vars.k);
    match sess.solver with
    | None ->
        if sess.vars.n_gates = 0 then
          Feasible
            (gate_free_witness ~vars:sess.vars ~device:sess.device
               sess.circuit)
        else Infeasible
    | Some solver -> (
        let assumptions = bound_assumptions sess ~swaps in
        match Solver.solve ~conflict_budget ~assumptions solver with
        | Solver.Sat ->
            Feasible
              (decode ~vars:sess.vars ~device:sess.device ~dag:sess.dag
                 ~circuit:sess.circuit solver)
        | Solver.Unsat -> Infeasible
        | Solver.Unknown -> Unknown)

  let solves sess =
    match sess.solver with None -> 0 | Some solver -> Solver.solves solver

  let total_conflicts sess =
    match sess.solver with
    | None -> 0
    | Some solver ->
        let c, _, _, _ = Solver.total_stats solver in
        c
end

let walk ~max_swaps ~check_bound =
  let rec go k =
    if k > max_swaps then Unknown_above { refuted_below = k }
    else
      match check_bound k with
      | Feasible witness ->
          Optimal { swaps = Transpiled.swap_count witness; witness }
      | Infeasible -> go (k + 1)
      | Unknown -> Unknown_above { refuted_below = k }
  in
  go 0

let minimum_swaps ?(max_swaps = 8) ?conflict_budget ?config
    ?(mode = `Incremental) device circuit =
  match mode with
  | `Fresh ->
      walk ~max_swaps ~check_bound:(fun k ->
          check ?conflict_budget ?config ~swaps:k device circuit)
  | `Incremental ->
      let session = Incremental.create ?config ~max_swaps device circuit in
      walk ~max_swaps ~check_bound:(fun k ->
          Incremental.check ?conflict_budget session ~swaps:k)

(* Portfolio racing: run one solver configuration per seed on its own
   domain; the first worker to finish publishes its result and cancels the
   rest through their Qls_cancel tokens. The set of configurations is a
   pure function of the seed list (Solver.config_of_seed), so recording the
   winner seed makes any race replayable bit-for-bit by re-running that
   single configuration. *)
type 'a raced = {
  value : 'a;
  winner_seed : int;
  raced : int;
  cancelled : int;
}

let default_seeds = [ 0; 1; 2; 3 ]

let obs_races = lazy (Qls_obs.counter "sat.portfolio.races")
let obs_race_cancelled = lazy (Qls_obs.counter "sat.portfolio.cancelled")

let race ?jobs ~seeds ~f () =
  let seeds = Array.of_list seeds in
  let n = Array.length seeds in
  if n = 0 then invalid_arg "Olsq.race: empty seed list";
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> min n (Pool.recommended_jobs ())
  in
  let tokens = Array.init n (fun _ -> Qls_cancel.make ()) in
  let winner = Atomic.make (-1) in
  let results =
    Pool.run ~jobs
      ~f:(fun i seed ->
        match Qls_cancel.with_token tokens.(i) (fun () -> f seed) with
        | v ->
            if Atomic.compare_and_set winner (-1) i then
              Array.iteri
                (fun j tok -> if j <> i then Qls_cancel.cancel tok)
                tokens;
            Some v
        | exception Qls_cancel.Cancelled -> None)
      seeds
  in
  let w = Atomic.get winner in
  if w < 0 then invalid_arg "Olsq.race: no worker finished";
  let value =
    match results.(w) with Some v -> v | None -> assert false
  in
  let cancelled =
    Array.fold_left
      (fun acc r -> match r with None -> acc + 1 | Some _ -> acc)
      0 results
  in
  Qls_obs.incr (Lazy.force obs_races);
  Qls_obs.add (Lazy.force obs_race_cancelled) cancelled;
  { value; winner_seed = seeds.(w); raced = n; cancelled }

let race_check ?jobs ?(seeds = default_seeds) ?conflict_budget ~swaps device
    circuit =
  validate_instance ~fn:"Olsq.race_check" ~swaps device circuit;
  race ?jobs ~seeds
    ~f:(fun seed ->
      check ?conflict_budget
        ~config:(Solver.config_of_seed seed)
        ~swaps device circuit)
    ()

let race_minimum_swaps ?jobs ?(seeds = default_seeds) ?max_swaps
    ?conflict_budget device circuit =
  race ?jobs ~seeds
    ~f:(fun seed ->
      minimum_swaps ?max_swaps ?conflict_budget
        ~config:(Solver.config_of_seed seed)
        ~mode:`Incremental device circuit)
    ()
