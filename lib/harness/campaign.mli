(** The campaign engine: a deterministic task set executed on a domain
    pool, checkpointed to a JSONL store, resumable after a kill.

    A campaign is a list of {!Task.t} plus an [exec] function supplied
    by the consumer (the evaluation layer injects instance generation
    and routing here; the harness itself knows nothing about circuits).
    Tasks are independent and carry their own seeds, so results are
    bit-identical whatever the worker count or completion order.

    Lifecycle of each task: checkpoint lookup (skip if already done) →
    {!Runner.run} (exception classification, timeout, classified retry
    with backoff) → optional degradation along the [fallback] chain →
    store append → progress update → failure-budget check. An individual
    failure becomes a typed [Failed] row; only a store I/O error can
    abort the campaign outright.

    {b Failure budget.} With [failure_budget] set, the campaign watches
    the fresh-failure rate and stops starting tasks once it crosses the
    threshold (after [budget_min] fresh results): a doomed sweep — wrong
    binary, dead store disk, every task timing out — costs minutes, not
    the night. Unstarted tasks are reported [Failed] with a retryable
    ["not run: …"] error at site ["campaign"] and are {e not}
    checkpointed, so a plain resume re-runs exactly them.

    {b Degradation.} With [fallback] set, a task whose own tool failed
    (after its retries) is re-executed with the fallback tool; success
    is recorded as {!Task.Degraded} — in the store, the progress line
    and the aggregates — never silently promoted to [Done]. *)

type config = {
  jobs : int;  (** worker domains; 1 = run inline, no domains spawned *)
  timeout : float option;  (** per-attempt wall-clock seconds *)
  retries : int;  (** extra attempts after a retryable failure *)
  backoff : float;  (** base retry backoff seconds (see {!Runner}) *)
  store_path : string option;  (** JSONL checkpoint; [None] = in-memory only *)
  resume : bool;  (** load [store_path] and skip recorded tasks *)
  rerun_failed : bool;  (** on resume, re-execute tasks recorded [failed] *)
  fsync : bool;  (** fsync the store on every append *)
  failure_budget : float option;
      (** abort when fresh failures exceed this rate (in [0..1]) *)
  budget_min : int;  (** fresh results before the budget is consulted *)
  fallback : (string -> string option) option;
      (** per-tool degradation chain, e.g. ["exact" -> Some "sabre"] *)
  report : (string -> unit) option;  (** progress-line sink after each task *)
}

val default_config : unit -> config
(** All worker domains the machine recommends; no timeout, store,
    budget, fallback or reporting; default backoff; [budget_min = 10]. *)

type row = { task : Task.t; status : Task.status; resumed : bool }
(** One task's terminal state; [resumed] marks results satisfied from
    the checkpoint rather than executed by this run. *)

val stderr_report :
  ?tty:bool -> ?emit:(string -> unit) -> total:int -> string -> unit
(** A ready-made [report] sink: rewrites one status line in place when
    stderr is a tty, otherwise prints ~20 lines over the campaign. The
    call counter is atomic — worker domains all report through the one
    closure. [tty] overrides the [isatty] probe and [emit] replaces the
    stderr write (both for tests; defaults probe stderr and print to
    it). *)

val run : config -> exec:(Task.t -> Task.outcome) -> Task.t list -> row list
(** Execute the campaign; rows come back in task-list order. [exec] must
    be pure up to its task argument (same task ⇒ same outcome) for
    resume and parallel determinism to hold, and safe to call from
    several domains at once. Corrupt checkpoint lines found on resume
    are quarantined with a warning and their tasks re-run. *)

val outcomes : row list -> (Task.t * Task.outcome) list
(** Fully successful rows only — degraded rows are deliberately
    excluded; fetch them with {!degraded}. *)

val degraded : row list -> (Task.t * Task.degradation) list
(** Rows rescued by the fallback chain, with the original error. *)

val failures : row list -> (Task.t * Herror.t) list
(** Failed rows with their typed errors. *)

val aborted : row list -> string option
(** The failure-budget abort message, when the campaign stopped early. *)
