(** The campaign engine: a deterministic task set executed on a domain
    pool, checkpointed to a JSONL store, resumable after a kill.

    A campaign is a list of {!Task.t} plus an [exec] function supplied
    by the consumer (the evaluation layer injects instance generation
    and routing here; the harness itself knows nothing about circuits).
    Tasks are independent and carry their own seeds, so results are
    bit-identical whatever the worker count or completion order.

    Lifecycle of each task: checkpoint lookup (skip if already done) →
    {!Runner.guard} (exception isolation, timeout, retry) → store append
    → progress update. An individual failure becomes a [Failed] row;
    only a store I/O error can abort the campaign. *)

type config = {
  jobs : int;  (** worker domains; 1 = run inline, no domains spawned *)
  timeout : float option;  (** per-attempt wall-clock seconds *)
  retries : int;  (** extra attempts after a failure *)
  store_path : string option;  (** JSONL checkpoint; [None] = in-memory only *)
  resume : bool;  (** load [store_path] and skip recorded tasks *)
  rerun_failed : bool;  (** on resume, re-execute tasks recorded [failed] *)
  report : (string -> unit) option;  (** progress-line sink after each task *)
}

val default_config : unit -> config
(** All worker domains the machine recommends, no timeout, no store, no
    reporting. *)

type row = { task : Task.t; status : Task.status; resumed : bool }
(** One task's terminal state; [resumed] marks results satisfied from
    the checkpoint rather than executed by this run. *)

val stderr_report : total:int -> string -> unit
(** A ready-made [report] sink: rewrites one status line in place when
    stderr is a tty, otherwise prints ~20 lines over the campaign. *)

val run : config -> exec:(Task.t -> Task.outcome) -> Task.t list -> row list
(** Execute the campaign; rows come back in task-list order. [exec] must
    be pure up to its task argument (same task ⇒ same outcome) for
    resume and parallel determinism to hold, and safe to call from
    several domains at once. *)

val outcomes : row list -> (Task.t * Task.outcome) list
(** Successful rows only. *)

val failures : row list -> (Task.t * string) list
(** Failed rows with their error strings. *)
