(** Typed harness errors — the failure taxonomy every layer speaks.

    A failure is never just a string: it carries a {!klass} that decides
    policy (only [Transient] and [Timeout] are worth retrying; a
    [Permanent] error is deterministic and retrying it re-buys the same
    failure; [Corrupt] marks damaged checkpoint data, quarantined rather
    than trusted), the {e site} that observed it (["runner.exec"],
    ["store.append"], ["store.load"], ["campaign"]), and how many
    attempts it consumed before becoming terminal. *)

type klass =
  | Transient  (** environmental — a retry may succeed (EAGAIN, OOM,
                   injected transient faults) *)
  | Permanent  (** deterministic — the same inputs will fail the same
                   way; never retried *)
  | Timeout  (** the wall-clock budget expired; retryable (a sibling
                 task may have been hogging the machine) *)
  | Corrupt  (** damaged data detected (checkpoint line, parse); never
                 retried, quarantined instead *)

type t = {
  klass : klass;
  site : string;  (** where it was observed, e.g. ["runner.exec"] *)
  message : string;
  attempts : int;  (** attempts consumed when it became terminal (>= 1) *)
}

exception Error of t
(** Typed escape hatch: task bodies (or fault hooks) may raise this to
    control their own classification; {!of_exn} unwraps it. *)

val v : ?site:string -> ?attempts:int -> klass -> string -> t
(** Build an error; [site] defaults to ["?"], [attempts] to 1. *)

val transient : ?site:string -> string -> t
val permanent : ?site:string -> string -> t
val corrupt : ?site:string -> string -> t

val timeout : ?site:string -> float -> t
(** [timeout sec] — class [Timeout], message ["timeout after <sec>s"]. *)

val retryable : t -> bool
(** [true] exactly for [Transient] and [Timeout]. *)

val of_exn : site:string -> exn -> t
(** Classify an exception: {!Error} unwraps; {!Qls_faults.Injected}
    maps to [Transient]/[Permanent] per its flag; resource-pressure
    [Unix_error]s ([EAGAIN], [EINTR], [EBUSY], [ENOMEM]) and
    [Out_of_memory] are [Transient]; everything else is [Permanent]. *)

val klass_name : klass -> string
(** Lowercase stable name (["transient"], ...) — the JSONL [eclass]
    field. *)

val klass_of_name : string -> klass option

val to_string : t -> string
(** ["<klass>[<site>]: <message>"], plus ["after N attempts"] when
    [attempts > 1]. *)

val pp : Format.formatter -> t -> unit
