type tool_stat = { mutable ratio_sum : float; mutable samples : int }

type t = {
  total : int;
  mutable ok : int;
  mutable degraded : int;
  mutable failed : int;
  mutable resumed : int;
  started : float;
  tools : (string, tool_stat) Hashtbl.t;
  mutex : Mutex.t;
}

let create ~total =
  {
    total;
    ok = 0;
    degraded = 0;
    failed = 0;
    resumed = 0;
    started = Unix.gettimeofday ();
    tools = Hashtbl.create 8;
    mutex = Mutex.create ();
  }

let tool_stat t name =
  match Hashtbl.find_opt t.tools name with
  | Some s -> s
  | None ->
      let s = { ratio_sum = 0.0; samples = 0 } in
      Hashtbl.add t.tools name s;
      s

let record ?ratio ?tool ~outcome t =
  Mutex.protect t.mutex (fun () ->
      (match outcome with
      | `Ok -> t.ok <- t.ok + 1
      | `Degraded -> t.degraded <- t.degraded + 1
      | `Failed -> t.failed <- t.failed + 1);
      (* Degraded ratios are excluded from the per-tool running gap: the
         sample came from the fallback tool, not this one. *)
      match (outcome, tool, ratio) with
      | `Ok, Some tool, Some ratio ->
          let s = tool_stat t tool in
          s.ratio_sum <- s.ratio_sum +. ratio;
          s.samples <- s.samples + 1
      | _ -> ())

let record_resumed t = Mutex.protect t.mutex (fun () -> t.resumed <- t.resumed + 1)

let finished t = t.ok + t.degraded + t.failed + t.resumed

let eta_seconds t =
  (* Only work done by this process predicts its pace; resumed tasks
     were free and would skew the estimate. *)
  let fresh = t.ok + t.degraded + t.failed in
  let remaining = t.total - finished t in
  if fresh = 0 || remaining <= 0 then None
  else
    let elapsed = Unix.gettimeofday () -. t.started in
    Some (elapsed /. float_of_int fresh *. float_of_int remaining)

let render t =
  Mutex.protect t.mutex (fun () ->
      let b = Buffer.create 96 in
      Buffer.add_string b
        (Printf.sprintf "campaign %d/%d ok:%d failed:%d" (finished t) t.total
           t.ok t.failed);
      if t.degraded > 0 then
        Buffer.add_string b (Printf.sprintf " degraded:%d" t.degraded);
      if t.resumed > 0 then
        Buffer.add_string b (Printf.sprintf " resumed:%d" t.resumed);
      let gaps =
        Hashtbl.fold
          (fun name s acc ->
            if s.samples > 0 then
              (name, s.ratio_sum /. float_of_int s.samples) :: acc
            else acc)
          t.tools []
        |> List.sort compare
      in
      if gaps <> [] then begin
        Buffer.add_string b " |";
        List.iter
          (fun (name, gap) ->
            Buffer.add_string b (Printf.sprintf " %s %.1fx" name gap))
          gaps
      end;
      (match eta_seconds t with
      | Some eta when eta >= 1.0 ->
          Buffer.add_string b (Printf.sprintf " | eta %.0fs" eta)
      | _ -> ());
      Buffer.contents b)
