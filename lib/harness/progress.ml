type tool_stat = {
  mutable ratio_sum : float;  (* guarded_by: mutex *)
  mutable samples : int;  (* guarded_by: mutex *)
}

(* The scalar counters are [Atomic] rather than mutex-guarded mutables:
   {!finished} and {!eta_seconds} are read by arbitrary cross-domain
   callers (and by {!render} while it already holds the mutex — OCaml
   mutexes are not reentrant, so those reads could not simply take it).
   Only the per-tool table, which needs a compound read-modify-write,
   stays under the mutex. *)
type t = {
  total : int;
  ok : int Atomic.t;
  degraded : int Atomic.t;
  failed : int Atomic.t;
  resumed : int Atomic.t;
  started : float;
  tools : (string, tool_stat) Hashtbl.t;  (* guarded_by: mutex *)
  mutex : Mutex.t;
}

let create ~total =
  {
    total;
    ok = Atomic.make 0;
    degraded = Atomic.make 0;
    failed = Atomic.make 0;
    resumed = Atomic.make 0;
    (* lint: nondet-source — campaign start time, feeds the ETA only *)
    started = Unix.gettimeofday ();
    tools = Hashtbl.create 8;
    mutex = Mutex.create ();
  }

let tool_stat t name =
  match Hashtbl.find_opt t.tools name (* lint: guarded-by — caller holds t.mutex *) with
  | Some s -> s
  | None ->
      let s = { ratio_sum = 0.0; samples = 0 } in
      Hashtbl.add t.tools name s; (* lint: guarded-by — caller holds t.mutex *)
      s

let record ?ratio ?tool ~outcome t =
  (match outcome with
  | `Ok -> Atomic.incr t.ok
  | `Degraded -> Atomic.incr t.degraded
  | `Failed -> Atomic.incr t.failed);
  (* Degraded ratios are excluded from the per-tool running gap: the
     sample came from the fallback tool, not this one. *)
  match (outcome, tool, ratio) with
  | `Ok, Some tool, Some ratio ->
      Mutex.protect t.mutex (fun () ->
          let s = tool_stat t tool in
          s.ratio_sum <- s.ratio_sum +. ratio;
          s.samples <- s.samples + 1)
  | _ -> ()

let record_resumed t = Atomic.incr t.resumed

let finished t =
  Atomic.get t.ok + Atomic.get t.degraded + Atomic.get t.failed
  + Atomic.get t.resumed

let eta_seconds t =
  (* Only work done by this process predicts its pace; resumed tasks
     were free and would skew the estimate. *)
  let fresh = Atomic.get t.ok + Atomic.get t.degraded + Atomic.get t.failed in
  let remaining = t.total - fresh - Atomic.get t.resumed in
  if fresh = 0 || remaining <= 0 then None
  else
    (* lint: nondet-source — elapsed time feeds the ETA estimate only *)
    let elapsed = Unix.gettimeofday () -. t.started in
    Some (elapsed /. float_of_int fresh *. float_of_int remaining)

(* The only read path into the per-tool table: the snapshot is taken
   under the mutex and ordered before it escapes, so callers can never
   observe hash order or a half-applied [record]. *)
let tool_gaps t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.fold
        (fun name s acc ->
          if s.samples > 0 then
            (name, s.ratio_sum /. float_of_int s.samples) :: acc
          else acc)
        t.tools [])
  (* Sort by the name alone: polymorphic [compare] on the (name, gap)
     pairs would fall through to raw float comparison on equal names
     and silently misorder NaN gaps — float order must go through
     [Float.compare], and here the float has no business in the key. *)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let render t =
  let b = Buffer.create 96 in
  Buffer.add_string b
    (Printf.sprintf "campaign %d/%d ok:%d failed:%d" (finished t) t.total
       (Atomic.get t.ok) (Atomic.get t.failed));
  if Atomic.get t.degraded > 0 then
    Buffer.add_string b (Printf.sprintf " degraded:%d" (Atomic.get t.degraded));
  if Atomic.get t.resumed > 0 then
    Buffer.add_string b (Printf.sprintf " resumed:%d" (Atomic.get t.resumed));
  let gaps = tool_gaps t in
  if not (List.is_empty gaps) then begin
    Buffer.add_string b " |";
    List.iter
      (fun (name, gap) ->
        Buffer.add_string b (Printf.sprintf " %s %.1fx" name gap))
      gaps
  end;
  (match eta_seconds t with
  | Some eta when eta >= 1.0 ->
      Buffer.add_string b (Printf.sprintf " | eta %.0fs" eta)
  | _ -> ());
  Buffer.contents b
