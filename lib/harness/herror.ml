type klass = Transient | Permanent | Timeout | Corrupt

type t = { klass : klass; site : string; message : string; attempts : int }

exception Error of t

let v ?(site = "?") ?(attempts = 1) klass message =
  { klass; site; message; attempts }

let transient ?site message = v ?site Transient message
let permanent ?site message = v ?site Permanent message
let corrupt ?site message = v ?site Corrupt message
let timeout ?site sec = v ?site Timeout (Printf.sprintf "timeout after %gs" sec)

let retryable e =
  match e.klass with Transient | Timeout -> true | Permanent | Corrupt -> false

let of_exn ~site = function
  | Error e -> e
  | Qls_faults.Injected { site = fault_site; transient } ->
      {
        klass = (if transient then Transient else Permanent);
        site = fault_site;
        message = "injected fault";
        attempts = 1;
      }
  | Unix.Unix_error (((EAGAIN | EWOULDBLOCK | EINTR | EBUSY | ENOMEM) as err), fn, _)
    ->
      transient ~site (Printf.sprintf "%s: %s" fn (Unix.error_message err))
  | Out_of_memory -> transient ~site "out of memory"
  | e -> permanent ~site (Printexc.to_string e)

let klass_name = function
  | Transient -> "transient"
  | Permanent -> "permanent"
  | Timeout -> "timeout"
  | Corrupt -> "corrupt"

let klass_of_name = function
  | "transient" -> Some Transient
  | "permanent" -> Some Permanent
  | "timeout" -> Some Timeout
  | "corrupt" -> Some Corrupt
  | _ -> None

let to_string e =
  let base = Printf.sprintf "%s[%s]: %s" (klass_name e.klass) e.site e.message in
  if e.attempts > 1 then Printf.sprintf "%s (after %d attempts)" base e.attempts
  else base

let pp ppf e = Format.pp_print_string ppf (to_string e)
