type config = { timeout : float option; retries : int }

let default = { timeout = None; retries = 0 }

let run_once ~timeout f =
  match timeout with
  | None -> ( try Ok (f ()) with e -> Error (Printexc.to_string e))
  | Some limit ->
      (* Run the task on a sibling thread of this worker domain and poll
         its completion flag against a wall-clock deadline. A task that
         overruns is reported [Error "timeout ..."] and its thread is
         abandoned — it cannot be killed, but it owns no shared state
         (its result cell is private to this call), so siblings and the
         campaign are unaffected. *)
      let cell = Atomic.make None in
      let thread =
        Thread.create
          (fun () ->
            let r = try Ok (f ()) with e -> Error (Printexc.to_string e) in
            Atomic.set cell (Some r))
          ()
      in
      let deadline = Unix.gettimeofday () +. limit in
      let rec wait () =
        match Atomic.get cell with
        | Some r ->
            Thread.join thread;
            r
        | None ->
            if Unix.gettimeofday () >= deadline then
              Error (Printf.sprintf "timeout after %gs" limit)
            else begin
              Thread.delay 0.01;
              wait ()
            end
      in
      wait ()

let run config f =
  let rec attempt n =
    match run_once ~timeout:config.timeout f with
    | Ok v -> Ok v
    | Error _ when n < config.retries -> attempt (n + 1)
    | Error e -> Error e
  in
  attempt 0

let guard config f = match run config f with Ok o -> Task.Done o | Error e -> Task.Failed e
