type config = {
  timeout : float option;
  retries : int;
  backoff : float;
  backoff_max : float;
}

let default = { timeout = None; retries = 0; backoff = 0.05; backoff_max = 2.0 }

let site_exec = "runner.exec"

(* FNV-1a fold, as in {!Task.rng_seed}: the jitter stream is a pure
   function of (seed, attempt). *)
let jitter ~seed ~attempt =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    (Printf.sprintf "%d/%d" seed attempt);
  float_of_int (!h mod 1024) /. 1024.0

let backoff_delay config ~seed ~attempt =
  if config.backoff <= 0.0 then 0.0
  else
    let base =
      Float.min config.backoff_max
        (config.backoff *. (2.0 ** float_of_int attempt))
    in
    (* Deterministic per-task jitter in [0.5, 1.5) x base: retries of a
       whole failed point decorrelate instead of thundering back in
       lockstep, yet the schedule is reproducible from the task seed. *)
    base *. (0.5 +. jitter ~seed ~attempt)

let run_once ~timeout ~site f =
  match timeout with
  | None -> ( try Ok (f ()) with e -> Error (Herror.of_exn ~site e))
  | Some limit ->
      (* Run the task on a sibling thread of this worker domain and block
         until it completes or the wall-clock deadline passes. The thread
         signals completion by writing one byte to a pipe; the worker
         sleeps in [Unix.select] on the read end (stdlib [Condition] has
         no timed wait), so waiting burns no CPU. A task that overruns is reported [Error Timeout] and its
         thread is abandoned — it cannot be killed, but it owns no shared
         state (its result cell is private to this call), so siblings and
         the campaign are unaffected; a reaper thread joins it eventually
         and closes the pipe. *)
      let rd, wr = Unix.pipe ~cloexec:true () in
      let cell = Atomic.make None in
      let thread =
        Thread.create
          (fun () ->
            let r = try Ok (f ()) with e -> Error (Herror.of_exn ~site e) in
            Atomic.set cell (Some r);
            try ignore (Unix.write wr (Bytes.make 1 '!') 0 1) with _ -> ())
          ()
      in
      let close_both () =
        (try Unix.close rd with _ -> ());
        try Unix.close wr with _ -> ()
      in
      (* lint: nondet-source — wall-clock enforces the timeout guard *)
      let deadline = Unix.gettimeofday () +. limit in
      let rec wait () =
        match Atomic.get cell with
        | Some r ->
            (* lint: unbounded-wait — the body already published its result; the join returns at once *)
            Thread.join thread;
            close_both ();
            r
        | None ->
            (* lint: nondet-source — wall-clock enforces the timeout guard *)
            let remaining = deadline -. Unix.gettimeofday () in
            if remaining <= 0.0 then begin
              (* Abandon the body; the reaper keeps the pipe open until
                 the body's completing write can no longer fault. *)
              ignore
                (Thread.create
                   (fun () ->
                     (* lint: unbounded-wait — blocking on the abandoned body is the reaper thread's whole job *)
                     Thread.join thread;
                     close_both ())
                   ());
              Error (Herror.timeout ~site limit)
            end
            else begin
              (try ignore (Unix.select [ rd ] [] [] remaining)
               with Unix.Unix_error (EINTR, _, _) -> ());
              wait ()
            end
      in
      wait ()

let attempt_hist =
  lazy (Qls_obs.histogram "runner.attempt_seconds")

let run_counted ?(site = site_exec) ?(key = "") ?(seed = 0) config f =
  (* The fault hook runs inside the guarded body: an injected exception
     is classified like a real one, an injected delay can trip the real
     timeout. *)
  let body () =
    Qls_faults.exec ~site ~key;
    f ()
  in
  let rec attempt n =
    let traced = Qls_obs.enabled () in
    let sp =
      if traced then Qls_obs.start ~site:"harness" "runner.attempt"
      else Qls_obs.none
    in
    (* lint: nondet-source — attempt timing feeds a histogram only *)
    let t0 = Unix.gettimeofday () in
    let result = run_once ~timeout:config.timeout ~site body in
    (* lint: nondet-source — attempt timing feeds a histogram only *)
    Qls_obs.observe (Lazy.force attempt_hist) (Unix.gettimeofday () -. t0);
    if traced then
      Qls_obs.stop sp
        ~attrs:
          [
            ("key", Qls_obs.Str key);
            ("attempt", Qls_obs.Int (n + 1));
            ( "result",
              Qls_obs.Str
                (match result with
                | Ok _ -> "ok"
                | Error e -> Herror.klass_name e.Herror.klass) );
          ];
    match result with
    | Ok v -> Ok (v, n + 1)
    | Error e when Herror.retryable e && n < config.retries ->
        let pause = backoff_delay config ~seed ~attempt:n in
        if pause > 0.0 then begin
          let bsp =
            if Qls_obs.enabled () then
              Qls_obs.start ~site:"harness" "runner.backoff"
            else Qls_obs.none
          in
          (* lint: unbounded-wait — finite retry backoff from the policy's pause schedule *)
          Thread.delay pause;
          Qls_obs.stop bsp
        end;
        attempt (n + 1)
    | Error e -> Error { e with Herror.attempts = n + 1 }
  in
  attempt 0

let run ?site ?key ?seed config f =
  Result.map fst (run_counted ?site ?key ?seed config f)

let guard ?site ?key ?seed config f =
  match run_counted ?site ?key ?seed config f with
  | Ok (o, attempts) -> Task.Done { o with Task.attempts }
  | Error e -> Task.Failed e
