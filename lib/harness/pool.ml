let recommended_jobs () = Domain.recommended_domain_count ()

let run ~jobs ~f tasks =
  let n = Array.length tasks in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  (* First worker exception wins; the rest of the pool drains and joins
     cleanly, then the winner is re-raised with its original backtrace. *)
  let failed = Atomic.make None in
  let worker () =
    let rec loop () =
      if Option.is_none (Atomic.get failed) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f i tasks.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failed None (Some (e, bt))));
          loop ()
        end
      end
    in
    loop ()
  in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then worker ()
  else begin
    let others = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* Join unconditionally: even if the calling-domain worker dies with
       an asynchronous exception, no spawned domain is leaked. *)
    Fun.protect ~finally:(fun () -> Array.iter Domain.join others) worker
  end;
  match Atomic.get failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None ->
      Array.map
        (function Some v -> v | None -> invalid_arg "Pool.run: missing result")
        results

let map ~jobs ~f tasks = run ~jobs ~f:(fun _ x -> f x) tasks

(* ------------------------------------------------------------------ *)
(* The long-lived pool: a fixed set of domains fed one job at a time   *)
(* through a bounded queue, with per-job completion callbacks. This is *)
(* the serving-path variant of [run]: jobs arrive continuously (one    *)
(* per request) instead of as one batch, and admission is explicit —   *)
(* a full queue refuses the job instead of growing without bound, so   *)
(* the caller can shed load with a typed response while the workers    *)
(* stay saturated.                                                     *)
(*                                                                     *)
(* Supervision: every job carries a [Qls_cancel] token; an optional    *)
(* watchdog thread compares each busy worker's job heartbeat (start    *)
(* time vs. last token poll) against a hang threshold. A worker stuck  *)
(* past the threshold is declared lost: its job's completion callback  *)
(* fires exactly once with [Error Worker_lost] (an exactly-once flag   *)
(* arbitrates against the worker finishing late), the domain is        *)
(* abandoned — OCaml domains cannot be killed, so it is never joined — *)
(* and a replacement domain restores capacity.                         *)
(* ------------------------------------------------------------------ *)

type submit_result = Submitted | Rejected_full | Rejected_closed

exception Worker_lost of { job_id : int; stalled_ms : int }

let () =
  Printexc.register_printer (function
    | Worker_lost { job_id; stalled_ms } ->
        Some
          (Printf.sprintf "Pool.Worker_lost(job=%d, stalled=%dms)" job_id
             stalled_ms)
    | _ -> None)

type watchdog = {
  hang_threshold_ms : int;
      (* a job with no heartbeat for this long is declared lost *)
  tick_ms : int;  (* monitor wake-up period *)
}

type wjob = {
  j_id : int;
  j_token : Qls_cancel.token;
  j_started_ms : int Atomic.t;  (* 0 until a worker picks it up *)
  j_abandoned : bool Atomic.t;  (* the watchdog gave up on it *)
  j_run : unit -> unit;  (* work + owned completion delivery *)
  j_fail : exn -> unit;  (* completion delivery for the watchdog *)
}

type worker = {
  w_id : int;
  mutable w_domain : unit Domain.t option;
      (* guarded_by: mutex — None only mid-spawn *)
  w_current : wjob option Atomic.t;
  w_lost : bool Atomic.t;  (* replaced; exit after the current job *)
}

type pool = {
  jobs_queue : wjob Queue.t;  (* guarded_by: mutex *)
  capacity : int;
  mutex : Mutex.t;
  work_ready : Condition.t;  (* signalled per enqueue and at close *)
  all_idle : Condition.t;  (* signalled when running + queued hits 0 *)
  mutable running : int;  (* guarded_by: mutex — jobs executing on a worker *)
  mutable closing : bool;  (* guarded_by: mutex — drain in progress *)
  mutable workers : worker list;  (* guarded_by: mutex — live workers only *)
  mutable next_worker_id : int;  (* guarded_by: mutex *)
  next_job_id : int Atomic.t;
  lost_total : int Atomic.t;
  on_callback_error : exn -> unit;
  watchdog : watchdog option;
  wd_pipe : (Unix.file_descr * Unix.file_descr) option;  (* stop signal *)
  mutable wd_thread : Thread.t option;  (* guarded_by: mutex *)
  wd_last_tick_ms : int Atomic.t;
}

let c_workers_lost = Qls_obs.counter "pool.workers.lost"

let pool_worker p w () =
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock p.mutex;
    while Queue.is_empty p.jobs_queue && not p.closing do
      Condition.wait p.work_ready p.mutex
    done;
    match Queue.take_opt p.jobs_queue with
    | None ->
        (* closing and drained *)
        Mutex.unlock p.mutex;
        continue_ := false
    | Some job ->
        p.running <- p.running + 1;
        Atomic.set job.j_started_ms (Qls_cancel.now_ms ());
        Atomic.set w.w_current (Some job);
        Mutex.unlock p.mutex;
        job.j_run ();
        Mutex.lock p.mutex;
        Atomic.set w.w_current None;
        (* If the watchdog abandoned this job it already took over the
           [running] bookkeeping; a second decrement would corrupt the
           quiescence accounting. *)
        if not (Atomic.get job.j_abandoned) then begin
          p.running <- p.running - 1;
          if p.running = 0 && Queue.is_empty p.jobs_queue then
            Condition.broadcast p.all_idle
        end;
        if Atomic.get w.w_lost then continue_ := false;
        Mutex.unlock p.mutex
  done

(* Must be called with [p.mutex] held. *)
let spawn_worker_locked p =
  let w =
    {
      w_id = p.next_worker_id; (* lint: guarded-by — caller holds p.mutex *)
      w_domain = None;
      w_current = Atomic.make None;
      w_lost = Atomic.make false;
    }
  in
  p.next_worker_id <- p.next_worker_id + 1; (* lint: guarded-by — caller holds p.mutex *)
  w.w_domain <- Some (Domain.spawn (pool_worker p w)); (* lint: guarded-by — caller holds p.mutex *)
  p.workers <- w :: p.workers (* lint: guarded-by — caller holds p.mutex *)

let watchdog_loop p cfg stop_r () =
  let stop = ref false in
  let tick_s = float_of_int cfg.tick_ms /. 1000. in
  while not !stop do
    (match Unix.select [ stop_r ] [] [] tick_s with
    | [], _, _ -> ()
    | _ :: _, _, _ -> stop := true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    Atomic.set p.wd_last_tick_ms (Qls_cancel.now_ms ());
    if not !stop then begin
      let now = Qls_cancel.now_ms () in
      let lost = ref [] in
      Mutex.lock p.mutex;
      List.iter
        (fun w ->
          match Atomic.get w.w_current with
          | Some job when not (Atomic.get job.j_abandoned) ->
              let started = Atomic.get job.j_started_ms in
              let hb = max started (Qls_cancel.last_poll_ms job.j_token) in
              let stalled = now - hb in
              if started > 0 && stalled > cfg.hang_threshold_ms then begin
                Atomic.set job.j_abandoned true;
                Atomic.set w.w_lost true;
                (* Take over the lost worker's bookkeeping: the job no
                   longer counts as running, and its worker record makes
                   way for a replacement. The domain itself is abandoned
                   (domains cannot be killed) — drain never joins it. *)
                p.running <- p.running - 1;
                if p.running = 0 && Queue.is_empty p.jobs_queue then
                  Condition.broadcast p.all_idle;
                p.workers <-
                  List.filter (fun w' -> w'.w_id <> w.w_id) p.workers;
                spawn_worker_locked p;
                lost := (job, stalled) :: !lost
              end
          | _ -> ())
        p.workers;
      Mutex.unlock p.mutex;
      List.iter
        (fun (job, stalled) ->
          Atomic.incr p.lost_total;
          Qls_obs.incr c_workers_lost;
          job.j_fail (Worker_lost { job_id = job.j_id; stalled_ms = stalled }))
        (List.rev !lost)
    end
  done

let default_callback_error e =
  Printf.eprintf "pool: completion callback raised: %s\n%!"
    (Printexc.to_string e)

let start ?(capacity = max_int) ?(on_callback_error = default_callback_error)
    ?watchdog ~jobs () =
  if jobs < 1 then invalid_arg "Pool.start: jobs must be >= 1";
  if capacity < 0 then invalid_arg "Pool.start: capacity must be >= 0";
  (match watchdog with
  | Some { hang_threshold_ms; tick_ms } when hang_threshold_ms < 1 || tick_ms < 1
    ->
      invalid_arg "Pool.start: watchdog thresholds must be >= 1ms"
  | _ -> ());
  let wd_pipe = Option.map (fun _ -> Unix.pipe ~cloexec:true ()) watchdog in
  let p =
    {
      jobs_queue = Queue.create ();
      capacity;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      all_idle = Condition.create ();
      running = 0;
      closing = false;
      workers = [];
      next_worker_id = 0;
      next_job_id = Atomic.make 0;
      lost_total = Atomic.make 0;
      on_callback_error;
      watchdog;
      wd_pipe;
      wd_thread = None;
      wd_last_tick_ms = Atomic.make (Qls_cancel.now_ms ());
    }
  in
  Mutex.lock p.mutex;
  for _ = 1 to jobs do
    spawn_worker_locked p
  done;
  Mutex.unlock p.mutex;
  (match (watchdog, wd_pipe) with
  | Some cfg, Some (stop_r, _) ->
      p.wd_thread <- Some (Thread.create (watchdog_loop p cfg stop_r) ())
  | _ -> ());
  p

let submit ?token p ~work ~complete =
  let token = match token with Some t -> t | None -> Qls_cancel.make () in
  (* Exactly-once completion: the worker that ran the job and a watchdog
     that abandoned it can both try to deliver; the flag arbitrates, and
     the loser's result is dropped. The callback runs on whichever
     domain/thread won; an exception it raises is contained (reported
     through [on_callback_error]) so it can never kill the worker. *)
  let delivered = Atomic.make false in
  let deliver result =
    if Atomic.compare_and_set delivered false true then
      try complete result with e -> p.on_callback_error e
  in
  let job_id = Atomic.fetch_and_add p.next_job_id 1 in
  let job =
    {
      j_id = job_id;
      j_token = token;
      j_started_ms = Atomic.make 0;
      j_abandoned = Atomic.make false;
      j_run =
        (fun () ->
          let result =
            try
              Ok
                (Qls_cancel.with_token token (fun () ->
                     (* Reject up front if the deadline already expired
                        while the job sat in the queue. *)
                     Qls_cancel.poll ();
                     work ()))
            with e -> Error e
          in
          deliver result);
      j_fail = (fun e -> deliver (Error e));
    }
  in
  Mutex.lock p.mutex;
  if p.closing then begin
    Mutex.unlock p.mutex;
    Rejected_closed
  end
  else if Queue.length p.jobs_queue >= p.capacity then begin
    Mutex.unlock p.mutex;
    Rejected_full
  end
  else begin
    Queue.add job p.jobs_queue;
    Condition.signal p.work_ready;
    Mutex.unlock p.mutex;
    Submitted
  end

let queue_depth p = Mutex.protect p.mutex (fun () -> Queue.length p.jobs_queue)

let in_flight p =
  Mutex.protect p.mutex (fun () -> Queue.length p.jobs_queue + p.running)

let closing p = Mutex.protect p.mutex (fun () -> p.closing)
let live_workers p = Mutex.protect p.mutex (fun () -> List.length p.workers)
let lost_workers p = Atomic.get p.lost_total

let watchdog_age_ms p =
  match p.watchdog with
  | None -> None
  | Some _ -> Some (Qls_cancel.now_ms () - Atomic.get p.wd_last_tick_ms)

let drain p =
  Mutex.lock p.mutex;
  if p.closing then begin
    (* Second drainer: just wait for quiescence. *)
    while p.running > 0 || not (Queue.is_empty p.jobs_queue) do
      Condition.wait p.all_idle p.mutex
    done;
    Mutex.unlock p.mutex
  end
  else begin
    p.closing <- true;
    (* Queued jobs still run to completion — drain means "finish what
       was admitted", not "discard it"; only new admissions are
       refused. Workers exit once the queue is empty. *)
    Condition.broadcast p.work_ready;
    (* Wait for quiescence first: the watchdog may replace workers while
       jobs are still in flight, so the set of domains to join is only
       stable once nothing is running. Jobs abandoned by the watchdog
       already left the [running] count — their zombie domains are not
       waited for (they cannot be killed or joined without blocking
       forever). *)
    while p.running > 0 || not (Queue.is_empty p.jobs_queue) do
      Condition.wait p.all_idle p.mutex
    done;
    let to_join = List.filter_map (fun w -> w.w_domain) p.workers in
    Mutex.unlock p.mutex;
    List.iter Domain.join to_join;
    (* Stop the watchdog last so supervision covers the whole drain. *)
    (match (p.wd_thread, p.wd_pipe) with
    | Some t, Some (stop_r, stop_w) ->
        (try ignore (Unix.write stop_w (Bytes.make 1 '\000') 0 1)
         with Unix.Unix_error _ -> ());
        (* lint: unbounded-wait — monitor exits within one tick of the stop byte *)
        Thread.join t;
        (try Unix.close stop_r with Unix.Unix_error _ -> ());
        (try Unix.close stop_w with Unix.Unix_error _ -> ())
    | _ -> ());
    Mutex.lock p.mutex;
    if p.running = 0 && Queue.is_empty p.jobs_queue then
      Condition.broadcast p.all_idle;
    Mutex.unlock p.mutex
  end
