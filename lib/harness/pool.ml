let recommended_jobs () = Domain.recommended_domain_count ()

let run ~jobs ~f tasks =
  let n = Array.length tasks in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (f i tasks.(i));
        loop ()
      end
    in
    loop ()
  in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then worker ()
  else begin
    let others = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join others
  end;
  Array.map
    (function Some v -> v | None -> invalid_arg "Pool.run: missing result")
    results

let map ~jobs ~f tasks = run ~jobs ~f:(fun _ x -> f x) tasks
