let recommended_jobs () = Domain.recommended_domain_count ()

let run ~jobs ~f tasks =
  let n = Array.length tasks in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  (* First worker exception wins; the rest of the pool drains and joins
     cleanly, then the winner is re-raised with its original backtrace. *)
  let failed = Atomic.make None in
  let worker () =
    let rec loop () =
      if Option.is_none (Atomic.get failed) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f i tasks.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failed None (Some (e, bt))));
          loop ()
        end
      end
    in
    loop ()
  in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then worker ()
  else begin
    let others = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* Join unconditionally: even if the calling-domain worker dies with
       an asynchronous exception, no spawned domain is leaked. *)
    Fun.protect ~finally:(fun () -> Array.iter Domain.join others) worker
  end;
  match Atomic.get failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None ->
      Array.map
        (function Some v -> v | None -> invalid_arg "Pool.run: missing result")
        results

let map ~jobs ~f tasks = run ~jobs ~f:(fun _ x -> f x) tasks
