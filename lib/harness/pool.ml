let recommended_jobs () = Domain.recommended_domain_count ()

let run ~jobs ~f tasks =
  let n = Array.length tasks in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  (* First worker exception wins; the rest of the pool drains and joins
     cleanly, then the winner is re-raised with its original backtrace. *)
  let failed = Atomic.make None in
  let worker () =
    let rec loop () =
      if Option.is_none (Atomic.get failed) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f i tasks.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failed None (Some (e, bt))));
          loop ()
        end
      end
    in
    loop ()
  in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then worker ()
  else begin
    let others = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* Join unconditionally: even if the calling-domain worker dies with
       an asynchronous exception, no spawned domain is leaked. *)
    Fun.protect ~finally:(fun () -> Array.iter Domain.join others) worker
  end;
  match Atomic.get failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None ->
      Array.map
        (function Some v -> v | None -> invalid_arg "Pool.run: missing result")
        results

let map ~jobs ~f tasks = run ~jobs ~f:(fun _ x -> f x) tasks

(* ------------------------------------------------------------------ *)
(* The long-lived pool: a fixed set of domains fed one job at a time   *)
(* through a bounded queue, with per-job completion callbacks. This is *)
(* the serving-path variant of [run]: jobs arrive continuously (one    *)
(* per request) instead of as one batch, and admission is explicit —   *)
(* a full queue refuses the job instead of growing without bound, so   *)
(* the caller can shed load with a typed response while the workers    *)
(* stay saturated.                                                     *)
(* ------------------------------------------------------------------ *)

type submit_result = Submitted | Rejected_full | Rejected_closed

type pool = {
  jobs_queue : (unit -> unit) Queue.t;
  capacity : int;
  mutex : Mutex.t;
  work_ready : Condition.t;  (* signalled per enqueue and at close *)
  all_idle : Condition.t;  (* signalled when running + queued hits 0 *)
  mutable running : int;  (* jobs currently executing on a worker *)
  mutable closing : bool;  (* no further admissions; drain in progress *)
  mutable domains : unit Domain.t list;
  on_callback_error : exn -> unit;
}

let pool_worker p () =
  let rec loop () =
    Mutex.lock p.mutex;
    while Queue.is_empty p.jobs_queue && not p.closing do
      Condition.wait p.work_ready p.mutex
    done;
    match Queue.take_opt p.jobs_queue with
    | None ->
        (* closing and drained *)
        Mutex.unlock p.mutex;
        ()
    | Some job ->
        p.running <- p.running + 1;
        Mutex.unlock p.mutex;
        job ();
        Mutex.lock p.mutex;
        p.running <- p.running - 1;
        if p.running = 0 && Queue.is_empty p.jobs_queue then
          Condition.broadcast p.all_idle;
        Mutex.unlock p.mutex;
        loop ()
  in
  loop ()

let default_callback_error e =
  Printf.eprintf "pool: completion callback raised: %s\n%!"
    (Printexc.to_string e)

let start ?(capacity = max_int) ?(on_callback_error = default_callback_error)
    ~jobs () =
  if jobs < 1 then invalid_arg "Pool.start: jobs must be >= 1";
  if capacity < 0 then invalid_arg "Pool.start: capacity must be >= 0";
  let p =
    {
      jobs_queue = Queue.create ();
      capacity;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      all_idle = Condition.create ();
      running = 0;
      closing = false;
      domains = [];
      on_callback_error;
    }
  in
  p.domains <- List.init jobs (fun _ -> Domain.spawn (pool_worker p));
  p

let submit p ~work ~complete =
  (* The job owns its whole lifecycle: run the work, classify the
     outcome, hand it to the callback. The callback runs on the worker
     domain; an exception it raises is contained (reported through
     [on_callback_error]) so it can never kill the worker. *)
  let job () =
    let result = try Ok (work ()) with e -> Error e in
    try complete result with e -> p.on_callback_error e
  in
  Mutex.lock p.mutex;
  if p.closing then begin
    Mutex.unlock p.mutex;
    Rejected_closed
  end
  else if Queue.length p.jobs_queue >= p.capacity then begin
    Mutex.unlock p.mutex;
    Rejected_full
  end
  else begin
    Queue.add job p.jobs_queue;
    Condition.signal p.work_ready;
    Mutex.unlock p.mutex;
    Submitted
  end

let queue_depth p = Mutex.protect p.mutex (fun () -> Queue.length p.jobs_queue)

let in_flight p =
  Mutex.protect p.mutex (fun () -> Queue.length p.jobs_queue + p.running)

let closing p = Mutex.protect p.mutex (fun () -> p.closing)

let drain p =
  Mutex.lock p.mutex;
  if p.closing then begin
    (* Second drainer: just wait for quiescence. *)
    while p.running > 0 || not (Queue.is_empty p.jobs_queue) do
      Condition.wait p.all_idle p.mutex
    done;
    Mutex.unlock p.mutex
  end
  else begin
    p.closing <- true;
    (* Queued jobs still run to completion — drain means "finish what
       was admitted", not "discard it"; only new admissions are
       refused. Workers exit once the queue is empty. *)
    Condition.broadcast p.work_ready;
    Mutex.unlock p.mutex;
    List.iter Domain.join p.domains;
    Mutex.lock p.mutex;
    if p.running = 0 && Queue.is_empty p.jobs_queue then
      Condition.broadcast p.all_idle;
    Mutex.unlock p.mutex
  end
