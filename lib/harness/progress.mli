(** Live campaign progress: counts, per-tool running gap, ETA.

    A thread-safe accumulator the worker pool reports into; {!render}
    produces the one-line status the campaign driver reprints as tasks
    finish, e.g.
    {v campaign 37/640 ok:35 failed:2 | qmap 11.0x sabre 2.3x | eta 412s v} *)

type t

val create : total:int -> t
(** Fresh tracker for a campaign of [total] tasks; starts the clock. *)

val record :
  ?ratio:float ->
  ?tool:string ->
  outcome:[ `Ok | `Degraded | `Failed ] ->
  t ->
  unit
(** Count one freshly finished task. When the outcome is [`Ok] and
    [tool] and [ratio] (the task's [swaps / optimal]) are given, the
    tool's running mean gap is updated; degraded samples are counted but
    never folded into a tool's gap (they came from the fallback tool). *)

val record_resumed : t -> unit
(** Count a task satisfied from the checkpoint store (excluded from the
    ETA pace estimate — it cost this run nothing). *)

val finished : t -> int
(** Tasks accounted for so far, resumed ones included. Safe from any
    domain at any time — the counters are atomics, not mutex-guarded
    mutables read bare. *)

val eta_seconds : t -> float option
(** Remaining-time estimate from this run's own pace; [None] until a
    fresh task has finished or once everything is done. Safe from any
    domain, like {!finished}. *)

val tool_gaps : t -> (string * float) list
(** Per-tool mean swap-count gap so far, sorted by tool name. The
    snapshot is taken under the internal mutex — this is the only way
    the per-tool table is read, so concurrent {!record} calls can never
    be observed half-applied, and hash order never escapes. *)

val render : t -> string
(** The status line (no trailing newline). *)
