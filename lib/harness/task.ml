type t = {
  device : string;
  n_swaps : int;
  circuit : int;
  tool : string;
  gate_budget : int;
  single_qubit_ratio : float;
  sabre_trials : int;
  base_seed : int;
}

type outcome = { swaps : int; seconds : float; attempts : int }
type degradation = { outcome : outcome; via : string; error : Herror.t }
type status = Done of outcome | Degraded of degradation | Failed of Herror.t

let id t =
  Printf.sprintf "%s/s%d/c%d/%s/g%d/q%g/t%d/r%d" t.device t.n_swaps t.circuit
    t.tool t.gate_budget t.single_qubit_ratio t.sabre_trials t.base_seed

let circuit_seed t = t.base_seed + (1000 * t.n_swaps) + t.circuit

(* FNV-1a over the task id, folded with the base seed. Pure arithmetic on
   a stable string, so the stream a task draws from is a function of the
   task alone — never of which worker ran it or in what order. *)
let rng_seed t =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    (id t);
  !h lxor (t.base_seed land 0x3FFFFFFF)

let ratio ~task outcome =
  if task.n_swaps <= 0 then None
  else Some (float_of_int outcome.swaps /. float_of_int task.n_swaps)

(* Attempt counts only appear when they carry information (a retried
   task), so single-attempt fingerprints are unchanged from before the
   field existed. *)
let pp_attempts ppf n =
  if n > 1 then Format.fprintf ppf ", %d attempts" n

let pp_status ppf = function
  | Done o ->
      Format.fprintf ppf "done (%d swaps, %.2fs%a)" o.swaps o.seconds
        pp_attempts o.attempts
  | Degraded d ->
      Format.fprintf ppf "degraded via %s (%d swaps, %.2fs%a; %a)" d.via
        d.outcome.swaps d.outcome.seconds pp_attempts d.outcome.attempts
        Herror.pp d.error
  | Failed e -> Format.fprintf ppf "failed (%a)" Herror.pp e
