(** A work-stealing worker pool over OCaml 5 domains.

    Workers pull task indices from a shared atomic counter, so load
    balances itself: a worker stuck on a slow task simply stops taking
    new ones while the others drain the queue. Results land in a slot
    per task, so the output order is the input order regardless of which
    domain ran what.

    The callback [f] must be safe to run concurrently from several
    domains (the harness guarantees this by giving every task its own
    seeds and serialising shared sinks behind mutexes). An exception
    escaping [f] tears the pool down {e cleanly}: the remaining workers
    stop taking new tasks, every spawned domain is joined (none leaks,
    whichever domain failed), and the first exception raised is then
    re-raised on the calling domain with its original backtrace.
    Task-level failures that should not abort the campaign must still be
    caught inside [f], which is what {!Runner.guard} is for. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default [-j]. *)

val run : jobs:int -> f:(int -> 'a -> 'b) -> 'a array -> 'b array
(** [run ~jobs ~f tasks] applies [f index task] to every task on
    [min jobs (length tasks)] domains (clamped to at least 1; [jobs = 1]
    runs inline on the calling domain, spawning nothing) and returns the
    results in input order. *)

val map : jobs:int -> f:('a -> 'b) -> 'a array -> 'b array
(** {!run} without the index. *)
