(** A work-stealing worker pool over OCaml 5 domains.

    Workers pull task indices from a shared atomic counter, so load
    balances itself: a worker stuck on a slow task simply stops taking
    new ones while the others drain the queue. Results land in a slot
    per task, so the output order is the input order regardless of which
    domain ran what.

    The callback [f] must be safe to run concurrently from several
    domains (the harness guarantees this by giving every task its own
    seeds and serialising shared sinks behind mutexes). An exception
    escaping [f] tears the pool down {e cleanly}: the remaining workers
    stop taking new tasks, every spawned domain is joined (none leaks,
    whichever domain failed), and the first exception raised is then
    re-raised on the calling domain with its original backtrace.
    Task-level failures that should not abort the campaign must still be
    caught inside [f], which is what {!Runner.guard} is for. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default [-j]. *)

val run : jobs:int -> f:(int -> 'a -> 'b) -> 'a array -> 'b array
(** [run ~jobs ~f tasks] applies [f index task] to every task on
    [min jobs (length tasks)] domains (clamped to at least 1; [jobs = 1]
    runs inline on the calling domain, spawning nothing) and returns the
    results in input order. *)

val map : jobs:int -> f:('a -> 'b) -> 'a array -> 'b array
(** {!run} without the index. *)

(** {1 Long-lived pool}

    The serving-path variant of {!run}: a fixed set of domains started
    once, fed individual jobs through a bounded queue, each job paired
    with a completion callback. Admission is explicit — when the queue
    is at capacity {!submit} refuses the job instead of queueing it, so
    a server can shed load with a typed response while the workers stay
    saturated.

    Every job carries a {!Qls_cancel.token} — either the caller's (which
    may carry a deadline) or a fresh heartbeat-only one — and an optional
    watchdog supervises the workers through it: a job whose heartbeat
    goes quiet past the hang threshold is declared lost, its callback
    fires with [Error Worker_lost], and a replacement domain restores
    capacity (the stuck domain is abandoned; OCaml domains cannot be
    killed). *)

type pool
(** A running pool of worker domains. *)

type submit_result =
  | Submitted  (** queued; [complete] will eventually run *)
  | Rejected_full  (** queue at capacity; [work] was not enqueued *)
  | Rejected_closed  (** {!drain} already started; no new admissions *)

exception Worker_lost of { job_id : int; stalled_ms : int }
(** Delivered (as [Error Worker_lost]) to the completion callback of a
    job whose worker the watchdog declared lost. [stalled_ms] is how
    long the job's heartbeat had been quiet when it was abandoned. *)

type watchdog = {
  hang_threshold_ms : int;
      (** a busy worker whose job heartbeat (start time or last
          {!Qls_cancel.poll}) is older than this is declared lost *)
  tick_ms : int;  (** monitor wake-up period *)
}

val start :
  ?capacity:int ->
  ?on_callback_error:(exn -> unit) ->
  ?watchdog:watchdog ->
  jobs:int ->
  unit ->
  pool
(** [start ~jobs ()] spawns [jobs] worker domains blocked on an empty
    queue. [capacity] bounds the number of {e queued} (not yet running)
    jobs; default unbounded. [on_callback_error] is invoked (on the
    worker domain) if a completion callback itself raises — the default
    prints to stderr; the worker survives either way. [watchdog] starts
    a monitor thread supervising worker heartbeats; without it, lost
    workers are never detected (the pre-supervision behaviour). *)

val submit :
  ?token:Qls_cancel.token ->
  pool ->
  work:(unit -> 'a) ->
  complete:(('a, exn) result -> unit) ->
  submit_result
(** [submit p ~work ~complete] enqueues [work] to run on some worker
    domain; when it finishes, [complete (Ok v)] or [complete (Error e)]
    runs on that same domain. Returns without blocking. [work] and
    [complete] must be safe to run on another domain.

    [token] (default: a fresh deadline-free token) is installed as the
    ambient {!Qls_cancel} token around [work], so checkpointed library
    code both heartbeats to the watchdog and honours the token's
    deadline: an expired deadline surfaces as
    [complete (Error (Qls_cancel.Expired _))] — including when it
    expired while the job was still queued, in which case [work] never
    runs. A job abandoned by the watchdog completes with
    [Error Worker_lost] instead; whichever of worker and watchdog
    delivers first wins, the other outcome is dropped. *)

val queue_depth : pool -> int
(** Jobs admitted but not yet picked up by a worker. *)

val in_flight : pool -> int
(** Queued plus currently-executing jobs. *)

val closing : pool -> bool
(** True once {!drain} has started. *)

val live_workers : pool -> int
(** Workers currently able to take jobs. Equals [jobs] unless a lost
    worker is mid-replacement. *)

val lost_workers : pool -> int
(** Total workers ever declared lost by the watchdog. *)

val watchdog_age_ms : pool -> int option
(** Milliseconds since the watchdog last ticked, or [None] if the pool
    runs unsupervised. A large value means the monitor itself wedged. *)

val drain : pool -> unit
(** Stop admitting ([submit] returns [Rejected_closed]), let every
    already-admitted job run to completion, then join all live worker
    domains and stop the watchdog. Domains abandoned by the watchdog are
    {e not} waited for — they die with the process. Idempotent:
    concurrent callers all block until the pool is quiescent. *)
