(** Per-task isolation: exceptions, wall-clock timeouts, bounded retry.

    A diverging or crashing router must cost the campaign one [failed]
    line, not the run. {!guard} wraps a task body so that any exception
    becomes {!Task.Failed} with the exception string, and (when a
    timeout is configured) a task overrunning its wall-clock budget is
    reported [Failed "timeout after Ns"].

    Timeouts are implemented by running the body on a sibling thread of
    the worker domain and polling a completion flag against the
    deadline. OCaml threads cannot be killed, so a body that overruns is
    {e abandoned}: its failure is recorded immediately and the worker
    moves on, but the thread keeps running until it returns on its own
    (its result is discarded; no shared state leaks). Two consequences
    worth knowing: the abandoned thread shares its domain's runtime
    lock, slowing that worker until it finishes; and [Domain.join] at
    the end of the campaign waits for any thread still running, so a
    {e truly} divergent task delays final exit even though every result
    is already checkpointed — killing that campaign and rerunning with
    resume completes it instantly. This trades a bounded leak for
    campaign progress — the right trade for an overnight evaluation
    sweep. *)

type config = {
  timeout : float option;  (** wall-clock seconds per attempt *)
  retries : int;  (** extra attempts after a failure (default 0) *)
}

val default : config
(** No timeout, no retries. *)

val run : config -> (unit -> 'a) -> ('a, string) result
(** Run one task body under the config; [Error] carries the exception
    string or timeout message of the last attempt. *)

val guard : config -> (unit -> Task.outcome) -> Task.status
(** {!run} mapped onto {!Task.status} — the worker-loop entry point. *)
