(** Per-task isolation: exceptions, wall-clock timeouts, classified
    bounded retry with exponential backoff.

    A diverging or crashing router must cost the campaign one [failed]
    line, not the run. {!guard} wraps a task body so that any exception
    becomes {!Task.Failed} with a typed {!Herror.t} (classified by
    {!Herror.of_exn}), and (when a timeout is configured) a task
    overrunning its wall-clock budget is reported [Failed] with class
    [Timeout].

    {b Retry policy.} Only {e retryable} errors ([Transient], [Timeout])
    are retried — a [Permanent] error is deterministic, so re-running it
    buys the same failure at full price, and a [Corrupt] one must be
    quarantined, not retried. Attempt [n] (0-based) sleeps
    [backoff * 2^n] seconds first (capped at [backoff_max]), scaled by a
    deterministic per-task jitter in [[0.5, 1.5)] derived from the task
    seed — reproducible, but decorrelated across a failed point's tasks.

    {b Timeouts} are implemented by running the body on a sibling thread
    of the worker domain and blocking on a completion pipe with
    [Unix.select] — a true blocking wait, so the worker burns no CPU
    while a slow task runs (the stdlib [Condition] has no timed wait,
    which is why a pipe plays the condition-variable role here). OCaml threads cannot be
    killed, so a body that overruns is {e abandoned}: its failure is
    recorded immediately and the worker moves on, but the thread keeps
    running until it returns on its own (its result is discarded; no
    shared state leaks). Two consequences worth knowing: the abandoned
    thread shares its domain's runtime lock, slowing that worker until
    it finishes; and [Domain.join] at the end of the campaign waits for
    any thread still running, so a {e truly} divergent task delays final
    exit even though every result is already checkpointed — killing that
    campaign and rerunning with resume completes it instantly. This
    trades a bounded leak for campaign progress — the right trade for an
    overnight evaluation sweep.

    {b Fault injection.} Each attempt visits the {!Qls_faults} site
    ["runner.exec"] (keyed by [key]) {e inside} the guarded body, so
    injected exceptions are classified and injected delays can trip the
    real timeout. *)

type config = {
  timeout : float option;  (** wall-clock seconds per attempt *)
  retries : int;  (** extra attempts after a retryable failure *)
  backoff : float;  (** base backoff seconds; [0.] = retry immediately *)
  backoff_max : float;  (** cap on the exponential backoff *)
}

val default : config
(** No timeout, no retries, backoff 50 ms doubling up to 2 s. *)

val backoff_delay : config -> seed:int -> attempt:int -> float
(** The exact pause before retry [attempt] (0-based) for a task with
    [seed] — exposed so tests can assert the schedule is deterministic. *)

val run :
  ?site:string ->
  ?key:string ->
  ?seed:int ->
  config ->
  (unit -> 'a) ->
  ('a, Herror.t) result
(** Run one task body under the config. [site] names the fault-injection
    and error-classification site (default ["runner.exec"]), [key]
    identifies the task to the fault plan (use {!Task.id}), [seed]
    drives the backoff jitter (use {!Task.rng_seed}). [Error] carries
    the classified error of the last attempt, with [attempts] set. *)

val run_counted :
  ?site:string ->
  ?key:string ->
  ?seed:int ->
  config ->
  (unit -> 'a) ->
  ('a * int, Herror.t) result
(** {!run}, but success also reports how many attempts it took
    ([Ok (v, 1)] = first try). Historically the count was only recorded
    on [Error], so a task that needed retries was indistinguishable from
    a first-try success — the campaign uses this variant so the store
    keeps the real count. Each attempt is traced as a
    ["runner.attempt"] span (with a ["runner.backoff"] span for each
    retry pause) and timed into the ["runner.attempt_seconds"]
    histogram. *)

val guard :
  ?site:string ->
  ?key:string ->
  ?seed:int ->
  config ->
  (unit -> Task.outcome) ->
  Task.status
(** {!run_counted} mapped onto {!Task.status} — the worker-loop entry
    point; the outcome's [attempts] placeholder is overwritten with the
    runner's real count. Never yields [Degraded]; degradation is
    campaign policy (see {!Campaign}). *)
