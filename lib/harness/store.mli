(** Append-only JSONL result store — the campaign checkpoint.

    Every finished task appends one self-contained JSON line keyed by
    its {!Task.id}. Lines are written whole (single buffered write +
    flush under a mutex), so concurrent workers never interleave and a
    killed campaign leaves at worst one truncated final line, which
    {!load} silently skips. Restarting with the same store therefore
    resumes exactly where the previous run stopped.

    Line schema:
    {v
    {"id":"aspen4/s5/c0/sabre/g300/q0/t5/r1","status":"ok","swaps":12,"seconds":0.41}
    {"id":"aspen4/s5/c1/tket/g300/q0/t5/r1","status":"failed","error":"..."}
    v} *)

type entry = { task_id : string; status : Task.status }

type t
(** An open store handle (append mode). *)

val load : string -> entry list
(** Parse an existing store in file order; a missing file is an empty
    store, malformed lines are dropped. *)

val completed : entry list -> (string, Task.status) Hashtbl.t
(** Index entries by task id; when a task appears more than once (e.g. a
    retried campaign) the last line wins. *)

val open_append : string -> t
(** Open for appending, creating the file if needed. *)

val append : t -> entry -> unit
(** Atomically append one result line and flush. Thread- and
    domain-safe. *)

val close : t -> unit
val path : t -> string
