(** Append-only JSONL result store — the campaign checkpoint (format v2).

    Every finished task appends one self-contained JSON line keyed by
    its {!Task.id} and sealed with a CRC32 of its own bytes. Lines are
    written whole (single buffered write + flush under a mutex, with
    optional fsync), so concurrent workers never interleave; a kill, a
    torn write, or on-disk bit rot leaves lines that fail their checksum
    or don't parse, and {!load_verified} {e quarantines} those —
    anywhere in the file, not just a torn tail — instead of trusting or
    silently skipping them. Restarting with the same store therefore
    resumes exactly the undamaged result set, and re-runs exactly the
    damaged tasks.

    Line schema (the [crc] member is always last, over the bytes of the
    line without it; v1 lines without [crc] are still accepted):
    {v
    {"id":"…/sabre/…","status":"ok","swaps":12,"seconds":0.41,"attempts":1,
     "crc":"9a3b0c12"}
    {"id":"…","status":"degraded","via":"sabre","swaps":14,"seconds":0.2,
     "fb_attempts":1,"eclass":"timeout","esite":"runner.exec",
     "error":"timeout after 5s","attempts":2,"crc":"…"}
    {"id":"…","status":"failed","eclass":"permanent","esite":"runner.exec",
     "error":"…","attempts":1,"crc":"…"}
    v}

    On an ok line ["attempts"] is the runner attempt count that produced
    the outcome; on a degraded line ["attempts"] belongs to the original
    error and the fallback outcome's count is ["fb_attempts"] (the flat
    object cannot hold the key twice). v2 lines lacking either key load
    with the count defaulted to 1, so resuming an old store is
    bit-compatible.

    Fault-injection sites: ["store.append"] mangles the sealed outgoing
    bytes (torn writes, bit flips); ["store.load"] mangles each line as
    it is read back. Both are no-ops unless a {!Qls_faults} plan is
    installed. *)

type entry = { task_id : string; status : Task.status }

type corrupt = { line_no : int; reason : string; text : string }
(** One quarantined line: where it was, why it was rejected (parse error
    or ["crc mismatch"]), and its (mangled) bytes. *)

type compact_stats = {
  kept : int;  (** live entries written to the compacted file *)
  superseded : int;  (** older duplicate lines dropped *)
  quarantined : int;  (** corrupt lines moved to [<path>.quarantine] *)
}

type t
(** An open store handle (append mode). *)

val load_verified : string -> entry list * corrupt list
(** Parse an existing store in file order; a missing file is an empty
    store. Entries that parse and pass their checksum are returned;
    every other non-blank line is reported corrupt, never silently
    dropped. *)

val load : string -> entry list
(** [fst (load_verified path)] — when the caller doesn't need the
    corruption report. *)

val completed : entry list -> (string, Task.status) Hashtbl.t
(** Index entries by task id; when a task appears more than once (e.g. a
    retried campaign) the last line wins. *)

val open_append : ?fsync:bool -> string -> t
(** Open for appending, creating the file if needed. With [fsync] every
    append is forced to disk before returning — survives power loss, at
    a per-task latency cost (default [false]: flush only). *)

val append : t -> entry -> unit
(** Atomically append one sealed result line and flush (and fsync when
    the store was opened with it). Thread- and domain-safe. *)

val compact : ?fsync:bool -> string -> compact_stats
(** Rewrite the store keeping one line per task (last status wins, first
    appearance order), dropping superseded duplicates and corrupt lines.
    Corrupt lines are appended to [<path>.quarantine] first, then the
    rewrite is published with an atomic rename — a crash mid-compact
    leaves the original store untouched. *)

val close : t -> unit
val path : t -> string

(**/**)

val crc32 : string -> string
(** 8-hex-digit IEEE CRC32 — exposed for the corruption tests. *)
