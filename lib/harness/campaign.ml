type config = {
  jobs : int;
  timeout : float option;
  retries : int;
  store_path : string option;
  resume : bool;
  rerun_failed : bool;
  report : (string -> unit) option;
}

let default_config () =
  {
    jobs = Pool.recommended_jobs ();
    timeout = None;
    retries = 0;
    store_path = None;
    resume = false;
    rerun_failed = false;
    report = None;
  }

type row = { task : Task.t; status : Task.status; resumed : bool }

let stderr_report ~total =
  let tty = Unix.isatty Unix.stderr in
  let seen = ref 0 in
  let every = max 1 (total / 20) in
  fun line ->
    incr seen;
    if tty then Printf.eprintf "\r\027[K%s%!" line
    else if !seen mod every = 0 || !seen = total then
      Printf.eprintf "%s\n%!" line

let run config ~exec tasks =
  let tasks = Array.of_list tasks in
  let total = Array.length tasks in
  let checkpoint =
    match config.store_path with
    | Some path when config.resume -> Store.completed (Store.load path)
    | _ -> Hashtbl.create 0
  in
  let from_checkpoint task =
    match Hashtbl.find_opt checkpoint (Task.id task) with
    | Some (Task.Failed _) when config.rerun_failed -> None
    | found -> found
  in
  let store = Option.map Store.open_append config.store_path in
  let progress = Progress.create ~total in
  let rows = Array.make total None in
  let pending = ref [] in
  Array.iteri
    (fun i task ->
      match from_checkpoint task with
      | Some status ->
          Progress.record_resumed progress;
          rows.(i) <- Some { task; status; resumed = true }
      | None -> pending := (i, task) :: !pending)
    tasks;
  let pending = Array.of_list (List.rev !pending) in
  let guard = { Runner.timeout = config.timeout; retries = config.retries } in
  let finish_one (i, task) =
    let status = Runner.guard guard (fun () -> exec task) in
    Option.iter
      (fun s -> Store.append s { Store.task_id = Task.id task; status })
      store;
    (match status with
    | Task.Done outcome ->
        Progress.record ?ratio:(Task.ratio ~task outcome) ~tool:task.Task.tool
          ~ok:true progress
    | Task.Failed _ -> Progress.record ~tool:task.Task.tool ~ok:false progress);
    Option.iter (fun report -> report (Progress.render progress)) config.report;
    rows.(i) <- Some { task; status; resumed = false }
  in
  (* The pool writes straight into [rows] via [finish_one]; the unit
     results are discarded. *)
  ignore (Pool.run ~jobs:config.jobs ~f:(fun _ p -> finish_one p) pending);
  Option.iter Store.close store;
  (match config.report with
  | Some _ when Unix.isatty Unix.stderr -> Printf.eprintf "\n%!"
  | _ -> ());
  Array.to_list rows
  |> List.map (function
       | Some row -> row
       | None -> invalid_arg "Campaign.run: missing row")

let outcomes rows =
  List.filter_map
    (fun r ->
      match r.status with Task.Done o -> Some (r.task, o) | Task.Failed _ -> None)
    rows

let failures rows =
  List.filter_map
    (fun r ->
      match r.status with
      | Task.Failed msg -> Some (r.task, msg)
      | Task.Done _ -> None)
    rows
