type config = {
  jobs : int;
  timeout : float option;
  retries : int;
  backoff : float;
  store_path : string option;
  resume : bool;
  rerun_failed : bool;
  fsync : bool;
  failure_budget : float option;
  budget_min : int;
  fallback : (string -> string option) option;
  report : (string -> unit) option;
}

let default_config () =
  {
    jobs = Pool.recommended_jobs ();
    timeout = None;
    retries = 0;
    backoff = Runner.default.Runner.backoff;
    store_path = None;
    resume = false;
    rerun_failed = false;
    fsync = false;
    failure_budget = None;
    budget_min = 10;
    fallback = None;
    report = None;
  }

type row = { task : Task.t; status : Task.status; resumed : bool }

let abort_site = "campaign"

let stderr_report ?tty ?emit ~total =
  let tty = match tty with Some b -> b | None -> Unix.isatty Unix.stderr in
  let emit =
    match emit with Some f -> f | None -> fun s -> Printf.eprintf "%s%!" s
  in
  (* Every worker domain calls the sink, so the sequence number must be
     an atomic fetch-and-add: the old [int ref] with [incr] raced across
     domains, losing or duplicating ticks — and with them the ~20
     non-tty progress lines the modulus is meant to meter out. *)
  let seen = Atomic.make 0 in
  let every = max 1 (total / 20) in
  fun line ->
    let n = Atomic.fetch_and_add seen 1 + 1 in
    if tty then emit (Printf.sprintf "\r\027[K%s" line)
    else if n mod every = 0 || n = total then emit (line ^ "\n")

(* Walk the fallback chain from the failed task's tool, cycle-safe. The
   first tool that completes turns the failure into [Degraded]; if the
   whole chain fails too, the original typed error stands. *)
let degrade config ~exec ~guard task err =
  match config.fallback with
  | None -> Task.Failed err
  | Some chain ->
      let rec try_via tried tool =
        match chain tool with
        | None -> Task.Failed err
        | Some via when List.mem via tried || via = task.Task.tool ->
            Task.Failed err
        | Some via -> (
            let fb_task = { task with Task.tool = via } in
            let traced = Qls_obs.enabled () in
            let sp =
              if traced then Qls_obs.start ~site:"harness" "campaign.degrade"
              else Qls_obs.none
            in
            let result =
              Runner.run_counted ~key:(Task.id fb_task)
                ~seed:(Task.rng_seed fb_task) guard
                (fun () -> exec fb_task)
            in
            if traced then
              Qls_obs.stop sp
                ~attrs:
                  [
                    ("id", Qls_obs.Str (Task.id task));
                    ("via", Qls_obs.Str via);
                    ( "rescued",
                      Qls_obs.Int (if Result.is_ok result then 1 else 0) );
                  ];
            match result with
            | Ok (outcome, attempts) ->
                Task.Degraded
                  { Task.outcome = { outcome with Task.attempts }; via; error = err }
            | Error _ -> try_via (via :: tried) via)
      in
      try_via [] task.Task.tool

let run config ~exec tasks =
  let tasks = Array.of_list tasks in
  let total = Array.length tasks in
  let checkpoint, quarantined =
    match config.store_path with
    | Some path when config.resume ->
        let entries, bad = Store.load_verified path in
        (Store.completed entries, bad)
    | _ -> (Hashtbl.create 0, [])
  in
  if not (List.is_empty quarantined) then
    Format.eprintf
      "warning: %d corrupt checkpoint line(s) quarantined on resume (first: \
       line %d, %s); their tasks will be re-run@."
      (List.length quarantined)
      (List.hd quarantined).Store.line_no (List.hd quarantined).Store.reason;
  let from_checkpoint task =
    match Hashtbl.find_opt checkpoint (Task.id task) with
    | Some (Task.Failed _) when config.rerun_failed -> None
    | found -> found
  in
  let store =
    Option.map (Store.open_append ~fsync:config.fsync) config.store_path
  in
  let progress = Progress.create ~total in
  let rows = Array.make total None in
  let pending = ref [] in
  Array.iteri
    (fun i task ->
      match from_checkpoint task with
      | Some status ->
          Progress.record_resumed progress;
          rows.(i) <- Some { task; status; resumed = true }
      | None -> pending := (i, task) :: !pending)
    tasks;
  let pending = Array.of_list (List.rev !pending) in
  let guard =
    {
      Runner.timeout = config.timeout;
      retries = config.retries;
      backoff = config.backoff;
      backoff_max = Runner.default.Runner.backoff_max;
    }
  in
  (* Failure budget: when the fresh-failure rate crosses the threshold
     (after [budget_min] samples), stop starting tasks — a doomed sweep
     should cost minutes, not the night. Already-running tasks finish
     and are recorded; unstarted ones get a retryable "not run" error
     and are *not* checkpointed, so a resume re-runs them. *)
  let aborted = Atomic.make None in
  let fresh_done = Atomic.make 0 and fresh_failed = Atomic.make 0 in
  let note_fresh status =
    ignore (Atomic.fetch_and_add fresh_done 1);
    (match status with
    | Task.Failed _ -> ignore (Atomic.fetch_and_add fresh_failed 1)
    | Task.Done _ | Task.Degraded _ -> ());
    match config.failure_budget with
    | Some budget ->
        let n = Atomic.get fresh_done and f = Atomic.get fresh_failed in
        if
          n >= config.budget_min
          && float_of_int f /. float_of_int n > budget
          && Option.is_none (Atomic.get aborted)
        then
          Atomic.set aborted
            (Some
               (Printf.sprintf
                  "failure budget exceeded: %d of %d fresh tasks failed \
                   (rate %.2f > budget %.2f)"
                  f n
                  (float_of_int f /. float_of_int n)
                  budget))
    | None -> ()
  in
  let finish_one (i, task) =
    match Atomic.get aborted with
    | Some why ->
        let status =
          Task.Failed
            (Herror.transient ~site:abort_site ("not run: " ^ why))
        in
        Progress.record ~tool:task.Task.tool ~outcome:`Failed progress;
        rows.(i) <- Some { task; status; resumed = false }
    | None ->
        let traced = Qls_obs.enabled () in
        let sp =
          if traced then Qls_obs.start ~site:"harness" "campaign.task"
          else Qls_obs.none
        in
        let status =
          match
            Runner.run_counted ~key:(Task.id task) ~seed:(Task.rng_seed task)
              guard
              (fun () -> exec task)
          with
          | Ok (outcome, attempts) ->
              Task.Done { outcome with Task.attempts }
          | Error err -> degrade config ~exec ~guard task err
        in
        if traced then
          Qls_obs.stop sp
            ~attrs:
              [
                ("id", Qls_obs.Str (Task.id task));
                ("tool", Qls_obs.Str task.Task.tool);
                ( "status",
                  Qls_obs.Str
                    (match status with
                    | Task.Done _ -> "ok"
                    | Task.Degraded _ -> "degraded"
                    | Task.Failed _ -> "failed") );
              ];
        Option.iter
          (fun s -> Store.append s { Store.task_id = Task.id task; status })
          store;
        (match status with
        | Task.Done outcome ->
            Progress.record
              ?ratio:(Task.ratio ~task outcome)
              ~tool:task.Task.tool ~outcome:`Ok progress
        | Task.Degraded _ ->
            Progress.record ~tool:task.Task.tool ~outcome:`Degraded progress
        | Task.Failed _ ->
            Progress.record ~tool:task.Task.tool ~outcome:`Failed progress);
        note_fresh status;
        Option.iter (fun report -> report (Progress.render progress)) config.report;
        rows.(i) <- Some { task; status; resumed = false }
  in
  (* The pool writes straight into [rows] via [finish_one]; the unit
     results are discarded. *)
  ignore (Pool.run ~jobs:config.jobs ~f:(fun _ p -> finish_one p) pending);
  Option.iter Store.close store;
  (match config.report with
  | Some _ when Unix.isatty Unix.stderr -> Printf.eprintf "\n%!"
  | _ -> ());
  Array.to_list rows
  |> List.map (function
       | Some row -> row
       | None -> invalid_arg "Campaign.run: missing row")

let outcomes rows =
  List.filter_map
    (fun r ->
      match r.status with
      | Task.Done o -> Some (r.task, o)
      | Task.Degraded _ | Task.Failed _ -> None)
    rows

let degraded rows =
  List.filter_map
    (fun r ->
      match r.status with
      | Task.Degraded d -> Some (r.task, d)
      | Task.Done _ | Task.Failed _ -> None)
    rows

let failures rows =
  List.filter_map
    (fun r ->
      match r.status with
      | Task.Failed e -> Some (r.task, e)
      | Task.Done _ | Task.Degraded _ -> None)
    rows

let aborted rows =
  List.find_map
    (fun r ->
      match r.status with
      | Task.Failed e
        when e.Herror.site = abort_site
             && String.length e.Herror.message >= 8
             && String.sub e.Herror.message 0 8 = "not run:" ->
          Some e.Herror.message
      | _ -> None)
    rows
