(** One unit of campaign work: route one generated instance with one tool.

    A task is a pure description — device name, designed SWAP count,
    circuit index within the point, tool name, and the generation
    parameters — so it can be serialised into the result store, compared
    across runs, and re-executed bit-identically. Execution itself is
    injected by the consumer (see {!Campaign.run}); this library never
    depends on the generator or the routers. *)

type t = {
  device : string;  (** architecture name, e.g. ["aspen4"] *)
  n_swaps : int;  (** designed optimal SWAP count of the point *)
  circuit : int;  (** circuit index within the point, [0 ..] *)
  tool : string;  (** registry name of the tool, e.g. ["sabre"] *)
  gate_budget : int;
  single_qubit_ratio : float;
  sabre_trials : int;
  base_seed : int;  (** campaign-wide seed all per-task seeds derive from *)
}

type outcome = { swaps : int; seconds : float; attempts : int }
(** A successful routing: verified SWAP count, wall-clock seconds, and
    how many {!Runner} attempts it took (1 = first try; 3 means two
    retryable failures preceded this result). [exec] functions set 1 —
    they see one attempt by construction — and the campaign overwrites
    it with the runner's real count, so a task that needed retries stays
    distinguishable from a first-try success in the store. *)

type degradation = { outcome : outcome; via : string; error : Herror.t }
(** The task's own tool failed with [error], but a fallback tool [via]
    produced a (verified) outcome — coverage preserved, provenance
    recorded. *)

type status = Done of outcome | Degraded of degradation | Failed of Herror.t
(** Terminal state of a task. [Degraded] is deliberately distinct from
    [Done]: it must stay distinguishable in the store and every summary
    so aggregates report coverage honestly. *)

val id : t -> string
(** Stable identifier encoding every field that affects the result; the
    key used for checkpoint/resume in {!Store}. *)

val circuit_seed : t -> int
(** Seed for generating this task's instance:
    [base_seed + 1000 * n_swaps + circuit] — the same derivation the
    sequential suite generator uses, so instance [i] of a point is the
    same circuit no matter which path produced it. *)

val rng_seed : t -> int
(** Seed for the tool's own randomness, derived by hashing {!id} with
    [base_seed]. A pure function of the task, so results are
    bit-identical regardless of scheduling order or worker count. *)

val ratio : task:t -> outcome -> float option
(** [swaps / n_swaps], the running optimality-gap sample this task
    contributes; [None] when [n_swaps <= 0]. *)

val pp_status : Format.formatter -> status -> unit
