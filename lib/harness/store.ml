type entry = { task_id : string; status : Task.status }
type corrupt = { line_no : int; reason : string; text : string }
type compact_stats = { kept : int; superseded : int; quarantined : int }

type t = {
  path : string;
  oc : out_channel;
  fsync : bool;
  mutex : Mutex.t;
}

let site_append = "store.append"
let site_load = "store.load"

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, the zlib polynomial) over the unsealed payload.  *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      c :=
        Int32.logxor
          (Int32.shift_right_logical !c 8)
          table.(Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xffl)))
    s;
  Printf.sprintf "%08lx" (Int32.logxor !c 0xFFFFFFFFl)

(* Seal a JSON object line by splicing a ["crc"] member (over the bytes
   of the {e unsealed} object) in front of the closing brace; [unseal]
   reverses it. Byte-level on purpose: the checksum must cover the exact
   serialisation, not a re-encoding. *)
let crc_marker = {|,"crc":"|}

let seal payload =
  Printf.sprintf "%s%s%s\"}"
    (String.sub payload 0 (String.length payload - 1))
    crc_marker (crc32 payload)

type unsealed = No_crc | Crc_ok | Crc_mismatch

let unseal line =
  let n = String.length line and m = String.length crc_marker in
  (* The crc member is always the one we spliced last: 8 hex digits and
     a closing quote+brace at the very end of the line. *)
  let tail_len = m + 8 + 2 in
  if n >= tail_len && String.sub line (n - tail_len) m = crc_marker
     && line.[n - 2] = '"' && line.[n - 1] = '}' then
    let declared = String.sub line (n - 10) 8 in
    let payload = String.sub line 0 (n - tail_len) ^ "}" in
    if String.equal (crc32 payload) declared then (payload, Crc_ok)
    else (payload, Crc_mismatch)
  else (line, No_crc)

(* ------------------------------------------------------------------ *)
(* A minimal flat-JSON codec. Lines are objects of string and number   *)
(* fields only, which is all the store ever writes; hand-rolling it    *)
(* keeps the harness dependency-free.                                  *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

(* Parse one flat JSON object into an association list; string values are
   unescaped, numbers returned as raw text. Raises [Malformed] on
   anything else — {!load_verified} quarantines such lines. *)
let fields_of_line line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do incr pos done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some d when Char.equal d c -> incr pos
    | Some _ | None -> malformed "expected %C at byte %d" c !pos
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> malformed "bad hex digit %C in \\u escape" c
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then malformed "unterminated string";
      match line.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          if !pos + 1 >= n then malformed "dangling backslash";
          (match line.[!pos + 1] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              (* Strict: exactly four hex digits, no signs/underscores,
                 no surrogate halves; the code point is emitted as
                 UTF-8, not truncated to its low byte. *)
              if !pos + 5 >= n then malformed "truncated \\u escape";
              let code =
                (hex_digit line.[!pos + 2] lsl 12)
                lor (hex_digit line.[!pos + 3] lsl 8)
                lor (hex_digit line.[!pos + 4] lsl 4)
                lor hex_digit line.[!pos + 5]
              in
              if code >= 0xD800 && code <= 0xDFFF then
                malformed "surrogate code point \\u%04x" code;
              Buffer.add_utf_8_uchar b (Uchar.of_int code);
              pos := !pos + 4
          | c -> malformed "unknown escape \\%C" c);
          pos := !pos + 2;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && (match line.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then malformed "expected a value at byte %d" !pos;
    String.sub line start (!pos - start)
  in
  expect '{';
  let rec members acc =
    skip_ws ();
    match peek () with
    | Some '}' ->
        incr pos;
        skip_ws ();
        if !pos <> n then malformed "trailing bytes after object";
        List.rev acc
    | _ ->
        let key = parse_string () in
        expect ':';
        skip_ws ();
        let value =
          match peek () with
          | Some '"' -> parse_string ()
          | Some _ -> parse_number ()
          | None -> malformed "truncated object"
        in
        skip_ws ();
        (match peek () with Some ',' -> incr pos | Some _ | None -> ());
        members ((key, value) :: acc)
  in
  members []

(* ------------------------------------------------------------------ *)
(* Entry codec (format v2: status ok | degraded | failed, crc-sealed)  *)
(* ------------------------------------------------------------------ *)

let error_fields (e : Herror.t) =
  Printf.sprintf {|"eclass":"%s","esite":"%s","error":"%s","attempts":%d|}
    (Herror.klass_name e.Herror.klass)
    (escape e.Herror.site) (escape e.Herror.message) e.Herror.attempts

(* Ok lines carry the runner's attempt count under ["attempts"]; on a
   degraded line that key already belongs to the original error (via
   [error_fields]), so the fallback outcome's count is ["fb_attempts"]
   to keep the flat object collision-free. v2 lines predate both keys
   and load with the count defaulted to 1. *)
let line_of_entry e =
  seal
    (match e.status with
    | Task.Done o ->
        Printf.sprintf
          {|{"id":"%s","status":"ok","swaps":%d,"seconds":%.6f,"attempts":%d}|}
          (escape e.task_id) o.Task.swaps o.Task.seconds o.Task.attempts
    | Task.Degraded d ->
        Printf.sprintf
          {|{"id":"%s","status":"degraded","via":"%s","swaps":%d,"seconds":%.6f,"fb_attempts":%d,%s}|}
          (escape e.task_id) (escape d.Task.via) d.Task.outcome.Task.swaps
          d.Task.outcome.Task.seconds d.Task.outcome.Task.attempts
          (error_fields d.Task.error)
    | Task.Failed err ->
        Printf.sprintf {|{"id":"%s","status":"failed",%s}|} (escape e.task_id)
          (error_fields err))

let error_of_fields fields =
  let klass =
    match List.assoc_opt "eclass" fields with
    | Some name -> (
        match Herror.klass_of_name name with
        | Some k -> k
        | None -> malformed "unknown error class %S" name)
    | None -> Herror.Permanent (* v1 line: untyped error string *)
  in
  {
    Herror.klass;
    site = Option.value ~default:"legacy" (List.assoc_opt "esite" fields);
    message = Option.value ~default:"" (List.assoc_opt "error" fields);
    attempts =
      (match List.assoc_opt "attempts" fields with
      | Some raw -> (
          match int_of_string_opt raw with
          | Some n -> n
          | None -> malformed "bad attempts %S" raw)
      | None -> 1);
  }

let outcome_of_fields ~attempts_key fields =
  match (List.assoc_opt "swaps" fields, List.assoc_opt "seconds" fields) with
  | Some swaps, Some seconds -> (
      match (int_of_string_opt swaps, float_of_string_opt seconds) with
      | Some swaps, Some seconds ->
          let attempts =
            match List.assoc_opt attempts_key fields with
            | None -> 1 (* v2 line: the count was not yet recorded *)
            | Some raw -> (
                match int_of_string_opt raw with
                | Some n -> n
                | None -> malformed "bad %s %S" attempts_key raw)
          in
          { Task.swaps; seconds; attempts }
      | _ -> malformed "bad outcome numbers")
  | _ -> malformed "missing outcome fields"

let entry_of_line line =
  let payload, sealing = unseal line in
  if sealing = Crc_mismatch then Error "crc mismatch"
  else
    match fields_of_line payload with
    | exception Malformed m -> Error m
    | fields -> (
        match (List.assoc_opt "id" fields, List.assoc_opt "status" fields) with
        | Some task_id, Some "ok" -> (
            match outcome_of_fields ~attempts_key:"attempts" fields with
            | o -> Ok { task_id; status = Task.Done o }
            | exception Malformed m -> Error m)
        | Some task_id, Some "degraded" -> (
            match
              ( outcome_of_fields ~attempts_key:"fb_attempts" fields,
                List.assoc_opt "via" fields,
                error_of_fields fields )
            with
            | o, Some via, err ->
                Ok
                  { task_id; status = Task.Degraded { outcome = o; via; error = err } }
            | _, None, _ -> Error "degraded line without via"
            | exception Malformed m -> Error m)
        | Some task_id, Some "failed" -> (
            match error_of_fields fields with
            | err -> Ok { task_id; status = Task.Failed err }
            | exception Malformed m -> Error m)
        | Some _, Some status -> Error (Printf.sprintf "unknown status %S" status)
        | _ -> Error "missing id/status")

(* ------------------------------------------------------------------ *)
(* Store operations                                                    *)
(* ------------------------------------------------------------------ *)

let load_verified path =
  if not (Sys.file_exists path) then ([], [])
  else begin
    let ic = open_in path in
    let entries = ref [] and bad = ref [] in
    (try
       let line_no = ref 0 in
       while true do
         let raw = input_line ic in
         incr line_no;
         let raw =
           Qls_faults.mangle ~site:site_load ~key:(string_of_int !line_no) raw
         in
         if String.trim raw <> "" then
           match entry_of_line raw with
           | Ok e -> entries := e :: !entries
           | Error reason ->
               bad := { line_no = !line_no; reason; text = raw } :: !bad
       done
     with End_of_file -> ());
    close_in ic;
    (List.rev !entries, List.rev !bad)
  end

let load path = fst (load_verified path)

let completed entries =
  let tbl = Hashtbl.create (List.length entries) in
  List.iter (fun e -> Hashtbl.replace tbl e.task_id e.status) entries;
  tbl

let open_append ?(fsync = false) path =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  { path; oc; fsync; mutex = Mutex.create () }

let append t entry =
  (* One buffered write of the whole line then a flush, under the mutex:
     concurrent workers never interleave within a line, and a kill can
     only ever truncate the final line (which loading quarantines). The
     fault hook mangles the sealed bytes, newline included, so an
     injected torn write really does splice into the next line. *)
  Mutex.protect t.mutex (fun () ->
      output_string t.oc
        (Qls_faults.mangle ~site:site_append ~key:entry.task_id
           (line_of_entry entry ^ "\n"));
      flush t.oc;
      if t.fsync then Unix.fsync (Unix.descr_of_out_channel t.oc))

let compact ?(fsync = false) path =
  let entries, bad = load_verified path in
  (* Quarantine damaged lines before they are dropped from the rewrite:
     the bytes survive for forensics, the store stops re-reading them. *)
  if not (List.is_empty bad) then begin
    let qc =
      open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644
        (path ^ ".quarantine")
    in
    List.iter
      (fun c -> Printf.fprintf qc "# line %d: %s\n%s\n" c.line_no c.reason c.text)
      bad;
    close_out qc
  end;
  let last = completed entries in
  (* Keep the winning status per task, in first-appearance order. *)
  let seen = Hashtbl.create (List.length entries) in
  let survivors =
    List.filter_map
      (fun e ->
        if Hashtbl.mem seen e.task_id then None
        else begin
          Hashtbl.add seen e.task_id ();
          Some { e with status = Hashtbl.find last e.task_id }
        end)
      entries
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  List.iter (fun e -> output_string oc (line_of_entry e ^ "\n")) survivors;
  flush oc;
  if fsync then Unix.fsync (Unix.descr_of_out_channel oc);
  close_out oc;
  (* Atomic publish: readers see either the old file or the compacted
     one, never a half-written rewrite. *)
  Sys.rename tmp path;
  {
    kept = List.length survivors;
    superseded = List.length entries - List.length survivors;
    quarantined = List.length bad;
  }

let close t = close_out t.oc
let path t = t.path
