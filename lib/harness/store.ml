type entry = { task_id : string; status : Task.status }
type corrupt = Qls_sealed.corrupt = { line_no : int; reason : string; text : string }
type compact_stats = { kept : int; superseded : int; quarantined : int }

type t = { log : Qls_sealed.Log.t }

let site_append = "store.append"
let site_load = "store.load"

(* The CRC framing, escape and flat-JSON codec all live in Qls_sealed
   now — this module keeps only the entry codec and the store policy
   (v1/v2/v3 compatibility, quarantine, compaction). *)
let crc32 = Qls_sealed.crc32
let seal = Qls_sealed.seal
let escape = Qls_sealed.escape

exception Malformed = Qls_sealed.Malformed

let malformed fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt
let fields_of_line = Qls_sealed.fields_of_line

(* ------------------------------------------------------------------ *)
(* Entry codec (format v2: status ok | degraded | failed, crc-sealed)  *)
(* ------------------------------------------------------------------ *)

let error_fields (e : Herror.t) =
  Printf.sprintf {|"eclass":"%s","esite":"%s","error":"%s","attempts":%d|}
    (Herror.klass_name e.Herror.klass)
    (escape e.Herror.site) (escape e.Herror.message) e.Herror.attempts

(* Ok lines carry the runner's attempt count under ["attempts"]; on a
   degraded line that key already belongs to the original error (via
   [error_fields]), so the fallback outcome's count is ["fb_attempts"]
   to keep the flat object collision-free. v2 lines predate both keys
   and load with the count defaulted to 1. *)
let line_of_entry e =
  seal
    (match e.status with
    | Task.Done o ->
        Printf.sprintf
          {|{"id":"%s","status":"ok","swaps":%d,"seconds":%.6f,"attempts":%d}|}
          (escape e.task_id) o.Task.swaps o.Task.seconds o.Task.attempts
    | Task.Degraded d ->
        Printf.sprintf
          {|{"id":"%s","status":"degraded","via":"%s","swaps":%d,"seconds":%.6f,"fb_attempts":%d,%s}|}
          (escape e.task_id) (escape d.Task.via) d.Task.outcome.Task.swaps
          d.Task.outcome.Task.seconds d.Task.outcome.Task.attempts
          (error_fields d.Task.error)
    | Task.Failed err ->
        Printf.sprintf {|{"id":"%s","status":"failed",%s}|} (escape e.task_id)
          (error_fields err))

let error_of_fields fields =
  let klass =
    match List.assoc_opt "eclass" fields with
    | Some name -> (
        match Herror.klass_of_name name with
        | Some k -> k
        | None -> malformed "unknown error class %S" name)
    | None -> Herror.Permanent (* v1 line: untyped error string *)
  in
  {
    Herror.klass;
    site = Option.value ~default:"legacy" (List.assoc_opt "esite" fields);
    message = Option.value ~default:"" (List.assoc_opt "error" fields);
    attempts =
      (match List.assoc_opt "attempts" fields with
      | Some raw -> (
          match int_of_string_opt raw with
          | Some n -> n
          | None -> malformed "bad attempts %S" raw)
      | None -> 1);
  }

let outcome_of_fields ~attempts_key fields =
  match (List.assoc_opt "swaps" fields, List.assoc_opt "seconds" fields) with
  | Some swaps, Some seconds -> (
      match (int_of_string_opt swaps, float_of_string_opt seconds) with
      | Some swaps, Some seconds ->
          let attempts =
            match List.assoc_opt attempts_key fields with
            | None -> 1 (* v2 line: the count was not yet recorded *)
            | Some raw -> (
                match int_of_string_opt raw with
                | Some n -> n
                | None -> malformed "bad %s %S" attempts_key raw)
          in
          { Task.swaps; seconds; attempts }
      | _ -> malformed "bad outcome numbers")
  | _ -> malformed "missing outcome fields"

let entry_of_line line =
  let payload, sealing = Qls_sealed.unseal line in
  if sealing = Qls_sealed.Crc_mismatch then Error "crc mismatch"
  else
    match fields_of_line payload with
    | exception Malformed m -> Error m
    | fields -> (
        match (List.assoc_opt "id" fields, List.assoc_opt "status" fields) with
        | Some task_id, Some "ok" -> (
            match outcome_of_fields ~attempts_key:"attempts" fields with
            | o -> Ok { task_id; status = Task.Done o }
            | exception Malformed m -> Error m)
        | Some task_id, Some "degraded" -> (
            match
              ( outcome_of_fields ~attempts_key:"fb_attempts" fields,
                List.assoc_opt "via" fields,
                error_of_fields fields )
            with
            | o, Some via, err ->
                Ok
                  { task_id; status = Task.Degraded { outcome = o; via; error = err } }
            | _, None, _ -> Error "degraded line without via"
            | exception Malformed m -> Error m)
        | Some task_id, Some "failed" -> (
            match error_of_fields fields with
            | err -> Ok { task_id; status = Task.Failed err }
            | exception Malformed m -> Error m)
        | Some _, Some status -> Error (Printf.sprintf "unknown status %S" status)
        | _ -> Error "missing id/status")

(* ------------------------------------------------------------------ *)
(* Store operations                                                    *)
(* ------------------------------------------------------------------ *)

let load_verified path =
  if not (Sys.file_exists path) then ([], [])
  else begin
    let ic = open_in path in
    let entries = ref [] and bad = ref [] in
    (try
       let line_no = ref 0 in
       while true do
         let raw = input_line ic in
         incr line_no;
         let raw =
           Qls_faults.mangle ~site:site_load ~key:(string_of_int !line_no) raw
         in
         if String.trim raw <> "" then
           match entry_of_line raw with
           | Ok e -> entries := e :: !entries
           | Error reason ->
               bad := { line_no = !line_no; reason; text = raw } :: !bad
       done
     with End_of_file -> ());
    close_in ic;
    (List.rev !entries, List.rev !bad)
  end

let load path = fst (load_verified path)

let completed entries =
  let tbl = Hashtbl.create (List.length entries) in
  List.iter (fun e -> Hashtbl.replace tbl e.task_id e.status) entries;
  tbl

let open_append ?(fsync = false) path =
  (* The write-side contract (one flushed line per append under a mutex;
     the fault hook sees the sealed bytes, newline included, so an
     injected torn write really does splice into the next line) is
     enforced by the shared sealed log. *)
  {
    log =
      Qls_sealed.Log.open_append ~fsync
        ~mangle:(fun ~key s -> Qls_faults.mangle ~site:site_append ~key s)
        path;
  }

let append t entry =
  Qls_sealed.Log.append_sealed t.log ~key:entry.task_id (line_of_entry entry)

let compact ?(fsync = false) path =
  let entries, bad = load_verified path in
  (* Quarantine damaged lines before they are dropped from the rewrite:
     the bytes survive for forensics, the store stops re-reading them. *)
  Qls_sealed.quarantine_append ~path:(path ^ ".quarantine") bad;
  let last = completed entries in
  (* Keep the winning status per task, in first-appearance order. *)
  let seen = Hashtbl.create (List.length entries) in
  let survivors =
    List.filter_map
      (fun e ->
        if Hashtbl.mem seen e.task_id then None
        else begin
          Hashtbl.add seen e.task_id ();
          Some { e with status = Hashtbl.find last e.task_id }
        end)
      entries
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  List.iter (fun e -> output_string oc (line_of_entry e ^ "\n")) survivors;
  flush oc;
  if fsync then Unix.fsync (Unix.descr_of_out_channel oc);
  close_out oc;
  (* Atomic publish: readers see either the old file or the compacted
     one, never a half-written rewrite. *)
  Sys.rename tmp path;
  {
    kept = List.length survivors;
    superseded = List.length entries - List.length survivors;
    quarantined = List.length bad;
  }

let close t = Qls_sealed.Log.close t.log
let path t = Qls_sealed.Log.path t.log
