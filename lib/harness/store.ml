type entry = { task_id : string; status : Task.status }

type t = {
  path : string;
  oc : out_channel;
  mutex : Mutex.t;
}

(* ------------------------------------------------------------------ *)
(* A minimal flat-JSON codec. Lines are objects of string and number   *)
(* fields only, which is all the store ever writes; hand-rolling it    *)
(* keeps the harness dependency-free.                                  *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let line_of_entry e =
  match e.status with
  | Task.Done o ->
      Printf.sprintf {|{"id":"%s","status":"ok","swaps":%d,"seconds":%.6f}|}
        (escape e.task_id) o.Task.swaps o.Task.seconds
  | Task.Failed msg ->
      Printf.sprintf {|{"id":"%s","status":"failed","error":"%s"}|}
        (escape e.task_id) (escape msg)

exception Malformed

(* Parse one flat JSON object into an association list; string values are
   unescaped, numbers returned as raw text. Raises [Malformed] on
   anything else — {!load} treats such lines (e.g. a half-written final
   line after a kill) as absent. *)
let fields_of_line line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do incr pos done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos else raise Malformed
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise Malformed;
      match line.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          if !pos + 1 >= n then raise Malformed;
          (match line.[!pos + 1] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 5 >= n then raise Malformed;
              let code =
                try int_of_string ("0x" ^ String.sub line (!pos + 2) 4)
                with _ -> raise Malformed
              in
              Buffer.add_char b (Char.chr (code land 0xff));
              pos := !pos + 4
          | _ -> raise Malformed);
          pos := !pos + 2;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && (match line.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then raise Malformed;
    String.sub line start (!pos - start)
  in
  expect '{';
  let rec members acc =
    skip_ws ();
    match peek () with
    | Some '}' ->
        incr pos;
        List.rev acc
    | _ ->
        let key = parse_string () in
        expect ':';
        skip_ws ();
        let value =
          match peek () with
          | Some '"' -> parse_string ()
          | Some _ -> parse_number ()
          | None -> raise Malformed
        in
        skip_ws ();
        if peek () = Some ',' then incr pos;
        members ((key, value) :: acc)
  in
  members []

let entry_of_line line =
  match fields_of_line line with
  | exception Malformed -> None
  | fields -> (
      match (List.assoc_opt "id" fields, List.assoc_opt "status" fields) with
      | Some task_id, Some "ok" -> (
          match
            ( List.assoc_opt "swaps" fields,
              List.assoc_opt "seconds" fields )
          with
          | Some swaps, Some seconds -> (
              try
                Some
                  {
                    task_id;
                    status =
                      Task.Done
                        {
                          Task.swaps = int_of_string swaps;
                          seconds = float_of_string seconds;
                        };
                  }
              with _ -> None)
          | _ -> None)
      | Some task_id, Some "failed" ->
          let msg = Option.value ~default:"" (List.assoc_opt "error" fields) in
          Some { task_id; status = Task.Failed msg }
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Store operations                                                    *)
(* ------------------------------------------------------------------ *)

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec lines acc =
      match input_line ic with
      | line -> lines (match entry_of_line line with
          | Some e -> e :: acc
          | None -> acc)
      | exception End_of_file -> List.rev acc
    in
    let entries = lines [] in
    close_in ic;
    entries
  end

let completed entries =
  let tbl = Hashtbl.create (List.length entries) in
  List.iter (fun e -> Hashtbl.replace tbl e.task_id e.status) entries;
  tbl

let open_append path =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  { path; oc; mutex = Mutex.create () }

let append t entry =
  (* One buffered write of the whole line then a flush, under the mutex:
     concurrent workers never interleave within a line, and a kill can
     only ever truncate the final line (which [load] then ignores). *)
  Mutex.protect t.mutex (fun () ->
      output_string t.oc (line_of_entry entry ^ "\n");
      flush t.oc)

let close t = close_out t.oc
let path t = t.path
