let to_string c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "OPENQASM 2.0;\n";
  Buffer.add_string buf "include \"qelib1.inc\";\n";
  Buffer.add_string buf (Printf.sprintf "qreg q[%d];\n" (Circuit.n_qubits c));
  Array.iter
    (fun g ->
      match g with
      | Gate.G1 { name; q } -> Buffer.add_string buf (Printf.sprintf "%s q[%d];\n" name q)
      | Gate.G2 { name; a; b } ->
          Buffer.add_string buf (Printf.sprintf "%s q[%d],q[%d];\n" name a b))
    (Circuit.gates c);
  Buffer.contents buf

type error = { line : int; message : string }

exception Parse_error of error

let error_to_string e =
  if e.line > 0 then Printf.sprintf "line %d: %s" e.line e.message
  else e.message

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let fail line message = raise (Parse_error { line; message })
let failf line fmt = Printf.ksprintf (fail line) fmt

(* Split a line into statements on ';', dropping comments. *)
let statements_of_line line =
  let line =
    match String.index_opt line '/' with
    | Some i when i + 1 < String.length line && line.[i + 1] = '/' ->
        String.sub line 0 i
    | Some _ | None -> line
  in
  String.split_on_char ';' line |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let parse_operand line_no reg s =
  (* "q[3]" -> 3, checking the register name. *)
  let s = String.trim s in
  match (String.index_opt s '[', String.index_opt s ']') with
  | Some l, Some r when l < r ->
      let name = String.sub s 0 l in
      if reg <> "" && name <> reg then
        failf line_no "unknown register %S (expected %S)" name reg;
      let idx = String.sub s (l + 1) (r - l - 1) in
      (match int_of_string_opt (String.trim idx) with
      | Some i -> i
      | None -> failf line_no "bad qubit index %S" idx)
  | _ -> failf line_no "bad operand %S" s

let strip_params line_no name_and_params =
  (* "rz(pi/4)" -> "rz"; parameters are irrelevant to layout synthesis. *)
  match String.index_opt name_and_params '(' with
  | None -> String.trim name_and_params
  | Some i ->
      if not (String.contains name_and_params ')') then
        fail line_no "unterminated parameter list";
      String.trim (String.sub name_and_params 0 i)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let n_qubits = ref (-1) in
  let reg = ref "" in
  let gates = ref [] in
  List.iteri
    (fun i line ->
      let line_no = i + 1 in
      List.iter
        (fun stmt ->
          let prefix p = String.length stmt >= String.length p
                         && String.sub stmt 0 (String.length p) = p in
          if prefix "OPENQASM" || prefix "include" || prefix "creg"
             || prefix "barrier" || prefix "measure" then ()
          else if prefix "qreg" then begin
            if !n_qubits >= 0 then fail line_no "multiple qreg declarations";
            let rest = String.trim (String.sub stmt 4 (String.length stmt - 4)) in
            match (String.index_opt rest '[', String.index_opt rest ']') with
            | Some l, Some r when l < r ->
                reg := String.trim (String.sub rest 0 l);
                let idx = String.sub rest (l + 1) (r - l - 1) in
                (match int_of_string_opt (String.trim idx) with
                | Some n -> n_qubits := n
                | None -> fail line_no "bad qreg size")
            | _ -> fail line_no "malformed qreg"
          end
          else begin
            (* A gate application: "<name[(params)]> <op>[, <op>]". *)
            match String.index_opt stmt ' ' with
            | None -> failf line_no "unsupported statement %S" stmt
            | Some sp ->
                let head = String.sub stmt 0 sp in
                let name = strip_params line_no head in
                let args = String.sub stmt (sp + 1) (String.length stmt - sp - 1) in
                let ops =
                  String.split_on_char ',' args
                  |> List.map (parse_operand line_no !reg)
                in
                (match ops with
                | [ q ] -> gates := Gate.g1 name q :: !gates
                | [ a; b ] -> gates := Gate.g2 name a b :: !gates
                | _ ->
                    failf line_no "gate %S with %d operands (max 2)" name
                      (List.length ops))
          end)
        (statements_of_line line))
    lines;
  if !n_qubits < 0 then fail 0 "missing qreg declaration";
  Circuit.create ~n_qubits:!n_qubits (List.rev !gates)

let of_string_result text =
  match of_string text with
  | circuit -> Ok circuit
  | exception Parse_error e -> Error e

let write_file path c =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string c))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))

let read_file_result path =
  match read_file path with
  | circuit -> Ok circuit
  | exception Parse_error e -> Error e
  | exception Sys_error message -> Error { line = 0; message }
