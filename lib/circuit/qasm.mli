(** OpenQASM 2.0 serialisation.

    Benchmarks are exchangeable with the Python QLS ecosystem (Qiskit,
    t|ket⟩, QMAP all consume OpenQASM 2), so the generator can emit
    circuits other tools can read, and the test suite can round-trip. The
    parser covers the subset this library emits: a header, one [qreg],
    optional [creg], and parameterless named gate applications (parameters
    in parentheses are accepted and discarded — layout synthesis ignores
    them).

    Malformed input is a {e typed}, line-numbered {!error} — callers that
    feed untrusted files (the CLI, campaign tasks over external circuit
    suites) use the [_result] API so one bad file fails one task with a
    clean diagnostic instead of an exception tearing down the run. *)

type error = { line : int; message : string }
(** A parse failure; [line] is 1-based ([0] when no line applies, e.g. a
    missing [qreg] or an unreadable file). *)

exception Parse_error of error

val error_to_string : error -> string
(** ["line N: message"] (or just the message when [line = 0]). *)

val pp_error : Format.formatter -> error -> unit

val to_string : Circuit.t -> string
(** Emit OpenQASM 2.0. SWAP gates are emitted as [swap]; any gate name is
    emitted verbatim. *)

val of_string : string -> Circuit.t
(** Parse the supported OpenQASM 2.0 subset.
    @raise Parse_error on unsupported or malformed input. *)

val of_string_result : string -> (Circuit.t, error) result
(** Exception-free {!of_string}. *)

val write_file : string -> Circuit.t -> unit
(** [write_file path c] writes {!to_string} to [path]. *)

val read_file : string -> Circuit.t
(** [read_file path] parses the file at [path].
    @raise Parse_error on malformed input. *)

val read_file_result : string -> (Circuit.t, error) result
(** Exception-free {!read_file}; an unreadable file (missing,
    permissions) is reported as an [error] with [line = 0]. *)
