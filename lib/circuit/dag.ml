type t = {
  pairs : (int * int) array;          (* qubit pair per DAG vertex *)
  circuit_index : int array;          (* position in the full gate sequence *)
  succs : int list array;
  preds : int list array;
  memo : (int, Bytes.t) Hashtbl.t;    (* vertex -> descendant bitset *)
}

let of_circuit c =
  let two = Circuit.two_qubit_gates c in
  let n = List.length two in
  let pairs = Array.make n (0, 0) in
  let circuit_index = Array.make n 0 in
  List.iteri
    (fun i (ci, pq) ->
      pairs.(i) <- pq;
      circuit_index.(i) <- ci)
    two;
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  let last_on = Array.make (max 1 (Circuit.n_qubits c)) (-1) in
  for i = 0 to n - 1 do
    let a, b = pairs.(i) in
    let link q =
      let j = last_on.(q) in
      if j >= 0 then begin
        (* Avoid duplicate arcs when both qubits were last touched by the
           same gate. *)
        if not (List.mem i succs.(j)) then begin
          succs.(j) <- i :: succs.(j);
          preds.(i) <- j :: preds.(i)
        end
      end;
      last_on.(q) <- i
    in
    link a;
    link b
  done;
  Array.iteri (fun i l -> succs.(i) <- List.rev l) succs;
  Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
  { pairs; circuit_index; succs; preds; memo = Hashtbl.create 16 }

let n_gates d = Array.length d.pairs
let pair d i = d.pairs.(i)
let circuit_index d i = d.circuit_index.(i)
let successors d i = d.succs.(i)
let predecessors d i = d.preds.(i)
let in_degree d i = List.length d.preds.(i)

let front_layer d =
  let acc = ref [] in
  for i = n_gates d - 1 downto 0 do
    if List.is_empty d.preds.(i) then acc := i :: !acc
  done;
  !acc

let bit_get bs i = Char.code (Bytes.get bs (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set bs i =
  Bytes.set bs (i lsr 3)
    (Char.chr (Char.code (Bytes.get bs (i lsr 3)) lor (1 lsl (i land 7))))

let descendant_bits d i =
  match Hashtbl.find_opt d.memo i with
  | Some bs -> bs
  | None ->
      let n = n_gates d in
      let bs = Bytes.make ((n + 7) / 8) '\000' in
      let stack = Stack.create () in
      Stack.push i stack;
      bit_set bs i;
      while not (Stack.is_empty stack) do
        let v = Stack.pop stack in
        List.iter
          (fun w ->
            if not (bit_get bs w) then begin
              bit_set bs w;
              Stack.push w stack
            end)
          d.succs.(v)
      done;
      Hashtbl.add d.memo i bs;
      bs

let reachable d i j = bit_get (descendant_bits d i) j

let descendants d i =
  let bs = descendant_bits d i in
  Array.init (n_gates d) (fun j -> bit_get bs j)

let topological_order d =
  let n = n_gates d in
  let indeg = Array.init n (fun i -> in_degree d i) in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Queue.add i queue
  done;
  let out = ref [] in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    out := v :: !out;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      d.succs.(v)
  done;
  let order = List.rev !out in
  if List.length order <> n then
    invalid_arg "Dag.topological_order: cycle detected (corrupt DAG)";
  order

let serialized d xs ys =
  List.for_all (fun x -> List.for_all (fun y -> reachable d x y) ys) xs
