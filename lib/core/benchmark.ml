type section = {
  index : int;
  swap : int * int;
  anchor : int;
  target : int;
  special_circuit_index : int;
  backbone_circuit_indices : int list;
  interaction : Qls_graph.Graph.t;
  mapping_before : Qls_layout.Mapping.t;
  mapping_after : Qls_layout.Mapping.t;
}

type t = {
  device : Qls_arch.Device.t;
  circuit : Qls_circuit.Circuit.t;
  optimal_swaps : int;
  initial_mapping : Qls_layout.Mapping.t;
  designed : Qls_layout.Transpiled.t;
  sections : section list;
  seed : int;
}

let backbone_indices t =
  List.concat_map (fun s -> s.backbone_circuit_indices) t.sections
  |> List.sort_uniq Int.compare

let two_qubit_count t = Qls_circuit.Circuit.two_qubit_count t.circuit

let filler_count t = two_qubit_count t - List.length (backbone_indices t)

let pp_summary ppf t =
  Format.fprintf ppf
    "qubikos[%s, %d 2q gates (%d backbone + %d filler), optimal swaps = %d, seed %d]"
    (Qls_arch.Device.name t.device)
    (two_qubit_count t)
    (List.length (backbone_indices t))
    (filler_count t) t.optimal_swaps t.seed
