(** Machine-checkable optimality certificate for QUBIKOS instances.

    The paper (§III-D) proves each instance's optimal SWAP count with four
    statements; this module re-proves all of them for any given instance,
    so generator bugs cannot silently ship a benchmark with a wrong
    "known" optimum:

    - {b Lemma 1} — each section's interaction graph admits no
      {!Qls_graph.Vf2} monomorphism into the coupling graph (so the
      section cannot execute under any single mapping);
    - {b Lemma 2} — within a section, every backbone gate is reachable
      from the previous special gate and reaches the section's own special
      gate in the dependency DAG;
    - {b Lemma 3} — consecutive sections are fully serialised (every gate
      of section [i] reaches every gate of section [i+1]);
    - {b Theorem 4 / upper bound} — the designed schedule passes the
      {!Qls_layout.Verifier} with exactly [optimal_swaps] SWAPs.

    Lemmas 1–3 give the lower bound: sections occupy disjoint execution
    windows, and a window with no SWAP would execute its whole section
    under one mapping, contradicting Lemma 1. The designed schedule gives
    the matching upper bound.

    {!check_exact} additionally confirms the lower bound with the
    independent {!Qls_router.Exact} solver (the paper's §IV-A experiment). *)

type failure =
  | Section_embeddable of int
      (** Lemma 1 fails: section's interaction graph fits the device *)
  | Dependency_broken of { section : int; gate : int }
      (** Lemma 2 fails for circuit-gate [gate] of [section] *)
  | Sections_parallel of { earlier : int; later : int }
      (** Lemma 3 fails between two sections *)
  | Designed_invalid of string
      (** the designed schedule does not verify *)
  | Wrong_swap_count of { designed : int; claimed : int }
      (** the designed schedule uses a different SWAP count than claimed *)

val pp_failure : Format.formatter -> failure -> unit
(** Human-readable failure. *)

val check : Benchmark.t -> (unit, failure list) result
(** Re-prove optimality from scratch. [Ok ()] means the instance's
    [optimal_swaps] is certified. *)

val check_exn : Benchmark.t -> unit
(** @raise Failure listing the problems if {!check} fails. *)

type exact_result = {
  certified : bool;  (** structural certificate passed *)
  exact_agrees : bool option;
      (** [Some true] if the exact solver proved no solution with
          [optimal_swaps - 1] SWAPs exists; [Some false] if it found one
          (which would disprove the certificate); [None] if its budget ran
          out *)
  winner_seed : int option;
      (** with [portfolio_seeds]: the seed of the configuration that won
          the race, recorded so the run can be replayed deterministically;
          [None] otherwise *)
}

type exact_method =
  | Sat  (** {!Qls_router.Olsq}: OLSQ2's SAT formulation — the default,
             and by far the faster refuter *)
  | Search  (** {!Qls_router.Exact}: the direct transition search *)

val check_exact :
  ?solver:exact_method ->
  ?node_budget:int ->
  ?conflict_budget:int ->
  ?portfolio_seeds:int list ->
  Benchmark.t ->
  exact_result
(** Full §IV-A-style verification: structural certificate plus
    independent exact refutation of [optimal_swaps - 1]. Each method has
    its own budget in its own unit — [node_budget] bounds the [Search]
    solver's search-tree nodes (default 5e7) and [conflict_budget] bounds
    the [Sat] solver's conflicts (default 2e6); neither is rescaled into
    the other. [portfolio_seeds] (Sat only) races one deterministically
    derived solver configuration per seed and records the winner in
    {!exact_result.winner_seed}. *)
