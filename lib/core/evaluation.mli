(** Experiment harness reproducing the paper's evaluation (§IV).

    Two experiments:

    - {b Optimality study} (§IV-A, {!run_optimality_study}) — generate
      small instances, re-prove each with the structural
      {!Certificate} and the independent {!Qls_router.Exact} solver.
    - {b Tool evaluation} (§IV-B, Fig. 4, {!run_figure}) — generate
      instances per (device, SWAP count), run each tool, and report the
      SWAP ratio [mean inserted SWAPs / optimal SWAPs] per point.

    All configurations are explicit records so the bench harness and CLI
    can run both scaled-down (default) and paper-scale experiments. *)

type tool_point = {
  device_name : string;
  tool_name : string;
  optimal : int;  (** designed SWAP count of each instance at this point *)
  circuits : int;  (** instances the tool itself completed *)
  degraded : int;
      (** instances rescued by the fallback chain — honest coverage,
          excluded from this tool's swap statistics *)
  mean_swaps : float;
  ratio : float;  (** the paper's SWAP ratio: [mean_swaps / optimal] *)
  min_swaps : int;
  max_swaps : int;
  mean_seconds : float;
}
(** One point of Fig. 4: a (device, tool, SWAP count) triple. *)

type figure_config = {
  swap_counts : int list;  (** paper: [\[5; 10; 15; 20\]] *)
  circuits_per_point : int;  (** paper: 10 *)
  gate_budget : int;  (** paper: 300 / 1500 / 1500 / 3000 by device *)
  single_qubit_ratio : float;
  sabre_trials : int;  (** paper: 1000 *)
  seed : int;
}
(** Parameters of one Fig.-4 panel. *)

val paper_gate_budget : Qls_arch.Device.t -> int
(** The paper's two-qubit gate count for a device: 300 for 16 qubits,
    1500 for ~50, 3000 for 127 (interpolated by qubit count for other
    devices). *)

val default_figure_config : Qls_arch.Device.t -> figure_config
(** Scaled-down defaults that regenerate a panel in minutes: SWAP counts
    [\[5; 10; 15; 20\]], 3 circuits per point, paper gate budget, 5 SABRE
    trials. *)

val paper_figure_config : Qls_arch.Device.t -> figure_config
(** Full paper-scale parameters (10 circuits per point, 1000 SABRE
    trials). Expect hours of runtime. *)

val validate_tools : string list -> unit
(** Check every name against the tool registry.
    @raise Qls_harness.Herror.Error (class [Permanent], site
    ["campaign.tools"]) listing {e all} unknown names and the available
    registry, so a typo fails the campaign up front — before any worker
    domain spawns or store line is written — instead of as a mid-run
    [failwith] out of some task. *)

val campaign_tasks :
  ?tools:Qls_router.Router.t list ->
  ?names:string list ->
  config:figure_config ->
  Qls_arch.Device.t ->
  Qls_harness.Task.t list
(** Decompose a figure into independent (n_swaps, circuit, tool)
    campaign tasks, ordered point-major so siblings of an instance run
    close together and share its generation. [names] overrides the tool
    set with plain registry names (e.g. [\["sabre"; "olsq"\]]) without
    constructing routers up front; it wins over [tools]. The effective
    tool set is passed through {!validate_tools} first. *)

val campaign_exec :
  ?tools:Qls_router.Router.t list ->
  device:Qls_arch.Device.t ->
  Qls_harness.Task.t ->
  Qls_harness.Task.outcome
(** Execute one task: generate (and certify, once per instance — shared
    through a cache so the point's tools compare on the same circuit)
    the task's instance, resolve its tool — from [tools] by name when
    given, else from the registry seeded with {!Qls_harness.Task.rng_seed} —
    route, verify, and time it. Pure up to the task, so campaign results
    are scheduling-independent; safe to call from several domains. *)

val aggregate_campaign :
  ?tools:Qls_router.Router.t list ->
  ?names:string list ->
  config:figure_config ->
  device:Qls_arch.Device.t ->
  Qls_harness.Campaign.row list ->
  tool_point list
(** Fold campaign rows back into Fig.-4 points. A point whose tasks all
    failed is skipped with a warning on stderr instead of raising —
    a lost point must not take down the aggregation of an overnight
    run. *)

val default_fallback : string -> string option
(** The degradation chain the CLI's [--degrade] installs: the exact
    solvers and heavier heuristics fall back toward SABRE, so a
    timed-out task costs a [Degraded] line instead of a lost point. *)

val run_campaign :
  ?tools:Qls_router.Router.t list ->
  ?names:string list ->
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?store:string ->
  ?resume:bool ->
  ?rerun_failed:bool ->
  ?fsync:bool ->
  ?failure_budget:float ->
  ?degrade:bool ->
  ?progress:bool ->
  config:figure_config ->
  Qls_arch.Device.t ->
  Qls_harness.Campaign.row list
(** Run a figure's campaign on the worker pool ([jobs] defaults to 1 =
    sequential in-process; pass
    [Qls_harness.Pool.recommended_jobs ()] to use the machine) with an
    optional JSONL checkpoint [store] (optionally [fsync]ed per append),
    [resume] from it ([rerun_failed] re-executes tasks the store records
    as failed instead of keeping their failure), per-task [timeout]
    seconds and bounded classified [retries] (with exponential [backoff]),
    an optional [failure_budget] that aborts a doomed sweep early,
    [degrade] to enable the {!default_fallback} chain, and a live
    [progress] line. *)

val run_point :
  ?tools:Qls_router.Router.t list ->
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?store:string ->
  ?resume:bool ->
  ?failure_budget:float ->
  ?degrade:bool ->
  ?progress:bool ->
  config:figure_config ->
  n_swaps:int ->
  Qls_arch.Device.t ->
  tool_point list
(** Evaluate every tool on fresh instances with the given designed SWAP
    count. Instances are shared across tools (paired comparison). Every
    routed result is re-verified; a verification failure marks that task
    failed. Thin wrapper: {!run_campaign} + {!aggregate_campaign} over a
    single-point config. *)

val run_figure :
  ?tools:Qls_router.Router.t list ->
  ?names:string list ->
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?store:string ->
  ?resume:bool ->
  ?failure_budget:float ->
  ?degrade:bool ->
  ?progress:bool ->
  config:figure_config ->
  Qls_arch.Device.t ->
  tool_point list
(** One full Fig.-4 panel: a campaign over every configured SWAP count.
    Results are bit-identical for a fixed config seed whatever [jobs]
    is. *)

val tool_gap_summary : tool_point list -> (string * float) list
(** Mean SWAP ratio per tool across all points — the paper's headline
    "optimality gap" numbers (abstract: 63x / 117x / 250x / 330x). *)

val pp_points : Format.formatter -> tool_point list -> unit
(** Render points as an aligned text table. *)

type tool_summary = {
  s_tool : string;
  s_tasks : int;
  s_ok : int;
  s_degraded : int;
  s_failed : int;
  s_retries : int;  (** attempts beyond the first across ok+degraded rows *)
  s_p50 : float;  (** median task seconds over successful rows *)
  s_p95 : float;
}
(** One tool's line of the post-campaign summary. *)

val summarize_campaign : Qls_harness.Campaign.row list -> tool_summary list
(** Fold campaign rows into per-tool latency/retry/degrade summaries,
    sorted by tool name. Resumed rows count with their recorded
    seconds and attempts. *)

val pp_summary : Format.formatter -> Qls_harness.Campaign.row list -> unit
(** Render {!summarize_campaign} as an aligned table, followed by the
    router rounds/gate and SAT effort footers when the {!Qls_obs}
    counters saw any work this process. *)

type optimality_row = {
  o_device : string;
  o_swaps : int;
  o_circuits : int;
  o_certified : int;  (** structural certificate passed *)
  o_exact_confirmed : int;  (** exact solver refuted [n - 1] swaps *)
  o_exact_unknown : int;  (** exact solver budget ran out *)
  o_mean_gates : float;  (** two-qubit gates per instance *)
}
(** One row of the §IV-A study. *)

val run_optimality_study :
  ?circuits_per_count:int ->
  ?swap_counts:int list ->
  ?gate_budget:int ->
  ?saturation_cap:int ->
  ?solver:Certificate.exact_method ->
  ?node_budget:int ->
  ?conflict_budget:int ->
  ?portfolio_seeds:int list ->
  ?seed:int ->
  Qls_arch.Device.t ->
  optimality_row list
(** §IV-A: small instances (default: SWAP counts 1–4, 10 circuits each,
    gate budget 30, saturation cap 1), each re-proved structurally and by
    the exact solver (the SAT formulation by default, like the paper's
    OLSQ2). [node_budget] bounds the [Search] method's nodes;
    [conflict_budget] bounds the [Sat] method's conflicts;
    [portfolio_seeds] races seeded SAT configurations per instance (see
    {!Certificate.check_exact}). The paper uses 100 circuits per count. *)

val pp_optimality : Format.formatter -> optimality_row list -> unit
(** Render the study as an aligned text table. *)
