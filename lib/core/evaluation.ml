module Device = Qls_arch.Device
module Router = Qls_router.Router
module Registry = Qls_router.Registry
module Verifier = Qls_layout.Verifier
module Metrics = Qls_layout.Metrics

type tool_point = {
  device_name : string;
  tool_name : string;
  optimal : int;
  circuits : int;
  degraded : int;
  mean_swaps : float;
  ratio : float;
  min_swaps : int;
  max_swaps : int;
  mean_seconds : float;
}

type figure_config = {
  swap_counts : int list;
  circuits_per_point : int;
  gate_budget : int;
  single_qubit_ratio : float;
  sabre_trials : int;
  seed : int;
}

let paper_gate_budget device =
  let n = Device.n_qubits device in
  if n <= 20 then 300 else if n <= 60 then 1500 else 3000

let default_figure_config device =
  {
    swap_counts = [ 5; 10; 15; 20 ];
    circuits_per_point = 3;
    gate_budget = paper_gate_budget device;
    single_qubit_ratio = 0.0;
    sabre_trials = 5;
    seed = 1;
  }

let paper_figure_config device =
  {
    (default_figure_config device) with
    circuits_per_point = 10;
    sabre_trials = 1000;
  }

let default_tool_names = [ "sabre"; "mlqls"; "qmap"; "tket" ]

(* The degradation chain: when a tool fails (e.g. the exact/OLSQ solvers
   hit their wall-clock budget), fall back to a cheaper heuristic so the
   point keeps coverage — recorded as Degraded, never as the original
   tool's own result. SABRE is the terminal fallback: fast, never
   diverges on the paper's devices. *)
let default_fallback = function
  | "exact" | "olsq" -> Some "sabre"
  | "qmap" -> Some "tket"
  | "tket" | "mlqls" | "sabre-decay" | "transition" -> Some "sabre"
  | _ -> None

(* [names] (plain registry names, e.g. ["sabre"; "olsq"]) overrides the
   tool set without constructing routers up front — resolution stays
   per-task via {!resolve_tool}, keeping per-task seeding. *)
let tool_names ?names tools =
  match (names, tools) with
  | Some ns, _ -> ns
  | None, Some tools -> List.map (fun t -> t.Router.name) tools
  | None, None -> default_tool_names

(* ------------------------------------------------------------------ *)
(* Campaign plumbing: the figure experiments decompose into            *)
(* independent (device, n_swaps, circuit, tool) tasks executed by      *)
(* Qls_harness; the run_* entry points below are thin wrappers that    *)
(* build a campaign and aggregate its rows.                            *)
(* ------------------------------------------------------------------ *)

module Task = Qls_harness.Task
module Campaign = Qls_harness.Campaign

(* Fail a campaign on an unknown tool name {e before} any domain spawns
   or any store line is written: one typed Permanent error naming every
   unknown tool beats a failwith out of some worker mid-run (which used
   to cost the whole sweep and leave a half-written checkpoint). *)
let validate_tools names =
  match
    List.filter (fun n -> Option.is_none (Registry.by_name n)) names
  with
  | [] -> ()
  | unknown ->
      raise
        (Qls_harness.Herror.Error
           (Qls_harness.Herror.permanent ~site:"campaign.tools"
              (Printf.sprintf "unknown tool(s) %s; available: %s"
                 (String.concat ", " unknown)
                 (String.concat ", " Registry.names))))

let campaign_tasks ?tools ?names ~config device =
  let names = tool_names ?names tools in
  validate_tools names;
  List.concat_map
    (fun n_swaps ->
      List.concat_map
        (fun circuit ->
          List.map
            (fun tool ->
              {
                Task.device = Device.name device;
                n_swaps;
                circuit;
                tool;
                gate_budget = config.gate_budget;
                single_qubit_ratio = config.single_qubit_ratio;
                sabre_trials = config.sabre_trials;
                base_seed = config.seed;
              })
            names)
        (List.init config.circuits_per_point Fun.id))
    config.swap_counts

(* Instances are shared by the point's tools (the paper's paired
   comparison) and each is generated and certified exactly once: the
   first task to need an instance marks it pending and builds it, while
   sibling tool tasks block on the condition variable until it is ready
   rather than duplicating the (expensive) generation + proof. *)
type instance_cell = Ready of Benchmark.t | Pending

let instance_mutex = Mutex.create ()
let instance_ready = Condition.create ()
let instance_cache : (string, instance_cell) Hashtbl.t = Hashtbl.create 64

let instance_for device (task : Task.t) =
  let key =
    Printf.sprintf "%s/s%d/c%d/g%d/q%g/r%d" task.Task.device task.Task.n_swaps
      task.Task.circuit task.Task.gate_budget task.Task.single_qubit_ratio
      task.Task.base_seed
  in
  let build () =
    let bench =
      Generator.generate
        ~config:
          {
            Generator.default_config with
            n_swaps = task.Task.n_swaps;
            gate_budget = task.Task.gate_budget;
            single_qubit_ratio = task.Task.single_qubit_ratio;
            seed = Task.circuit_seed task;
          }
        device
    in
    Certificate.check_exn bench;
    bench
  in
  Mutex.lock instance_mutex;
  let rec claim () =
    match Hashtbl.find_opt instance_cache key with
    | Some (Ready bench) ->
        Mutex.unlock instance_mutex;
        bench
    | Some Pending ->
        Condition.wait instance_ready instance_mutex;
        claim ()
    | None -> (
        Hashtbl.replace instance_cache key Pending;
        Mutex.unlock instance_mutex;
        match build () with
        | bench ->
            Mutex.lock instance_mutex;
            Hashtbl.replace instance_cache key (Ready bench);
            Condition.broadcast instance_ready;
            Mutex.unlock instance_mutex;
            bench
        | exception e ->
            (* Un-claim so a sibling can retry (and fail with the real
               error) instead of waiting forever. *)
            Mutex.lock instance_mutex;
            Hashtbl.remove instance_cache key;
            Condition.broadcast instance_ready;
            Mutex.unlock instance_mutex;
            raise e)
  in
  claim ()

let resolve_tool ?tools (task : Task.t) =
  let found =
    match tools with
    | Some list -> List.find_opt (fun t -> t.Router.name = task.Task.tool) list
    | None ->
        Qls_router.Registry.by_name ~sabre_trials:task.Task.sabre_trials
          ~seed:(Task.rng_seed task) task.Task.tool
  in
  match found with
  | Some tool -> tool
  | None ->
      (* Typed rather than failwith so a stray name in a resumed store
         or a caller-supplied [tools] list fails one task with a
         Permanent classification instead of an opaque Failure. *)
      raise
        (Qls_harness.Herror.Error
           (Qls_harness.Herror.permanent ~site:"campaign.tools"
              (Printf.sprintf "unknown tool %S" task.Task.tool)))

let campaign_exec ?tools ~device (task : Task.t) =
  let bench = instance_for device task in
  let tool = resolve_tool ?tools task in
  (* lint: nondet-source — wall-clock feeds the [seconds] metric only *)
  let t0 = Unix.gettimeofday () in
  let _, report = Router.run_verified tool device bench.Benchmark.circuit in
  {
    Task.swaps = report.Verifier.swap_count;
    (* lint: nondet-source — timing metric, never reaches routed output *)
    seconds = Unix.gettimeofday () -. t0;
    (* Placeholder: the campaign overwrites this with the runner's real
       attempt count once the task's retries are settled. *)
    attempts = 1;
  }

let aggregate_campaign ?tools ?names ~config ~device rows =
  let names = tool_names ?names tools in
  let ok = Campaign.outcomes rows in
  let rescued = Campaign.degraded rows in
  List.concat_map
    (fun n_swaps ->
      List.filter_map
        (fun tool ->
          let belongs ((t : Task.t), _) =
            t.Task.n_swaps = n_swaps && t.Task.tool = tool
          in
          let samples = List.filter belongs ok in
          (* Degraded rows count toward the point's honest coverage
             report but never into the tool's own statistics: their
             swap counts came from the fallback tool. *)
          let degraded = List.length (List.filter belongs rescued) in
          let swap_counts = List.map (fun (_, o) -> o.Task.swaps) samples in
          match Metrics.mean_opt (List.map float_of_int swap_counts) with
          | None ->
              Format.eprintf
                "warning: point (%s, %s, swaps=%d) has no successful tasks \
                 (%d degraded); skipped@."
                (Device.name device) tool n_swaps degraded;
              None
          | Some mean_swaps ->
              Some
                {
                  device_name = Device.name device;
                  tool_name = tool;
                  optimal = n_swaps;
                  circuits = List.length samples;
                  degraded;
                  mean_swaps;
                  ratio = Metrics.swap_ratio ~optimal:n_swaps ~swap_counts;
                  min_swaps = List.fold_left min max_int swap_counts;
                  max_swaps = List.fold_left max 0 swap_counts;
                  mean_seconds =
                    Option.value ~default:0.0
                      (Metrics.mean_opt (List.map (fun (_, o) -> o.Task.seconds) samples));
                })
        names)
    config.swap_counts

let run_campaign ?tools ?names ?(jobs = 1) ?timeout ?(retries = 0) ?backoff ?store
    ?(resume = false) ?(rerun_failed = false) ?(fsync = false)
    ?failure_budget ?(degrade = false) ?(progress = false) ~config device =
  let tasks = campaign_tasks ?tools ?names ~config device in
  let defaults = Campaign.default_config () in
  let campaign_config =
    {
      defaults with
      Campaign.jobs;
      timeout;
      retries;
      backoff = Option.value ~default:defaults.Campaign.backoff backoff;
      store_path = store;
      resume;
      rerun_failed;
      fsync;
      failure_budget;
      fallback = (if degrade then Some default_fallback else None);
      report =
        (if progress then
           Some (Campaign.stderr_report ~total:(List.length tasks))
         else None);
    }
  in
  Campaign.run campaign_config ~exec:(campaign_exec ?tools ~device) tasks

let run_figure ?tools ?names ?jobs ?timeout ?retries ?backoff ?store ?resume
    ?failure_budget ?degrade ?progress ~config device =
  let rows =
    run_campaign ?tools ?names ?jobs ?timeout ?retries ?backoff ?store ?resume
      ?failure_budget ?degrade ?progress ~config device
  in
  aggregate_campaign ?tools ?names ~config ~device rows

let run_point ?tools ?jobs ?timeout ?retries ?backoff ?store ?resume
    ?failure_budget ?degrade ?progress ~config ~n_swaps device =
  run_figure ?tools ?jobs ?timeout ?retries ?backoff ?store ?resume
    ?failure_budget ?degrade ?progress
    ~config:{ config with swap_counts = [ n_swaps ] }
    device

let tool_gap_summary points =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let acc = Option.value ~default:[] (Hashtbl.find_opt tbl p.tool_name) in
      Hashtbl.replace tbl p.tool_name (p.ratio :: acc))
    points;
  Hashtbl.fold (fun tool ratios acc -> (tool, Metrics.mean ratios) :: acc) tbl []
  |> List.sort (fun (ta, a) (tb, b) ->
         match Float.compare a b with 0 -> String.compare ta tb | n -> n)

let pp_points ppf points =
  Format.fprintf ppf "%-10s %-8s %7s %8s %5s %10s %7s %7s %9s@,"
    "device" "tool" "optimal" "circuits" "degr" "mean-swaps" "min" "max" "ratio";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-10s %-8s %7d %8d %5d %10.1f %7d %7d %8.2fx@,"
        p.device_name p.tool_name p.optimal p.circuits p.degraded p.mean_swaps
        p.min_swaps p.max_swaps p.ratio)
    points

type optimality_row = {
  o_device : string;
  o_swaps : int;
  o_circuits : int;
  o_certified : int;
  o_exact_confirmed : int;
  o_exact_unknown : int;
  o_mean_gates : float;
}

let run_optimality_study ?(circuits_per_count = 10) ?(swap_counts = [ 1; 2; 3; 4 ])
    ?(gate_budget = 30) ?(saturation_cap = 1) ?solver ?node_budget
    ?conflict_budget ?portfolio_seeds ?(seed = 0) device =
  List.map
    (fun n_swaps ->
      let config =
        {
          Generator.default_config with
          n_swaps;
          gate_budget;
          saturation_cap;
          seed = seed + (1000 * n_swaps);
        }
      in
      let instances =
        Generator.generate_suite ~config ~count:circuits_per_count device
      in
      let certified = ref 0
      and confirmed = ref 0
      and unknown = ref 0
      and gates = ref [] in
      List.iter
        (fun bench ->
          gates := float_of_int (Benchmark.two_qubit_count bench) :: !gates;
          let r =
            Certificate.check_exact ?solver ?node_budget ?conflict_budget
              ?portfolio_seeds bench
          in
          if r.Certificate.certified then incr certified;
          match r.Certificate.exact_agrees with
          | Some true -> incr confirmed
          | Some false -> ()
          | None -> incr unknown)
        instances;
      {
        o_device = Device.name device;
        o_swaps = n_swaps;
        o_circuits = circuits_per_count;
        o_certified = !certified;
        o_exact_confirmed = !confirmed;
        o_exact_unknown = !unknown;
        o_mean_gates = Metrics.mean !gates;
      })
    swap_counts

(* ------------------------------------------------------------------ *)
(* Post-campaign summary: per-tool latency quantiles, retry and        *)
(* degrade counts, plus the routing-effort aggregates the obs counters *)
(* collected while the campaign ran.                                   *)
(* ------------------------------------------------------------------ *)

type tool_summary = {
  s_tool : string;
  s_tasks : int;
  s_ok : int;
  s_degraded : int;
  s_failed : int;
  s_retries : int;  (** attempts beyond the first, ok + degraded rows *)
  s_p50 : float;  (** median task seconds over successful rows *)
  s_p95 : float;
}

(* Nearest-rank quantile on a sorted array; exact, not the histogram
   approximation — we have every sample here. *)
let quantile q sorted =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let i = int_of_float (Float.round (q *. float_of_int (n - 1))) in
    sorted.(max 0 (min (n - 1) i))

let summarize_campaign rows =
  let tbl = Hashtbl.create 8 in
  let get tool =
    match Hashtbl.find_opt tbl tool with
    | Some cell -> cell
    | None ->
        let cell = (ref 0, ref 0, ref 0, ref 0, ref []) in
        Hashtbl.replace tbl tool cell;
        cell
  in
  List.iter
    (fun (row : Campaign.row) ->
      let ok, degr, failed, retries, secs = get row.Campaign.task.Task.tool in
      match row.Campaign.status with
      | Task.Done o ->
          incr ok;
          retries := !retries + (o.Task.attempts - 1);
          secs := o.Task.seconds :: !secs
      | Task.Degraded d ->
          incr degr;
          retries := !retries + (d.Task.outcome.Task.attempts - 1);
          secs := d.Task.outcome.Task.seconds :: !secs
      | Task.Failed _ -> incr failed)
    rows;
  Hashtbl.fold
    (fun tool (ok, degr, failed, retries, secs) acc ->
      let sorted = Array.of_list !secs in
      Array.sort Float.compare sorted;
      {
        s_tool = tool;
        s_tasks = !ok + !degr + !failed;
        s_ok = !ok;
        s_degraded = !degr;
        s_failed = !failed;
        s_retries = !retries;
        s_p50 = quantile 0.50 sorted;
        s_p95 = quantile 0.95 sorted;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> String.compare a.s_tool b.s_tool)

let pp_summary ppf rows =
  let summaries = summarize_campaign rows in
  Format.fprintf ppf "%-10s %6s %5s %5s %7s %8s %9s %9s@," "tool" "tasks"
    "ok" "degr" "failed" "retries" "p50(s)" "p95(s)";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-10s %6d %5d %5d %7d %8d %9.3f %9.3f@," s.s_tool
        s.s_tasks s.s_ok s.s_degraded s.s_failed s.s_retries s.s_p50 s.s_p95)
    summaries;
  let counters = Qls_obs.counters () in
  let v name = Option.value ~default:0 (List.assoc_opt name counters) in
  let rounds = v "router.rounds" and gates = v "router.gates" in
  if gates > 0 then
    Format.fprintf ppf "router: %d rounds over %d gates (%.2f rounds/gate)@,"
      rounds gates
      (float_of_int rounds /. float_of_int gates);
  let conflicts = v "sat.conflicts" in
  if conflicts > 0 then
    Format.fprintf ppf "sat: %d conflicts, %d learned, %d restarts@," conflicts
      (v "sat.learned") (v "sat.restarts");
  let races = v "sat.portfolio.races" in
  if races > 0 then
    Format.fprintf ppf "sat portfolio: %d races, %d workers cancelled@," races
      (v "sat.portfolio.cancelled")

let pp_optimality ppf rows =
  Format.fprintf ppf "%-10s %6s %9s %10s %16s %14s %11s@,"
    "device" "swaps" "circuits" "certified" "exact-confirmed" "exact-unknown"
    "mean-gates";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %6d %9d %10d %16d %14d %11.1f@,"
        r.o_device r.o_swaps r.o_circuits r.o_certified r.o_exact_confirmed
        r.o_exact_unknown r.o_mean_gates)
    rows;
  let v name =
    Option.value ~default:0 (List.assoc_opt name (Qls_obs.counters ()))
  in
  let races = v "sat.portfolio.races" in
  if races > 0 then
    Format.fprintf ppf "sat portfolio: %d races, %d workers cancelled@," races
      (v "sat.portfolio.cancelled")
