module Graph = Qls_graph.Graph
module Rng = Qls_graph.Rng
module Bfs = Qls_graph.Bfs
module Gate = Qls_circuit.Gate
module Circuit = Qls_circuit.Circuit
module Device = Qls_arch.Device
module Mapping = Qls_layout.Mapping
module Transpiled = Qls_layout.Transpiled
module Verifier = Qls_layout.Verifier

type config = {
  n_swaps : int;
  gate_budget : int;
  single_qubit_ratio : float;
  saturation_cap : int;
  seed : int;
}

let default_config =
  {
    n_swaps = 1;
    gate_budget = 0;
    single_qubit_ratio = 0.0;
    saturation_cap = max_int;
    seed = 0;
  }

(* Pre-materialisation operation: program-level gates and the designed
   SWAPs, tagged with the backbone section they belong to (0 = filler). *)
type pre_op =
  | Two of { pair : int * int; section : int; special : bool }
  | One of Gate.t
  | Swap_op of (int * int)

let prog mapping p =
  match Mapping.prog mapping p with
  | Some q -> q
  | None -> assert false (* |Q| = |P|: every position is occupied *)

let canon (u, v) = if u < v then (u, v) else (v, u)

module PS = Set.Make (struct
  type t = int * int

  let compare (a, b) (c, d) =
    match Int.compare a c with 0 -> Int.compare b d | n -> n
end)

(* Pick the designed SWAP for a section: an oriented coupler (p, p') such
   that the program qubit on [p] (the anchor) gains a new neighbour when
   the swap fires, and such that the saturation requirement stays within
   [cap] positions. Returns (p, p', target position). *)
let choose_swap rng device ~cap =
  let g = Device.graph device in
  let oriented =
    List.concat_map (fun (p, p') -> [ (p, p'); (p', p) ]) (Graph.edges g)
  in
  let oriented = Rng.shuffle_list rng oriented in
  let n = Device.n_qubits device in
  let count_above d =
    let c = ref 0 in
    for x = 0 to n - 1 do
      if Device.degree device x > d then incr c
    done;
    !c
  in
  let feasible (p, p') =
    let nbrs_p = Device.neighbors device p in
    let t_candidates =
      List.filter
        (fun x -> x <> p && not (List.mem x nbrs_p))
        (Device.neighbors device p')
    in
    match t_candidates with
    | [] -> None
    | cs -> Some (p, p', Rng.pick rng cs, count_above (Device.degree device p))
  in
  let options = List.filter_map feasible oriented in
  match options with
  | [] ->
      invalid_arg
        "Generator: device coupling graph admits no forced SWAP (complete graph)"
  | _ -> (
      match List.find_opt (fun (_, _, _, sat) -> sat <= cap) options with
      | Some (p, p', t, _) -> (p, p', t)
      | None ->
          (* No anchor satisfies the cap; take the least-saturating one so
             generation still succeeds on exotic topologies. *)
          let best =
            List.fold_left
              (fun acc o ->
                match acc with
                | Some (_, _, _, s) ->
                    let _, _, _, s' = o in
                    if s' < s then Some o else acc
                | None -> Some o)
              None options
          in
          (match best with
          | Some (p, p', t, _) -> (p, p', t)
          | None -> assert false))

type raw_section = {
  rs_swap : int * int;
  rs_anchor : int;
  rs_target : int;
  rs_gates : (int * int) list; (* ordered non-special gates, pre-SWAP *)
  rs_special : int * int;
  rs_interaction : Graph.t;
  rs_before : Mapping.t;
  rs_after : Mapping.t;
}

(* Components of the edge-bearing part of an edge set over program
   qubits. *)
let edge_components n_prog edges =
  let g = Graph.create n_prog (PS.elements edges) in
  List.filter
    (fun comp -> List.exists (fun v -> Graph.degree g v > 0) comp)
    (Graph.components g)

(* Connect all edge-bearing components to the one containing [anchor] by
   adding connector gates along shortest physical paths (each connector is
   a coupler under [mapping], hence executable). *)
let connect_components device mapping ~anchor ~n_prog edges =
  let coupling = Device.graph device in
  let edges = ref edges in
  let rec loop () =
    let comps = edge_components n_prog (!edges) in
    let main, others =
      List.partition (fun comp -> List.mem anchor comp) comps
    in
    match (main, others) with
    | _, [] -> ()
    | [ main ], other :: _ ->
        let main_pos = List.map (Mapping.phys mapping) main in
        let other_pos = List.map (Mapping.phys mapping) other in
        (* Multi-source BFS from the main component's positions to the
           nearest position of the other component. *)
        let n = Graph.n_vertices coupling in
        let parent = Array.make n (-1) in
        let seen = Array.make n false in
        let queue = Queue.create () in
        List.iter
          (fun s ->
            if not seen.(s) then begin
              seen.(s) <- true;
              Queue.add s queue
            end)
          main_pos;
        let hit = ref (-1) in
        while !hit < 0 && not (Queue.is_empty queue) do
          let v = Queue.pop queue in
          if List.mem v other_pos then hit := v
          else
            List.iter
              (fun w ->
                if not seen.(w) then begin
                  seen.(w) <- true;
                  parent.(w) <- v;
                  Queue.add w queue
                end)
              (Graph.neighbors coupling v)
        done;
        assert (!hit >= 0);
        (* Walk the path back, adding each coupler as a connector gate. *)
        let rec walk v =
          let u = parent.(v) in
          if u >= 0 then begin
            edges := PS.add (canon (prog mapping u, prog mapping v)) !edges;
            walk u
          end
        in
        walk !hit;
        loop ()
    | _ -> assert false
  in
  loop ();
  !edges

let build_section rng device mapping ~cap ~prev_special =
  let n_prog = Device.n_qubits device in
  let p, p', t_pos = choose_swap rng device ~cap in
  let anchor = prog mapping p in
  let target = prog mapping t_pos in
  let d = Device.degree device p in
  (* Anchor star: the anchor interacts with all its current neighbours. *)
  let star =
    List.map (fun x -> canon (anchor, prog mapping x)) (Device.neighbors device p)
  in
  (* Saturation: program qubits on higher-degree positions interact with
     all their neighbours (paper §III-A). *)
  let sat = ref [] in
  for x = 0 to n_prog - 1 do
    if Device.degree device x > d then
      List.iter
        (fun y -> sat := canon (prog mapping x, prog mapping y) :: !sat)
        (Device.neighbors device x)
  done;
  let base = PS.of_list (star @ !sat) in
  let base =
    match prev_special with
    | None -> base
    | Some pair -> PS.add (canon pair) base
  in
  let edges_all = connect_components device mapping ~anchor ~n_prog base in
  let h = Graph.create n_prog (PS.elements edges_all) in
  let no_skip _ _ = false in
  let bwd = Bfs.edge_order h ~sources:[ anchor; target ] ~skip:no_skip in
  assert (List.length bwd = Graph.n_edges h);
  let seq =
    match prev_special with
    | None -> List.rev bwd
    | Some (pa, pt) ->
        let fwd = Bfs.edge_order h ~sources:[ pa; pt ] ~skip:no_skip in
        assert (List.length fwd = Graph.n_edges h);
        ((pa, pt) :: fwd) @ List.rev bwd
  in
  let special = (anchor, target) in
  let after = Mapping.swap_physical mapping p p' in
  (* Structural sanity: every ordered gate is executable now; the special
     gate only after the SWAP. *)
  List.iter
    (fun (u, v) ->
      assert (Device.coupled device (Mapping.phys mapping u) (Mapping.phys mapping v)))
    seq;
  assert (
    not (Device.coupled device (Mapping.phys mapping anchor) (Mapping.phys mapping target)));
  assert (
    Device.coupled device (Mapping.phys after anchor) (Mapping.phys after target));
  {
    rs_swap = (p, p');
    rs_anchor = anchor;
    rs_target = target;
    rs_gates = seq;
    rs_special = special;
    rs_interaction =
      Graph.create n_prog (PS.elements (PS.add (canon special) edges_all));
    rs_before = mapping;
    rs_after = after;
  }

(* All program pairs executable under [mapping]: exactly the couplers,
   read through the mapping. *)
let coupler_pairs device mapping =
  List.map
    (fun (x, y) -> (prog mapping x, prog mapping y))
    (Device.edges device)

let insert_between rng block ~lo ~hi op =
  (* Insert [op] at a uniform position within [lo, hi] (list indices). *)
  let pos = lo + Rng.int rng (hi - lo + 1) in
  let rec splice i rest =
    if i = pos then op :: rest
    else
      match rest with
      | [] -> [ op ]
      | x :: tl -> x :: splice (i + 1) tl
  in
  splice 0 block

let swap_position block =
  let rec go i = function
    | [] -> None
    | Swap_op _ :: _ -> Some i
    | (Two _ | One _) :: rest -> go (i + 1) rest
  in
  go 0 block

(* Pick a filler pair executable under [mapping], biased (3:1) towards
   pairs touching the section's [active] qubits so fillers cluster around
   the routing action — the paper's Fig. 5 instance shows the same
   distractor pair recurring throughout the extended set, which is what
   makes equal-weight lookahead misfire (§IV-C). *)
let pick_filler_pair rng device mapping ~active =
  let candidates = coupler_pairs device mapping in
  let preferred =
    List.filter (fun (u, v) -> List.mem u active || List.mem v active) candidates
  in
  match preferred with
  | [] -> Rng.pick rng candidates
  | _ -> if Rng.int rng 4 < 3 then Rng.pick rng preferred else Rng.pick rng candidates

(* Insert one filler gate into block [j]. A filler placed before the
   section's SWAP must be executable under the section's entry mapping,
   one placed after it under the exit mapping (paper §III-B: "(q2, q7)
   can only be inserted before g4"). *)
let insert_filler rng device ~m_before ~m_after ~active block =
  let len = List.length block in
  match swap_position block with
  | None ->
      (* Filler-only block: a single mapping governs the whole span. *)
      let pair = pick_filler_pair rng device m_before ~active in
      insert_between rng block ~lo:0 ~hi:len
        (Two { pair; section = 0; special = false })
  | Some sp ->
      if Rng.bool rng then begin
        let pair = pick_filler_pair rng device m_before ~active in
        insert_between rng block ~lo:0 ~hi:sp
          (Two { pair; section = 0; special = false })
      end
      else begin
        let pair = pick_filler_pair rng device m_after ~active in
        insert_between rng block ~lo:(sp + 1) ~hi:len
          (Two { pair; section = 0; special = false })
      end

let insert_at rng block op =
  insert_between rng block ~lo:0 ~hi:(List.length block) op

let one_qubit_names = [| "h"; "x"; "t"; "s" |]

let generate ?(config = default_config) device =
  if config.n_swaps < 1 then invalid_arg "Generator: n_swaps must be >= 1";
  let rng = Rng.create config.seed in
  let n_prog = Device.n_qubits device in
  let initial = Mapping.random rng ~n_program:n_prog ~n_physical:n_prog in
  (* Phase spans only; generation is cold next to routing, but the trace
     shows where a pathological config spends its time. *)
  let traced = Qls_obs.enabled () in
  let phase name =
    (* Deadline/heartbeat checkpoint: one per generator phase. *)
    Qls_cancel.poll ();
    if traced then Qls_obs.start ~site:"gen" name else Qls_obs.none
  in
  (* Build the sections. *)
  let sp = phase "gen.sections" in
  let sections = ref [] in
  let mapping = ref initial in
  let prev_special = ref None in
  for _ = 1 to config.n_swaps do
    let s =
      build_section rng device !mapping ~cap:config.saturation_cap
        ~prev_special:!prev_special
    in
    sections := s :: !sections;
    mapping := s.rs_after;
    prev_special := Some s.rs_special
  done;
  if traced then
    Qls_obs.stop sp ~attrs:[ ("n_swaps", Qls_obs.Int config.n_swaps) ];
  let sections = List.rev !sections in
  let final_mapping = !mapping in
  (* Blocks 0 .. n+1: block i >= 1 holds section i (gates, SWAP, special);
     blocks 0 and n+1 exist only to host fillers. *)
  let n = config.n_swaps in
  let blocks = Array.make (n + 2) [] in
  List.iteri
    (fun i s ->
      let sec = i + 1 in
      blocks.(sec) <-
        List.map (fun pair -> Two { pair; section = sec; special = false }) s.rs_gates
        @ [
            Swap_op s.rs_swap;
            Two { pair = s.rs_special; section = sec; special = true };
          ])
    sections;
  (* Fillers. *)
  let backbone_2q =
    List.fold_left (fun acc s -> acc + List.length s.rs_gates + 1) 0 sections
  in
  let sections_arr = Array.of_list sections in
  let block_mappings j =
    if j = 0 then (initial, initial)
    else if j <= n then
      (sections_arr.(j - 1).rs_before, sections_arr.(j - 1).rs_after)
    else (final_mapping, final_mapping)
  in
  let n_fillers = max 0 (config.gate_budget - backbone_2q) in
  let active_of j =
    (* The qubits a block's section routes around (adjacent sections for
       the filler-only end blocks). *)
    let s = sections_arr.(max 0 (min (n - 1) (j - 1))) in
    s.rs_anchor :: s.rs_target
    :: List.concat_map (fun (u, v) -> [ u; v ]) s.rs_gates
    |> List.sort_uniq Int.compare
  in
  let sp = phase "gen.fillers" in
  for _ = 1 to n_fillers do
    let j = Rng.int rng (n + 2) in
    let m_before, m_after = block_mappings j in
    blocks.(j) <-
      insert_filler rng device ~m_before ~m_after ~active:(active_of j) blocks.(j)
  done;
  (* Single-qubit sprinkles. *)
  let total_2q = backbone_2q + n_fillers in
  let n_single =
    int_of_float (Float.round (config.single_qubit_ratio *. float_of_int total_2q))
  in
  for _ = 1 to n_single do
    let j = Rng.int rng (n + 2) in
    let name = Rng.pick_array rng one_qubit_names in
    let q = Rng.int rng n_prog in
    blocks.(j) <- insert_at rng blocks.(j) (One (Gate.g1 name q))
  done;
  if traced then
    Qls_obs.stop sp
      ~attrs:
        [
          ("fillers", Qls_obs.Int n_fillers);
          ("singles", Qls_obs.Int n_single);
        ];
  (* Materialise: circuit gates, designed transpiled ops, section meta. *)
  let sp = phase "gen.materialise" in
  let flat = List.concat (Array.to_list blocks) in
  let gates_rev = ref [] in
  let ops_rev = ref [] in
  let section_indices = Array.make (n + 1) [] in
  let section_special = Array.make (n + 1) (-1) in
  let ci = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Swap_op (p, p') -> ops_rev := Transpiled.Swap (p, p') :: !ops_rev
      | One g ->
          gates_rev := g :: !gates_rev;
          ops_rev := Transpiled.Gate !ci :: !ops_rev;
          incr ci
      | Two { pair = a, b; section; special } ->
          gates_rev := Gate.cx a b :: !gates_rev;
          ops_rev := Transpiled.Gate !ci :: !ops_rev;
          if section > 0 then begin
            section_indices.(section) <- !ci :: section_indices.(section);
            if special then section_special.(section) <- !ci
          end;
          incr ci)
    flat;
  let circuit = Circuit.create ~n_qubits:n_prog (List.rev !gates_rev) in
  let designed =
    Transpiled.create ~source:circuit ~device ~initial (List.rev !ops_rev)
  in
  if traced then
    Qls_obs.stop sp
      ~attrs:[ ("gates", Qls_obs.Int (Array.length (Circuit.gates circuit))) ];
  let sp = phase "gen.verify" in
  let report = Verifier.check_exn designed in
  if traced then Qls_obs.stop sp;
  assert (report.Verifier.swap_count = config.n_swaps);
  let meta =
    List.mapi
      (fun i s ->
        let sec = i + 1 in
        {
          Benchmark.index = sec;
          swap = s.rs_swap;
          anchor = s.rs_anchor;
          target = s.rs_target;
          special_circuit_index = section_special.(sec);
          backbone_circuit_indices = List.rev section_indices.(sec);
          interaction = s.rs_interaction;
          mapping_before = s.rs_before;
          mapping_after = s.rs_after;
        })
      sections
  in
  {
    Benchmark.device;
    circuit;
    optimal_swaps = config.n_swaps;
    initial_mapping = initial;
    designed;
    sections = meta;
    seed = config.seed;
  }

let generate_suite ?(config = default_config) ~count device =
  List.init count (fun i ->
      generate ~config:{ config with seed = config.seed + i } device)
