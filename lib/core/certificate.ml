module Graph = Qls_graph.Graph
module Vf2 = Qls_graph.Vf2
module Circuit = Qls_circuit.Circuit
module Dag = Qls_circuit.Dag
module Device = Qls_arch.Device
module Verifier = Qls_layout.Verifier

type failure =
  | Section_embeddable of int
  | Dependency_broken of { section : int; gate : int }
  | Sections_parallel of { earlier : int; later : int }
  | Designed_invalid of string
  | Wrong_swap_count of { designed : int; claimed : int }

let pp_failure ppf = function
  | Section_embeddable i ->
      Format.fprintf ppf
        "section %d: interaction graph embeds into the device (Lemma 1 fails)" i
  | Dependency_broken { section; gate } ->
      Format.fprintf ppf
        "section %d: gate %d not serialised with its special gates (Lemma 2 fails)"
        section gate
  | Sections_parallel { earlier; later } ->
      Format.fprintf ppf
        "sections %d and %d can execute in parallel (Lemma 3 fails)" earlier later
  | Designed_invalid msg ->
      Format.fprintf ppf "designed schedule invalid: %s" msg
  | Wrong_swap_count { designed; claimed } ->
      Format.fprintf ppf "designed schedule uses %d swaps but %d are claimed"
        designed claimed

(* Strip isolated vertices from an interaction graph so VF2 only matches
   the structurally constrained part (isolated program qubits can always
   be placed). *)
let edge_bearing_subgraph g =
  let keep =
    List.filter (fun v -> Graph.degree g v > 0)
      (List.init (Graph.n_vertices g) Fun.id)
  in
  let sub, _ = Graph.induced g keep in
  sub

let check_structural bench =
  let failures = ref [] in
  let add f = failures := f :: !failures in
  let device = bench.Benchmark.device in
  (* Lemma 1: each section's interaction graph must NOT embed. *)
  List.iter
    (fun s ->
      let pattern = edge_bearing_subgraph s.Benchmark.interaction in
      (* A pattern with more vertices than the device is trivially
         non-embeddable. *)
      let embeddable =
        Graph.n_vertices pattern <= Graph.n_vertices (Device.graph device)
        && Vf2.exists ~pattern ~target:(Device.graph device) ()
      in
      if embeddable then add (Section_embeddable s.Benchmark.index))
    bench.Benchmark.sections;
  (* Lemmas 2 and 3 via DAG reachability on the full circuit. *)
  let dag = Dag.of_circuit bench.Benchmark.circuit in
  (* Map circuit index -> DAG vertex. *)
  let vertex_of_ci = Hashtbl.create 64 in
  for v = 0 to Dag.n_gates dag - 1 do
    Hashtbl.add vertex_of_ci (Dag.circuit_index dag v) v
  done;
  let dagv ci =
    match Hashtbl.find_opt vertex_of_ci ci with
    | Some v -> v
    | None -> invalid_arg "Certificate: backbone index is not a two-qubit gate"
  in
  let sections = Array.of_list bench.Benchmark.sections in
  Array.iteri
    (fun i s ->
      let special = dagv s.Benchmark.special_circuit_index in
      let prev_special =
        if i = 0 then None
        else Some (dagv sections.(i - 1).Benchmark.special_circuit_index)
      in
      List.iter
        (fun ci ->
          let v = dagv ci in
          let after_prev =
            match prev_special with
            | None -> true
            | Some pv -> Dag.reachable dag pv v
          in
          let before_special = Dag.reachable dag v special in
          if not (after_prev && before_special) then
            add (Dependency_broken { section = s.Benchmark.index; gate = ci }))
        s.Benchmark.backbone_circuit_indices)
    sections;
  (* Lemma 3: full serialisation between consecutive sections. *)
  Array.iteri
    (fun i s ->
      if i + 1 < Array.length sections then begin
        let next = sections.(i + 1) in
        let xs = List.map dagv s.Benchmark.backbone_circuit_indices in
        let ys = List.map dagv next.Benchmark.backbone_circuit_indices in
        if not (Dag.serialized dag xs ys) then
          add
            (Sections_parallel
               { earlier = s.Benchmark.index; later = next.Benchmark.index })
      end)
    sections;
  (* Upper bound: the designed schedule. *)
  (match Verifier.check bench.Benchmark.designed with
  | Error vs ->
      add
        (Designed_invalid
           (Format.asprintf "%a" (Format.pp_print_list Verifier.pp_violation) vs))
  | Ok report ->
      if report.Verifier.swap_count <> bench.Benchmark.optimal_swaps then
        add
          (Wrong_swap_count
             {
               designed = report.Verifier.swap_count;
               claimed = bench.Benchmark.optimal_swaps;
             }));
  match List.rev !failures with [] -> Ok () | fs -> Error fs

(* The structural certificate (Lemmas 1–3 + designed-schedule replay) is
   pure graph work; the span separates it from the exact-solver check. *)
let check bench =
  Qls_obs.with_span ~site:"certify" "certify.structural" (fun () ->
      check_structural bench)

let check_exn bench =
  match check bench with
  | Ok () -> ()
  | Error fs ->
      failwith
        (Format.asprintf "@[<v>certificate failed:@,%a@]"
           (Format.pp_print_list pp_failure)
           fs)

type exact_result = {
  certified : bool;
  exact_agrees : bool option;
  winner_seed : int option;
}

type exact_method = Sat | Search

(* Budget semantics: [node_budget] bounds the Search solver's nodes and
   [conflict_budget] bounds the SAT solver's conflicts — two different
   units, so they are separate parameters and neither is rescaled into the
   other. *)
let check_exact ?(solver = Sat) ?node_budget ?conflict_budget ?portfolio_seeds
    bench =
  let certified = Result.is_ok (check bench) in
  let swaps = bench.Benchmark.optimal_swaps - 1 in
  let device = bench.Benchmark.device in
  let circuit = bench.Benchmark.circuit in
  let sat_agrees = function
    | Qls_router.Olsq.Infeasible -> Some true
    | Qls_router.Olsq.Feasible _ -> Some false
    | Qls_router.Olsq.Unknown -> None
  in
  let exact_agrees, winner_seed =
    if bench.Benchmark.optimal_swaps = 0 then (Some true, None)
    else
      Qls_obs.with_span ~site:"certify" "certify.exact"
        ~attrs:(fun () ->
          [
            ( "method",
              Qls_obs.Str (match solver with Sat -> "sat" | Search -> "search")
            );
            ("swaps", Qls_obs.Int swaps);
            ( "portfolio",
              Qls_obs.Int
                (match portfolio_seeds with
                | Some seeds -> List.length seeds
                | None -> 0) );
          ])
        (fun () ->
          match solver with
          | Sat -> (
              match portfolio_seeds with
              | Some seeds ->
                  let r =
                    Qls_router.Olsq.race_check ~seeds ?conflict_budget ~swaps
                      device circuit
                  in
                  (sat_agrees r.Qls_router.Olsq.value, Some r.winner_seed)
              | None ->
                  ( sat_agrees
                      (Qls_router.Olsq.check ?conflict_budget ~swaps device
                         circuit),
                    None ))
          | Search -> (
              match
                Qls_router.Exact.check ?node_budget ~swaps device circuit
              with
              | Qls_router.Exact.Infeasible -> (Some true, None)
              | Qls_router.Exact.Feasible _ -> (Some false, None)
              | Qls_router.Exact.Unknown -> (None, None)))
  in
  { certified; exact_agrees; winner_seed }
