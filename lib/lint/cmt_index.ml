(* Locate and load the build's [.cmt] files so the typed pass can map a
   source path ("lib/serve/cache.ml") to its Typedtree. Dune drops cmts
   under [<dir>/.<lib>.objs/byte/] (libraries) and
   [<dir>/.<name>.eobjs/byte/] (executables), with the module wrapped as
   [Qls_serve__Cache] or [Dune__exe__Main]; the index walks the build
   root once, buckets every cmt by its unwrapped module stem, and
   confirms a candidate by the [cmt_sourcefile] recorded inside it.
   Loads are cached and mutex-guarded so the engine's parallel walk can
   share one index. *)

type load = Loaded of Typedtree.structure | Unavailable

type t = {
  mutex : Mutex.t;
  by_stem : (string, string list) Hashtbl.t; (* module stem -> cmt paths *)
  loaded : (string, (string * Typedtree.structure) option) Hashtbl.t;
      (* cmt path -> (recorded source file, structure) *)
  resolved : (string, load) Hashtbl.t; (* source path -> result *)
}

let stem_of_cmt name =
  let base = String.lowercase_ascii (Filename.remove_extension name) in
  (* "qls_serve__cache" -> "cache"; "dune__exe__main" -> "main" *)
  let n = String.length base in
  let rec last_sep i best =
    if i + 1 >= n then best
    else if base.[i] = '_' && base.[i + 1] = '_' then last_sep (i + 1) (i + 2)
    else last_sep (i + 1) best
  in
  let start =
    let s = last_sep 0 0 in
    let rec skip i = if i < n && base.[i] = '_' then skip (i + 1) else i in
    skip s
  in
  String.sub base start (n - start)

let rec walk acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.fold_left
        (fun acc name ->
          if String.equal name ".git" then acc
          else
            let p = Filename.concat dir name in
            if Sys.is_directory p then walk acc p
            else if Filename.check_suffix name ".cmt" then p :: acc
            else acc)
        acc entries

let create ~build_root =
  let by_stem = Hashtbl.create 128 in
  List.iter
    (fun cmt ->
      let stem = stem_of_cmt (Filename.basename cmt) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_stem stem) in
      Hashtbl.replace by_stem stem (List.sort String.compare (cmt :: prev)))
    (walk [] build_root);
  {
    mutex = Mutex.create ();
    by_stem;
    loaded = Hashtbl.create 64;
    resolved = Hashtbl.create 64;
  }

let cmts t =
  (* lint: nondet-source — a sum over all buckets; order cannot matter *)
  Hashtbl.fold (fun _ ps n -> n + List.length ps) t.by_stem 0

(* Must be called with [t.mutex] held: [read_cmt] unmarshals compiler
   state and the caches are shared across domains. *)
let load_cmt t path =
  match Hashtbl.find_opt t.loaded path with
  | Some r -> r
  | None ->
      let r =
        match Cmt_format.read_cmt path with
        | { cmt_sourcefile = Some src; cmt_annots = Implementation str; _ } ->
            Some (src, str)
        | _ -> None
        | exception _ -> None
      in
      Hashtbl.replace t.loaded path r;
      r

(* "a/b/c.ml" matches "b/c.ml" if one is the other's suffix at a '/'
   boundary: cmt_sourcefile is relative to the build-context root, which
   may sit above the engine's root (tests run from a subdirectory). *)
let path_matches recorded source =
  let suffix_at_boundary long short =
    let ll = String.length long and ls = String.length short in
    ll >= ls
    && String.sub long (ll - ls) ls = short
    && (ll = ls || long.[ll - ls - 1] = '/')
  in
  String.equal recorded source
  || suffix_at_boundary recorded source
  || suffix_at_boundary source recorded

let find t ~source =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.resolved source with
      | Some r -> r
      | None ->
          let stem =
            String.lowercase_ascii
              (Filename.remove_extension (Filename.basename source))
          in
          let candidates =
            Option.value ~default:[] (Hashtbl.find_opt t.by_stem stem)
          in
          let r =
            match
              List.find_map
                (fun cmt ->
                  match load_cmt t cmt with
                  | Some (recorded, str) when path_matches recorded source ->
                      Some str
                  | _ -> None)
                candidates
            with
            | Some str -> Loaded str
            | None -> Unavailable
          in
          Hashtbl.replace t.resolved source r;
          r)
