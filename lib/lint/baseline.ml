(* The grandfather file: tab-separated [file \t rule \t count] lines,
   '#' comments. An entry waives up to [count] findings of [rule] in
   [file]; anything beyond the allowance is reported as usual. Entries
   whose allowance exceeds the current finding count are stale — the
   debt was paid down — and are reported so the file keeps shrinking. *)

type entry = { file : string; rule : string; allowed : int }

let entry_order a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c else String.compare a.rule b.rule

let parse_line lineno line =
  let line = String.trim line in
  if String.length line = 0 || line.[0] = '#' then Ok None
  else
    match String.split_on_char '\t' line with
    | [ file; rule; count ] -> (
        match int_of_string_opt (String.trim count) with
        | Some allowed when allowed > 0 -> Ok (Some { file; rule; allowed })
        | _ -> Error (Printf.sprintf "line %d: bad count %S" lineno count))
    | _ ->
        Error
          (Printf.sprintf "line %d: expected 'file<TAB>rule<TAB>count'" lineno)

let load path =
  if not (Sys.file_exists path) then Ok []
  else
    let ic = open_in path in
    let entries = ref [] and errors = ref [] and lineno = ref 0 in
    (try
       while true do
         let line = input_line ic in
         incr lineno;
         match parse_line !lineno line with
         | Ok (Some e) -> entries := e :: !entries
         | Ok None -> ()
         | Error msg -> errors := msg :: !errors
       done
     with End_of_file -> ());
    close_in_noerr ic;
    match List.rev !errors with
    | [] -> Ok (List.sort entry_order (List.rev !entries))
    | e :: _ -> Error e

let render entries =
  let b = Buffer.create 256 in
  Buffer.add_string b
    "# qls_lint baseline: grandfathered findings, one 'file<TAB>rule<TAB>count' per line.\n\
     # Regenerate with: dune exec analysis/qls_lint_main.exe -- --write-baseline lint.baseline\n";
  List.iter
    (fun e -> Buffer.add_string b (Printf.sprintf "%s\t%s\t%d\n" e.file e.rule e.allowed))
    (List.sort entry_order entries);
  Buffer.contents b

(* Group findings into per-(file, rule) runs. The sort must key on the
   rule before the line: [Finding.order] alone interleaves rules within
   a file, and the adjacency fold below would then split one (file,
   rule) pair into several runs — duplicating baseline entries and
   corrupting the allowance/stale bookkeeping. *)
let group findings =
  let sorted =
    List.sort
      (fun (a : Finding.t) (b : Finding.t) ->
        let c = String.compare a.Finding.file b.Finding.file in
        if c <> 0 then c
        else
          let c = String.compare a.Finding.rule b.Finding.rule in
          if c <> 0 then c else Finding.order a b)
      findings
  in
  List.fold_left
    (fun acc (f : Finding.t) ->
      match acc with
      | (file, rule, fs) :: rest
        when String.equal file f.Finding.file && String.equal rule f.Finding.rule
        ->
          (file, rule, f :: fs) :: rest
      | _ -> (f.Finding.file, f.Finding.rule, [ f ]) :: acc)
    [] sorted
  |> List.rev_map (fun (file, rule, fs) -> (file, rule, List.rev fs))
  |> List.rev

let of_findings findings =
  group findings
  |> List.map (fun (file, rule, fs) -> { file; rule; allowed = List.length fs })

type applied = {
  kept : Finding.t list;   (** findings beyond any allowance, sorted *)
  waived : int;            (** findings covered by the baseline *)
  stale : entry list;      (** allowances no current finding consumes fully *)
}

let apply entries findings =
  let allowance file rule =
    match
      List.find_opt
        (fun e -> String.equal e.file file && String.equal e.rule rule)
        entries
    with
    | Some e -> e.allowed
    | None -> 0
  in
  let groups = group findings in
  let kept, waived =
    List.fold_left
      (fun (kept, waived) (file, rule, fs) ->
        let n = List.length fs in
        let a = allowance file rule in
        if a >= n then (kept, waived + n)
        else
          (* Keep the last (n - a) findings of the run: new findings in a
             grandfathered file tend to come after the old ones, and the
             choice only affects which lines are printed, not the verdict. *)
          (kept @ List.filteri (fun i _ -> i >= a) fs, waived + min a n))
      ([], 0) groups
  in
  let stale =
    List.filter
      (fun e ->
        let current =
          match
            List.find_opt
              (fun (file, rule, _) ->
                String.equal file e.file && String.equal rule e.rule)
              groups
          with
          | Some (_, _, fs) -> List.length fs
          | None -> 0
        in
        current < e.allowed)
      entries
  in
  { kept = List.sort Finding.order kept; waived; stale }
