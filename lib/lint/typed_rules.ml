(* The R9–R12 rule catalogue: concurrency-discipline rules that need
   type information to be sound. These run on the Typedtree loaded from
   the build's [.cmt] files (see [Cmt_index]), so callees are resolved
   paths — [Mutex.protect] is [Stdlib.Mutex.protect] no matter how it
   was spelled at the call site — and record labels carry the type that
   declared them, which is what lets [guarded-by] follow a field across
   module boundaries. Like R1–R8 each rule is an approximation with a
   documented envelope; the suppression comment is the escape hatch. *)

open Typedtree

module StringSet = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Resolved-path helpers                                               *)

(* Split a module-name segment on "__" so dune's wrapping prefixes
   ("Qls_serve__Cache", "Dune__exe__Main") compare like user paths. *)
let split_wrapped seg =
  let n = String.length seg in
  let rec skip_us i = if i < n && seg.[i] = '_' then skip_us (i + 1) else i in
  let rec go acc start i =
    if i + 1 >= n then String.sub seg start (n - start) :: acc
    else if seg.[i] = '_' && seg.[i + 1] = '_' then
      let piece = String.sub seg start (i - start) in
      let next = skip_us (i + 2) in
      go (piece :: acc) next next
    else go acc start (i + 1)
  in
  List.rev (go [] 0 0) |> List.filter (fun s -> s <> "")

let path_segments p =
  Path.name p
  |> String.split_on_char '.'
  |> List.concat_map split_wrapped
  |> List.map String.lowercase_ascii

let rec list_suffix ~of_:segs suffix =
  let ls = List.length segs and lx = List.length suffix in
  if ls < lx then false
  else if ls = lx then List.equal String.equal segs suffix
  else match segs with [] -> false | _ :: tl -> list_suffix ~of_:tl suffix

let head_name e =
  match e.exp_desc with Texp_ident (p, _, _) -> Some (Path.name p) | _ -> None

let head_segments e =
  match e.exp_desc with Texp_ident (p, _, _) -> Some (path_segments p) | _ -> None

let head_matches e suffixes =
  match head_segments e with
  | Some segs -> List.exists (fun s -> list_suffix ~of_:segs s) suffixes
  | None -> false

let positional_args args =
  List.filter_map
    (function Asttypes.Nolabel, Some e -> Some e | _ -> None)
    args

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub hay i nn = needle then true
    else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* guarded_by annotation registry                                      *)

(* Convention (DESIGN.md §11): a mutable record field whose writes and
   reads must happen under a mutex carries a same-line comment

     mutable hits : int; (* guarded_by: mutex *)

   where the guard name is the record's own mutex field (or a let-bound
   mutex in scope). The registry is keyed by
   (declaring module stem, type name, field name) — the typedtree gives
   us the declaring type of every label, so accesses match no matter
   which module or alias they go through. The scan is line-based and
   assumes the repo style of one field per line. *)
module Guards = struct
  type registry = (string * string * string, string) Hashtbl.t

  let empty () : registry = Hashtbl.create 32

  let module_stem file =
    String.lowercase_ascii (Filename.remove_extension (Filename.basename file))

  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '\''

  let token_at s i =
    let n = String.length s in
    let rec stop j = if j < n && is_ident_char s.[j] then stop (j + 1) else j in
    let j = stop i in
    if j > i then Some (String.sub s i (j - i)) else None

  let find_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      if i + nn > nh then None
      else if String.sub hay i nn = needle then Some i
      else go (i + 1)
    in
    go 0

  let skip_spaces s i =
    let n = String.length s in
    let rec go i = if i < n && (s.[i] = ' ' || s.[i] = '\t') then go (i + 1) else i in
    go i

  (* "type 'a cell = {" / "and stats = {" -> the last lowercase-ident
     token before '='. *)
  let type_decl_name line =
    let t = String.trim line in
    let after kw =
      if String.length t > String.length kw && String.sub t 0 (String.length kw) = kw
      then Some (String.sub t (String.length kw) (String.length t - String.length kw))
      else None
    in
    match (after "type ", after "and ") with
    | None, None -> None
    | Some rest, _ | None, Some rest -> (
        match String.index_opt rest '=' with
        | None -> None
        | Some eq ->
            let head = String.sub rest 0 eq in
            let name = ref None in
            let i = ref 0 in
            let n = String.length head in
            while !i < n do
              if head.[!i] >= 'a' && head.[!i] <= 'z' then begin
                match token_at head !i with
                | Some tok when tok <> "nonrec" && tok <> "private" ->
                    name := Some tok;
                    i := !i + String.length tok
                | Some tok -> i := !i + String.length tok
                | None -> incr i
              end
              else incr i
            done;
            !name)

  (* "  mutable hits : int; (* guarded_by: mutex *)" -> ("hits", "mutex") *)
  let field_annot line =
    match find_sub line "guarded_by:" with
    | None -> None
    | Some g -> (
        let guard = token_at line (skip_spaces line (g + String.length "guarded_by:")) in
        let i = skip_spaces line 0 in
        let i =
          match token_at line i with
          | Some "mutable" -> skip_spaces line (i + String.length "mutable")
          | _ -> i
        in
        match (token_at line i, guard) with
        | Some field, Some guard -> Some (field, guard)
        | _ -> None)

  let add_file (reg : registry) ~file src =
    let stem = module_stem file in
    let current = ref None in
    List.iter
      (fun line ->
        (match type_decl_name line with Some n -> current := Some n | None -> ());
        match (field_annot line, !current) with
        | Some (field, guard), Some tname ->
            Hashtbl.replace reg (stem, tname, field) guard
        | _ -> ())
      (String.split_on_char '\n' src)

  let lookup (reg : registry) key = Hashtbl.find_opt reg key
  let size (reg : registry) = Hashtbl.length reg
end

(* ------------------------------------------------------------------ *)
(* Rule plumbing                                                       *)

type ctx = { file : string; guards : Guards.registry }

type t = {
  name : string;
  summary : string;
  severity : Finding.severity;
  check : ctx -> Typedtree.structure -> Finding.t list;
}

let finding ctx ~rule ~severity loc msg =
  Finding.of_location ~file:ctx.file ~rule ~severity loc msg

let run_iterator make_expr structure =
  let it = { Tast_iterator.default_iterator with expr = make_expr } in
  it.Tast_iterator.structure it structure

(* The label's [lbl_res] is the record type it projects from; its head
   constructor path names the declaring type. Local types print as just
   "t", so the current file supplies the module stem in that case. *)
let label_key ctx (lbl : Types.label_description) =
  let stem = Guards.module_stem ctx.file in
  match Types.get_desc lbl.Types.lbl_res with
  | Types.Tconstr (p, _, _) -> (
      match List.rev (path_segments p) with
      | tname :: m :: _ -> (m, tname, lbl.Types.lbl_name)
      | [ tname ] -> (stem, tname, lbl.Types.lbl_name)
      | [] -> (stem, "", lbl.Types.lbl_name))
  | _ -> (stem, "", lbl.Types.lbl_name)

let guard_name_of_mutex e =
  match e.exp_desc with
  | Texp_field (_, _, lbl) -> lbl.Types.lbl_name
  | Texp_ident (p, _, _) -> Path.last p
  | _ -> "*"

let is_protect_head e = head_matches e [ [ "mutex"; "protect" ] ]
let is_lock_head e = head_matches e [ [ "mutex"; "lock" ] ]
let is_condwait_head e = head_matches e [ [ "condition"; "wait" ] ]

(* Guard names this expression locks somewhere inside: [Mutex.lock m]
   and [Condition.wait c m] (which re-acquires [m] before returning). *)
let locked_names e =
  let acc = ref StringSet.empty in
  let expr sub x =
    (match x.exp_desc with
    | Texp_apply (fn, args) when is_lock_head fn -> (
        match positional_args args with
        | m :: _ -> acc := StringSet.add (guard_name_of_mutex m) !acc
        | [] -> ())
    | Texp_apply (fn, args) when is_condwait_head fn -> (
        match positional_args args with
        | [ _; m ] -> acc := StringSet.add (guard_name_of_mutex m) !acc
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub x
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.Tast_iterator.expr it e;
  !acc

(* ------------------------------------------------------------------ *)
(* R9 — guarded-by                                                     *)
(* Envelope: a guarded field access is "held" when it sits inside the
   thunk of [Mutex.protect m' _] or inside a function that locks [m']
   somewhere ([Mutex.lock]/[Condition.wait] — function granularity, so
   lock...unlock windows are not tracked precisely), where [m'] has the
   same guard *name* as the annotation. Lock identity is by name, not
   by object: locking cache A and touching cache B's fields is out of
   scope. Record literals (construction) are not accesses. *)

let r9_check ctx structure =
  let findings = ref [] in
  let held = ref StringSet.empty in
  let is_held g = StringSet.mem g !held || StringSet.mem "*" !held in
  let check loc (lbl : Types.label_description) =
    match Guards.lookup ctx.guards (label_key ctx lbl) with
    | None -> ()
    | Some guard ->
        if not (is_held guard) then
          findings :=
            finding ctx ~rule:"guarded-by" ~severity:Finding.Error loc
              (Printf.sprintf
                 "field '%s' is marked 'guarded_by: %s' but is accessed with \
                  no enclosing Mutex.protect/lock of '%s'"
                 lbl.Types.lbl_name guard guard)
            :: !findings
  in
  let with_held extra f =
    let saved = !held in
    held := StringSet.union saved extra;
    f ();
    held := saved
  in
  let expr sub e =
    match e.exp_desc with
    | Texp_field (_, _, lbl) ->
        check e.exp_loc lbl;
        Tast_iterator.default_iterator.expr sub e
    | Texp_setfield (_, _, lbl, _) ->
        check e.exp_loc lbl;
        Tast_iterator.default_iterator.expr sub e
    | Texp_apply (fn, args) when is_protect_head fn -> (
        match positional_args args with
        | [ m; thunk ] ->
            sub.Tast_iterator.expr sub m;
            with_held
              (StringSet.singleton (guard_name_of_mutex m))
              (fun () -> sub.Tast_iterator.expr sub thunk)
        | _ -> Tast_iterator.default_iterator.expr sub e)
    | Texp_function _ ->
        with_held (locked_names e) (fun () ->
            Tast_iterator.default_iterator.expr sub e)
    | _ -> Tast_iterator.default_iterator.expr sub e
  in
  run_iterator expr structure;
  !findings

(* ------------------------------------------------------------------ *)
(* R10 — domain-escape                                                 *)
(* A closure handed to the domain pool must not capture a value whose
   type contains a known non-Atomic mutable cell. Envelope: literal
   [fun]-closures in argument position of Pool.submit/Pool.run/
   Domain.spawn; mutable cells are ref/Hashtbl/Buffer/Queue/Stack/bytes
   at any depth of the captured value's type. Arrays are exempt
   (disjoint-index writes are the pool's result-collection idiom), as
   are abstract record types — direct mutation of those is R1's job and
   their lock discipline is R9's. *)

let spawn_suffixes =
  [ [ "pool"; "submit" ]; [ "pool"; "run" ]; [ "pool"; "map" ]; [ "domain"; "spawn" ] ]

let mutable_cell_name segs =
  if list_suffix ~of_:segs [ "ref" ] then Some "ref"
  else if list_suffix ~of_:segs [ "hashtbl"; "t" ] then Some "Hashtbl.t"
  else if list_suffix ~of_:segs [ "buffer"; "t" ] then Some "Buffer.t"
  else if list_suffix ~of_:segs [ "queue"; "t" ] then Some "Queue.t"
  else if list_suffix ~of_:segs [ "stack"; "t" ] then Some "Stack.t"
  else if list_suffix ~of_:segs [ "bytes" ] then Some "bytes"
  else None

let shared_safe segs =
  List.exists
    (fun s -> List.mem s [ "atomic"; "mutex"; "condition"; "semaphore" ])
    segs

let rec find_mutable_cell seen ty =
  let id = Types.get_id ty in
  if List.mem id !seen then None
  else begin
    seen := id :: !seen;
    match Types.get_desc ty with
    | Types.Tconstr (p, args, _) ->
        let segs = path_segments p in
        if shared_safe segs then None
        else (
          match mutable_cell_name segs with
          | Some _ as cell -> cell
          | None -> List.find_map (find_mutable_cell seen) args)
    | Types.Ttuple ts -> List.find_map (find_mutable_cell seen) ts
    | Types.Tpoly (t, _) -> find_mutable_cell seen t
    | _ -> None
  end

(* Free value identifiers of a closure. Typed idents are globally
   unique (stamped), so "used somewhere minus bound somewhere" is exact
   — no scope bookkeeping needed. *)
let closure_captures closure =
  let bound = ref [] in
  let uses = ref [] in
  let pat (type k) sub (p : k general_pattern) =
    bound := pat_bound_idents p @ !bound;
    Tast_iterator.default_iterator.pat sub p
  in
  let expr sub e =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> uses := (id, e) :: !uses
    | Texp_for (id, _, _, _, _, _) -> bound := id :: !bound
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr; pat } in
  it.Tast_iterator.expr it closure;
  List.filter
    (fun (id, _) -> not (List.exists (Ident.same id) !bound))
    (List.rev !uses)

let r10_check ctx structure =
  let findings = ref [] in
  let report_closure closure =
    let seen_ids = ref [] in
    List.iter
      (fun (id, (occ : expression)) ->
        if not (List.exists (Ident.same id) !seen_ids) then begin
          seen_ids := id :: !seen_ids;
          match find_mutable_cell (ref []) occ.exp_type with
          | Some cell ->
              findings :=
                finding ctx ~rule:"domain-escape" ~severity:Finding.Error
                  occ.exp_loc
                  (Printf.sprintf
                     "'%s' (type contains %s, a non-Atomic mutable cell) is \
                      captured by a closure that crosses a domain boundary; \
                      share it via Atomic/mutex-guarded state or suppress it \
                      as a documented scratch"
                     (Ident.name id) cell)
                :: !findings
          | None -> ()
        end)
      (closure_captures closure)
  in
  let expr sub e =
    (match e.exp_desc with
    | Texp_apply (fn, args) when head_matches fn spawn_suffixes ->
        List.iter
          (function
            | _, Some (a : expression) -> (
                match a.exp_desc with
                | Texp_function _ -> report_closure a
                | _ -> ())
            | _ -> ())
          args
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  run_iterator expr structure;
  !findings

(* ------------------------------------------------------------------ *)
(* R11 — blocking-under-mutex                                          *)
(* Envelope: lexically inside the thunk of [Mutex.protect] (plain
   lock/unlock windows have no syntactic extent, so they are R9's
   function-granularity problem, not R11's). A closure *defined* under
   protect but run later is still flagged — suppress if that is the
   design. [Condition.wait c m] is fine on the protected mutex itself
   and an error on any other. *)

let blocking_suffixes =
  [
    [ "unix"; "select" ]; [ "unix"; "sleep" ]; [ "unix"; "sleepf" ];
    [ "unix"; "read" ]; [ "unix"; "write" ]; [ "unix"; "recv" ];
    [ "unix"; "send" ]; [ "unix"; "accept" ]; [ "unix"; "connect" ];
    [ "thread"; "delay" ]; [ "thread"; "join" ];
    [ "pool"; "drain" ]; [ "pool"; "run" ];
  ]

let r11_check ctx structure =
  let findings = ref [] in
  let held : string list ref = ref [] in
  let add loc msg =
    findings :=
      finding ctx ~rule:"blocking-under-mutex" ~severity:Finding.Error loc msg
      :: !findings
  in
  let expr sub e =
    match e.exp_desc with
    | Texp_apply (fn, args)
      when is_protect_head fn
           && List.length (positional_args args) = 2 -> (
        match positional_args args with
        | [ m; thunk ] ->
            sub.Tast_iterator.expr sub m;
            let saved = !held in
            held := guard_name_of_mutex m :: saved;
            sub.Tast_iterator.expr sub thunk;
            held := saved
        | _ -> assert false)
    | Texp_apply (fn, args) when not (List.is_empty !held) ->
        (match head_segments fn with
        | Some segs ->
            if List.exists (fun s -> list_suffix ~of_:segs s) blocking_suffixes
            then
              add e.exp_loc
                (Printf.sprintf
                   "blocking call '%s' inside a Mutex.protect body (mutex \
                    '%s' held) can stall every thread contending for the lock"
                   (Option.value ~default:"?" (head_name fn))
                   (List.hd !held))
            else if list_suffix ~of_:segs [ "condition"; "wait" ] then (
              match positional_args args with
              | [ _; m ] ->
                  let g = guard_name_of_mutex m in
                  if g <> "*" && (not (List.mem g !held)) && not (List.mem "*" !held)
                  then
                    add e.exp_loc
                      (Printf.sprintf
                         "Condition.wait on mutex '%s' inside Mutex.protect \
                          of '%s' — waiting releases the wrong lock"
                         g (List.hd !held))
              | _ -> ())
        | None -> ());
        Tast_iterator.default_iterator.expr sub e
    | _ -> Tast_iterator.default_iterator.expr sub e
  in
  run_iterator expr structure;
  !findings

(* ------------------------------------------------------------------ *)
(* R12 — cancel-poll-coverage                                          *)
(* Scope: lib/router and lib/sat, the hot paths PR 7's deadlines rely
   on. A [while] loop (and a structure-level recursive function) must
   contain a reachable [Qls_cancel.poll]/[expire_check]: directly, or
   through a call to a file-local function that transitively polls.
   [for] loops are exempt (bounded by construction in this codebase);
   nested [let rec] helpers are covered indirectly through the loops
   that drive them. *)

let poll_suffixes =
  [ [ "qls_cancel"; "poll" ]; [ "qls_cancel"; "expire_check" ] ]

let in_r12_scope file =
  contains_sub file "lib/router" || contains_sub file "lib/sat"

let polls_directly e =
  let found = ref false in
  let expr sub x =
    (match x.exp_desc with
    | Texp_apply (fn, _) when head_matches fn poll_suffixes -> found := true
    | Texp_ident _ when head_matches x poll_suffixes -> found := true
    | _ -> ());
    if not !found then Tast_iterator.default_iterator.expr sub x
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.Tast_iterator.expr it e;
  !found

let callee_names e =
  let acc = ref StringSet.empty in
  let expr sub x =
    (match x.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (Path.Pident id, _, _); _ }, _) ->
        acc := StringSet.add (Ident.name id) !acc
    | _ -> ());
    Tast_iterator.default_iterator.expr sub x
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.Tast_iterator.expr it e;
  !acc

let r12_check ctx structure =
  if not (in_r12_scope ctx.file) then []
  else begin
    (* Pass 1: which file-local functions (transitively) poll? *)
    let table : (string, bool ref * StringSet.t ref) Hashtbl.t =
      Hashtbl.create 32
    in
    let record_binding vb =
      match vb.vb_pat.pat_desc with
      | Tpat_var (id, _) ->
          let name = Ident.name id in
          let direct = polls_directly vb.vb_expr in
          let callees = callee_names vb.vb_expr in
          let d, c =
            match Hashtbl.find_opt table name with
            | Some (d, c) -> (d, c)
            | None ->
                let cell = (ref false, ref StringSet.empty) in
                Hashtbl.add table name cell;
                cell
          in
          d := !d || direct;
          c := StringSet.union !c callees
      | _ -> ()
    in
    let vb_it =
      {
        Tast_iterator.default_iterator with
        value_binding =
          (fun sub vb ->
            record_binding vb;
            Tast_iterator.default_iterator.value_binding sub vb);
      }
    in
    vb_it.Tast_iterator.structure vb_it structure;
    let polling = ref StringSet.empty in
    let changed = ref true in
    while !changed do
      changed := false;
      (* lint: nondet-source — fixpoint: the converged set is traversal-order independent *)
      Hashtbl.iter
        (fun name (d, c) ->
          if
            (not (StringSet.mem name !polling))
            && (!d || StringSet.exists (fun n -> StringSet.mem n !polling) !c)
          then begin
            polling := StringSet.add name !polling;
            changed := true
          end)
        table
    done;
    let reachable e =
      polls_directly e
      || StringSet.exists (fun n -> StringSet.mem n !polling) (callee_names e)
    in
    let findings = ref [] in
    (* Pass 2: while loops. *)
    let expr sub e =
      (match e.exp_desc with
      | Texp_while (cond, body) ->
          if not (reachable cond || reachable body) then
            findings :=
              finding ctx ~rule:"cancel-poll-coverage" ~severity:Finding.Error
                e.exp_loc
                "while loop in a router/solver hot path has no reachable \
                 Qls_cancel.poll — deadlines cannot fire here; poll or add a \
                 one-line justification"
              :: !findings
      | _ -> ());
      Tast_iterator.default_iterator.expr sub e
    in
    run_iterator expr structure;
    (* Pass 3: structure-level recursive functions. *)
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (Asttypes.Recursive, vbs) ->
            let group_ids =
              List.filter_map
                (fun vb ->
                  match vb.vb_pat.pat_desc with
                  | Tpat_var (id, _) -> Some id
                  | _ -> None)
                vbs
            in
            List.iter
              (fun vb ->
                match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
                | Tpat_var (id, _), Texp_function _ ->
                    let recurses =
                      let found = ref false in
                      let expr sub x =
                        (match x.exp_desc with
                        | Texp_ident (Path.Pident i, _, _)
                          when List.exists (Ident.same i) group_ids ->
                            found := true
                        | _ -> ());
                        if not !found then
                          Tast_iterator.default_iterator.expr sub x
                      in
                      let it = { Tast_iterator.default_iterator with expr } in
                      it.Tast_iterator.expr it vb.vb_expr;
                      !found
                    in
                    if recurses && not (reachable vb.vb_expr) then
                      findings :=
                        finding ctx ~rule:"cancel-poll-coverage"
                          ~severity:Finding.Error vb.vb_loc
                          (Printf.sprintf
                             "recursive function '%s' in a router/solver hot \
                              path has no reachable Qls_cancel.poll — poll \
                              or add a one-line justification"
                             (Ident.name id))
                        :: !findings
                | _ -> ())
              vbs
        | _ -> ())
      structure.str_items;
    !findings
  end

(* ------------------------------------------------------------------ *)

let all =
  [
    {
      name = "guarded-by";
      summary =
        "fields annotated '(* guarded_by: m *)' accessed outside a scope \
         that holds m";
      severity = Finding.Error;
      check = r9_check;
    };
    {
      name = "domain-escape";
      summary =
        "non-Atomic mutable state captured by a closure crossing a \
         Pool/Domain boundary";
      severity = Finding.Error;
      check = r10_check;
    };
    {
      name = "blocking-under-mutex";
      summary =
        "Unix/Thread/Pool blocking calls (or Condition.wait on another \
         mutex) inside a Mutex.protect body";
      severity = Finding.Error;
      check = r11_check;
    };
    {
      name = "cancel-poll-coverage";
      summary =
        "router/solver hot loops with no reachable Qls_cancel poll (lib/\
         router, lib/sat)";
      severity = Finding.Error;
      check = r12_check;
    };
  ]

let by_name name = List.find_opt (fun r -> String.equal r.name name) all
