(* The R1–R5 rule catalogue. Every rule is purely syntactic: it works on
   the Parsetree of one file, with no type information. That makes the
   rules approximations — each one documents its envelope — but the
   failure signatures they target (PR 3's hoisting regression, PR 4's
   cross-domain races and polymorphic sort) are all syntactically
   recognizable, which is the point: catch the next one in review, not
   after a flaky campaign. *)

open Parsetree

type ctx = { file : string }

type t = {
  name : string;
  summary : string;
  severity : Finding.severity;
  check : ctx -> Parsetree.structure -> Finding.t list;
}

module StringSet = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Shared AST helpers                                                  *)

let flatten_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Longident.flatten txt with
      | path -> Some path
      | exception _ -> None)
  | _ -> None

let drop_stdlib = function "Stdlib" :: rest -> rest | path -> path

let ident_path e = Option.map drop_stdlib (flatten_ident e)

let last_component e =
  match ident_path e with
  | Some path -> (
      match List.rev path with x :: _ -> Some x | [] -> None)
  | None -> None

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub hay i nn = needle then true
    else go (i + 1)
  in
  go 0

let rec pattern_vars acc p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> StringSet.add txt acc
  | Ppat_alias (p, { txt; _ }) -> pattern_vars (StringSet.add txt acc) p
  | Ppat_tuple ps | Ppat_array ps -> List.fold_left pattern_vars acc ps
  | Ppat_construct (_, Some (_, p))
  | Ppat_variant (_, Some p)
  | Ppat_constraint (p, _)
  | Ppat_lazy p
  | Ppat_exception p
  | Ppat_open (_, p) ->
      List.fold_left pattern_vars acc [ p ]
  | Ppat_record (fields, _) ->
      List.fold_left (fun acc (_, p) -> pattern_vars acc p) acc fields
  | Ppat_or (a, b) -> pattern_vars (pattern_vars acc a) b
  | _ -> acc

let run_iterator make_expr structure =
  let it =
    { Ast_iterator.default_iterator with expr = make_expr }
  in
  it.Ast_iterator.structure it structure

(* ------------------------------------------------------------------ *)
(* R1 — domain-unsafe-capture                                          *)
(* A mutable container defined outside a closure and mutated inside a
   closure handed to the domain pool: the exact shape of PR 4's
   [stderr_report] seen-counter and [Progress] count races. Arrays are
   deliberately out of scope — disjoint-index writes into a
   preallocated array are the pool's own result-collection idiom. *)

let spawn_head e =
  match ident_path e with
  | Some [ "Pool"; ("run" | "submit") ]
  | Some [ "Domain"; "spawn" ]
  | Some [ "Thread"; "create" ] ->
      true
  | _ -> false

let mutator_module m fn =
  match m with
  | "Hashtbl" ->
      List.mem fn
        [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]
  | "Buffer" ->
      List.mem fn
        [
          "add_char"; "add_string"; "add_bytes"; "add_substring";
          "add_subbytes"; "add_buffer"; "add_channel"; "clear"; "reset";
          "truncate";
        ]
  | "Queue" ->
      List.mem fn [ "add"; "push"; "pop"; "take"; "clear"; "transfer" ]
  | "Stack" -> List.mem fn [ "push"; "pop"; "clear" ]
  | _ -> false

let r1_check ctx structure =
  let findings = ref [] in
  let add loc msg =
    findings :=
      Finding.of_location ~file:ctx.file ~rule:"domain-unsafe-capture"
        ~severity:Finding.Error loc msg
      :: !findings
  in
  let analyze_closure closure =
    let bound = ref StringSet.empty in
    let with_pats pats f =
      let saved = !bound in
      List.iter (fun p -> bound := pattern_vars !bound p) pats;
      f ();
      bound := saved
    in
    let free x = not (StringSet.mem x !bound) in
    let first_arg args =
      List.find_map
        (function
          | Asttypes.Nolabel, { pexp_desc = Pexp_ident { txt = Longident.Lident x; _ }; _ }
            -> Some x
          | _ -> None)
        args
    in
    let check_mutation e f args =
      let report x what =
        if free x then
          add e.pexp_loc
            (Printf.sprintf
               "%s mutates '%s', which is captured from outside a closure \
                passed to the domain pool; use Atomic, a mutex, or \
                domain-confined state"
               what x)
      in
      match ident_path f with
      | Some [ (":=" | "incr" | "decr") as op ] -> (
          match first_arg args with
          | Some x -> report x (if op = ":=" then "':='" else op)
          | None -> ())
      | Some [ m; fn ] when mutator_module m fn -> (
          match first_arg args with
          | Some x -> report x (m ^ "." ^ fn)
          | None -> ())
      | _ -> ()
    in
    let expr_hook iter e =
      match e.pexp_desc with
      | Pexp_fun (_, default, pat, body) ->
          Option.iter (iter.Ast_iterator.expr iter) default;
          with_pats [ pat ] (fun () -> iter.Ast_iterator.expr iter body)
      | Pexp_let (_, vbs, body) ->
          List.iter (fun vb -> iter.Ast_iterator.expr iter vb.pvb_expr) vbs;
          with_pats
            (List.map (fun vb -> vb.pvb_pat) vbs)
            (fun () -> iter.Ast_iterator.expr iter body)
      | Pexp_apply (f, args) ->
          check_mutation e f args;
          Ast_iterator.default_iterator.expr iter e
      | Pexp_setfield
          ({ pexp_desc = Pexp_ident { txt = Longident.Lident x; _ }; _ }, _, _)
        ->
          if free x then
            add e.pexp_loc
              (Printf.sprintf
                 "field assignment on '%s', which is captured from outside a \
                  closure passed to the domain pool; use Atomic, a mutex, or \
                  domain-confined state"
                 x);
          Ast_iterator.default_iterator.expr iter e
      | _ -> Ast_iterator.default_iterator.expr iter e
    in
    let case_hook iter c =
      with_pats [ c.pc_lhs ]
        (fun () ->
          Option.iter (iter.Ast_iterator.expr iter) c.pc_guard;
          iter.Ast_iterator.expr iter c.pc_rhs)
    in
    let it =
      {
        Ast_iterator.default_iterator with
        expr = expr_hook;
        case = case_hook;
      }
    in
    it.Ast_iterator.expr it closure
  in
  let is_closure e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> true
    | _ -> false
  in
  run_iterator
    (fun it e ->
      (match e.pexp_desc with
      | Pexp_apply (f, args) when spawn_head f ->
          List.iter
            (fun (_, a) -> if is_closure a then analyze_closure a)
            args
      | _ -> ());
      Ast_iterator.default_iterator.expr it e)
    structure;
  !findings

(* ------------------------------------------------------------------ *)
(* R2 — poly-compare                                                   *)
(* The bare polymorphic [compare] (any use: applied, or passed to
   List.sort / Array.sort / a Set functor), and [=]/[<>] against a
   structural literal ([], a constructor, a tuple, a record, an array).
   Both order unknown representations with [Stdlib.compare]'s raw
   runtime walk — the pre-PR-4 [Progress.render] misordering — and both
   have a monomorphic spelling ([Int.compare], [Float.compare], a pair
   comparator, [List.is_empty], [Option.is_none], a pattern match). *)

let structural_literal e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident ("[]" | "::" | "None" | "Some"); _ }, _)
    ->
      true
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ | Pexp_variant _ -> true
  | _ -> false

let r2_check ctx structure =
  let findings = ref [] in
  let add loc msg =
    findings :=
      Finding.of_location ~file:ctx.file ~rule:"poly-compare"
        ~severity:Finding.Error loc msg
      :: !findings
  in
  run_iterator
    (fun it e ->
      (match ident_path e with
      | Some [ "compare" ] ->
          add e.pexp_loc
            "bare polymorphic 'compare'; use a monomorphic comparator \
             (Int.compare, Float.compare, String.compare, or an explicit \
             tuple comparator)"
      | _ -> (
          match e.pexp_desc with
          | Pexp_apply (f, args) -> (
              match ident_path f with
              | Some [ ("=" | "<>") as op ]
                when List.exists (fun (_, a) -> structural_literal a) args ->
                  add e.pexp_loc
                    (Printf.sprintf
                       "polymorphic '%s' against a structural value; prefer a \
                        pattern match, List.is_empty, or Option.is_none/is_some"
                       op)
              | _ -> ())
          | _ -> ()));
      Ast_iterator.default_iterator.expr it e)
    structure;
  !findings

(* ------------------------------------------------------------------ *)
(* R3 — float-discipline                                               *)
(* Equality, [compare], or bare [min]/[max] where an operand is
   syntactically a float (a float literal, float arithmetic, or an
   int→float conversion): float equality is representation-sensitive
   and polymorphic min/max/compare mishandle NaN — the class of bug
   fixed in [Metrics.median] (PR 3). Ordering comparisons ([<], [>])
   are left alone: they are well-defined on non-NaN floats and flagging
   them would bury the signal. *)

let rec floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply (f, args) -> (
      match ident_path f with
      | Some [ ("+." | "-." | "*." | "/." | "**" | "float_of_int" | "~-.") ] ->
          true
      | Some [ "Float"; "of_int" ] -> true
      | Some [ ("fst" | "snd" | "ignore") ] ->
          List.exists (fun (_, a) -> floatish a) args
      | _ -> false)
  | Pexp_constraint (e, _) -> floatish e
  | _ -> false

let r3_check ctx structure =
  let findings = ref [] in
  let add loc msg =
    findings :=
      Finding.of_location ~file:ctx.file ~rule:"float-discipline"
        ~severity:Finding.Error loc msg
      :: !findings
  in
  run_iterator
    (fun it e ->
      (match e.pexp_desc with
      | Pexp_apply (f, args) -> (
          match ident_path f with
          | Some [ (("=" | "<>" | "==" | "!=" | "min" | "max" | "compare") as op) ]
            when List.exists (fun (_, a) -> floatish a) args ->
              add e.pexp_loc
                (Printf.sprintf
                   "'%s' on a float operand; use Float.compare / Float.equal \
                    / Float.min / Float.max (NaN-aware) or compare against an \
                    epsilon"
                   op)
          | _ -> ())
      | _ -> ());
      Ast_iterator.default_iterator.expr it e)
    structure;
  !findings

(* ------------------------------------------------------------------ *)
(* R4 — nondet-source                                                  *)
(* Wall-clock reads and unordered hash-table traversal: both are
   invisible nondeterminism that breaks checkpoint/golden exactness the
   moment their result reaches an output. [Hashtbl.fold]/[iter] escape
   the flag when the traversal feeds directly into a sort (including
   through a [|>]/[@@ ] pipeline) — the one shape whose output order is
   independent of table internals. Anything else is flagged: wall-clock
   timing metrics are legitimate but must say so with a suppression. *)

let sortish_name = function
  | Some name -> contains_sub name "sort"
  | None -> false

let sort_head e = sortish_name (last_component e)

let sortish_rhs e =
  match e.pexp_desc with
  | Pexp_ident _ -> sort_head e
  | Pexp_apply (f, _) -> sort_head f
  | _ -> false

let r4_check ctx structure =
  let findings = ref [] in
  let add loc msg =
    findings :=
      Finding.of_location ~file:ctx.file ~rule:"nondet-source"
        ~severity:Finding.Error loc msg
      :: !findings
  in
  let sorted = ref false in
  let with_sorted f =
    let saved = !sorted in
    sorted := true;
    f ();
    sorted := saved
  in
  let rec expr_hook it e =
    (match ident_path e with
    | Some [ "Random"; "self_init" ] ->
        add e.pexp_loc
          "Random.self_init seeds from the environment; thread an explicit \
           seeded Rng.t instead"
    | Some [ "Sys"; "time" ] | Some [ "Unix"; ("gettimeofday" | "time") ] ->
        add e.pexp_loc
          "wall-clock read; results derived from it are not reproducible \
           (suppress when this is a timing metric that never reaches routed \
           output)"
    | Some [ "Hashtbl"; (("fold" | "iter") as fn) ] when not !sorted ->
        add e.pexp_loc
          (Printf.sprintf
             "Hashtbl.%s traverses in hash order; sort the result before it \
              reaches an output, or suppress with the reason the order \
              cannot matter"
             fn)
    | _ -> ());
    match e.pexp_desc with
    | Pexp_apply (f, args) when sort_head f ->
        expr_hook it f;
        List.iter (fun (_, a) -> with_sorted (fun () -> expr_hook it a)) args
    | Pexp_apply
        ( ({ pexp_desc = Pexp_ident { txt = Longident.Lident "|>"; _ }; _ } as f),
          [ (_, lhs); (_, rhs) ] )
      when sortish_rhs rhs ->
        expr_hook it f;
        with_sorted (fun () -> expr_hook it lhs);
        expr_hook it rhs
    | Pexp_apply
        ( ({ pexp_desc = Pexp_ident { txt = Longident.Lident "@@"; _ }; _ } as f),
          [ (_, lhs); (_, rhs) ] )
      when sortish_rhs lhs ->
        expr_hook it f;
        expr_hook it lhs;
        with_sorted (fun () -> expr_hook it rhs)
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  run_iterator expr_hook structure;
  !findings

(* ------------------------------------------------------------------ *)
(* R5 — obs-discipline                                                 *)
(* Protects the Qls_obs allocation-free-when-disabled contract
   (DESIGN.md §10): [Qls_obs.stop ~attrs:[...]] with an eager literal
   attribute list must sit in a branch guarded by the once-per-pass
   [traced]/[enabled] read, and [Qls_obs.enabled]/[Qls_obs.counter]
   must not be re-read inside a loop or per-element closure. *)

let iteration_fn e =
  match ident_path e with
  | Some [ m; fn ] ->
      List.mem m [ "List"; "Array"; "Seq"; "Queue"; "Hashtbl" ]
      && List.mem fn
           [
             "iter"; "iteri"; "map"; "mapi"; "fold_left"; "fold_right"; "fold";
             "filter"; "filter_map"; "concat_map"; "for_all"; "exists";
           ]
  | _ -> false

let mentions_enabled cond =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match last_component e with
          | Some name
            when contains_sub name "enabled" || contains_sub name "traced"
                 || contains_sub name "trace" ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.Ast_iterator.expr it cond;
  !found

let literal_attrs args =
  List.exists
    (function
      | ( Asttypes.Labelled "attrs",
          { pexp_desc = Pexp_construct ({ txt = Longident.Lident "::"; _ }, _); _ }
        ) ->
          true
      | _ -> false)
    args

let r5_check ctx structure =
  let findings = ref [] in
  let add loc msg =
    findings :=
      Finding.of_location ~file:ctx.file ~rule:"obs-discipline"
        ~severity:Finding.Warning loc msg
      :: !findings
  in
  let loop = ref 0 and guarded = ref false in
  let in_loop f =
    incr loop;
    f ();
    decr loop
  in
  let with_guard f =
    let saved = !guarded in
    guarded := true;
    f ();
    guarded := saved
  in
  let is_closure e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> true
    | _ -> false
  in
  let rec expr_hook it e =
    match e.pexp_desc with
    | Pexp_while (cond, body) ->
        in_loop (fun () ->
            expr_hook it cond;
            expr_hook it body)
    | Pexp_for (_, lo, hi, _, body) ->
        expr_hook it lo;
        expr_hook it hi;
        in_loop (fun () -> expr_hook it body)
    | Pexp_ifthenelse (cond, then_, else_) when mentions_enabled cond ->
        expr_hook it cond;
        with_guard (fun () -> expr_hook it then_);
        Option.iter (expr_hook it) else_
    | Pexp_apply (f, args) ->
        (match ident_path f with
        | Some [ "Qls_obs"; "enabled" ] when !loop > 0 ->
            add e.pexp_loc
              "Qls_obs.enabled read inside a loop; read it once per pass \
               into a local and branch on that"
        | Some [ "Qls_obs"; "counter" ] when !loop > 0 ->
            add e.pexp_loc
              "Qls_obs.counter looked up inside a loop; hoist it to a \
               module-level lazy"
        | Some [ "Qls_obs"; "stop" ]
          when literal_attrs args && not !guarded ->
            add e.pexp_loc
              "Qls_obs.stop with an eager ~attrs list outside an \
               if-enabled/traced guard; the list allocates even with \
               tracing disabled"
        | _ -> ());
        if iteration_fn f then (
          expr_hook it f;
          List.iter
            (fun (_, a) ->
              if is_closure a then in_loop (fun () -> expr_hook it a)
              else expr_hook it a)
            args)
        else Ast_iterator.default_iterator.expr it e
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  run_iterator expr_hook structure;
  !findings

(* ------------------------------------------------------------------ *)
(* R6 — unbounded-wait                                                 *)
(* Scoped to the serving path (lib/serve, lib/harness): a raw sleep or
   an unbounded [Thread.join] there is a liveness hazard — the daemon's
   drain, watchdog, and reader threads must all make progress under a
   deadline, so every blocking wait needs either a bound (select with a
   timeout, a condition re-checked against a deadline) or a one-line
   [(* lint: unbounded-wait — why this terminates *)] justification.
   PR 7's watchdog exists precisely because a single quiet join can pin
   the whole process. Elsewhere in the tree sleeps are fine (fault
   injection's [Delay] is one on purpose), so the rule keys off the
   file path. *)

let r6_scope file =
  contains_sub file "lib/serve" || contains_sub file "lib/harness"

let r6_check ctx structure =
  if not (r6_scope ctx.file) then []
  else begin
    let findings = ref [] in
    let add loc msg =
      findings :=
        Finding.of_location ~file:ctx.file ~rule:"unbounded-wait"
          ~severity:Finding.Error loc msg
        :: !findings
    in
    run_iterator
      (fun it e ->
        (match ident_path e with
        | Some [ "Unix"; (("sleep" | "sleepf") as fn) ] ->
            add e.pexp_loc
              (Printf.sprintf
                 "Unix.%s in the serving path blocks a thread with no way to \
                  cancel it; wait on a select/condition with a timeout, or \
                  justify the bound with a suppression"
                 fn)
        | Some [ "Thread"; "delay" ] ->
            add e.pexp_loc
              "Thread.delay in the serving path blocks a thread with no way \
               to cancel it; wait on a select/condition with a timeout, or \
               justify the bound with a suppression"
        | Some [ "Thread"; "join" ] ->
            add e.pexp_loc
              "Thread.join in the serving path is unbounded if the thread \
               never exits; prove the thread's termination is bounded and \
               justify it with a suppression, or wait under a deadline"
        | _ -> ());
        Ast_iterator.default_iterator.expr it e)
      structure;
    !findings
  end

(* ------------------------------------------------------------------ *)
(* R7 — seeded-randomness                                              *)
(* Scoped to the solver stack (lib/sat, lib/router): portfolio racing
   records the winning configuration's seed so a race can be replayed
   bit-for-bit, which only works if every source of variation is a pure
   function of an explicit seed ([Solver.config_of_seed], [Rng.create]).
   Ambient [Random] state — seeded once per process, advanced by whoever
   calls it first — breaks that contract silently, so in these
   directories any [Random.*] use is an error. Elsewhere (e.g. a bench
   warmup) ambient randomness is merely suspicious, not forbidden. *)

let r7_scope file =
  contains_sub file "lib/sat" || contains_sub file "lib/router"

let r7_check ctx structure =
  if not (r7_scope ctx.file) then []
  else begin
    let findings = ref [] in
    run_iterator
      (fun it e ->
        (match ident_path e with
        | Some ("Random" :: _ :: _) ->
            findings :=
              Finding.of_location ~file:ctx.file ~rule:"seeded-randomness"
                ~severity:Finding.Error e.pexp_loc
                "the solver and router layers must derive all variation \
                 from an explicit seed (Solver.config_of_seed, Rng.create); \
                 ambient Random state breaks portfolio winner-seed replay"
              :: !findings
        | _ -> ());
        Ast_iterator.default_iterator.expr it e)
      structure;
    !findings
  end

(* ------------------------------------------------------------------ *)
(* R8 — distance-in-loop                                               *)
(* Scoped to the router layer (lib/router): [Device.distance] resolved
   per candidate inside an iteration closure, a sort comparator, or a
   while/for body repeats the APSP row lookup on every probe — the
   pattern PR 9's hot-path rewrite removed from the scoring loops.
   Hoist [Device.distance_row] (or [Device.distance_matrix]) out of the
   loop and index the returned row directly; the accessors alias the
   device's preallocated table, so the hoist is free. A genuinely
   once-per-round lookup can carry a suppression saying so. *)

let r8_scope file = contains_sub file "lib/router"

(* Broader than R5's [iteration_fn]: a sort comparator runs O(n log n)
   times and module-local folds (Graph.fold_edges) iterate too, so any
   head whose final name starts with an iteration-shaped prefix counts. *)
let r8_iteration_fn e =
  match last_component e with
  | Some name ->
      List.exists
        (fun pre ->
          String.length name >= String.length pre
          && String.equal (String.sub name 0 (String.length pre)) pre)
        [
          "iter"; "map"; "fold"; "filter"; "exists"; "for_all"; "find";
          "concat_map"; "sort"; "partition";
        ]
  | None -> false

let r8_check ctx structure =
  if not (r8_scope ctx.file) then []
  else begin
    let findings = ref [] in
    let add loc =
      findings :=
        Finding.of_location ~file:ctx.file ~rule:"distance-in-loop"
          ~severity:Finding.Error loc
          "Device.distance inside a per-candidate loop repeats the APSP \
           row lookup on every probe; hoist Device.distance_row (or \
           Device.distance_matrix) above the loop and index the row, or \
           suppress with the reason the lookup is once-per-round"
        :: !findings
    in
    let loop = ref 0 in
    let in_loop f =
      incr loop;
      f ();
      decr loop
    in
    let is_closure e =
      match e.pexp_desc with
      | Pexp_fun _ | Pexp_function _ -> true
      | _ -> false
    in
    let rec expr_hook it e =
      match e.pexp_desc with
      | Pexp_while (cond, body) ->
          in_loop (fun () ->
              expr_hook it cond;
              expr_hook it body)
      | Pexp_for (_, lo, hi, _, body) ->
          expr_hook it lo;
          expr_hook it hi;
          in_loop (fun () -> expr_hook it body)
      | Pexp_apply (f, args) ->
          (match ident_path f with
          | Some [ "Device"; "distance" ] when !loop > 0 -> add e.pexp_loc
          | _ -> ());
          if r8_iteration_fn f then (
            expr_hook it f;
            List.iter
              (fun (_, a) ->
                if is_closure a then in_loop (fun () -> expr_hook it a)
                else expr_hook it a)
              args)
          else Ast_iterator.default_iterator.expr it e
      | _ -> Ast_iterator.default_iterator.expr it e
    in
    run_iterator expr_hook structure;
    !findings
  end

(* ------------------------------------------------------------------ *)

let all =
  [
    {
      name = "domain-unsafe-capture";
      summary =
        "mutable container captured and mutated inside a closure passed to \
         the domain pool";
      severity = Finding.Error;
      check = r1_check;
    };
    {
      name = "poly-compare";
      summary =
        "bare polymorphic compare, or =/<> against a structural value";
      severity = Finding.Error;
      check = r2_check;
    };
    {
      name = "float-discipline";
      summary = "float equality / polymorphic min-max-compare on floats";
      severity = Finding.Error;
      check = r3_check;
    };
    {
      name = "nondet-source";
      summary =
        "wall-clock reads and unsorted hash-order traversal reaching results";
      severity = Finding.Error;
      check = r4_check;
    };
    {
      name = "obs-discipline";
      summary =
        "Qls_obs usage that breaks the allocation-free-when-disabled \
         contract";
      severity = Finding.Warning;
      check = r5_check;
    };
    {
      name = "unbounded-wait";
      summary =
        "raw sleeps and unbounded joins in the serving path (lib/serve, \
         lib/harness)";
      severity = Finding.Error;
      check = r6_check;
    };
    {
      name = "seeded-randomness";
      summary =
        "ambient Random use in the solver stack (lib/sat, lib/router), \
         where all variation must derive from an explicit seed";
      severity = Finding.Error;
      check = r7_check;
    };
    {
      name = "distance-in-loop";
      summary =
        "Device.distance resolved per candidate in a router loop instead \
         of a hoisted distance_row/distance_matrix";
      severity = Finding.Error;
      check = r8_check;
    };
  ]

let by_name name = List.find_opt (fun r -> String.equal r.name name) all
