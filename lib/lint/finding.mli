(** One static-analysis finding: a rule firing at a source location. *)

type severity = Error | Warning

type t = {
  file : string;  (** path as given to the engine *)
  line : int;     (** 1-based *)
  col : int;      (** 0-based *)
  rule : string;  (** rule name, e.g. ["poly-compare"] *)
  severity : severity;
  message : string;
}

val v :
  file:string -> line:int -> col:int -> rule:string -> severity:severity ->
  string -> t

val of_location : file:string -> rule:string -> severity:severity ->
  Location.t -> string -> t
(** Finding anchored at the start of a compiler-libs location. *)

val order : t -> t -> int
(** File, then line, then column, then rule — all monomorphic. *)

val to_human : t -> string
(** [file:line:col: severity [rule] message] — one line, no trailing
    newline. *)

val to_jsonl : t -> string
(** One JSON object per finding, keys [file]/[line]/[col]/[rule]/
    [severity]/[message]. *)

val severity_name : severity -> string
(** ["error"] / ["warning"]. *)

val json_escape : string -> string
(** Minimal JSON string escaping (quotes, backslashes, control chars),
    shared by the JSONL and SARIF sinks. *)
