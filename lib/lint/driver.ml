(* The lint driver shared by [analysis/qls_lint_main.exe] and the
   [qubikos lint] subcommand: resolve the rule subset, run the engine,
   apply the baseline, write the optional JSONL/SARIF sinks, and turn
   the outcome into the conventional exit code (0 clean, 1 findings,
   2 usage/configuration error). *)

type opts = {
  root : string;
  paths : string list;
  baseline : string option;
  write_baseline : string option;
  jsonl : string option;
  sarif : string option;
  rules : string list;  (** [] = the full catalogue *)
  jobs : int;
  check_stale : bool;
      (** fail (exit 1) when the baseline carries stale entries *)
  require_typed : bool;
      (** fail (exit 2) when a typed rule found no cmt for some file *)
  quiet : bool;
}

let default_opts =
  {
    root = ".";
    paths = [];
    baseline = None;
    write_baseline = None;
    jsonl = None;
    sarif = None;
    rules = [];
    jobs = 1;
    check_stale = false;
    require_typed = false;
    quiet = true;
  }

let resolve_rules = function
  | [] -> Ok Registry.all
  | names ->
      let unknown = ref [] in
      let rules =
        List.filter_map
          (fun n ->
            match Registry.by_name n with
            | Some r -> Some r
            | None ->
                unknown := n :: !unknown;
                None)
          names
      in
      (match List.rev !unknown with
      | [] -> Ok rules
      | u -> Error (Printf.sprintf "unknown rule(s): %s" (String.concat ", " u)))

let execute opts =
  match resolve_rules opts.rules with
  | Error msg ->
      Printf.eprintf "qls_lint: %s\n" msg;
      2
  | Ok rules -> (
      let report =
        Engine.run ~jobs:opts.jobs ~rules ~root:opts.root opts.paths
      in
      if
        opts.require_typed
        && Registry.needs_typed rules
        && not (List.is_empty report.Engine.typed_missing)
      then begin
        List.iter
          (fun f ->
            Printf.eprintf "qls_lint: no .cmt found for %s (build first?)\n" f)
          report.Engine.typed_missing;
        2
      end
      else
        match opts.write_baseline with
        | Some path ->
            let entries = Baseline.of_findings report.Engine.findings in
            let pruned =
              match Baseline.load path with
              | Ok old ->
                  List.length
                    (Baseline.apply old report.Engine.findings).Baseline.stale
              | Error _ -> 0
            in
            let oc = open_out path in
            output_string oc (Baseline.render entries);
            close_out oc;
            Printf.printf
              "qls_lint: wrote %d baseline entr%s to %s (%d stale pruned)\n"
              (List.length entries)
              (match entries with [ _ ] -> "y" | _ -> "ies")
              path pruned;
            0
        | None -> (
            let applied =
              match opts.baseline with
              | None ->
                  {
                    Baseline.kept = report.Engine.findings;
                    waived = 0;
                    stale = [];
                  }
              | Some path -> (
                  match Baseline.load path with
                  | Ok entries ->
                      Baseline.apply entries report.Engine.findings
                  | Error msg ->
                      Printf.eprintf "qls_lint: baseline %s: %s\n" path msg;
                      exit 2)
            in
            List.iter
              (fun f -> print_endline (Finding.to_human f))
              applied.Baseline.kept;
            List.iter
              (fun e ->
                Printf.printf
                  "%s: stale baseline entry %s\t%s\t%d (fewer findings remain \
                   — regenerate with --write-baseline)\n"
                  (if opts.check_stale then "error" else "note")
                  e.Baseline.file e.Baseline.rule e.Baseline.allowed)
              applied.Baseline.stale;
            (match opts.jsonl with
            | None -> ()
            | Some path ->
                let oc = open_out path in
                List.iter
                  (fun f ->
                    output_string oc (Finding.to_jsonl f);
                    output_char oc '\n')
                  applied.Baseline.kept;
                close_out oc);
            (match opts.sarif with
            | None -> ()
            | Some path ->
                Sarif.write ~path ~rules:Registry.all
                  ~findings:applied.Baseline.kept);
            if not opts.quiet then
              Printf.printf
                "qls_lint: %d file(s), %d finding(s) (%d suppressed in \
                 source, %d waived by baseline), typed pass covered %d \
                 file(s)\n"
                report.Engine.files
                (List.length applied.Baseline.kept)
                report.Engine.suppressed applied.Baseline.waived
                report.Engine.typed_files;
            match
              ( applied.Baseline.kept,
                opts.check_stale
                && not (List.is_empty applied.Baseline.stale) )
            with
            | [], false -> 0
            | _ -> 1))

let usage prog =
  Printf.sprintf
    "%s [options] [path ...]\n\
     Lints lib/, bin/ and bench/ under --root when no paths are given.\n\
     Exit status: 0 clean, 1 findings, 2 usage/configuration error.\n\
     Options:"
    prog

(* Arg-based front end used by analysis/qls_lint_main.exe. *)
let main ~prog argv =
  let root = ref "." in
  let baseline_path = ref "" in
  let jsonl_path = ref "" in
  let sarif_path = ref "" in
  let write_baseline = ref "" in
  let rule_names = ref "" in
  let jobs = ref 1 in
  let check_stale = ref false in
  let require_typed = ref false in
  let quiet = ref false in
  let paths = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR  tree root (default .)");
      ( "--baseline",
        Arg.Set_string baseline_path,
        "FILE  grandfather file; findings covered by it are waived" );
      ( "--jsonl",
        Arg.Set_string jsonl_path,
        "FILE  also write the surviving findings as JSONL" );
      ( "--sarif",
        Arg.Set_string sarif_path,
        "FILE  also write the surviving findings as SARIF 2.1.0" );
      ( "--write-baseline",
        Arg.Set_string write_baseline,
        "FILE  write the current findings as a fresh baseline (pruning stale \
         entries) and exit 0" );
      ( "--rules",
        Arg.Set_string rule_names,
        "NAMES  comma-separated rule subset (default: all)" );
      ( "--jobs",
        Arg.Set_int jobs,
        "N  lint N files in parallel on pool domains (default 1)" );
      ( "--check",
        Arg.Set check_stale,
        " fail when the baseline carries stale entries" );
      ( "--require-typed",
        Arg.Set require_typed,
        " fail when a typed rule found no .cmt for some file" );
      ("--quiet", Arg.Set quiet, " suppress the summary line");
    ]
  in
  match
    Arg.parse_argv ~current:(ref 0) argv spec
      (fun p -> paths := p :: !paths)
      (usage prog)
  with
  | exception Arg.Bad msg ->
      prerr_string msg;
      2
  | exception Arg.Help msg ->
      print_string msg;
      0
  | () ->
      let opt_of_string s = if String.equal s "" then None else Some s in
      execute
        {
          root = !root;
          paths = List.rev !paths;
          baseline = opt_of_string !baseline_path;
          write_baseline = opt_of_string !write_baseline;
          jsonl = opt_of_string !jsonl_path;
          sarif = opt_of_string !sarif_path;
          rules =
            (if String.equal !rule_names "" then []
             else
               String.split_on_char ',' !rule_names |> List.map String.trim
               |> List.filter (fun s -> s <> ""));
          jobs = !jobs;
          check_stale = !check_stale;
          require_typed = !require_typed;
          quiet = !quiet;
        }
