(* Parse → rules → suppressions for one file; directory walking for the
   tree. The untyped pass uses compiler-libs ([Parse.implementation]) on
   the raw source, so it sees exactly what the compiler sees — no ppx.
   The typed pass loads the build's [.cmt] files through [Cmt_index] and
   runs the [Registry.Typed] rules on the Typedtree; files whose cmt is
   missing are counted, not failed (pass [require_typed] at the driver
   to harden that). Both passes feed the same suppression filter.

   The walk parallelises over [Qls_harness.Pool] domains: per-file
   results land in a slot indexed by the sorted walk order and are
   merged in that order, so the report is bit-identical for every
   [jobs]. compiler-libs parsing mutates global state (docstrings,
   location bookkeeping), so parses and cmt loads serialise behind one
   mutex; rule iteration — the expensive part — runs concurrently. *)

type report = {
  findings : Finding.t list;  (** unsuppressed, sorted *)
  suppressed : int;           (** findings silenced by in-source comments *)
  files : int;
  parse_failures : int;
  typed_files : int;          (** files the typed pass actually covered *)
  typed_missing : string list;
      (** files typed rules wanted but no cmt was found for *)
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* compiler-libs globals (Docstrings, Location) are not domain-safe. *)
let compiler_mutex = Mutex.create ()

let parse path src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception Syntaxerr.Error err ->
      let loc = Syntaxerr.location_of_error err in
      Error
        (Finding.of_location ~file:path ~rule:"parse-error"
           ~severity:Finding.Error loc "file does not parse")
  | exception e ->
      Error
        (Finding.v ~file:path ~line:1 ~col:0 ~rule:"parse-error"
           ~severity:Finding.Error (Printexc.to_string e))

(* Untyped single-source entry point, kept for the rule fixture tests. *)
let lint_source ~rules ~file src =
  match parse file src with
  | Error f -> ([ f ], 0, 1)
  | Ok structure ->
      let ctx = { Rules.file } in
      let raw =
        List.concat_map (fun r -> r.Rules.check ctx structure) rules
      in
      let sup = Suppress.scan src in
      let kept, silenced =
        List.partition
          (fun (f : Finding.t) ->
            not (Suppress.suppressed sup ~line:f.Finding.line ~rule:f.Finding.rule))
          raw
      in
      (List.sort Finding.order kept, List.length silenced, 0)

let lint_file ~rules path = lint_source ~rules ~file:path (read_file path)

(* Typed single-source entry point (suppressions applied), for tests
   that drive a typed rule over a fixture's typedtree directly. *)
let lint_typed_source ~rules ~guards ~file ~src structure =
  let ctx = { Typed_rules.file; guards } in
  let raw =
    List.concat_map (fun r -> r.Typed_rules.check ctx structure) rules
  in
  let sup = Suppress.scan src in
  let kept, silenced =
    List.partition
      (fun (f : Finding.t) ->
        not (Suppress.suppressed sup ~line:f.Finding.line ~rule:f.Finding.rule))
      raw
  in
  (List.sort Finding.order kept, List.length silenced)

(* Deterministic walk: directory entries sorted with [String.compare],
   [_build] and dotfiles skipped. *)
let rec ml_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.sort String.compare
  |> List.concat_map (fun name ->
         if String.equal name "_build" || (String.length name > 0 && name.[0] = '.')
         then []
         else
           let p = Filename.concat dir name in
           if Sys.is_directory p then ml_files p
           else if Filename.check_suffix name ".ml" then [ p ]
           else [])

let default_dirs = [ "lib"; "bin"; "bench" ]

(* "./lib/foo.ml" and "lib/foo.ml" must be the same file as far as the
   baseline is concerned. *)
let normalize p =
  if String.length p > 2 && String.sub p 0 2 = "./" then
    String.sub p 2 (String.length p - 2)
  else p

let collect_paths ~root paths =
  let paths =
    match paths with
    | [] -> List.filter Sys.file_exists (List.map (Filename.concat root) default_dirs)
    | ps -> ps
  in
  List.concat_map
    (fun p -> if Sys.is_directory p then ml_files p else [ p ])
    paths
  |> List.map normalize

let relativize ~root path =
  let root = normalize root in
  if root = "." || root = "" then path
  else
    let prefix = if String.length root > 0 && root.[String.length root - 1] = '/' then root else root ^ "/" in
    let lp = String.length prefix and lpath = String.length path in
    if lpath > lp && String.sub path 0 lp = prefix then
      String.sub path lp (lpath - lp)
    else path

let default_build_root root =
  let b = Filename.concat root (Filename.concat "_build" "default") in
  if Sys.file_exists b && Sys.is_directory b then b else root

type file_result = {
  fr_findings : Finding.t list;
  fr_suppressed : int;
  fr_failures : int;
  fr_typed : bool;
  fr_missing : string option;
}

let run ?(jobs = 1) ?build_root ~rules ~root paths =
  let untyped, typed = Registry.split rules in
  let files = Array.of_list (collect_paths ~root paths) in
  let n = Array.length files in
  let sources = Array.map read_file files in
  let guards = Typed_rules.Guards.empty () in
  if not (List.is_empty typed) then
    Array.iteri
      (fun i p -> Typed_rules.Guards.add_file guards ~file:p sources.(i))
      files;
  let index =
    if List.is_empty typed then None
    else
      let build_root =
        match build_root with Some b -> b | None -> default_build_root root
      in
      Some (Cmt_index.create ~build_root)
  in
  let lint_one i _ =
    let path = files.(i) and src = sources.(i) in
    let raw_untyped, failures =
      match untyped with
      | [] -> ([], 0)
      | _ -> (
          let parsed =
            Mutex.protect compiler_mutex (fun () -> parse path src)
          in
          match parsed with
          | Error f -> ([ f ], 1)
          | Ok structure ->
              let ctx = { Rules.file = path } in
              (List.concat_map (fun check -> check ctx structure) untyped, 0))
    in
    let raw_typed, covered, missing =
      match index with
      | None -> ([], false, None)
      | Some idx -> (
          match Cmt_index.find idx ~source:(relativize ~root path) with
          | Cmt_index.Loaded structure ->
              let ctx = { Typed_rules.file = path; guards } in
              ( List.concat_map (fun check -> check ctx structure) typed,
                true,
                None )
          | Cmt_index.Unavailable -> ([], false, Some path))
    in
    let sup = Suppress.scan src in
    let kept, silenced =
      List.partition
        (fun (f : Finding.t) ->
          not (Suppress.suppressed sup ~line:f.Finding.line ~rule:f.Finding.rule))
        (raw_untyped @ raw_typed)
    in
    {
      fr_findings = List.sort Finding.order kept;
      fr_suppressed = List.length silenced;
      fr_failures = failures;
      fr_typed = covered;
      fr_missing = missing;
    }
  in
  let results =
    if jobs <= 1 || n <= 1 then Array.init n (fun i -> lint_one i ())
    else Qls_harness.Pool.run ~jobs ~f:lint_one (Array.init n Fun.id)
  in
  let findings, suppressed, failures, typed_files, missing =
    Array.fold_left
      (fun (fs, sup, fail, tf, miss) r ->
        ( r.fr_findings :: fs,
          sup + r.fr_suppressed,
          fail + r.fr_failures,
          (tf + if r.fr_typed then 1 else 0),
          match r.fr_missing with Some m -> m :: miss | None -> miss ))
      ([], 0, 0, 0, []) results
  in
  {
    findings = List.sort Finding.order (List.concat findings);
    suppressed;
    files = n;
    parse_failures = failures;
    typed_files;
    typed_missing = List.rev missing;
  }
