(* Parse → rules → suppressions for one file; directory walking for the
   tree. Parsing uses compiler-libs ([Parse.implementation]) on the raw
   source, so the engine sees exactly what the compiler sees — no ppx,
   no type information. *)

type report = {
  findings : Finding.t list;  (** unsuppressed, sorted *)
  suppressed : int;           (** findings silenced by in-source comments *)
  files : int;
  parse_failures : int;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse path src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception Syntaxerr.Error err ->
      let loc = Syntaxerr.location_of_error err in
      Error
        (Finding.of_location ~file:path ~rule:"parse-error"
           ~severity:Finding.Error loc "file does not parse")
  | exception e ->
      Error
        (Finding.v ~file:path ~line:1 ~col:0 ~rule:"parse-error"
           ~severity:Finding.Error (Printexc.to_string e))

let lint_source ~rules ~file src =
  match parse file src with
  | Error f -> ([ f ], 0, 1)
  | Ok structure ->
      let ctx = { Rules.file } in
      let raw =
        List.concat_map (fun r -> r.Rules.check ctx structure) rules
      in
      let sup = Suppress.scan src in
      let kept, silenced =
        List.partition
          (fun (f : Finding.t) ->
            not (Suppress.suppressed sup ~line:f.Finding.line ~rule:f.Finding.rule))
          raw
      in
      (List.sort Finding.order kept, List.length silenced, 0)

let lint_file ~rules path = lint_source ~rules ~file:path (read_file path)

(* Deterministic walk: directory entries sorted with [String.compare],
   [_build] and dotfiles skipped. *)
let rec ml_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.sort String.compare
  |> List.concat_map (fun name ->
         if String.equal name "_build" || (String.length name > 0 && name.[0] = '.')
         then []
         else
           let p = Filename.concat dir name in
           if Sys.is_directory p then ml_files p
           else if Filename.check_suffix name ".ml" then [ p ]
           else [])

let default_dirs = [ "lib"; "bin"; "bench" ]

(* "./lib/foo.ml" and "lib/foo.ml" must be the same file as far as the
   baseline is concerned. *)
let normalize p =
  if String.length p > 2 && String.sub p 0 2 = "./" then
    String.sub p 2 (String.length p - 2)
  else p

let collect_paths ~root paths =
  let paths =
    match paths with
    | [] -> List.filter Sys.file_exists (List.map (Filename.concat root) default_dirs)
    | ps -> ps
  in
  List.concat_map
    (fun p -> if Sys.is_directory p then ml_files p else [ p ])
    paths
  |> List.map normalize

let run ~rules ~root paths =
  let files = collect_paths ~root paths in
  let findings, suppressed, failures =
    List.fold_left
      (fun (fs, sup, fail) path ->
        let f, s, e = lint_file ~rules path in
        (f :: fs, sup + s, fail + e))
      ([], 0, 0) files
  in
  {
    findings = List.sort Finding.order (List.concat findings);
    suppressed;
    files = List.length files;
    parse_failures = failures;
  }
