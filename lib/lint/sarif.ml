(* SARIF 2.1.0 sink: one run, the full rule catalogue under
   [tool.driver.rules], one [result] per surviving finding. The output
   is deterministic — findings arrive sorted from the engine and the
   catalogue order is the registry order — so the artifact diffs cleanly
   across CI runs. Columns are emitted 1-based per the SARIF spec
   (Finding.col is 0-based). *)

type json =
  | Str of string
  | Int of int
  | Arr of json list
  | Obj of (string * json) list

let rec emit b = function
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (Finding.json_escape s);
      Buffer.add_char b '"'
  | Int i -> Buffer.add_string b (string_of_int i)
  | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          emit b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          emit b (Str k);
          Buffer.add_char b ':';
          emit b v)
        fields;
      Buffer.add_char b '}'

let level_of_severity = function
  | Finding.Error -> "error"
  | Finding.Warning -> "warning"

let rule_json (r : Registry.t) =
  Obj
    [
      ("id", Str r.Registry.name);
      ("shortDescription", Obj [ ("text", Str r.Registry.summary) ]);
      ( "defaultConfiguration",
        Obj [ ("level", Str (level_of_severity r.Registry.severity)) ] );
    ]

let result_json ~rule_index (f : Finding.t) =
  let fields =
    [
      ("ruleId", Str f.Finding.rule);
      ("level", Str (level_of_severity f.Finding.severity));
      ("message", Obj [ ("text", Str f.Finding.message) ]);
      ( "locations",
        Arr
          [
            Obj
              [
                ( "physicalLocation",
                  Obj
                    [
                      ( "artifactLocation",
                        Obj [ ("uri", Str f.Finding.file) ] );
                      ( "region",
                        Obj
                          [
                            ("startLine", Int (max 1 f.Finding.line));
                            ("startColumn", Int (f.Finding.col + 1));
                          ] );
                    ] );
              ];
          ] );
    ]
  in
  match rule_index f.Finding.rule with
  | Some i -> Obj (("ruleId", Str f.Finding.rule) :: ("ruleIndex", Int i) :: List.tl fields)
  | None -> Obj fields

let render ~rules ~findings =
  let rule_index name =
    let rec go i = function
      | [] -> None
      | (r : Registry.t) :: rest ->
          if String.equal r.Registry.name name then Some i else go (i + 1) rest
    in
    go 0 rules
  in
  let doc =
    Obj
      [
        ( "$schema",
          Str
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
        );
        ("version", Str "2.1.0");
        ( "runs",
          Arr
            [
              Obj
                [
                  ( "tool",
                    Obj
                      [
                        ( "driver",
                          Obj
                            [
                              ("name", Str "qls_lint");
                              ("informationUri", Str "https://github.com/qubikos/qubikos");
                              ("semanticVersion", Str "1.0.0");
                              ("rules", Arr (List.map rule_json rules));
                            ] );
                      ] );
                  ("columnKind", Str "utf16CodeUnits");
                  ("results", Arr (List.map (result_json ~rule_index) findings));
                ];
            ] );
      ]
  in
  let b = Buffer.create 4096 in
  emit b doc;
  Buffer.add_char b '\n';
  Buffer.contents b

let write ~path ~rules ~findings =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (render ~rules ~findings))
