(* The unified rule catalogue: R1–R8 run on the Parsetree of the raw
   source, R9–R12 on the Typedtree loaded from [.cmt] files. A rule
   declares which representation it needs; the engine runs whichever
   passes the selected rules require and feeds both through the same
   Finding/Suppress/Baseline pipeline. *)

type repr =
  | Untyped of (Rules.ctx -> Parsetree.structure -> Finding.t list)
  | Typed of (Typed_rules.ctx -> Typedtree.structure -> Finding.t list)

type t = {
  name : string;
  summary : string;
  severity : Finding.severity;
  repr : repr;
}

let of_rule (r : Rules.t) =
  {
    name = r.Rules.name;
    summary = r.Rules.summary;
    severity = r.Rules.severity;
    repr = Untyped r.Rules.check;
  }

let of_typed (r : Typed_rules.t) =
  {
    name = r.Typed_rules.name;
    summary = r.Typed_rules.summary;
    severity = r.Typed_rules.severity;
    repr = Typed r.Typed_rules.check;
  }

let all = List.map of_rule Rules.all @ List.map of_typed Typed_rules.all
let by_name name = List.find_opt (fun r -> String.equal r.name name) all

let split rules =
  List.partition_map
    (fun r ->
      match r.repr with Untyped c -> Either.Left c | Typed c -> Either.Right c)
    rules

let needs_typed rules =
  List.exists (fun r -> match r.repr with Typed _ -> true | _ -> false) rules
