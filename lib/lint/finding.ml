type severity = Error | Warning

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : severity;
  message : string;
}

let v ~file ~line ~col ~rule ~severity message =
  { file; line; col; rule; severity; message }

let of_location ~file ~rule ~severity (loc : Location.t) message =
  let p = loc.Location.loc_start in
  {
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    severity;
    message;
  }

let order a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let severity_name = function Error -> "error" | Warning -> "warning"

let to_human t =
  Printf.sprintf "%s:%d:%d: %s [%s] %s" t.file t.line t.col
    (severity_name t.severity) t.rule t.message

(* Minimal JSON string escaping: the messages are ASCII prose assembled
   by the rules themselves, so only quotes, backslashes and control
   characters need care. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_jsonl t =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","severity":"%s","message":"%s"}|}
    (json_escape t.file) t.line t.col (json_escape t.rule)
    (severity_name t.severity)
    (json_escape t.message)
