type entry = { rules : string list; standalone : bool }

type t = (int * entry) list
(* line number -> suppression; files have few suppressions, so an assoc
   list keeps this module free of hash-order concerns. *)

let is_rule_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-' || c = '_'

(* Extract the rule names out of "<rules> [— reason]" where <rules> is a
   comma/space separated list of rule tokens. Scanning stops at the
   first character that can start neither a token nor a separator (the
   dash of an em dash or "--" reason marker, or the comment closer). *)
let parse_rules s =
  let n = String.length s in
  let rec skip_sep i =
    if i < n && (s.[i] = ' ' || s.[i] = ',' || s.[i] = '\t') then
      skip_sep (i + 1)
    else i
  in
  let rec token_end i = if i < n && is_rule_char s.[i] then token_end (i + 1) else i in
  let rec go acc i =
    let i = skip_sep i in
    if i >= n || not (is_rule_char s.[i]) then List.rev acc
    else
      let j = token_end i in
      (* A lone '-' run (start of "--" or mid em-dash bytes) ends the
         rule list; real rule names contain a letter or digit. *)
      let tok = String.sub s i (j - i) in
      if String.exists (fun c -> c <> '-' && c <> '_') tok then
        go (tok :: acc) j
      else List.rev acc
  in
  go [] 0

let find_sub ~start hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  if nn = 0 then None else go start

let scan_line line =
  match find_sub ~start:0 line "(*" with
  | None -> None
  | Some copen -> (
      match find_sub ~start:copen line "lint:" with
      | None -> None
      | Some l -> (
          let tail = String.sub line (l + 5) (String.length line - l - 5) in
          match parse_rules tail with
          | [] -> None
          | rules ->
              let before = String.trim (String.sub line 0 copen) in
              Some { rules; standalone = before = "" }))

let scan src =
  let lines = String.split_on_char '\n' src in
  let _, acc =
    List.fold_left
      (fun (lineno, acc) line ->
        match scan_line line with
        | Some e -> (lineno + 1, (lineno, e) :: acc)
        | None -> (lineno + 1, acc))
      (1, []) lines
  in
  List.rev acc

let matches entry rule =
  List.exists (fun r -> r = "all" || String.equal r rule) entry.rules

let suppressed t ~line ~rule =
  List.exists
    (fun (l, e) ->
      (l = line && matches e rule)
      || (l = line - 1 && e.standalone && matches e rule))
    t

let count t = List.length t
