(** In-source suppression comments.

    A finding is suppressed by a comment of the form

    {v (* lint: <rule>[, <rule>...] — <reason> *) v}

    placed either on the flagged line itself, or alone on the line
    immediately above it. The rule name [all] suppresses every rule.
    The reason (after an em dash or ["--"]) is free text; it is not
    interpreted but the convention is mandatory in review. *)

type t

val scan : string -> t
(** Collect the suppression comments of a whole source file. *)

val suppressed : t -> line:int -> rule:string -> bool
(** Is [rule] suppressed at [line] — by a same-line comment, or by a
    comment-only line directly above? *)

val count : t -> int
(** Number of suppression comments found (for reporting). *)
