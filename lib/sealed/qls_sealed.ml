(* The one implementation of the CRC-sealed JSONL framing (see the mli).
   Before this module existed the seal lived in two hand-kept copies
   (harness store, obs trace sink); both now route here, as does the
   serve daemon's request log. *)

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, the zlib polynomial) over the unsealed payload.  *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      c :=
        Int32.logxor
          (Int32.shift_right_logical !c 8)
          table.(Int32.to_int
                   (Int32.logand
                      (Int32.logxor !c (Int32.of_int (Char.code ch)))
                      0xffl)))
    s;
  Printf.sprintf "%08lx" (Int32.logxor !c 0xFFFFFFFFl)

(* Seal a JSON object line by splicing a ["crc"] member (over the bytes
   of the {e unsealed} object) in front of the closing brace; [unseal]
   reverses it. Byte-level on purpose: the checksum must cover the exact
   serialisation, not a re-encoding. *)
let crc_marker = {|,"crc":"|}

let seal payload =
  Printf.sprintf "%s%s%s\"}"
    (String.sub payload 0 (String.length payload - 1))
    crc_marker (crc32 payload)

type unsealed = No_crc | Crc_ok | Crc_mismatch

let unseal line =
  let n = String.length line and m = String.length crc_marker in
  (* The crc member is always the one spliced last: 8 hex digits and a
     closing quote+brace at the very end of the line. *)
  let tail_len = m + 8 + 2 in
  if
    n >= tail_len
    && String.sub line (n - tail_len) m = crc_marker
    && line.[n - 2] = '"'
    && line.[n - 1] = '}'
  then
    let declared = String.sub line (n - 10) 8 in
    let payload = String.sub line 0 (n - tail_len) ^ "}" in
    if String.equal (crc32 payload) declared then (payload, Crc_ok)
    else (payload, Crc_mismatch)
  else (line, No_crc)

let unseal_ok line =
  match unseal line with payload, Crc_ok -> Some payload | _ -> None

(* ------------------------------------------------------------------ *)
(* Flat JSON: the escape and the object codec every sealed sink uses.  *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

(* Parse one flat JSON object into an association list; string values are
   unescaped, numbers returned as raw text. Raises [Malformed] on
   anything else — loaders quarantine such lines. *)
let fields_of_line line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some d when Char.equal d c -> incr pos
    | Some _ | None -> malformed "expected %C at byte %d" c !pos
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> malformed "bad hex digit %C in \\u escape" c
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then malformed "unterminated string";
      match line.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          if !pos + 1 >= n then malformed "dangling backslash";
          (match line.[!pos + 1] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              (* Strict: exactly four hex digits, no signs/underscores,
                 no surrogate halves; the code point is emitted as
                 UTF-8, not truncated to its low byte. *)
              if !pos + 5 >= n then malformed "truncated \\u escape";
              let code =
                (hex_digit line.[!pos + 2] lsl 12)
                lor (hex_digit line.[!pos + 3] lsl 8)
                lor (hex_digit line.[!pos + 4] lsl 4)
                lor hex_digit line.[!pos + 5]
              in
              if code >= 0xD800 && code <= 0xDFFF then
                malformed "surrogate code point \\u%04x" code;
              Buffer.add_utf_8_uchar b (Uchar.of_int code);
              pos := !pos + 4
          | c -> malformed "unknown escape \\%C" c);
          pos := !pos + 2;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && (match line.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then malformed "expected a value at byte %d" !pos;
    String.sub line start (!pos - start)
  in
  let parse_literal () =
    (* true / false / null — returned as raw text like numbers *)
    let try_word w =
      let len = String.length w in
      if !pos + len <= n && String.equal (String.sub line !pos len) w then begin
        pos := !pos + len;
        Some w
      end
      else None
    in
    match List.find_map try_word [ "true"; "false"; "null" ] with
    | Some w -> w
    | None -> malformed "expected a value at byte %d" !pos
  in
  expect '{';
  let rec members acc =
    skip_ws ();
    match peek () with
    | Some '}' ->
        incr pos;
        skip_ws ();
        if !pos <> n then malformed "trailing bytes after object";
        List.rev acc
    | _ ->
        let key = parse_string () in
        expect ':';
        skip_ws ();
        let value =
          match peek () with
          | Some '"' -> parse_string ()
          | Some ('t' | 'f' | 'n') -> parse_literal ()
          | Some _ -> parse_number ()
          | None -> malformed "truncated object"
        in
        skip_ws ();
        (match peek () with Some ',' -> incr pos | Some _ | None -> ());
        members ((key, value) :: acc)
  in
  members []

(* ------------------------------------------------------------------ *)
(* Quarantine                                                          *)
(* ------------------------------------------------------------------ *)

type corrupt = { line_no : int; reason : string; text : string }

let quarantine_append ~path bad =
  if not (List.is_empty bad) then begin
    let qc =
      open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
    in
    List.iter
      (fun c ->
        Printf.fprintf qc "# line %d: %s\n%s\n" c.line_no c.reason c.text)
      bad;
    close_out qc
  end

(* ------------------------------------------------------------------ *)
(* Sealed log                                                          *)
(* ------------------------------------------------------------------ *)

module Log = struct
  type t = {
    path : string;
    oc : out_channel;
    fsync : bool;
    mangle : key:string -> string -> string;
    mutex : Mutex.t;
  }

  let open_append ?(fsync = false) ?(mangle = fun ~key:_ s -> s) path =
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
    in
    { path; oc; fsync; mangle; mutex = Mutex.create () }

  let append_sealed t ~key line =
    (* One buffered write of the whole line then a flush, under the
       mutex: concurrent writers never interleave within a line, and a
       kill can only ever truncate the final line (which loading
       quarantines). The mangle hook sees the sealed bytes, newline
       included, so an injected torn write really does splice into the
       next line. *)
    Mutex.protect t.mutex (fun () ->
        output_string t.oc (t.mangle ~key (line ^ "\n"));
        flush t.oc;
        if t.fsync then Unix.fsync (Unix.descr_of_out_channel t.oc))

  let append t ~key payload = append_sealed t ~key (seal payload)
  let path t = t.path
  let close t = close_out t.oc

  let load ?(strict = true) ?(mangle = fun ~line_no:_ s -> s) path =
    if not (Sys.file_exists path) then ([], [])
    else begin
      let ic = open_in path in
      let lines = ref [] and bad = ref [] in
      (try
         let line_no = ref 0 in
         while true do
           let raw = input_line ic in
           incr line_no;
           let raw = mangle ~line_no:!line_no raw in
           if String.trim raw <> "" then begin
             let payload, verdict = unseal raw in
             match verdict with
             | Crc_ok -> lines := (!line_no, payload) :: !lines
             | Crc_mismatch ->
                 bad :=
                   { line_no = !line_no; reason = "crc mismatch"; text = raw }
                   :: !bad
             | No_crc ->
                 if strict then
                   bad :=
                     { line_no = !line_no; reason = "missing seal"; text = raw }
                     :: !bad
                 else lines := (!line_no, payload) :: !lines
           end
         done
       with End_of_file -> ());
      close_in ic;
      (List.rev !lines, List.rev !bad)
    end
end
