(** CRC-sealed JSONL framing, shared by every append-only line sink.

    One line = one flat JSON object carrying a ["crc"] member over the
    bytes of the {e unsealed} object. The framing gives each sink the
    same crash contract: a whole line is written in one buffered write
    and flushed, so a kill can only ever truncate the final line, and
    the seal catches exactly that (plus any later bit rot) at load time.

    This module is the single implementation of the seal; the result
    {!Qls_harness.Store}, the {!Qls_obs} trace sink and the serve
    daemon's request log all frame their lines through it instead of
    keeping private copies. It is deliberately dependency-free: callers
    that want fault injection pass their mangle hook in. *)

(** {1 Checksum and framing} *)

val crc32 : string -> string
(** CRC32 (IEEE 802.3, the zlib polynomial) of the payload, as 8 lowercase
    hex digits. *)

val seal : string -> string
(** [seal payload] splices [,"crc":"<crc32>"] in front of the closing
    brace of a serialised flat JSON object. Byte-level on purpose: the
    checksum covers the exact serialisation, not a re-encoding. The
    payload must end in ['}']. *)

type unsealed =
  | No_crc  (** no seal present — a legacy (pre-seal) line *)
  | Crc_ok
  | Crc_mismatch

val unseal : string -> string * unsealed
(** [unseal line] strips the seal and reports its verdict. On [No_crc]
    the line is returned unchanged (callers that accept legacy lines
    parse it anyway; strict callers treat it as damage). *)

val unseal_ok : string -> string option
(** Strict form: the payload iff the line carries a valid seal. *)

(** {1 Flat JSON} *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslash, control bytes). *)

exception Malformed of string

val fields_of_line : string -> (string * string) list
(** Parse one flat JSON object (string, number, and [true]/[false]/[null]
    members only — all any sealed sink writes) into an association list;
    string values are unescaped, numbers and literals returned as raw
    text.
    @raise Malformed on anything else. *)

(** {1 Quarantine} *)

type corrupt = { line_no : int; reason : string; text : string }
(** One damaged line as read: 1-based position, why it was rejected, and
    the raw bytes (preserved for forensics, never surfaced as data). *)

val quarantine_append : path:string -> corrupt list -> unit
(** Append damaged lines to [path] in the store's quarantine format
    (["# line N: reason"] followed by the raw bytes). No-op on []. *)

(** {1 Sealed log} *)

(** An append-only sealed JSONL sink: one sealed, flushed line per
    append under a mutex, so concurrent domains never interleave within
    a line and a kill can only truncate the final one. *)
module Log : sig
  type t

  val open_append :
    ?fsync:bool -> ?mangle:(key:string -> string -> string) -> string -> t
  (** Open (creating if needed) for appending. [mangle] is applied to
      the sealed bytes of every line, newline included — the fault
      injection hook; default identity. [fsync] syncs after every
      append. *)

  val append : t -> key:string -> string -> unit
  (** [append t ~key payload] seals the flat-JSON [payload] and writes
      it as one line. [key] is handed to the mangle hook (a task or
      request id), it does not reach the file. *)

  val append_sealed : t -> key:string -> string -> unit
  (** Like {!append} for a line the caller already sealed. *)

  val path : t -> string
  val close : t -> unit

  val load :
    ?strict:bool ->
    ?mangle:(line_no:int -> string -> string) ->
    string ->
    (int * string) list * corrupt list
  (** Read a sealed log back: unsealed payloads with their 1-based line
      numbers, plus the quarantine list. [Crc_mismatch] lines are always
      quarantined; [No_crc] lines are quarantined too when [strict]
      (default [true] — legacy-tolerant readers pass [~strict:false] and
      run their own parse). Blank lines are skipped; a missing file is
      [([], [])]. [mangle] is the load-side fault hook. *)
end
