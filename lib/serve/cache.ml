type stats = {
  name : string;
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

type 'a cell =
  | Ready of { value : 'a; mutable stamp : int }
  | Pending  (** someone is computing; wait on [cond] *)

type 'a t = {
  cname : string;
  capacity : int;
  table : (string, 'a cell) Hashtbl.t;  (* guarded_by: mutex *)
  mutex : Mutex.t;
  cond : Condition.t;  (** broadcast when a Pending resolves or aborts *)
  mutable clock : int;  (* guarded_by: mutex — LRU stamp source *)
  mutable ready : int;  (* guarded_by: mutex — Ready entries *)
  mutable hits : int;  (* guarded_by: mutex *)
  mutable misses : int;  (* guarded_by: mutex *)
  mutable evictions : int;  (* guarded_by: mutex *)
}

let create ?(capacity = 256) cname =
  if capacity < 0 then invalid_arg "Cache.create: capacity must be >= 0";
  {
    cname;
    capacity;
    table = Hashtbl.create 64;
    mutex = Mutex.create ();
    cond = Condition.create ();
    clock = 0;
    ready = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let touch t cell =
  (* lint: guarded-by — called from find_or_compute's claim loop, t.mutex held *)
  t.clock <- t.clock + 1;
  match cell with
  | Ready r ->
      (* lint: guarded-by — called from find_or_compute's claim loop, t.mutex held *)
      r.stamp <- t.clock
  | Pending -> ()

(* Evict the least-recently-used ready entry. A linear scan: capacities
   are small (hundreds) and eviction is off the hit path. *)
let evict_one t =
  let victim =
    (* lint: nondet-source — min over stamps is traversal-order independent *)
    Hashtbl.fold
      (fun key cell acc ->
        match (cell, acc) with
        | Pending, _ -> acc
        | Ready r, Some (_, best) when best <= r.stamp -> acc
        | Ready r, _ -> Some (key, r.stamp))
      t.table None (* lint: guarded-by — caller holds t.mutex *)
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.table key; (* lint: guarded-by — caller holds t.mutex *)
      t.ready <- t.ready - 1; (* lint: guarded-by — caller holds t.mutex *)
      t.evictions <- t.evictions + 1 (* lint: guarded-by — caller holds t.mutex *)

let find_or_compute t ~key f =
  if t.capacity = 0 then begin
    (* Retention disabled: always compute, never coordinate. *)
    Mutex.protect t.mutex (fun () -> t.misses <- t.misses + 1);
    (f (), false)
  end
  else begin
    Mutex.lock t.mutex;
    let rec claim () =
      match Hashtbl.find_opt t.table key with
      | Some (Ready r as cell) ->
          touch t cell;
          t.hits <- t.hits + 1;
          Mutex.unlock t.mutex;
          `Hit r.value
      | Some Pending ->
          (* Single-flight: wait for the computing request. Waking finds
             either a Ready value (a hit — we did not compute) or an
             empty slot (the computation failed; take over). *)
          Condition.wait t.cond t.mutex;
          claim ()
      | None ->
          Hashtbl.add t.table key Pending;
          t.misses <- t.misses + 1;
          Mutex.unlock t.mutex;
          `Claimed
    in
    match claim () with
    | `Hit v -> (v, true)
    | `Claimed -> (
        match f () with
        | value ->
            Mutex.lock t.mutex;
            t.clock <- t.clock + 1;
            Hashtbl.replace t.table key (Ready { value; stamp = t.clock });
            t.ready <- t.ready + 1;
            if t.ready > t.capacity then evict_one t;
            Condition.broadcast t.cond;
            Mutex.unlock t.mutex;
            (value, false)
        | exception e ->
            (* Release the claim so waiters can retry; the failure is
               the computing caller's to report. *)
            Mutex.lock t.mutex;
            Hashtbl.remove t.table key;
            Condition.broadcast t.cond;
            Mutex.unlock t.mutex;
            raise e)
  end

let stats t =
  Mutex.protect t.mutex (fun () ->
      {
        name = t.cname;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = t.ready;
        capacity = t.capacity;
      })
