module Pool = Qls_harness.Pool
module Device = Qls_arch.Device
module Topologies = Qls_arch.Topologies
module Qasm = Qls_circuit.Qasm
module Router = Qls_router.Router
module Registry = Qls_router.Registry
module Verifier = Qls_layout.Verifier
module Benchmark = Qubikos.Benchmark
module Generator = Qubikos.Generator
module Certificate = Qubikos.Certificate
module Evaluation = Qubikos.Evaluation

type config = {
  socket_path : string option;
  tcp_port : int option;
  jobs : int;
  queue_capacity : int;
  device_cache : int;
  instance_cache : int;
  route_cache : int;
  request_log : string option;
  default_deadline_ms : int option;
  io_timeout : float option;
  idle_timeout : float option;
  hang_threshold : float option;
}

let default_config =
  {
    socket_path = None;
    tcp_port = None;
    jobs = 2;
    queue_capacity = 64;
    device_cache = 16;
    instance_cache = 128;
    route_cache = 1024;
    request_log = None;
    default_deadline_ms = None;
    io_timeout = Some 30.;
    idle_timeout = Some 300.;
    hang_threshold = Some 30.;
  }

(* Cached values. The routed result retains the cold run's measured
   seconds: a cache hit replays the {e whole} response byte for byte,
   which is what the bench's bit-identity check pins down. *)
type instance = { bench : Benchmark.t; certified : bool }
type routed = { swaps : int; depth : int; seconds : float; optimal : int option }

type conn = {
  fd : Unix.file_descr;
  cid : int;  (** per-daemon connection sequence; fault-injection key *)
  oc : out_channel;
  wmutex : Mutex.t;  (** serialises response frames on this connection *)
  omutex : Mutex.t;  (** guards [outstanding] *)
  odone : Condition.t;
  mutable outstanding : int;
      (* guarded_by: omutex — submitted jobs not yet responded *)
  mutable broken : bool;  (* guarded_by: wmutex — peer gone; stop writing *)
}

type t = {
  cfg : config;
  pool : Pool.pool;
  devices : Device.t Cache.t;
  instances : instance Cache.t;
  routes : routed Cache.t;
  log : Qls_sealed.Log.t option;
  listeners : Unix.file_descr list;
  tcp_port_bound : int option;
  stop : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  conns_mutex : Mutex.t;
  mutable conns : conn list;  (* guarded_by: conns_mutex *)
  mutable threads : Thread.t list;  (* guarded_by: conns_mutex *)
  started_ms : int;  (** daemon start; feeds [uptime_s] *)
  conn_seq : int Atomic.t;
  job_seq : int Atomic.t;  (** fault-injection key for pooled work *)
  (* always-on metrics, independent of the trace sink *)
  c_requests : Qls_obs.counter;
  c_ok : Qls_obs.counter;
  c_errors : Qls_obs.counter;  (* every non-ok response, any kind *)
  c_bad_request : Qls_obs.counter;
  c_overloaded : Qls_obs.counter;
  c_draining : Qls_obs.counter;
  c_deadline : Qls_obs.counter;
  c_internal : Qls_obs.counter;
  c_log_dropped : Qls_obs.counter;
  latency : Qls_obs.histogram;
}

(* Sub-millisecond buckets at the bottom: cache hits are microseconds,
   and the default task-latency bounds would fold them all into the
   first bucket, flattening the quantiles the stats verb reports. *)
let latency_bounds =
  [|
    5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 1e-2; 2.5e-2; 5e-2; 0.1;
    0.25; 0.5; 1.; 2.5; 5.; 15.; 60.;
  |]

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let listen_unix path =
  if Sys.file_exists path then Unix.unlink path;
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind fd (ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  let bound =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | ADDR_UNIX _ -> port
  in
  (fd, bound)

let create cfg =
  if Option.is_none cfg.socket_path && Option.is_none cfg.tcp_port then
    invalid_arg "Server.create: configure a socket path or a TCP port";
  let unix_l = Option.map listen_unix cfg.socket_path in
  let tcp = Option.map listen_tcp cfg.tcp_port in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  let watchdog =
    Option.map
      (fun thr ->
        let thr_ms = max 1 (int_of_float (thr *. 1000.)) in
        (* Tick a few times per threshold so detection latency stays a
           small multiple of the configured bound. *)
        { Pool.hang_threshold_ms = thr_ms; tick_ms = max 10 (thr_ms / 4) })
      cfg.hang_threshold
  in
  {
    cfg;
    pool = Pool.start ?watchdog ~jobs:cfg.jobs ~capacity:cfg.queue_capacity ();
    devices = Cache.create ~capacity:cfg.device_cache "device";
    instances = Cache.create ~capacity:cfg.instance_cache "instance";
    routes = Cache.create ~capacity:cfg.route_cache "route";
    log = Option.map (fun p -> Qls_sealed.Log.open_append p) cfg.request_log;
    listeners =
      Option.to_list unix_l @ List.map fst (Option.to_list tcp);
    tcp_port_bound = Option.map snd tcp;
    stop = Atomic.make false;
    wake_r;
    wake_w;
    conns_mutex = Mutex.create ();
    conns = [];
    threads = [];
    started_ms = Qls_cancel.now_ms ();
    conn_seq = Atomic.make 0;
    job_seq = Atomic.make 0;
    c_requests = Qls_obs.counter "serve.requests";
    c_ok = Qls_obs.counter "serve.ok";
    c_errors = Qls_obs.counter "serve.errors";
    c_bad_request = Qls_obs.counter "serve.bad_request";
    c_overloaded = Qls_obs.counter "serve.overloaded";
    c_draining = Qls_obs.counter "serve.draining";
    c_deadline = Qls_obs.counter "serve.deadline_exceeded";
    c_internal = Qls_obs.counter "serve.internal";
    c_log_dropped = Qls_obs.counter "serve.log.dropped";
    latency = Qls_obs.histogram ~bounds:latency_bounds "serve.request.seconds";
  }

let bound_tcp_port t = t.tcp_port_bound

let initiate_shutdown t =
  if not (Atomic.exchange t.stop true) then
    (* Self-pipe: one byte wakes the accept loop out of select. Writing
       from a signal handler is fine — OCaml runs handlers at safe
       points, and a 1-byte pipe write cannot block before the reader
       ever closes its end. *)
    ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)

let install_signal_handlers t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let h = Sys.Signal_handle (fun _ -> initiate_shutdown t) in
  Sys.set_signal Sys.sigterm h;
  Sys.set_signal Sys.sigint h

(* ------------------------------------------------------------------ *)
(* Request execution (runs on pool worker domains)                     *)
(* ------------------------------------------------------------------ *)

let bad fmt = Printf.ksprintf (fun m -> raise (Protocol.Bad_request m)) fmt

let device_of t name =
  Cache.find_or_compute t.devices ~key:name (fun () ->
      match Topologies.by_name name with
      | Some d -> d
      | None -> bad "unknown architecture %S" name)

let instance_of t (g : Protocol.gen_params) =
  Cache.find_or_compute t.instances ~key:(Protocol.gen_key g) (fun () ->
      let device, _ = device_of t g.arch in
      let config =
        {
          Generator.default_config with
          n_swaps = g.n_swaps;
          gate_budget =
            Option.value ~default:(Evaluation.paper_gate_budget device) g.gates;
          seed = g.seed;
        }
      in
      let bench =
        try Generator.generate ~config device
        with Invalid_argument m -> bad "cannot generate: %s" m
      in
      { bench; certified = Result.is_ok (Certificate.check bench) })

let routed_of t (p : Protocol.route_params) =
  let device, _ = device_of t p.gen.arch in
  let circuit, optimal =
    match p.qasm with
    | Some text -> (
        match Qasm.of_string_result text with
        | Ok c -> (c, None)
        | Error e -> bad "qasm: %s" (Qasm.error_to_string e))
    | None ->
        let inst, _ = instance_of t p.gen in
        (inst.bench.Benchmark.circuit, Some inst.bench.Benchmark.optimal_swaps)
  in
  let key =
    Protocol.route_key ~device:(Device.name device)
      ~circuit:(Protocol.circuit_hash (Qasm.to_string circuit))
      ~tool:p.tool ~trials:p.trials ~seed:p.gen.seed
  in
  Cache.find_or_compute t.routes ~key (fun () ->
      match Registry.by_name ~sabre_trials:p.trials p.tool with
      | None ->
          bad "unknown tool %S (known: %s)" p.tool
            (String.concat ", " Registry.names)
      | Some router ->
          (* Measured latency is reported data, not routed output; cache
             hits replay the cold measurement. *)
          (* lint: nondet-source — latency telemetry *)
          let t0 = Unix.gettimeofday () in
          let _, report = Router.run_verified router device circuit in
          (* lint: nondet-source — see above *)
          let dt = Unix.gettimeofday () -. t0 in
          {
            swaps = report.Verifier.swap_count;
            depth = report.Verifier.depth;
            seconds = dt;
            optimal;
          })

(* ------------------------------------------------------------------ *)
(* Response payloads — deterministic field order, flat JSON            *)
(* ------------------------------------------------------------------ *)

let with_id id body =
  match id with
  | None -> Printf.sprintf "{%s}" body
  | Some id -> Printf.sprintf {|{"id":"%s",%s}|} (Qls_sealed.escape id) body

let error_payload ~id ~kind msg =
  with_id id
    (Printf.sprintf {|"ok":false,"kind":"%s","error":"%s"|} kind
       (Qls_sealed.escape msg))

let route_payload ~id ~verb (p : Protocol.route_params) (r : routed) =
  let ratio =
    match (verb, r.optimal) with
    | "evaluate", Some opt ->
        Printf.sprintf {|,"ratio":%.4f|}
          (float_of_int r.swaps /. float_of_int opt)
    | _ -> ""
  in
  let optimal =
    match r.optimal with
    | Some opt -> Printf.sprintf {|,"optimal":%d|} opt
    | None -> ""
  in
  with_id id
    (Printf.sprintf
       {|"ok":true,"verb":"%s","tool":"%s","arch":"%s","swaps":%d,"depth":%d,"seconds":%.6f%s%s|}
       verb
       (Qls_sealed.escape p.tool)
       (Qls_sealed.escape p.gen.arch)
       r.swaps r.depth r.seconds optimal ratio)

let certify_payload ~id (g : Protocol.gen_params) (inst : instance) =
  with_id id
    (Printf.sprintf
       {|"ok":true,"verb":"certify","arch":"%s","optimal":%d,"gates":%d,"certified":%b|}
       (Qls_sealed.escape g.arch)
       inst.bench.Benchmark.optimal_swaps
       (Benchmark.two_qubit_count inst.bench)
       inst.certified)

let cache_stats_fields prefix (s : Cache.stats) =
  Printf.sprintf
    {|"%s_hits":%d,"%s_misses":%d,"%s_evictions":%d,"%s_size":%d,"%s_capacity":%d|}
    prefix s.Cache.hits prefix s.Cache.misses prefix s.Cache.evictions prefix
    s.Cache.size prefix s.Cache.capacity

let uptime_s t = float_of_int (Qls_cancel.now_ms () - t.started_ms) /. 1000.

(* -1 renders "unsupervised" distinguishably from a freshly-ticked 0. *)
let watchdog_age_field t =
  match Pool.watchdog_age_ms t.pool with Some ms -> ms | None -> -1

let stats_payload t ~id =
  let q p =
    match Qls_obs.approx_quantile t.latency p with
    | Some s -> s *. 1000.
    | None -> 0.
  in
  with_id id
    (Printf.sprintf
       {|"ok":true,"verb":"stats","uptime_s":%.3f,"requests":%d,"completed":%d,"errors":%d,"bad_request":%d,"overloaded":%d,"draining":%d,"deadline_exceeded":%d,"internal":%d,"log_dropped":%d,"queue_depth":%d,"in_flight":%d,"jobs":%d,"live_workers":%d,"lost_workers":%d,"watchdog_age_ms":%d,"latency_count":%d,"p50_ms":%.3f,"p95_ms":%.3f,"p99_ms":%.3f,%s,%s,%s|}
       (uptime_s t)
       (Qls_obs.counter_value t.c_requests)
       (Qls_obs.counter_value t.c_ok)
       (Qls_obs.counter_value t.c_errors)
       (Qls_obs.counter_value t.c_bad_request)
       (Qls_obs.counter_value t.c_overloaded)
       (Qls_obs.counter_value t.c_draining)
       (Qls_obs.counter_value t.c_deadline)
       (Qls_obs.counter_value t.c_internal)
       (Qls_obs.counter_value t.c_log_dropped)
       (Pool.queue_depth t.pool) (Pool.in_flight t.pool) t.cfg.jobs
       (Pool.live_workers t.pool) (Pool.lost_workers t.pool)
       (watchdog_age_field t)
       (Qls_obs.histogram_total t.latency)
       (q 0.50) (q 0.95) (q 0.99)
       (cache_stats_fields "device" (Cache.stats t.devices))
       (cache_stats_fields "instance" (Cache.stats t.instances))
       (cache_stats_fields "route" (Cache.stats t.routes)))

(* Readiness, not history: everything a container healthcheck needs to
   decide "is this daemon able to serve right now". Computed inline on
   the reader thread — a saturated pool must not block the probe. *)
let health_payload t ~id =
  let draining = Atomic.get t.stop || Pool.closing t.pool in
  let live = Pool.live_workers t.pool in
  let ready = (not draining) && live > 0 in
  with_id id
    (Printf.sprintf
       {|"ok":true,"verb":"health","ready":%b,"draining":%b,"listeners":%d,"jobs":%d,"live_workers":%d,"lost_workers":%d,"queue_depth":%d,"queue_capacity":%d,"watchdog_age_ms":%d,"uptime_s":%.3f|}
       ready draining
       (List.length t.listeners)
       t.cfg.jobs live
       (Pool.lost_workers t.pool)
       (Pool.queue_depth t.pool)
       t.cfg.queue_capacity (watchdog_age_field t) (uptime_s t))

(* ------------------------------------------------------------------ *)
(* Per-connection plumbing                                             *)
(* ------------------------------------------------------------------ *)

let conn_retain c =
  Mutex.protect c.omutex (fun () -> c.outstanding <- c.outstanding + 1)

let conn_release c =
  Mutex.protect c.omutex (fun () ->
      c.outstanding <- c.outstanding - 1;
      if c.outstanding = 0 then Condition.broadcast c.odone)

let conn_quiesce c =
  Mutex.lock c.omutex;
  while c.outstanding > 0 do
    Condition.wait c.odone c.omutex
  done;
  Mutex.unlock c.omutex

let log_request t ~verb ~status ~hit ~micros ~id =
  match t.log with
  | None -> ()
  | Some log -> (
      let id_field =
        match id with
        | None -> ""
        | Some id -> Printf.sprintf {|"id":"%s",|} (Qls_sealed.escape id)
      in
      (* Fault site: an injected failure here drops this one line — the
         daemon survives and the log stays well-sealed (no partial or
         mangled bytes ever reach it), which the chaos gate asserts. *)
      try
        Qls_faults.exec ~site:"serve.log.append" ~key:verb;
        Qls_sealed.Log.append log ~key:verb
          (Printf.sprintf {|{%s"verb":"%s","status":"%s","hit":%b,"micros":%d}|}
             id_field verb status hit micros)
      with Qls_faults.Injected _ -> Qls_obs.incr t.c_log_dropped)

(* Send one response: frame write under the connection's write mutex,
   then the always-on accounting (latency histogram, status counter,
   request-log line). Write failures mark the connection broken —
   accounting still happens, the daemon outlives any client. *)
let respond t conn ~verb ~status ~hit ~t_recv ~id payload =
  (* [c_errors] keeps its pre-deadline meaning — request-level failures
     only; load-shedding (overloaded/draining) is accounted separately. *)
  (match status with
  | "ok" -> Qls_obs.incr t.c_ok
  | "overloaded" -> Qls_obs.incr t.c_overloaded
  | "draining" -> Qls_obs.incr t.c_draining
  | "bad_request" ->
      Qls_obs.incr t.c_errors;
      Qls_obs.incr t.c_bad_request
  | "deadline_exceeded" ->
      Qls_obs.incr t.c_errors;
      Qls_obs.incr t.c_deadline
  | _ ->
      Qls_obs.incr t.c_errors;
      Qls_obs.incr t.c_internal);
  Mutex.protect conn.wmutex (fun () ->
      if not conn.broken then
        try Protocol.write_frame conn.oc payload
        with Sys_error _ | Unix.Unix_error _ -> conn.broken <- true);
  (* lint: nondet-source — request latency is telemetry, not result data *)
  let dt = Unix.gettimeofday () -. t_recv in
  Qls_obs.observe t.latency dt;
  log_request t ~verb ~status ~hit ~micros:(int_of_float (dt *. 1e6)) ~id

let verb_name = function
  | Protocol.Route _ -> "route"
  | Protocol.Evaluate _ -> "evaluate"
  | Protocol.Certify _ -> "certify"
  | Protocol.Stats -> "stats"
  | Protocol.Health -> "health"

(* Run one parsed request body; returns (payload, hit). Called on a
   pool worker domain, inside the request span. *)
let execute t ~id req =
  match req with
  | Protocol.Stats -> (stats_payload t ~id, false)
  | Protocol.Health -> (health_payload t ~id, false)
  | Protocol.Certify { gen = g; _ } ->
      let inst, hit = instance_of t g in
      (certify_payload ~id g inst, hit)
  | Protocol.Route p | Protocol.Evaluate p ->
      let r, hit = routed_of t p in
      (route_payload ~id ~verb:(verb_name req) p r, hit)

let request_deadline_ms t = function
  | Protocol.Route p | Protocol.Evaluate p -> (
      match p.Protocol.deadline_ms with
      | Some _ as d -> d
      | None -> t.cfg.default_deadline_ms)
  | Protocol.Certify { deadline_ms = Some _ as d; _ } -> d
  | Protocol.Certify { deadline_ms = None; _ } -> t.cfg.default_deadline_ms
  | Protocol.Stats | Protocol.Health -> None

let handle_payload t conn payload ~t_recv =
  Qls_obs.incr t.c_requests;
  let id = Protocol.request_id payload in
  match Protocol.request_of_payload payload with
  | exception Protocol.Bad_request msg ->
      respond t conn ~verb:"?" ~status:"bad_request" ~hit:false ~t_recv ~id
        (error_payload ~id ~kind:"bad_request" msg)
  | Protocol.Stats ->
      (* Answered on the reader thread: stats must stay observable even
         when the pool queue is saturated — that is when you need it. *)
      respond t conn ~verb:"stats" ~status:"ok" ~hit:false ~t_recv ~id
        (stats_payload t ~id)
  | Protocol.Health ->
      (* Same: a liveness probe that queued behind the very saturation
         it should report would be useless. *)
      respond t conn ~verb:"health" ~status:"ok" ~hit:false ~t_recv ~id
        (health_payload t ~id)
  | req -> (
      let verb = verb_name req in
      let token = Qls_cancel.make ?deadline_ms:(request_deadline_ms t req) () in
      let job_key = string_of_int (Atomic.fetch_and_add t.job_seq 1) in
      conn_retain conn;
      let submitted =
        Pool.submit ~token t.pool
          ~work:(fun () ->
            (* Fault sites: a [delay] on the hang site simulates a stuck
               worker (no poll happens while sleeping, so the watchdog —
               not the deadline — must recover); an exn on the exn site
               exercises the typed-internal path. *)
            Qls_faults.exec ~site:"serve.work.hang" ~key:job_key;
            Qls_faults.exec ~site:"serve.work.exn" ~key:job_key;
            Qls_obs.with_span ~site:"serve" "serve.request"
              ~attrs:(fun () -> [ ("verb", Qls_obs.Str verb) ])
              (fun () -> execute t ~id req))
          ~complete:(fun result ->
            (match result with
            | Ok (payload, hit) ->
                respond t conn ~verb ~status:"ok" ~hit ~t_recv ~id payload
            | Error (Protocol.Bad_request msg) ->
                respond t conn ~verb ~status:"bad_request" ~hit:false ~t_recv
                  ~id
                  (error_payload ~id ~kind:"bad_request" msg)
            | Error (Qls_cancel.Expired { elapsed_ms; limit_ms }) ->
                respond t conn ~verb ~status:"deadline_exceeded" ~hit:false
                  ~t_recv ~id
                  (with_id id
                     (Printf.sprintf
                        {|"ok":false,"kind":"deadline_exceeded","error":"deadline exceeded","elapsed_ms":%d,"limit_ms":%d|}
                        elapsed_ms limit_ms))
            | Error (Pool.Worker_lost { stalled_ms; _ }) ->
                respond t conn ~verb ~status:"internal" ~hit:false ~t_recv ~id
                  (error_payload ~id ~kind:"internal"
                     (Printf.sprintf
                        "worker lost: no heartbeat for %dms; request abandoned"
                        stalled_ms))
            | Error e ->
                respond t conn ~verb ~status:"internal" ~hit:false ~t_recv ~id
                  (error_payload ~id ~kind:"internal" (Printexc.to_string e)));
            conn_release conn)
      in
      match submitted with
      | Pool.Submitted -> ()
      | Pool.Rejected_full ->
          conn_release conn;
          respond t conn ~verb ~status:"overloaded" ~hit:false ~t_recv ~id
            (with_id id
               (Printf.sprintf
                  {|"ok":false,"kind":"overloaded","error":"queue full","queue_depth":%d,"queue_capacity":%d|}
                  (Pool.queue_depth t.pool) t.cfg.queue_capacity))
      | Pool.Rejected_closed ->
          conn_release conn;
          respond t conn ~verb ~status:"draining" ~hit:false ~t_recv ~id
            (error_payload ~id ~kind:"draining" "daemon is draining"))

(* Per-read fault hook for ["serve.frame.read"]: [exec] may delay (slow
   network) or raise (connection torn down mid-read); a [Torn] mangle
   rule shortens the requested read size instead of discarding received
   bytes — a short read, which the frame reassembly must absorb without
   ever corrupting a payload. *)
let frame_read_hook conn want =
  if Qls_faults.is_none (Qls_faults.installed ()) then want
  else begin
    let key = string_of_int conn.cid in
    Qls_faults.exec ~site:"serve.frame.read" ~key;
    String.length
      (Qls_faults.mangle ~site:"serve.frame.read" ~key (String.make want 'x'))
  end

let reader t conn =
  let fr =
    Protocol.reader ?idle_timeout:t.cfg.idle_timeout
      ?io_timeout:t.cfg.io_timeout
      ~read_hook:(frame_read_hook conn)
      conn.fd
  in
  let rec loop () =
    match Protocol.read_frame_fd fr with
    | Protocol.Eof -> ()
    | Protocol.Idle ->
        (* Idle sweep: a connection silent past the idle budget is
           reaped quietly — it wasn't mid-request, nothing is owed. *)
        ()
    | exception Protocol.Bad_request msg ->
        (* Framing is unrecoverable mid-stream (resynchronisation would
           be guesswork): answer once, then hang up. Covers the
           slow-loris case too — the mid-frame io_timeout surfaces
           here. *)
        Qls_obs.incr t.c_requests;
        (* lint: nondet-source — request latency is telemetry *)
        let now = Unix.gettimeofday () in
        respond t conn ~verb:"?" ~status:"bad_request" ~hit:false ~t_recv:now
          ~id:None
          (error_payload ~id:None ~kind:"bad_request" msg)
    | exception (Sys_error _ | Unix.Unix_error _ | Qls_faults.Injected _) -> ()
    | Protocol.Frame payload ->
        (* lint: nondet-source — request latency is telemetry *)
        let t_recv = Unix.gettimeofday () in
        handle_payload t conn payload ~t_recv;
        loop ()
  in
  loop ();
  (* The read side is done (EOF, idle, error, or drain-shutdown).
     In-flight responses for this connection still need the socket: wait
     them out, then close once (closing [oc] closes the fd). *)
  conn_quiesce conn;
  Mutex.protect conn.wmutex (fun () ->
      conn.broken <- true;
      try close_out_noerr conn.oc with _ -> ());
  Mutex.protect t.conns_mutex (fun () ->
      t.conns <- List.filter (fun c -> not (c.fd == conn.fd)) t.conns)

(* ------------------------------------------------------------------ *)
(* Accept loop and drain                                               *)
(* ------------------------------------------------------------------ *)

let accept_conn t lfd =
  match Unix.accept ~cloexec:true lfd with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _)
    ->
      ()
  | fd, _ ->
      (* Write-side hygiene: a peer that stops reading blocks our
         buffered flush; SO_SNDTIMEO turns that into a Sys_error, which
         [respond] already maps to "connection broken". *)
      (match t.cfg.io_timeout with
      | Some timeout -> (
          try Unix.setsockopt_float fd SO_SNDTIMEO timeout
          with Unix.Unix_error _ | Invalid_argument _ -> ())
      | None -> ());
      let conn =
        {
          fd;
          cid = Atomic.fetch_and_add t.conn_seq 1;
          oc = Unix.out_channel_of_descr fd;
          wmutex = Mutex.create ();
          omutex = Mutex.create ();
          odone = Condition.create ();
          outstanding = 0;
          broken = false;
        }
      in
      let th = Thread.create (fun () -> reader t conn) () in
      Mutex.protect t.conns_mutex (fun () ->
          t.conns <- conn :: t.conns;
          t.threads <- th :: t.threads)

let run t =
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      (match Unix.select (t.wake_r :: t.listeners) [] [] (-1.0) with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | readable, _, _ ->
          List.iter
            (fun fd -> if not (fd == t.wake_r) then accept_conn t fd)
            readable);
      loop ()
    end
  in
  loop ();
  (* Drain, in dependency order:
     1. stop accepting: close listeners (and unlink the socket path so
        new clients fail fast instead of hanging on a dead file);
     2. wake every blocked reader with a half-close of the read side —
        in-flight responses still go out on the write side;
     3. let the pool finish everything already admitted (completion
        callbacks write the remaining responses);
     4. join the readers (each waits for its own outstanding responses
        before closing its socket);
     5. flush and close the request log — after this point the file is
        whole: every admitted request has its line. *)
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.listeners;
  Option.iter
    (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ())
    t.cfg.socket_path;
  let conns = Mutex.protect t.conns_mutex (fun () -> t.conns) in
  List.iter
    (fun c ->
      try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    conns;
  Pool.drain t.pool;
  let threads = Mutex.protect t.conns_mutex (fun () -> t.threads) in
  (* lint: unbounded-wait — readers exit on the half-close above; each join is bounded by its conn's in-flight responses, which the pool drain just flushed *)
  List.iter Thread.join threads;
  Option.iter Qls_sealed.Log.close t.log;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()
