(** Wire protocol of the [qubikos serve] daemon.

    {b Framing.} Every message — request or response — is one frame:

    {v <decimal-length>\n<payload>\n v}

    where [<decimal-length>] is the byte length of [<payload>] (the
    trailing newline excluded). Length-prefixing keeps the reader
    allocation-bounded and lets a payload contain anything; the trailing
    newline keeps the stream greppable and a hand-rolled client one
    [printf] away (see the README quickstart).

    {b Payloads} are flat JSON objects — the same single-level codec as
    the sealed stores ({!Qls_sealed.fields_of_line}), so one parser
    serves both sides. A request names its verb; every other field has a
    default, so [{"verb":"stats"}] is a complete request. Responses echo
    the request's optional ["id"] and always carry ["ok"] — [true] with
    the verb's payload fields, or [false] with a typed ["kind"]
    (["bad_request"], ["overloaded"], ["draining"],
    ["deadline_exceeded"], ["internal"]) and a human ["error"]. A
    ["deadline_exceeded"] response additionally carries ["elapsed_ms"]
    and ["limit_ms"]. *)

type gen_params = {
  arch : string;  (** device name, as accepted by {!Qls_arch.Topologies.by_name} *)
  n_swaps : int;  (** designed optimal SWAP count (default 5) *)
  gates : int option;  (** two-qubit gate budget (default: paper budget) *)
  seed : int;  (** generator seed (default 0) *)
}
(** Instance-generation parameters; also the certified-instance cache
    key. Defaults mirror the offline CLI so the same request text means
    the same instance in both. *)

type route_params = {
  gen : gen_params;
  tool : string;  (** registry name (default ["sabre"]) *)
  trials : int;  (** SABRE trials (default 20, like the CLI) *)
  qasm : string option;
      (** route this inline OpenQASM 2.0 text instead of a generated
          instance; [gen.n_swaps]/[gen.seed] are ignored for generation
          but still part of the result cache key *)
  deadline_ms : int option;
      (** wall-clock budget for this request, queue wait included; must
          be [>= 1] when present. Deliberately {e not} part of any cache
          key: a deadline bounds time, it does not change the answer. *)
}

type request =
  | Route of route_params  (** route + verify; report swaps/depth/seconds *)
  | Evaluate of route_params
      (** {!Route} on a generated instance, plus the ratio against its
          certified optimum (inline [qasm] is rejected — no known
          optimum to compare against) *)
  | Certify of { gen : gen_params; deadline_ms : int option }
      (** generate and structurally certify an instance *)
  | Stats  (** serving counters, latency quantiles, cache hit rates *)
  | Health
      (** liveness/readiness probe: answered inline (never queued), so
          it works under full saturation — suitable for a container
          healthcheck *)

exception Bad_request of string
(** A frame or payload the protocol rejects; the server answers with a
    [kind:"bad_request"] response rather than dropping the link. *)

val request_of_payload : string -> request
(** Parse one request payload. @raise Bad_request on malformed JSON, an
    unknown verb, or an ill-typed field. *)

val request_id : string -> string option
(** The optional ["id"] field of a payload, when it parses. *)

(** {1 Framing} *)

val read_frame : in_channel -> string option
(** Read one frame; [None] at a clean EOF (connection closed between
    frames). @raise Bad_request on a malformed or oversized length
    line, a truncated payload, or a missing frame terminator. *)

val write_frame : out_channel -> string -> unit
(** Write one frame and flush. Callers serialise per-connection writes
    themselves (the server holds a per-connection mutex). *)

val max_frame : int
(** Upper bound on accepted payload length (16 MiB) — an admission
    guard, not a protocol constant. *)

(** {1 Timeout-aware framing over a raw fd}

    What the server's reader threads use instead of {!read_frame}: a
    buffered [in_channel] blocks without recourse, so a slow-loris
    client (one header byte, then silence) would pin a thread forever.
    This reader owns its buffering over [Unix.read]/[Unix.select] and
    applies two different clocks:

    - [idle_timeout] — how long a connection may sit silent {e between}
      frames before it is reaped (reported as {!Idle}; not an error);
    - [io_timeout] — the absolute budget for one whole frame measured
      from its first byte (raises {!Bad_request}; trickling bytes does
      not reset it). *)

type reader

type frame =
  | Frame of string  (** one complete payload *)
  | Eof  (** clean close between frames *)
  | Idle  (** [idle_timeout] elapsed between frames *)

val reader :
  ?idle_timeout:float ->
  ?io_timeout:float ->
  ?read_hook:(int -> int) ->
  Unix.file_descr ->
  reader
(** Wrap a connection fd. Omitted timeouts mean "wait forever" (the
    pre-PR-7 behaviour). [read_hook] is a fault-injection seam: called
    with the intended read size before every [Unix.read], its return
    value (clamped to [1..size]) caps the bytes requested — a short
    return simulates a torn read; it may also raise or delay.
    @raise Invalid_argument on a timeout [<= 0]. *)

val read_frame_fd : reader -> frame
(** Read one frame under the reader's timeout policy.
    @raise Bad_request as {!read_frame}, plus on an [io_timeout]
    overrun mid-frame. *)

(** {1 Cache keys} *)

val circuit_hash : string -> string
(** FNV-1a 64-bit hash of a circuit's OpenQASM text, as 16 hex digits.
    Content-addressed: the same circuit hashes the same however it was
    obtained (generated or inline). *)

val gen_key : gen_params -> string
(** Injective key of the certified-instance cache. *)

val route_key :
  device:string -> circuit:string -> tool:string -> trials:int -> seed:int ->
  string
(** Injective key of the routed-result cache over the
    [(device, circuit-hash, tool, params, seed)] tuple — every component
    is length-prefixed, so no choice of field values can collide. *)
