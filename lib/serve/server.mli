(** The [qubikos serve] daemon: a long-lived routing service.

    One process owns the expensive state — devices with their APSP
    tables, certified QUBIKOS instances, routed results — in bounded
    {!Cache}s shared across every connection, and schedules the actual
    routing work on a {!Qls_harness.Pool} of worker domains. Clients
    speak the {!Protocol} over a Unix-domain socket and/or a loopback
    TCP port; each accepted connection gets a reader thread (I/O
    threads multiplex on a domain; the CPU-bound work is on the pool).

    {b Admission control.} The pool queue is bounded; when it is full a
    request is answered immediately with the typed [overloaded]
    response instead of being queued — latency stays bounded and the
    client decides whether to retry.

    {b Failure model} (DESIGN.md §12 has the full contract):
    per-request deadlines ([deadline_ms] / [default_deadline_ms]) are
    enforced cooperatively at router-round / SAT-restart /
    generator-phase checkpoints and answered with the typed
    [deadline_exceeded] response; a pool watchdog declares a worker
    whose heartbeat goes quiet past [hang_threshold] lost, answers its
    request with [kind:"internal"], and spawns a replacement domain;
    socket reads are bounded by [io_timeout] (per frame) and
    [idle_timeout] (between frames), writes by [SO_SNDTIMEO]; the
    [health] verb reports readiness inline even under saturation.

    {b Drain.} On SIGTERM (or {!initiate_shutdown}) the daemon stops
    accepting connections and reads, lets every admitted request finish
    and its response flush, then closes the request log and returns
    from {!run}. Requests that arrive during the drain are answered
    with [kind:"draining"]. The sealed request log is flushed per line
    throughout, so even a later [SIGKILL] can tear at most the final
    line — which loading quarantines. *)

type config = {
  socket_path : string option;  (** Unix-domain listener *)
  tcp_port : int option;  (** loopback TCP listener *)
  jobs : int;  (** worker domains on the routing pool *)
  queue_capacity : int;  (** admitted-but-not-running bound *)
  device_cache : int;  (** retained devices (APSP tables) *)
  instance_cache : int;  (** retained certified instances *)
  route_cache : int;  (** retained routed results *)
  request_log : string option;  (** sealed JSONL request log *)
  default_deadline_ms : int option;
      (** applied to route/evaluate/certify requests that carry no
          [deadline_ms] of their own *)
  io_timeout : float option;
      (** per-frame read budget (slow-loris reaping) and the socket
          send timeout; [None] waits forever *)
  idle_timeout : float option;
      (** how long a connection may sit silent between frames before it
          is reaped; [None] keeps idle connections forever *)
  hang_threshold : float option;
      (** pool watchdog: a worker whose job heartbeat goes quiet this
          long is declared lost and replaced; [None] disables
          supervision *)
}

val default_config : config
(** No listeners (callers must set at least one), [jobs = 2], queue
    capacity 64, cache capacities 16 / 128 / 1024, no request log, no
    default deadline, 30 s frame-I/O budget, 300 s idle reap, 30 s
    watchdog hang threshold. *)

type t

val create : config -> t
(** Allocate caches, start the pool, open the listeners and the request
    log. @raise Invalid_argument if no listener is configured.
    @raise Unix.Unix_error if a listener cannot bind. *)

val run : t -> unit
(** Serve until a shutdown is initiated, then drain and return. Call at
    most once. *)

val initiate_shutdown : t -> unit
(** Begin the graceful drain; safe from a signal handler and from any
    thread. Idempotent. *)

val install_signal_handlers : t -> unit
(** Route SIGTERM and SIGINT to {!initiate_shutdown} and ignore
    SIGPIPE (a client gone mid-response must not kill the daemon). *)

val bound_tcp_port : t -> int option
(** The actual TCP port after binding ([tcp_port = Some 0] asks the
    kernel to pick); [None] when no TCP listener is configured. *)
