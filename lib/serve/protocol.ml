type gen_params = {
  arch : string;
  n_swaps : int;
  gates : int option;
  seed : int;
}

type route_params = {
  gen : gen_params;
  tool : string;
  trials : int;
  qasm : string option;
}

type request =
  | Route of route_params
  | Evaluate of route_params
  | Certify of gen_params
  | Stats

exception Bad_request of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_request m)) fmt

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let max_frame = 16 * 1024 * 1024

let read_frame ic =
  match input_line ic with
  | exception End_of_file -> None
  | header -> (
      (* Strict decimal only: a stray HTTP request or random bytes on
         the socket become one clean Bad_request, not a huge alloc. *)
      let header =
        (* tolerate a CRLF client *)
        if String.length header > 0 && header.[String.length header - 1] = '\r'
        then String.sub header 0 (String.length header - 1)
        else header
      in
      if header = "" then bad "empty frame header";
      String.iter
        (fun c -> if c < '0' || c > '9' then bad "bad frame length %S" header)
        header;
      match int_of_string_opt header with
      | None -> bad "bad frame length %S" header
      | Some len ->
          if len > max_frame then bad "frame of %d bytes exceeds limit" len;
          let payload = really_input_string ic len in
          (match input_char ic with
          | '\n' -> ()
          | _ -> bad "missing frame terminator"
          | exception End_of_file -> bad "truncated frame");
          Some payload)

let write_frame oc payload =
  (* One buffered write then a flush, mirroring the sealed-log contract:
     the peer never sees a frame split across flush boundaries. *)
  output_string oc (Printf.sprintf "%d\n%s\n" (String.length payload) payload);
  flush oc

(* ------------------------------------------------------------------ *)
(* Request payloads                                                    *)
(* ------------------------------------------------------------------ *)

let fields_of_payload payload =
  match Qls_sealed.fields_of_line payload with
  | fields -> fields
  | exception Qls_sealed.Malformed m -> bad "malformed request: %s" m

let str_field fields key default =
  Option.value ~default (List.assoc_opt key fields)

let int_field fields key default =
  match List.assoc_opt key fields with
  | None -> default
  | Some raw -> (
      match int_of_string_opt raw with
      | Some n -> n
      | None -> bad "field %S is not an integer: %S" key raw)

let gen_of_fields fields =
  {
    arch = str_field fields "arch" "aspen4";
    n_swaps = int_field fields "swaps" 5;
    gates =
      (match List.assoc_opt "gates" fields with
      | None -> None
      | Some raw -> (
          match int_of_string_opt raw with
          | Some n -> Some n
          | None -> bad "field \"gates\" is not an integer: %S" raw));
    seed = int_field fields "seed" 0;
  }

let route_of_fields fields =
  {
    gen = gen_of_fields fields;
    tool = str_field fields "tool" "sabre";
    trials = int_field fields "trials" 20;
    qasm = List.assoc_opt "qasm" fields;
  }

let request_of_payload payload =
  let fields = fields_of_payload payload in
  match List.assoc_opt "verb" fields with
  | None -> bad "request without a \"verb\""
  | Some "route" -> Route (route_of_fields fields)
  | Some "evaluate" ->
      let p = route_of_fields fields in
      if Option.is_some p.qasm then
        bad "evaluate compares against a certified optimum; inline \"qasm\" \
             has none (use \"route\")";
      Evaluate p
  | Some "certify" -> Certify (gen_of_fields fields)
  | Some "stats" -> Stats
  | Some verb -> bad "unknown verb %S" verb

let request_id payload =
  match Qls_sealed.fields_of_line payload with
  | fields -> List.assoc_opt "id" fields
  | exception Qls_sealed.Malformed _ -> None

(* ------------------------------------------------------------------ *)
(* Cache keys                                                          *)
(* ------------------------------------------------------------------ *)

(* FNV-1a, 64-bit. Content addressing only — collision resistance in
   the cryptographic sense is not required (a collision serves a wrong
   cached answer to a request hand-crafted to collide with another; the
   daemon trusts its clients). *)
let circuit_hash text =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
             1099511628211L)
    text;
  Printf.sprintf "%016Lx" !h

(* Length-prefix every component so the key is injective whatever bytes
   the components contain — the property the QCheck suite pins down. *)
let joined parts =
  String.concat "|"
    (List.map (fun s -> Printf.sprintf "%d:%s" (String.length s) s) parts)

let gen_key g =
  joined
    [
      g.arch;
      string_of_int g.n_swaps;
      (match g.gates with None -> "paper" | Some n -> string_of_int n);
      string_of_int g.seed;
    ]

let route_key ~device ~circuit ~tool ~trials ~seed =
  joined [ device; circuit; tool; string_of_int trials; string_of_int seed ]
