type gen_params = {
  arch : string;
  n_swaps : int;
  gates : int option;
  seed : int;
}

type route_params = {
  gen : gen_params;
  tool : string;
  trials : int;
  qasm : string option;
  deadline_ms : int option;
}

type request =
  | Route of route_params
  | Evaluate of route_params
  | Certify of { gen : gen_params; deadline_ms : int option }
  | Stats
  | Health

exception Bad_request of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_request m)) fmt

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let max_frame = 16 * 1024 * 1024

let read_frame ic =
  match input_line ic with
  | exception End_of_file -> None
  | header -> (
      (* Strict decimal only: a stray HTTP request or random bytes on
         the socket become one clean Bad_request, not a huge alloc. *)
      let header =
        (* tolerate a CRLF client *)
        if String.length header > 0 && header.[String.length header - 1] = '\r'
        then String.sub header 0 (String.length header - 1)
        else header
      in
      if header = "" then bad "empty frame header";
      String.iter
        (fun c -> if c < '0' || c > '9' then bad "bad frame length %S" header)
        header;
      match int_of_string_opt header with
      | None -> bad "bad frame length %S" header
      | Some len ->
          if len > max_frame then bad "frame of %d bytes exceeds limit" len;
          let payload = really_input_string ic len in
          (match input_char ic with
          | '\n' -> ()
          | _ -> bad "missing frame terminator"
          | exception End_of_file -> bad "truncated frame");
          Some payload)

let write_frame oc payload =
  (* One buffered write then a flush, mirroring the sealed-log contract:
     the peer never sees a frame split across flush boundaries. *)
  output_string oc (Printf.sprintf "%d\n%s\n" (String.length payload) payload);
  flush oc

(* ------------------------------------------------------------------ *)
(* Timeout-aware framing over a raw fd                                  *)
(* ------------------------------------------------------------------ *)

(* The server cannot use [read_frame]: a buffered [in_channel] blocks
   with no timeout, so one slow-loris client (a byte of header, then
   silence) pins a reader thread forever. This reader owns its buffer
   over [Unix.read]/[Unix.select] and distinguishes the two silences:

   - {e between} frames, silence is just an idle keep-alive connection —
     bounded by [idle_timeout], reported as [Idle] so the server can
     reap quietly;
   - {e inside} a frame, the whole frame must arrive within [io_timeout]
     of its first byte (an absolute budget — trickling one byte per
     second buys a client nothing), otherwise [Bad_request]. *)

type reader = {
  r_fd : Unix.file_descr;
  r_buf : Bytes.t;
  mutable r_pos : int;
  mutable r_len : int;
  r_idle_timeout : float option;
  r_io_timeout : float option;
  r_read_hook : (int -> int) option;
}

type frame = Frame of string | Eof | Idle

let reader ?idle_timeout ?io_timeout ?read_hook fd =
  let check = function
    | Some t when t <= 0.0 -> invalid_arg "Protocol.reader: timeout <= 0"
    | _ -> ()
  in
  check idle_timeout;
  check io_timeout;
  {
    r_fd = fd;
    r_buf = Bytes.create 65536;
    r_pos = 0;
    r_len = 0;
    r_idle_timeout = idle_timeout;
    r_io_timeout = io_timeout;
    r_read_hook = read_hook;
  }

(* [deadline]: [None] between frames, [Some abs] while one is in
   flight. Returns [false] on EOF, [`Idle] only when [deadline = None]. *)
let refill r ~deadline =
  let rec wait () =
    let timeout =
      match deadline with
      | Some d ->
          (* lint: nondet-source — wall clock enforces the frame I/O budget *)
          let remaining = d -. Unix.gettimeofday () in
          if remaining <= 0.0 then bad "frame read timed out mid-frame";
          remaining
      | None -> (
          match r.r_idle_timeout with Some t -> t | None -> -1.0 (* forever *))
    in
    match Unix.select [ r.r_fd ] [] [] timeout with
    | [], _, _ ->
        if Option.is_some deadline then bad "frame read timed out mid-frame"
        else `Idle
    | _ :: _, _, _ -> `Ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  match wait () with
  | `Idle -> `Idle
  | `Ready -> (
      let want = Bytes.length r.r_buf in
      let want =
        match r.r_read_hook with
        | None -> want
        | Some hook -> max 1 (min want (hook want))
      in
      let rec rd () =
        match Unix.read r.r_fd r.r_buf 0 want with
        | n -> n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> rd ()
      in
      match rd () with
      | 0 -> `Eof
      | n ->
          r.r_pos <- 0;
          r.r_len <- n;
          `Data)

let next_byte r ~deadline =
  if r.r_pos < r.r_len then begin
    let c = Bytes.get r.r_buf r.r_pos in
    r.r_pos <- r.r_pos + 1;
    `Byte c
  end
  else
    match refill r ~deadline with
    | `Idle -> `Idle
    | `Eof -> `Eof
    | `Data ->
        let c = Bytes.get r.r_buf r.r_pos in
        r.r_pos <- r.r_pos + 1;
        `Byte c

let read_frame_fd r =
  (* The first header byte is read under the idle policy: silence there
     is a quiet connection, not a stuck frame. *)
  match next_byte r ~deadline:None with
  | `Idle -> Idle
  | `Eof -> Eof
  | `Byte first ->
      let deadline =
        match r.r_io_timeout with
        | None -> None
        | Some t ->
            (* lint: nondet-source — wall clock enforces the frame I/O budget *)
            Some (Unix.gettimeofday () +. t)
      in
      let hdr = Buffer.create 16 in
      let rec header c =
        if c = '\n' then ()
        else begin
          (* [max_frame] has 8 digits; 32 bytes of header is garbage. *)
          if Buffer.length hdr >= 32 then bad "bad frame length %S" (Buffer.contents hdr);
          Buffer.add_char hdr c;
          match next_byte r ~deadline with
          | `Byte c -> header c
          | `Eof -> bad "truncated frame"
          | `Idle -> assert false (* deadline <> idle policy mid-frame *)
        end
      in
      header first;
      let header =
        let raw = Buffer.contents hdr in
        (* tolerate a CRLF client *)
        if String.length raw > 0 && raw.[String.length raw - 1] = '\r' then
          String.sub raw 0 (String.length raw - 1)
        else raw
      in
      if header = "" then bad "empty frame header";
      String.iter
        (fun c -> if c < '0' || c > '9' then bad "bad frame length %S" header)
        header;
      (match int_of_string_opt header with
      | None -> bad "bad frame length %S" header
      | Some len ->
          if len > max_frame then bad "frame of %d bytes exceeds limit" len;
          let payload = Bytes.create len in
          let filled = ref 0 in
          while !filled < len do
            if r.r_pos < r.r_len then begin
              let k = min (r.r_len - r.r_pos) (len - !filled) in
              Bytes.blit r.r_buf r.r_pos payload !filled k;
              r.r_pos <- r.r_pos + k;
              filled := !filled + k
            end
            else
              match refill r ~deadline with
              | `Eof -> bad "truncated frame"
              | `Data -> ()
              | `Idle -> assert false
          done;
          (match next_byte r ~deadline with
          | `Byte '\n' -> ()
          | `Byte _ -> bad "missing frame terminator"
          | `Eof -> bad "truncated frame"
          | `Idle -> assert false);
          Frame (Bytes.to_string payload))

(* ------------------------------------------------------------------ *)
(* Request payloads                                                    *)
(* ------------------------------------------------------------------ *)

let fields_of_payload payload =
  match Qls_sealed.fields_of_line payload with
  | fields -> fields
  | exception Qls_sealed.Malformed m -> bad "malformed request: %s" m

let str_field fields key default =
  Option.value ~default (List.assoc_opt key fields)

let int_field fields key default =
  match List.assoc_opt key fields with
  | None -> default
  | Some raw -> (
      match int_of_string_opt raw with
      | Some n -> n
      | None -> bad "field %S is not an integer: %S" key raw)

let gen_of_fields fields =
  {
    arch = str_field fields "arch" "aspen4";
    n_swaps = int_field fields "swaps" 5;
    gates =
      (match List.assoc_opt "gates" fields with
      | None -> None
      | Some raw -> (
          match int_of_string_opt raw with
          | Some n -> Some n
          | None -> bad "field \"gates\" is not an integer: %S" raw));
    seed = int_field fields "seed" 0;
  }

(* Deadlines bound wall-clock, not work identity: the field is kept out
   of every cache key so a deadlined request that completes in time is
   byte-identical to (and shares cache entries with) the same request
   without one. *)
let deadline_of_fields fields =
  match List.assoc_opt "deadline_ms" fields with
  | None -> None
  | Some raw -> (
      match int_of_string_opt raw with
      | None -> bad "field \"deadline_ms\" is not an integer: %S" raw
      | Some n when n < 1 -> bad "field \"deadline_ms\" must be >= 1: %d" n
      | Some n -> Some n)

let route_of_fields fields =
  {
    gen = gen_of_fields fields;
    tool = str_field fields "tool" "sabre";
    trials = int_field fields "trials" 20;
    qasm = List.assoc_opt "qasm" fields;
    deadline_ms = deadline_of_fields fields;
  }

let request_of_payload payload =
  let fields = fields_of_payload payload in
  match List.assoc_opt "verb" fields with
  | None -> bad "request without a \"verb\""
  | Some "route" -> Route (route_of_fields fields)
  | Some "evaluate" ->
      let p = route_of_fields fields in
      if Option.is_some p.qasm then
        bad "evaluate compares against a certified optimum; inline \"qasm\" \
             has none (use \"route\")";
      Evaluate p
  | Some "certify" ->
      Certify
        {
          gen = gen_of_fields fields;
          deadline_ms = deadline_of_fields fields;
        }
  | Some "stats" -> Stats
  | Some "health" -> Health
  | Some verb -> bad "unknown verb %S" verb

let request_id payload =
  match Qls_sealed.fields_of_line payload with
  | fields -> List.assoc_opt "id" fields
  | exception Qls_sealed.Malformed _ -> None

(* ------------------------------------------------------------------ *)
(* Cache keys                                                          *)
(* ------------------------------------------------------------------ *)

(* FNV-1a, 64-bit. Content addressing only — collision resistance in
   the cryptographic sense is not required (a collision serves a wrong
   cached answer to a request hand-crafted to collide with another; the
   daemon trusts its clients). *)
let circuit_hash text =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
             1099511628211L)
    text;
  Printf.sprintf "%016Lx" !h

(* Length-prefix every component so the key is injective whatever bytes
   the components contain — the property the QCheck suite pins down. *)
let joined parts =
  String.concat "|"
    (List.map (fun s -> Printf.sprintf "%d:%s" (String.length s) s) parts)

let gen_key g =
  joined
    [
      g.arch;
      string_of_int g.n_swaps;
      (match g.gates with None -> "paper" | Some n -> string_of_int n);
      string_of_int g.seed;
    ]

let route_key ~device ~circuit ~tool ~trials ~seed =
  joined [ device; circuit; tool; string_of_int trials; string_of_int seed ]
