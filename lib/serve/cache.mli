(** Content-addressed in-memory cache: bounded LRU with single-flight
    computation.

    The daemon's three caches (device/APSP tables, certified instances,
    routed results) are instances of this one structure. Two properties
    matter for serving:

    - {b Single-flight} — when several requests miss on the same key at
      once, exactly one computes; the rest block until the value is
      ready and count as hits. This is what makes the cache hit rate
      (and thus the bench's determinism check) exact: for [k] distinct
      keys over [n] requests there are exactly [k] misses, whatever the
      interleaving.
    - {b Bounded} — at most [capacity] ready values are retained; on
      overflow the least-recently-used one is evicted (in-flight
      computations are never evicted). Keys are content-addressed, so
      eviction costs recomputation, never correctness.

    Thread- and domain-safe; a computation that raises releases its slot
    (and wakes its waiters, who re-raise is {e not} done — the first
    waiter retries the computation itself). *)

type 'a t

val create : ?capacity:int -> string -> 'a t
(** [create name] makes an empty cache. [capacity] (default 256) bounds
    the number of {e ready} entries; [0] disables retention entirely
    (every lookup computes — useful to switch caching off uniformly). *)

val find_or_compute : 'a t -> key:string -> (unit -> 'a) -> 'a * bool
(** [find_or_compute t ~key f] returns [(value, hit)]: the cached value
    for [key] ([hit = true]), or the result of running [f] now
    ([hit = false]), which is then retained. Waiting on another
    request's in-flight computation counts as a hit. If [f] raises, the
    exception propagates to the computing caller and the slot is
    released. *)

type stats = {
  name : string;
  hits : int;
  misses : int;
  evictions : int;
  size : int;  (** ready entries currently retained *)
  capacity : int;
}

val stats : 'a t -> stats
(** A consistent snapshot of the counters. *)
