(** A CDCL SAT solver.

    OLSQ2 — the exact tool the paper uses to verify QUBIKOS optimality —
    is a SAT-based solver (PySAT + Z3). This module is the corresponding
    substrate built from scratch: conflict-driven clause learning with
    two-watched-literal propagation, first-UIP learning, VSIDS-style
    activity decision ordering and geometric restarts. It is used by
    {!Qls_router.Olsq} to solve the transition encoding of layout
    synthesis, giving the repository a second, fully independent exact
    optimality checker (cross-validated against {!Qls_router.Exact} and
    the brute-force oracle in the test suite).

    Variables are integers [1 .. n]; literals are non-zero integers where
    [-v] is the negation of [v] (DIMACS convention). *)

type t
(** A solver instance. *)

type result = Sat | Unsat | Unknown
(** [Unknown] is returned only when a conflict budget is exhausted. *)

val create : int -> t
(** [create n_vars] makes a solver over variables [1 .. n_vars]. *)

val n_vars : t -> int
(** The number of variables. *)

val add_clause : t -> int list -> unit
(** Add a clause (a disjunction of literals). Adding the empty clause, or
    clauses that immediately conflict at level 0, makes the instance
    unsatisfiable. Tautologies and duplicate literals are handled.
    @raise Invalid_argument on a literal out of range, or if called after
    solving has started. *)

val solve : ?conflict_budget:int -> t -> result
(** Run the CDCL search (default budget: 2 million conflicts). *)

val value : t -> int -> bool
(** [value t v] is the assignment of variable [v] in the model after
    {!solve} returned [Sat].
    @raise Invalid_argument if there is no model. *)

val stats : t -> int * int
(** [(conflicts, decisions)] of the last solve. *)

val restarts : t -> int
(** Geometric restarts performed during the last solve. *)

val learned : t -> int
(** Learnt clauses pushed into the database during the last solve (unit
    learnts, which need no clause record, are not counted). *)
