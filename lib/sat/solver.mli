(** A CDCL SAT solver with incremental solving under assumptions.

    OLSQ2 — the exact tool the paper uses to verify QUBIKOS optimality —
    is a SAT-based solver (PySAT + Z3). This module is the corresponding
    substrate built from scratch: conflict-driven clause learning with
    two-watched-literal propagation, first-UIP learning, VSIDS-style
    activity ordered by a binary heap, phase saving and geometric
    restarts. It is used by {!Qls_router.Olsq} to solve the transition
    encoding of layout synthesis, giving the repository a second, fully
    independent exact optimality checker (cross-validated against
    {!Qls_router.Exact} and the brute-force oracle in the test suite).

    The solver is {e incremental} in the MiniSat sense: {!add_clause} is
    legal at any point, and {!solve} accepts a list of assumption
    literals that hold for that call only. Learned clauses, variable
    activities and saved phases persist across calls — sound because a
    learned clause is implied by the clause database alone, never by the
    assumptions (assumptions enter the search as removable decision
    levels, not as clauses). When a solve is unsatisfiable {e because of}
    the assumptions, {!unsat_core} names the subset responsible.

    Variables are integers [1 .. n]; literals are non-zero integers where
    [-v] is the negation of [v] (DIMACS convention). *)

type t
(** A solver instance. *)

type result = Sat | Unsat | Unknown
(** [Unknown] is returned only when a conflict budget is exhausted, in
    which case {!budget_exhausted} is also set. *)

(** Search-behaviour knobs, diversified per portfolio seed. All fields
    are consumed at {!create} time. *)
type config = {
  seed : int;  (** identity; [0] is the canonical default solver *)
  decay : float;  (** VSIDS activity decay factor, in (0, 1) *)
  restart_base : int;  (** conflicts before the first restart *)
  restart_growth : float;  (** geometric restart-interval multiplier *)
  init_phase : bool;  (** initial saved phase for every variable *)
  scramble_activity : bool;
      (** start activities at small seed-derived values instead of zero,
          diversifying early branching order *)
}

val default_config : config
(** Seed 0: decay 0.95, restarts 100 × 1.5ⁿ, negative initial phase, no
    activity scramble — the historical behaviour of this solver. *)

val config_of_seed : int -> config
(** Deterministic seed → configuration derivation: a pure function (an
    integer avalanche hash over the seed, no ambient randomness), so a
    portfolio replay with a recorded winner seed rebuilds the winning
    solver exactly. [config_of_seed 0 = default_config]. *)

val create : ?config:config -> int -> t
(** [create n_vars] makes a solver over variables [1 .. n_vars]
    (default configuration: {!default_config}). *)

val n_vars : t -> int
(** The number of variables. *)

val solver_config : t -> config
(** The configuration this solver was created with. *)

val add_clause : t -> int list -> unit
(** Add a clause (a disjunction of literals) — at any time, including
    between {!solve} calls (the solver first backtracks to the root
    level). Adding the empty clause, or clauses that immediately conflict
    at level 0, makes the instance permanently unsatisfiable.
    Tautologies and duplicate literals are handled; literals already
    false at level 0 are simplified away.
    @raise Invalid_argument on a literal out of range. *)

val solve : ?conflict_budget:int -> ?assumptions:int list -> t -> result
(** Run the CDCL search (default budget: 2 million conflicts).

    [assumptions] are literals assumed true {e for this call only}: they
    are consumed as a prefix of pseudo-decision levels, so nothing about
    them persists — except learned clauses, which never mention them by
    construction and therefore transfer to future calls with different
    assumptions. If the result is [Unsat] and the assumptions are to
    blame, {!unsat_core} returns the responsible subset; if the database
    is unsat on its own, every future {!solve} returns [Unsat]
    immediately and the core is empty.

    @raise Invalid_argument on an assumption literal out of range. *)

val value : t -> int -> bool
(** [value t v] is the assignment of variable [v] in the model after
    {!solve} returned [Sat].
    @raise Invalid_argument if there is no model. *)

val unsat_core : t -> int list
(** After {!solve} returned [Unsat]: a subset of the assumption literals
    (DIMACS, sorted) sufficient for unsatisfiability together with the
    clause database. Empty when the database alone is unsat (or after
    [Sat]/[Unknown]). *)

val budget_exhausted : t -> bool
(** True iff the last {!solve} returned [Unknown] because it ran out of
    conflict budget. This is the explicit signal distinguishing budget
    exhaustion from a cancellation-raised exit ({!Qls_cancel.Cancelled} /
    {!Qls_cancel.Expired} propagate as exceptions and never return
    [Unknown]); callers must not infer it from counter values. *)

val stats : t -> int * int
(** [(conflicts, decisions)] of the last solve. *)

val restarts : t -> int
(** Geometric restarts performed during the last solve. *)

val learned : t -> int
(** Learnt clauses pushed into the database during the last solve (unit
    learnts, which need no clause record, are not counted). *)

val solves : t -> int
(** Completed {!solve} calls on this instance. *)

val total_stats : t -> int * int * int * int
(** [(conflicts, decisions, restarts, learned)] summed over all completed
    {!solve} calls — the per-call {!stats} accumulate into these. *)
