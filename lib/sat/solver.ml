(* CDCL with two-watched literals, 1UIP learning, VSIDS-style activities,
   phase saving and geometric restarts. *)

type result = Sat | Unsat | Unknown

type t = {
  nv : int;
  (* clause database: each clause is an int array of internal literals *)
  mutable clauses : int array array;
  mutable n_clauses : int;
  (* watches.(lit) = clause indices watching [lit] *)
  mutable watches : int list array;
  (* assignment per variable index: -1 unassigned / 0 false / 1 true *)
  assign : int array;
  level : int array;
  reason : int array; (* clause index or -1 *)
  trail : int array;
  mutable trail_size : int;
  mutable qhead : int;
  mutable trail_lim : int list; (* trail sizes at decision points *)
  activity : float array;
  mutable var_inc : float;
  phase : bool array;
  seen : bool array;
  mutable pending_units : int list; (* units added before solving *)
  mutable root_unsat : bool;
  mutable started : bool;
  mutable model : bool array option;
  mutable conflicts : int;
  mutable decisions : int;
  mutable restarts : int;
  mutable learned : int;
}

(* Internal literal encoding: positive v -> 2(v-1), negative v -> 2(v-1)+1. *)
let lit_of_dimacs l =
  if l > 0 then 2 * (l - 1) else (2 * (-l - 1)) + 1

let neg l = l lxor 1
let var_idx l = l lsr 1
let is_pos l = l land 1 = 0

let create nv =
  if nv < 0 then invalid_arg "Solver.create: negative variable count";
  {
    nv;
    clauses = Array.make 64 [||];
    n_clauses = 0;
    watches = Array.make (max 2 (2 * nv)) [];
    assign = Array.make (max 1 nv) (-1);
    level = Array.make (max 1 nv) 0;
    reason = Array.make (max 1 nv) (-1);
    trail = Array.make (max 1 nv) 0;
    trail_size = 0;
    qhead = 0;
    trail_lim = [];
    activity = Array.make (max 1 nv) 0.0;
    var_inc = 1.0;
    phase = Array.make (max 1 nv) false;
    seen = Array.make (max 1 nv) false;
    pending_units = [];
    root_unsat = false;
    started = false;
    model = None;
    conflicts = 0;
    decisions = 0;
    restarts = 0;
    learned = 0;
  }

let n_vars t = t.nv

let lit_value t l =
  let a = t.assign.(var_idx l) in
  if a < 0 then -1 else if is_pos l then a else 1 - a

let push_clause t c =
  if t.n_clauses = Array.length t.clauses then begin
    let bigger = Array.make (2 * t.n_clauses) [||] in
    Array.blit t.clauses 0 bigger 0 t.n_clauses;
    t.clauses <- bigger
  end;
  t.clauses.(t.n_clauses) <- c;
  t.n_clauses <- t.n_clauses + 1;
  t.n_clauses - 1

let watch t l ci = t.watches.(l) <- ci :: t.watches.(l)

let add_clause t lits =
  if t.started then invalid_arg "Solver.add_clause: solving already started";
  List.iter
    (fun l ->
      let v = abs l in
      if l = 0 || v > t.nv then
        invalid_arg (Printf.sprintf "Solver.add_clause: bad literal %d" l))
    lits;
  let lits = List.sort_uniq Int.compare (List.map lit_of_dimacs lits) in
  let tautology =
    List.exists (fun l -> List.mem (neg l) lits) lits
  in
  if not tautology then
    match lits with
    | [] -> t.root_unsat <- true
    | [ l ] -> t.pending_units <- l :: t.pending_units
    | l0 :: l1 :: _ ->
        let c = Array.of_list lits in
        let ci = push_clause t c in
        watch t l0 ci;
        watch t l1 ci

let enqueue t l reason =
  let v = var_idx l in
  t.assign.(v) <- (if is_pos l then 1 else 0);
  t.level.(v) <- List.length t.trail_lim;
  t.reason.(v) <- reason;
  t.phase.(v) <- is_pos l;
  t.trail.(t.trail_size) <- l;
  t.trail_size <- t.trail_size + 1

(* Returns the conflicting clause index, or -1. *)
let propagate t =
  let conflict = ref (-1) in
  while !conflict < 0 && t.qhead < t.trail_size do
    let l = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    let false_lit = neg l in
    let watchers = t.watches.(false_lit) in
    t.watches.(false_lit) <- [];
    let rec go = function
      | [] -> ()
      | ci :: rest ->
          if !conflict >= 0 then
            (* conflict already found: keep remaining watchers untouched *)
            t.watches.(false_lit) <- ci :: (t.watches.(false_lit) @ rest)
          else begin
            let c = t.clauses.(ci) in
            (* normalise: c.(1) is the false literal *)
            if c.(0) = false_lit then begin
              c.(0) <- c.(1);
              c.(1) <- false_lit
            end;
            if lit_value t c.(0) = 1 then begin
              (* satisfied: keep watching *)
              t.watches.(false_lit) <- ci :: t.watches.(false_lit);
              go rest
            end
            else begin
              (* find a new literal to watch *)
              let n = Array.length c in
              let found = ref false in
              let k = ref 2 in
              while (not !found) && !k < n do
                if lit_value t c.(!k) <> 0 then begin
                  c.(1) <- c.(!k);
                  c.(!k) <- false_lit;
                  watch t c.(1) ci;
                  found := true
                end;
                incr k
              done;
              if !found then go rest
              else begin
                (* clause is unit or conflicting under c.(0) *)
                t.watches.(false_lit) <- ci :: t.watches.(false_lit);
                if lit_value t c.(0) = 0 then begin
                  conflict := ci;
                  go rest
                end
                else begin
                  if lit_value t c.(0) = -1 then enqueue t c.(0) ci;
                  go rest
                end
              end
            end
          end
    in
    go watchers
  done;
  !conflict

let bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.nv - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end

let decay t = t.var_inc <- t.var_inc /. 0.95

let current_level t = List.length t.trail_lim

(* First-UIP conflict analysis. Returns (learnt clause with the asserting
   literal first, backjump level). *)
let analyze t conflict_ci =
  let learnt_tail = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let idx = ref (t.trail_size - 1) in
  let ci = ref conflict_ci in
  let cur = current_level t in
  let continue = ref true in
  while !continue do
    let c = t.clauses.(!ci) in
    Array.iter
      (fun q ->
        if !p >= 0 && q = !p then ()
        else begin
          let v = var_idx q in
          if (not t.seen.(v)) && t.level.(v) > 0 then begin
            t.seen.(v) <- true;
            bump t v;
            if t.level.(v) >= cur then incr counter
            else learnt_tail := q :: !learnt_tail
          end
        end)
      c;
    (* advance to the next seen literal on the trail *)
    while not t.seen.(var_idx t.trail.(!idx)) do
      decr idx
    done;
    let lit = t.trail.(!idx) in
    let v = var_idx lit in
    t.seen.(v) <- false;
    decr counter;
    decr idx;
    if !counter = 0 then begin
      p := lit;
      continue := false
    end
    else begin
      p := lit;
      ci := t.reason.(v)
    end
  done;
  List.iter (fun q -> t.seen.(var_idx q) <- false) !learnt_tail;
  let backjump =
    List.fold_left (fun acc q -> max acc (t.level.(var_idx q))) 0 !learnt_tail
  in
  (neg !p :: !learnt_tail, backjump)

let backtrack t lvl =
  let keep =
    (* trail size at the start of level lvl + 1 *)
    match t.trail_lim with
    | [] -> t.trail_size
    | lims ->
        let arr = Array.of_list (List.rev lims) in
        if lvl >= Array.length arr then t.trail_size else arr.(lvl)
  in
  for i = t.trail_size - 1 downto keep do
    let v = var_idx t.trail.(i) in
    t.assign.(v) <- -1;
    t.reason.(v) <- -1
  done;
  t.trail_size <- keep;
  t.qhead <- keep;
  let rec drop lims =
    if List.length lims > lvl then drop (List.tl lims) else lims
  in
  t.trail_lim <- drop t.trail_lim

let pick_branch t =
  let best = ref (-1) in
  for v = 0 to t.nv - 1 do
    if t.assign.(v) < 0 && (!best < 0 || t.activity.(v) > t.activity.(!best))
    then best := v
  done;
  !best

let solve_raw ~conflict_budget t =
  t.started <- true;
  t.model <- None;
  t.conflicts <- 0;
  t.decisions <- 0;
  t.restarts <- 0;
  t.learned <- 0;
  if t.root_unsat then Unsat
  else begin
    (* enqueue root units *)
    let ok = ref true in
    List.iter
      (fun l ->
        match lit_value t l with
        | 1 -> ()
        | 0 -> ok := false
        | _ -> enqueue t l (-1))
      t.pending_units;
    if not !ok then Unsat
    else begin
      let result = ref Unknown in
      let restart_limit = ref 100 in
      let since_restart = ref 0 in
      (try
         while !result = Unknown do
           let confl = propagate t in
           if confl >= 0 then begin
             t.conflicts <- t.conflicts + 1;
             incr since_restart;
             if t.conflicts land 4095 = 0 then Qls_cancel.poll ();
             if t.conflicts > conflict_budget then raise Exit;
             if current_level t = 0 then begin
               result := Unsat;
               raise Exit
             end;
             let learnt, backjump = analyze t confl in
             decay t;
             backtrack t backjump;
             (match learnt with
             | [ l ] -> enqueue t l (-1)
             | l :: _ ->
                 let c = Array.of_list learnt in
                 let ci = push_clause t c in
                 t.learned <- t.learned + 1;
                 (* watch the asserting literal and one backjump-level lit *)
                 watch t c.(0) ci;
                 (* move a literal of the backjump level to slot 1 *)
                 let n = Array.length c in
                 let best = ref 1 in
                 for k = 2 to n - 1 do
                   if t.level.(var_idx c.(k)) > t.level.(var_idx c.(!best)) then
                     best := k
                 done;
                 let tmp = c.(1) in
                 c.(1) <- c.(!best);
                 c.(!best) <- tmp;
                 watch t c.(1) ci;
                 enqueue t l ci
             | [] -> assert false)
           end
           else if !since_restart > !restart_limit then begin
             since_restart := 0;
             restart_limit := !restart_limit * 3 / 2;
             t.restarts <- t.restarts + 1;
             (* Deadline/heartbeat checkpoint: once per restart. The
                restart interval grows geometrically, so a fixed-stride
                conflict checkpoint below keeps the tail bounded too. *)
             Qls_cancel.poll ();
             backtrack t 0
           end
           else begin
             match pick_branch t with
             | -1 ->
                 (* full assignment: SAT *)
                 t.model <-
                   Some (Array.init t.nv (fun v -> t.assign.(v) = 1));
                 result := Sat
             | v ->
                 t.decisions <- t.decisions + 1;
                 t.trail_lim <- t.trail_size :: t.trail_lim;
                 let l = 2 * v + if t.phase.(v) then 0 else 1 in
                 enqueue t l (-1)
           end
         done
       with Exit -> ());
      (match !result with Unknown when t.conflicts <= conflict_budget -> () | _ -> ());
      !result
    end
  end

(* Aggregate CDCL effort into the obs registry once per [solve]; the
   per-solve span carries the same numbers as attributes when tracing. *)
let obs_conflicts = lazy (Qls_obs.counter "sat.conflicts")
let obs_learned = lazy (Qls_obs.counter "sat.learned")
let obs_restarts = lazy (Qls_obs.counter "sat.restarts")

let solve ?(conflict_budget = 2_000_000) t =
  let traced = Qls_obs.enabled () in
  let sp =
    if traced then Qls_obs.start ~site:"sat" "sat.solve" else Qls_obs.none
  in
  let res =
    match solve_raw ~conflict_budget t with
    | r -> r
    | exception e ->
        if traced then
          Qls_obs.stop sp ~attrs:[ ("result", Qls_obs.Str "exception") ];
        raise e
  in
  Qls_obs.add (Lazy.force obs_conflicts) t.conflicts;
  Qls_obs.add (Lazy.force obs_learned) t.learned;
  Qls_obs.add (Lazy.force obs_restarts) t.restarts;
  if traced then
    Qls_obs.stop sp
      ~attrs:
        [
          ( "result",
            Qls_obs.Str
              (match res with
              | Sat -> "sat"
              | Unsat -> "unsat"
              | Unknown -> "unknown") );
          ("conflicts", Qls_obs.Int t.conflicts);
          ("decisions", Qls_obs.Int t.decisions);
          ("restarts", Qls_obs.Int t.restarts);
          ("learned", Qls_obs.Int t.learned);
        ];
  res

let value t v =
  if v < 1 || v > t.nv then invalid_arg "Solver.value: variable out of range";
  match t.model with
  | Some m -> m.(v - 1)
  | None -> invalid_arg "Solver.value: no model (last solve was not Sat)"

let stats t = (t.conflicts, t.decisions)
let restarts t = t.restarts
let learned t = t.learned
