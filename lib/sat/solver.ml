(* CDCL with two-watched literals, 1UIP learning, VSIDS-style activities,
   phase saving, geometric restarts, incremental solving under assumptions
   and deterministically seeded configuration diversification. *)

type result = Sat | Unsat | Unknown

type config = {
  seed : int;
  decay : float;  (* VSIDS activity decay factor, in (0, 1) *)
  restart_base : int;  (* conflicts before the first restart *)
  restart_growth : float;  (* geometric restart-interval multiplier *)
  init_phase : bool;  (* initial saved phase for every variable *)
  scramble_activity : bool;  (* seed-derived initial activity jitter *)
}

let default_config =
  {
    seed = 0;
    decay = 0.95;
    restart_base = 100;
    restart_growth = 1.5;
    init_phase = false;
    scramble_activity = false;
  }

(* Deterministic integer mix (xxhash-style avalanche over 32-bit constants,
   so the result is identical on every 64-bit platform). This is the only
   randomness source in the solver: portfolio replay depends on
   [config_of_seed] being a pure function of the seed. *)
let mix a b =
  let h = ref ((a * 0x9E3779B1) lxor ((b + 0x165667B1) * 0x85EBCA77)) in
  h := !h lxor (!h lsr 13);
  h := !h * 0xC2B2AE3D;
  h := !h lxor (!h lsr 16);
  !h land 0x3FFFFFFF

let config_of_seed seed =
  if seed = 0 then default_config
  else
    {
      seed;
      decay = [| 0.95; 0.90; 0.85; 0.99; 0.92 |].(mix seed 1 mod 5);
      restart_base = [| 100; 50; 150; 200 |].(mix seed 2 mod 4);
      restart_growth = [| 1.5; 2.0; 1.3 |].(mix seed 3 mod 3);
      init_phase = mix seed 4 land 1 = 1;
      scramble_activity = true;
    }

type t = {
  nv : int;
  cfg : config;
  (* clause database: each clause is an int array of internal literals *)
  mutable clauses : int array array;
  mutable n_clauses : int;
  (* watches.(lit) = clause indices watching [lit] *)
  mutable watches : int list array;
  (* assignment per variable index: -1 unassigned / 0 false / 1 true *)
  assign : int array;
  level : int array;
  reason : int array; (* clause index or -1 *)
  trail : int array;
  mutable trail_size : int;
  mutable qhead : int;
  mutable trail_lim : int list; (* trail sizes at decision points *)
  activity : float array;
  mutable var_inc : float;
  phase : bool array;
  seen : bool array;
  (* activity-ordered binary max-heap of candidate branch variables *)
  heap : int array;
  heap_pos : int array; (* position in [heap], or -1 *)
  mutable heap_size : int;
  mutable root_unsat : bool;
  mutable model : bool array option;
  mutable last_core : int list; (* DIMACS lits; set on assumption-Unsat *)
  mutable budget_exhausted : bool;
  (* per-solve stats *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable restarts : int;
  mutable learned : int;
  (* cumulative across all solve calls *)
  mutable solves : int;
  mutable total_conflicts : int;
  mutable total_decisions : int;
  mutable total_restarts : int;
  mutable total_learned : int;
}

(* Internal literal encoding: positive v -> 2(v-1), negative v -> 2(v-1)+1. *)
let lit_of_dimacs l =
  if l > 0 then 2 * (l - 1) else (2 * (-l - 1)) + 1

let dimacs_of_lit l =
  let v = (l lsr 1) + 1 in
  if l land 1 = 0 then v else -v

let neg l = l lxor 1
let var_idx l = l lsr 1
let is_pos l = l land 1 = 0

(* Heap ordering: higher activity first; on equal activity the lower
   variable index wins, which reproduces the argmax of the linear scan this
   heap replaced — default-config behaviour stays bit-identical. *)
let heap_before t v w =
  match Float.compare t.activity.(v) t.activity.(w) with
  | 0 -> v < w
  | c -> c > 0

let heap_swap t i j =
  let v = t.heap.(i) and w = t.heap.(j) in
  t.heap.(i) <- w;
  t.heap.(j) <- v;
  t.heap_pos.(w) <- i;
  t.heap_pos.(v) <- j

(* lint: cancel-poll-coverage — sift depth is log of heap size *)
let rec heap_sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_before t t.heap.(i) t.heap.(parent) then begin
      heap_swap t i parent;
      heap_sift_up t parent
    end
  end

(* lint: cancel-poll-coverage — sift depth is log of heap size *)
let rec heap_sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.heap_size then begin
    let r = l + 1 in
    let c =
      if r < t.heap_size && heap_before t t.heap.(r) t.heap.(l) then r else l
    in
    if heap_before t t.heap.(c) t.heap.(i) then begin
      heap_swap t i c;
      heap_sift_down t c
    end
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    let i = t.heap_size in
    t.heap.(i) <- v;
    t.heap_pos.(v) <- i;
    t.heap_size <- t.heap_size + 1;
    heap_sift_up t i
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_size <- t.heap_size - 1;
  t.heap_pos.(v) <- -1;
  if t.heap_size > 0 then begin
    let w = t.heap.(t.heap_size) in
    t.heap.(0) <- w;
    t.heap_pos.(w) <- 0;
    heap_sift_down t 0
  end;
  v

(* After [t.activity.(v)] increased: restore the heap invariant. *)
let heap_bumped t v = if t.heap_pos.(v) >= 0 then heap_sift_up t t.heap_pos.(v)

let create ?(config = default_config) nv =
  if nv < 0 then invalid_arg "Solver.create: negative variable count";
  let t =
    {
      nv;
      cfg = config;
      clauses = Array.make 64 [||];
      n_clauses = 0;
      watches = Array.make (max 2 (2 * nv)) [];
      assign = Array.make (max 1 nv) (-1);
      level = Array.make (max 1 nv) 0;
      reason = Array.make (max 1 nv) (-1);
      trail = Array.make (max 1 nv) 0;
      trail_size = 0;
      qhead = 0;
      trail_lim = [];
      activity = Array.make (max 1 nv) 0.0;
      var_inc = 1.0;
      phase = Array.make (max 1 nv) config.init_phase;
      seen = Array.make (max 1 nv) false;
      heap = Array.make (max 1 nv) 0;
      heap_pos = Array.make (max 1 nv) (-1);
      heap_size = 0;
      root_unsat = false;
      model = None;
      last_core = [];
      budget_exhausted = false;
      conflicts = 0;
      decisions = 0;
      restarts = 0;
      learned = 0;
      solves = 0;
      total_conflicts = 0;
      total_decisions = 0;
      total_restarts = 0;
      total_learned = 0;
    }
  in
  if config.scramble_activity then
    for v = 0 to nv - 1 do
      t.activity.(v) <- float_of_int (mix config.seed (v + 7) land 0x3FF) *. 1e-8
    done;
  for v = 0 to nv - 1 do
    heap_insert t v
  done;
  t

let n_vars t = t.nv
let solver_config t = t.cfg

let lit_value t l =
  let a = t.assign.(var_idx l) in
  if a < 0 then -1 else if is_pos l then a else 1 - a

let push_clause t c =
  if t.n_clauses = Array.length t.clauses then begin
    let bigger = Array.make (2 * t.n_clauses) [||] in
    Array.blit t.clauses 0 bigger 0 t.n_clauses;
    t.clauses <- bigger
  end;
  t.clauses.(t.n_clauses) <- c;
  t.n_clauses <- t.n_clauses + 1;
  t.n_clauses - 1

let watch t l ci = t.watches.(l) <- ci :: t.watches.(l)

let enqueue t l reason =
  let v = var_idx l in
  t.assign.(v) <- (if is_pos l then 1 else 0);
  t.level.(v) <- List.length t.trail_lim;
  t.reason.(v) <- reason;
  t.phase.(v) <- is_pos l;
  t.trail.(t.trail_size) <- l;
  t.trail_size <- t.trail_size + 1

let backtrack t lvl =
  let keep =
    (* trail size at the start of level lvl + 1 *)
    match t.trail_lim with
    | [] -> t.trail_size
    | lims ->
        let arr = Array.of_list (List.rev lims) in
        if lvl >= Array.length arr then t.trail_size else arr.(lvl)
  in
  for i = t.trail_size - 1 downto keep do
    let v = var_idx t.trail.(i) in
    t.assign.(v) <- -1;
    t.reason.(v) <- -1;
    heap_insert t v
  done;
  t.trail_size <- keep;
  (* never move the propagation head forward: units enqueued by an
     incremental [add_clause] sit below [keep] but are not yet propagated *)
  t.qhead <- min t.qhead keep;
  let rec drop lims =
    if List.length lims > lvl then drop (List.tl lims) else lims
  in
  t.trail_lim <- drop t.trail_lim

(* Incremental clause addition: permitted at any time. The solver backtracks
   to the root level and simplifies the clause against the level-0
   assignment, so clauses learned in earlier solve calls (which are implied
   by the database alone, never by assumptions) remain sound. *)
let add_clause t lits =
  List.iter
    (fun l ->
      let v = abs l in
      if l = 0 || v > t.nv then
        invalid_arg (Printf.sprintf "Solver.add_clause: bad literal %d" l))
    lits;
  backtrack t 0;
  t.model <- None;
  let lits = List.sort_uniq Int.compare (List.map lit_of_dimacs lits) in
  let tautology = List.exists (fun l -> List.mem (neg l) lits) lits in
  if not (tautology || List.exists (fun l -> lit_value t l = 1) lits) then begin
    (* drop literals already false at level 0 *)
    let lits = List.filter (fun l -> lit_value t l <> 0) lits in
    match lits with
    | [] -> t.root_unsat <- true
    | [ l ] ->
        (* level-0 unit: assign now, propagate at the next solve *)
        enqueue t l (-1)
    | l0 :: l1 :: _ ->
        let c = Array.of_list lits in
        let ci = push_clause t c in
        watch t l0 ci;
        watch t l1 ci
  end

(* Returns the conflicting clause index, or -1. *)
let propagate t =
  let conflict = ref (-1) in
  (* lint: cancel-poll-coverage — each pass consumes one trail entry; the CDCL loop polls per restart *)
  while !conflict < 0 && t.qhead < t.trail_size do
    let l = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    let false_lit = neg l in
    let watchers = t.watches.(false_lit) in
    t.watches.(false_lit) <- [];
    let rec go = function
      | [] -> ()
      | ci :: rest ->
          if !conflict >= 0 then
            (* conflict already found: keep remaining watchers untouched *)
            t.watches.(false_lit) <- ci :: (t.watches.(false_lit) @ rest)
          else begin
            let c = t.clauses.(ci) in
            (* normalise: c.(1) is the false literal *)
            if c.(0) = false_lit then begin
              c.(0) <- c.(1);
              c.(1) <- false_lit
            end;
            if lit_value t c.(0) = 1 then begin
              (* satisfied: keep watching *)
              t.watches.(false_lit) <- ci :: t.watches.(false_lit);
              go rest
            end
            else begin
              (* find a new literal to watch *)
              let n = Array.length c in
              let found = ref false in
              let k = ref 2 in
              (* lint: cancel-poll-coverage — scan bounded by clause length *)
              while (not !found) && !k < n do
                if lit_value t c.(!k) <> 0 then begin
                  c.(1) <- c.(!k);
                  c.(!k) <- false_lit;
                  watch t c.(1) ci;
                  found := true
                end;
                incr k
              done;
              if !found then go rest
              else begin
                (* clause is unit or conflicting under c.(0) *)
                t.watches.(false_lit) <- ci :: t.watches.(false_lit);
                if lit_value t c.(0) = 0 then begin
                  conflict := ci;
                  go rest
                end
                else begin
                  if lit_value t c.(0) = -1 then enqueue t c.(0) ci;
                  go rest
                end
              end
            end
          end
    in
    go watchers
  done;
  !conflict

let bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.nv - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
    (* uniform rescale preserves the heap order; no repair needed *)
  end;
  heap_bumped t v

let decay t = t.var_inc <- t.var_inc /. t.cfg.decay

let current_level t = List.length t.trail_lim

(* First-UIP conflict analysis. Returns (learnt clause with the asserting
   literal first, backjump level). Assumption decisions need no special
   case here: the decision literal of the conflicting level is always the
   last seen literal of that level, so the loop terminates on it before
   ever dereferencing its absent reason. *)
let analyze t conflict_ci =
  let learnt_tail = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let idx = ref (t.trail_size - 1) in
  let ci = ref conflict_ci in
  let cur = current_level t in
  let continue = ref true in
  (* lint: cancel-poll-coverage — 1-UIP resolution walks the trail once; bounded by trail size *)
  while !continue do
    let c = t.clauses.(!ci) in
    Array.iter
      (fun q ->
        if !p >= 0 && q = !p then ()
        else begin
          let v = var_idx q in
          if (not t.seen.(v)) && t.level.(v) > 0 then begin
            t.seen.(v) <- true;
            bump t v;
            if t.level.(v) >= cur then incr counter
            else learnt_tail := q :: !learnt_tail
          end
        end)
      c;
    (* advance to the next seen literal on the trail *)
    (* lint: cancel-poll-coverage — walks down the finite trail *)
    while not t.seen.(var_idx t.trail.(!idx)) do
      decr idx
    done;
    let lit = t.trail.(!idx) in
    let v = var_idx lit in
    t.seen.(v) <- false;
    decr counter;
    decr idx;
    if !counter = 0 then begin
      p := lit;
      continue := false
    end
    else begin
      p := lit;
      ci := t.reason.(v)
    end
  done;
  List.iter (fun q -> t.seen.(var_idx q) <- false) !learnt_tail;
  let backjump =
    List.fold_left (fun acc q -> max acc (t.level.(var_idx q))) 0 !learnt_tail
  in
  (neg !p :: !learnt_tail, backjump)

(* Final-conflict analysis: assumption [a] (internal literal) is false under
   the current trail. Walk the trail top-down expanding reasons; the
   decisions reached are exactly the earlier assumptions the falsification
   depends on. Stores the unsat core (as DIMACS literals over the
   assumptions, including [a] itself) in [t.last_core]. *)
let analyze_final t a =
  let core = ref [ a ] in
  if current_level t > 0 then begin
    let level1_start =
      match List.rev t.trail_lim with x :: _ -> x | [] -> assert false
    in
    t.seen.(var_idx a) <- true;
    for i = t.trail_size - 1 downto level1_start do
      let l = t.trail.(i) in
      let v = var_idx l in
      if t.seen.(v) then begin
        (if t.reason.(v) < 0 then core := l :: !core
         else
           Array.iter
             (fun q ->
               let w = var_idx q in
               if t.level.(w) > 0 then t.seen.(w) <- true)
             t.clauses.(t.reason.(v)));
        t.seen.(v) <- false
      end
    done;
    t.seen.(var_idx a) <- false
  end;
  t.last_core <- List.sort_uniq Int.compare (List.map dimacs_of_lit !core)

let pick_branch t =
  let best = ref (-1) in
  (* lint: cancel-poll-coverage — each pop shrinks the heap; bounded by variable count *)
  while !best < 0 && t.heap_size > 0 do
    let v = heap_pop t in
    if t.assign.(v) < 0 then best := v
  done;
  !best

let solve_raw ~conflict_budget ~assumps t =
  t.model <- None;
  t.last_core <- [];
  t.budget_exhausted <- false;
  t.conflicts <- 0;
  t.decisions <- 0;
  t.restarts <- 0;
  t.learned <- 0;
  if t.root_unsat then Unsat
  else begin
    backtrack t 0;
    let n_assumps = Array.length assumps in
    let result = ref Unknown in
    let restart_limit = ref t.cfg.restart_base in
    let since_restart = ref 0 in
    (try
       while true do
         let confl = propagate t in
         if confl >= 0 then begin
           t.conflicts <- t.conflicts + 1;
           incr since_restart;
           if t.conflicts land 4095 = 0 then Qls_cancel.poll ();
           if current_level t = 0 then begin
             (* conflict independent of any assumption: permanently unsat *)
             t.root_unsat <- true;
             result := Unsat;
             raise Exit
           end;
           if t.conflicts > conflict_budget then begin
             t.budget_exhausted <- true;
             raise Exit
           end;
           let learnt, backjump = analyze t confl in
           decay t;
           backtrack t backjump;
           (match learnt with
           | [ l ] -> enqueue t l (-1)
           | l :: _ ->
               let c = Array.of_list learnt in
               let ci = push_clause t c in
               t.learned <- t.learned + 1;
               (* watch the asserting literal and one backjump-level lit *)
               watch t c.(0) ci;
               (* move a literal of the backjump level to slot 1 *)
               let n = Array.length c in
               let best = ref 1 in
               for k = 2 to n - 1 do
                 if t.level.(var_idx c.(k)) > t.level.(var_idx c.(!best)) then
                   best := k
               done;
               let tmp = c.(1) in
               c.(1) <- c.(!best);
               c.(!best) <- tmp;
               watch t c.(1) ci;
               enqueue t l ci
           | [] -> assert false)
         end
         else if !since_restart > !restart_limit then begin
           since_restart := 0;
           restart_limit :=
             max (!restart_limit + 1)
               (int_of_float (float_of_int !restart_limit *. t.cfg.restart_growth));
           t.restarts <- t.restarts + 1;
           (* Deadline/heartbeat checkpoint: once per restart. The
              restart interval grows geometrically, so a fixed-stride
              conflict checkpoint above keeps the tail bounded too. *)
           Qls_cancel.poll ();
           backtrack t 0
         end
         else if current_level t < n_assumps then begin
           (* consume the assumption prefix as pseudo-decisions *)
           let a = assumps.(current_level t) in
           match lit_value t a with
           | 1 ->
               (* already true: open a dummy level so level indices keep
                  matching assumption indices *)
               t.trail_lim <- t.trail_size :: t.trail_lim
           | 0 ->
               analyze_final t a;
               result := Unsat;
               raise Exit
           | _ ->
               t.trail_lim <- t.trail_size :: t.trail_lim;
               enqueue t a (-1)
         end
         else begin
           match pick_branch t with
           | -1 ->
               (* full assignment: SAT *)
               t.model <- Some (Array.init t.nv (fun v -> t.assign.(v) = 1));
               result := Sat;
               raise Exit
           | v ->
               t.decisions <- t.decisions + 1;
               t.trail_lim <- t.trail_size :: t.trail_lim;
               let l = 2 * v + if t.phase.(v) then 0 else 1 in
               enqueue t l (-1)
         end
       done
     with Exit -> ());
    !result
  end

(* Aggregate CDCL effort into the obs registry once per [solve]; the
   per-solve span carries the same numbers as attributes when tracing. *)
let obs_conflicts = lazy (Qls_obs.counter "sat.conflicts")
let obs_learned = lazy (Qls_obs.counter "sat.learned")
let obs_restarts = lazy (Qls_obs.counter "sat.restarts")

let solve ?(conflict_budget = 2_000_000) ?(assumptions = []) t =
  Qls_cancel.poll ();
  let assumps =
    Array.of_list
      (List.map
         (fun l ->
           let v = abs l in
           if l = 0 || v > t.nv then
             invalid_arg (Printf.sprintf "Solver.solve: bad assumption %d" l);
           lit_of_dimacs l)
         assumptions)
  in
  let traced = Qls_obs.enabled () in
  let sp =
    if traced then Qls_obs.start ~site:"sat" "sat.solve" else Qls_obs.none
  in
  let res =
    match solve_raw ~conflict_budget ~assumps t with
    | r -> r
    | exception e ->
        if traced then
          Qls_obs.stop sp ~attrs:[ ("result", Qls_obs.Str "exception") ];
        raise e
  in
  t.solves <- t.solves + 1;
  t.total_conflicts <- t.total_conflicts + t.conflicts;
  t.total_decisions <- t.total_decisions + t.decisions;
  t.total_restarts <- t.total_restarts + t.restarts;
  t.total_learned <- t.total_learned + t.learned;
  Qls_obs.add (Lazy.force obs_conflicts) t.conflicts;
  Qls_obs.add (Lazy.force obs_learned) t.learned;
  Qls_obs.add (Lazy.force obs_restarts) t.restarts;
  if traced then
    Qls_obs.stop sp
      ~attrs:
        [
          ( "result",
            Qls_obs.Str
              (match res with
              | Sat -> "sat"
              | Unsat -> "unsat"
              | Unknown -> "unknown") );
          ("conflicts", Qls_obs.Int t.conflicts);
          ("decisions", Qls_obs.Int t.decisions);
          ("restarts", Qls_obs.Int t.restarts);
          ("learned", Qls_obs.Int t.learned);
        ];
  res

let value t v =
  if v < 1 || v > t.nv then invalid_arg "Solver.value: variable out of range";
  match t.model with
  | Some m -> m.(v - 1)
  | None -> invalid_arg "Solver.value: no model (last solve was not Sat)"

let unsat_core t = t.last_core
let budget_exhausted t = t.budget_exhausted
let stats t = (t.conflicts, t.decisions)
let restarts t = t.restarts
let learned t = t.learned
let solves t = t.solves

let total_stats t =
  (t.total_conflicts, t.total_decisions, t.total_restarts, t.total_learned)
