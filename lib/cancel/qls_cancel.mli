(** Cooperative cancellation tokens with optional deadlines.

    A {!token} travels with a unit of work (typically a pool job) and serves
    two purposes:

    - {b Deadline enforcement.} A token created with [?deadline_ms] carries an
      absolute expiry. Work that calls {!poll} at its natural checkpoints
      (router rounds, SAT restarts, generator phases) raises {!Expired} once
      the budget is spent; the exception carries both the elapsed time and the
      configured limit so callers can produce a typed response.
    - {b Liveness heartbeat.} Every {!poll} stamps the token with the current
      time. A supervisor (the pool watchdog) reads {!last_poll_ms} to tell a
      slow-but-alive job from a genuinely stuck one.

    Tokens are ambient: {!with_token} installs a token in domain-local storage
    for the duration of a thunk, and {!poll} reads it back, so deep library
    code (routers, the SAT solver, the generator) needs no plumbing — it just
    calls [Qls_cancel.poll ()]. When no token is installed, {!poll} is a
    cheap no-op, so instrumented code costs nothing on the batch/CLI paths.

    Checkpoint granularity is deliberately coarse (one poll per router round /
    SAT restart / generator phase): cancellation latency is bounded by the
    longest inter-checkpoint stretch, which the pool watchdog backstops. *)

type token

(** Raised by {!poll} when the installed token's deadline has passed.
    [elapsed_ms] is measured from token creation (so it includes any queue
    wait), and is always [>= limit_ms]. *)
exception Expired of { elapsed_ms : int; limit_ms : int }

(** Raised by {!poll} / {!expire_check} once {!cancel} has been called on the
    installed token. Unlike {!Expired} this carries no timing payload: it
    means another domain decided this work is no longer needed (e.g. a
    portfolio race already has its verdict), not that a budget ran out. *)
exception Cancelled

val make : ?deadline_ms:int -> unit -> token
(** A fresh token. With [?deadline_ms] (must be [>= 1]), {!poll} raises
    {!Expired} once that many milliseconds have elapsed since [make].
    Without it the token never expires and only tracks heartbeats.

    @raise Invalid_argument if [deadline_ms < 1]. *)

val none : token
(** A shared inert token: never expires, records no heartbeats. This is what
    {!poll} sees when no token is installed. *)

val with_token : token -> (unit -> 'a) -> 'a
(** [with_token t f] installs [t] as the calling domain's ambient token,
    runs [f ()], and restores the previous ambient token (also on raise).
    Nesting is allowed; the innermost token wins. *)

val current : unit -> token
(** The calling domain's ambient token ({!none} when nothing is
    installed). Work that fans out to other domains captures this and
    hands each shard a {!child} of it — ambient tokens are domain-local,
    so they do not cross a [Domain.spawn] on their own. *)

val child : token -> token
(** [child t] is a linked token for one shard of work running on [t]'s
    behalf, typically on another domain. It mirrors [t]'s absolute
    deadline (an expired parent budget expires every child, with the same
    [elapsed]/[limit] report), and every {!poll} on the child also
    heartbeats [t] and honours a {!cancel} of [t] — while {!cancel} on
    the child stops that shard alone. [child none] is {!none}. *)

val cancel : token -> unit
(** Flag [t] as cancelled from any domain: the next {!poll} /
    {!expire_check} on it raises {!Cancelled}. Idempotent, never blocks,
    and a no-op on {!none} (which is shared by every tokenless domain). *)

val cancelled : token -> bool
(** Whether {!cancel} has been called on [t]. *)

val poll : unit -> unit
(** Checkpoint. Reads the ambient token; if it is {!none} this is a no-op.
    Otherwise stamps the heartbeat, raises {!Cancelled} if the token was
    cancelled, then {!Expired} if the deadline (when any) has passed. *)

val expire_check : token -> unit
(** Like {!poll} but on an explicit token — used by the pool to reject a job
    whose deadline already passed while it sat in the queue. Also stamps the
    heartbeat. *)

val last_poll_ms : token -> int
(** Wall-clock milliseconds (Unix epoch) of the most recent {!poll} /
    {!expire_check} on this token; its creation time if never polled.
    Returns [0] for {!none}. *)

val created_ms : token -> int
(** Wall-clock milliseconds (Unix epoch) at token creation. [0] for {!none}. *)

val deadline_ms : token -> int option
(** The deadline budget this token was created with, if any. *)

val now_ms : unit -> int
(** Current wall clock in whole milliseconds since the Unix epoch — the same
    clock every token uses, exported so supervisors compare like with like. *)
