(* Cooperative cancellation: an ambient per-domain token polled at natural
   checkpoints. Timestamps are whole milliseconds (immediate ints) so the
   heartbeat [Atomic.set] never allocates on the poll fast path. *)

type token = {
  t0_ms : int;  (* creation time; 0 only for [none] *)
  expiry_ms : int option;  (* absolute wall-clock expiry *)
  limit_ms : int;  (* the budget [expiry_ms] encodes, for error reports *)
  hb_ms : int Atomic.t;  (* last poll; supervisors read this *)
  halt : bool Atomic.t;  (* explicit cross-domain cancellation *)
  parent : token option;  (* linked token this one fans out for *)
}

exception Expired of { elapsed_ms : int; limit_ms : int }
exception Cancelled

let () =
  Printexc.register_printer (function
    | Expired { elapsed_ms; limit_ms } ->
        Some
          (Printf.sprintf "Qls_cancel.Expired(elapsed=%dms, limit=%dms)"
             elapsed_ms limit_ms)
    | Cancelled -> Some "Qls_cancel.Cancelled"
    | _ -> None)

let now_ms () =
  (* lint: nondet-source — wall clock is the substance of deadline tracking *)
  int_of_float (Unix.gettimeofday () *. 1000.)

let none =
  {
    t0_ms = 0;
    expiry_ms = None;
    limit_ms = 0;
    hb_ms = Atomic.make 0;
    halt = Atomic.make false;
    parent = None;
  }

let make ?deadline_ms () =
  (match deadline_ms with
  | Some d when d < 1 ->
      invalid_arg (Printf.sprintf "Qls_cancel.make: deadline_ms %d < 1" d)
  | _ -> ());
  let t0 = now_ms () in
  {
    t0_ms = t0;
    expiry_ms = Option.map (fun d -> t0 + d) deadline_ms;
    limit_ms = Option.value deadline_ms ~default:0;
    hb_ms = Atomic.make t0;
    halt = Atomic.make false;
    parent = None;
  }

(* A child mirrors the parent's absolute expiry (same [t0_ms]/[limit_ms],
   so an [Expired] report reads identically from either) and keeps its
   own cancellation flag; polls walk the parent chain, so cancelling the
   parent stops every child while cancelling one child leaves its
   siblings running. [child none] is [none]: with no ambient budget there
   is nothing to propagate. *)
let child t =
  if t == none then none
  else
    {
      t0_ms = t.t0_ms;
      expiry_ms = t.expiry_ms;
      limit_ms = t.limit_ms;
      hb_ms = Atomic.make (now_ms ());
      halt = Atomic.make false;
      parent = Some t;
    }

(* [none] is shared by every tokenless domain, so cancelling it would poison
   unrelated work; treat it as uncancellable instead. *)
let cancel t = if t != none then Atomic.set t.halt true
let cancelled t = Atomic.get t.halt

let key : token Domain.DLS.key = Domain.DLS.new_key (fun () -> none)

let with_token t f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key t;
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

let expire_check t =
  if t != none then begin
    let now = now_ms () in
    (* Stamp the whole chain: a supervisor watching the parent job sees
       fanned-out children still making progress. *)
    let rec stamp u =
      Atomic.set u.hb_ms now;
      if Atomic.get u.halt then raise Cancelled;
      match u.parent with Some p -> stamp p | None -> ()
    in
    stamp t;
    match t.expiry_ms with
    | Some e when now >= e ->
        raise (Expired { elapsed_ms = now - t.t0_ms; limit_ms = t.limit_ms })
    | _ -> ()
  end

let poll () = expire_check (Domain.DLS.get key)
let current () = Domain.DLS.get key
let last_poll_ms t = Atomic.get t.hb_ms
let created_ms t = t.t0_ms
let deadline_ms t = if t.limit_ms = 0 then None else Some t.limit_ms
