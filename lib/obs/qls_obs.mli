(** Structured tracing + metrics for the router, SAT solver, generator
    and campaign harness.

    {b Spans} carry a name, a site (coarse subsystem label — ["router"],
    ["sat"], ["gen"], ["harness"]), a start time relative to one process
    epoch, a duration, and optional attributes. Two sinks:

    - {e JSONL}: one CRC-sealed line per finished span, written whole
      and flushed under a mutex — the same crash-truncation contract as
      the result store: concurrent domains never interleave within a
      line and a kill can only tear the final line, which the seal
      catches on read-back.
    - {e Chrome trace-event}: a [{"traceEvents":[…]}] JSON file written
      at {!shutdown}, loadable in [chrome://tracing] or Perfetto
      (complete ["ph":"X"] events, microsecond timestamps).

    {b Overhead contract.} Tracing is off by default. When disabled,
    {!enabled} is a single atomic load, {!start} returns the static
    {!none} span without allocating, and {!stop} on it returns
    immediately; {!with_span} calls the body directly. Hot loops guard
    attribute construction on {!enabled} so the router bench geomeans
    are unaffected with tracing compiled in but disabled. Instrumented
    code never consumes RNG, so routed outputs are bit-identical with
    tracing on and off.

    {b Metrics} are process-global named {!counter}s (atomic ints) and
    fixed-bucket {!histogram}s, always on (they cost an atomic RMW),
    independent of the trace sink. *)

type value = Int of int | Float of float | Str of string
(** Attribute values — rendered as JSON numbers/strings. *)

type span
(** A started span; stopped at most once. *)

type format = Jsonl | Chrome

val enabled : unit -> bool
(** One atomic load: is a trace sink armed? Hot paths branch on this
    before building attribute lists. *)

val none : span
(** The inert span: {!stop} on it is a no-op. {!start} returns it when
    tracing is disabled, so callers never need a null check. *)

val start : ?site:string -> string -> span
(** Begin a span (default site ["app"]). Allocation-free no-op returning
    {!none} when tracing is disabled. *)

val stop : ?attrs:(string * value) list -> span -> unit
(** Finish the span and emit it to the armed sink with the attributes.
    Callers on hot paths should guard [~attrs] construction with
    {!enabled} — the list is evaluated before the call either way. *)

val with_span :
  ?site:string -> ?attrs:(unit -> (string * value) list) -> string ->
  (unit -> 'a) -> 'a
(** Run the body inside a span; [attrs] (evaluated after the body, so it
    can report results) is only called when tracing is enabled. The span
    is closed even when the body raises. *)

(** {1 Metrics} *)

type counter

val counter : string -> counter
(** Get-or-create the process-global counter with this name. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val counters : unit -> (string * int) list
(** All counters, sorted by name with [String.compare]. *)

type histogram

val histogram : ?bounds:float array -> string -> histogram
(** Get-or-create a fixed-bucket histogram. [bounds] are ascending
    upper bounds (sorted defensively); one overflow bucket is added.
    Defaults span 1 ms to 60 s — the task-latency range. *)

val observe : histogram -> float -> unit
(** Count one sample. @raise Invalid_argument on NaN. *)

val histogram_counts : histogram -> float array * int array
(** [(bounds, counts)] with [counts] one longer (overflow bucket). *)

val histogram_total : histogram -> int

val approx_quantile : histogram -> float -> float option
(** Upper-bound estimate of the [q]-quantile (the smallest bucket bound
    covering a [q] fraction of samples); [None] when empty. *)

val reset_metrics : unit -> unit
(** Zero every counter and histogram (tests and bench isolation). *)

(** {1 Sink control} *)

val tracing_to : ?format:format -> string -> unit
(** Arm tracing into [path] and set the process epoch. Format inferred
    from the suffix when not given: [.jsonl] → {!Jsonl}, anything else →
    {!Chrome} (so [--trace out.json] loads in the Chrome importer). *)

val shutdown : unit -> unit
(** Disarm tracing and finalise the sink: close the JSONL handle, or
    write the accumulated Chrome [traceEvents] file. Idempotent. *)

(** {1 Reading traces back} *)

type record = {
  r_name : string;
  r_site : string;
  r_tid : int;
  r_start : float;
  r_dur : float;
  r_attrs : (string * string) list;  (** attribute values as raw text *)
}

val load_jsonl : string -> record list * int
(** Parse a JSONL trace in file order: [(spans, rejected)] where
    [rejected] counts lines that fail their seal or don't parse (torn
    tail after a kill). A missing file is an empty trace. *)

(**/**)

val crc32 : string -> string
(** Exposed for the trace-integrity tests. *)
