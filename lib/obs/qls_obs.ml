(* Structured tracing and metrics for the whole stack, with two sinks:
   an append-only JSONL span log (one sealed, flushed line per finished
   span — the Store crash-truncation contract: a kill can only tear the
   final line, and the seal catches it) and a Chrome trace-event export
   (chrome://tracing / Perfetto).

   The library is off by default and the disabled path is deliberately
   allocation-free: [enabled] is one atomic load, [start] returns the
   static [none] span, [stop none] returns immediately. Hot loops (the
   router round loop, SAT propagation) guard their attribute building on
   [enabled ()] so tracing costs nothing when it is not armed. *)

type value = Int of int | Float of float | Str of string

type span =
  | No_span
  | Span of { name : string; site : string; t0 : float; tid : int }

type format = Jsonl | Chrome

type record = {
  r_name : string;
  r_site : string;
  r_tid : int;
  r_start : float;
  r_dur : float;
  r_attrs : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* Global state                                                        *)
(* ------------------------------------------------------------------ *)

type sink = {
  s_format : format;
  s_path : string;
  s_oc : out_channel option;  (* Jsonl: the open append handle *)
  s_buf : Buffer.t;  (* Chrome: accumulated event objects *)
  mutable s_first : bool;
  s_mutex : Mutex.t;
}

let enabled_flag = Atomic.make false
let sink : sink option Atomic.t = Atomic.make None
let epoch = Atomic.make 0.0
let enabled () = Atomic.get enabled_flag
let none = No_span
let tid () = (Domain.self () :> int)

(* ------------------------------------------------------------------ *)
(* CRC seal and JSON helpers: the framing is the shared Qls_sealed     *)
(* implementation (same polynomial and splice as the result store), so *)
(* a trace reader can apply the identical torn-line quarantine.        *)
(* ------------------------------------------------------------------ *)

let crc32 = Qls_sealed.crc32
let seal = Qls_sealed.seal
let unseal = Qls_sealed.unseal_ok
let escape = Qls_sealed.escape

let value_json = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6f" f
  | Str s -> Printf.sprintf "\"%s\"" (escape s)

let attrs_json attrs =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (value_json v)) attrs)

(* ------------------------------------------------------------------ *)
(* Span lifecycle                                                      *)
(* ------------------------------------------------------------------ *)

let start ?(site = "app") name =
  if not (enabled ()) then No_span
    (* lint: nondet-source — span timestamps are observability data *)
  else Span { name; site; t0 = Unix.gettimeofday (); tid = tid () }

let emit ~name ~site ~t0 ~tid ~dur attrs =
  match Atomic.get sink with
  | None -> ()
  | Some s -> (
      let rel = t0 -. Atomic.get epoch in
      match s.s_format with
      | Jsonl ->
          let line =
            seal
              (Printf.sprintf
                 {|{"name":"%s","site":"%s","tid":%d,"start":%.6f,"dur":%.6f%s}|}
                 (escape name) (escape site) tid rel dur
                 (match attrs with
                 | [] -> ""
                 | attrs -> Printf.sprintf {|,"attrs":{%s}|} (attrs_json attrs)))
          in
          Mutex.protect s.s_mutex (fun () ->
              match s.s_oc with
              | Some oc ->
                  (* Whole line in one buffered write, then flush: lines
                     from concurrent domains never interleave and a kill
                     can only truncate the final line. *)
                  output_string oc (line ^ "\n");
                  flush oc
              | None -> ())
      | Chrome ->
          let ev =
            Printf.sprintf
              {|{"name":"%s","cat":"%s","ph":"X","ts":%.1f,"dur":%.1f,"pid":1,"tid":%d%s}|}
              (escape name) (escape site) (rel *. 1e6)
              (Float.max 0.1 (dur *. 1e6))
              tid
              (match attrs with
              | [] -> ""
              | attrs -> Printf.sprintf {|,"args":{%s}|} (attrs_json attrs))
          in
          Mutex.protect s.s_mutex (fun () ->
              if s.s_first then s.s_first <- false else Buffer.add_string s.s_buf ",\n";
              Buffer.add_string s.s_buf ev))

let stop ?(attrs = []) = function
  | No_span -> ()
  | Span { name; site; t0; tid } ->
      (* lint: nondet-source — span durations are observability data *)
      let dur = Unix.gettimeofday () -. t0 in
      emit ~name ~site ~t0 ~tid ~dur attrs

let with_span ?site ?attrs name f =
  if not (enabled ()) then f ()
  else
    let sp = start ?site name in
    Fun.protect
      ~finally:(fun () ->
        let attrs = match attrs with None -> [] | Some g -> g () in
        stop ~attrs sp)
      f

(* ------------------------------------------------------------------ *)
(* Counters and histograms                                             *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; c_cell : int Atomic.t }

let registry_mutex = Mutex.create ()
let counter_registry : (string, counter) Hashtbl.t = Hashtbl.create 16

let counter name =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt counter_registry name with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_cell = Atomic.make 0 } in
          Hashtbl.add counter_registry name c;
          c)

let incr c = Atomic.incr c.c_cell
let add c n = ignore (Atomic.fetch_and_add c.c_cell n)
let counter_value c = Atomic.get c.c_cell

let counters () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c.c_cell) :: acc)
        counter_registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type histogram = {
  h_name : string;
  h_bounds : float array;  (* ascending upper bounds; last bucket is +inf *)
  h_counts : int Atomic.t array;  (* length = Array.length h_bounds + 1 *)
}

let default_bounds =
  [| 0.001; 0.005; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0; 10.0; 60.0 |]

let histogram_registry : (string, histogram) Hashtbl.t = Hashtbl.create 8

let histogram ?(bounds = default_bounds) name =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt histogram_registry name with
      | Some h -> h
      | None ->
          let bounds = Array.copy bounds in
          Array.sort Float.compare bounds;
          let h =
            {
              h_name = name;
              h_bounds = bounds;
              h_counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
            }
          in
          Hashtbl.add histogram_registry name h;
          h)

let observe h x =
  (* NaN would satisfy no bound and silently land in the overflow
     bucket; fail loudly instead, as Metrics does (PR-3 rule). *)
  if Float.is_nan x then invalid_arg (Printf.sprintf "Qls_obs.observe %s: NaN" h.h_name);
  let n = Array.length h.h_bounds in
  let rec bucket i = if i >= n || x <= h.h_bounds.(i) then i else bucket (i + 1) in
  Atomic.incr h.h_counts.(bucket 0)

let histogram_counts h =
  (Array.copy h.h_bounds, Array.map Atomic.get h.h_counts)

let histogram_total h =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.h_counts

(* Upper-bound estimate of quantile [q] from the bucket counts: the
   smallest bucket bound at which the cumulative count reaches q. *)
let approx_quantile h q =
  let total = histogram_total h in
  if total = 0 then None
  else begin
    let target = Float.of_int total *. q in
    let cum = ref 0 and found = ref None in
    Array.iteri
      (fun i c ->
        if Option.is_none !found then begin
          cum := !cum + Atomic.get c;
          if Float.of_int !cum >= target then
            found :=
              Some
                (if i < Array.length h.h_bounds then h.h_bounds.(i)
                 else h.h_bounds.(Array.length h.h_bounds - 1))
        end)
      h.h_counts;
    !found
  end

let reset_metrics () =
  Mutex.protect registry_mutex (fun () ->
      (* lint: nondet-source — zeroing every cell commutes *)
      Hashtbl.iter (fun _ c -> Atomic.set c.c_cell 0) counter_registry;
      (* lint: nondet-source — zeroing every cell commutes *)
      Hashtbl.iter
        (fun _ h -> Array.iter (fun c -> Atomic.set c 0) h.h_counts)
        histogram_registry)

(* ------------------------------------------------------------------ *)
(* Sink control                                                        *)
(* ------------------------------------------------------------------ *)

let infer_format path = if Filename.check_suffix path ".jsonl" then Jsonl else Chrome

let tracing_to ?format path =
  let s_format = match format with Some f -> f | None -> infer_format path in
  let s_oc =
    match s_format with
    | Jsonl ->
        Some (open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path)
    | Chrome -> None
  in
  let s =
    {
      s_format;
      s_path = path;
      s_oc;
      s_buf = Buffer.create 4096;
      s_first = true;
      s_mutex = Mutex.create ();
    }
  in
  (* lint: nondet-source — trace epoch is observability data *)
  Atomic.set epoch (Unix.gettimeofday ());
  Atomic.set sink (Some s);
  Atomic.set enabled_flag true

let shutdown () =
  Atomic.set enabled_flag false;
  match Atomic.get sink with
  | None -> ()
  | Some s ->
      Atomic.set sink None;
      Mutex.protect s.s_mutex (fun () ->
          match s.s_format with
          | Jsonl -> Option.iter close_out s.s_oc
          | Chrome ->
              let oc = open_out s.s_path in
              output_string oc "{\"traceEvents\":[\n";
              Buffer.output_buffer oc s.s_buf;
              output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n";
              close_out oc)

(* ------------------------------------------------------------------ *)
(* JSONL reader (post-processing and tests)                            *)
(* ------------------------------------------------------------------ *)

(* Extract the value of ["key"] from a flat object we serialised
   ourselves; span names/sites never contain quotes, so a plain substring
   scan is exact for our own output. *)
let field payload key =
  let pat = Printf.sprintf "\"%s\":" key in
  let n = String.length payload and m = String.length pat in
  let rec scan i =
    if i + m > n then None
    else if String.sub payload i m = pat then Some (i + m)
    else scan (i + 1)
  in
  match scan 0 with
  | None -> None
  | Some start ->
      let stop = ref start and depth = ref 0 and in_str = ref false in
      while
        !stop < n
        && (!depth > 0 || !in_str
           || (payload.[!stop] <> ',' && payload.[!stop] <> '}'))
      do
        (match payload.[!stop] with
        | '"' -> in_str := not !in_str
        | '{' when not !in_str -> Stdlib.incr depth
        | '}' when not !in_str -> Stdlib.decr depth
        | _ -> ());
        Stdlib.incr stop
      done;
      Some (String.sub payload start (!stop - start))

let strip_quotes s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2) else s

let record_of_line line =
  match unseal line with
  | None -> None
  | Some payload -> (
      match
        ( field payload "name",
          field payload "site",
          field payload "tid",
          field payload "start",
          field payload "dur" )
      with
      | Some name, Some site, Some tid, Some start, Some dur -> (
          match
            (int_of_string_opt tid, float_of_string_opt start, float_of_string_opt dur)
          with
          | Some r_tid, Some r_start, Some r_dur ->
              let r_attrs =
                match field payload "attrs" with
                | None -> []
                | Some obj ->
                    let inner =
                      let n = String.length obj in
                      if n >= 2 && obj.[0] = '{' && obj.[n - 1] = '}' then
                        String.sub obj 1 (n - 2)
                      else obj
                    in
                    String.split_on_char ',' inner
                    |> List.filter_map (fun kv ->
                           match String.index_opt kv ':' with
                           | None -> None
                           | Some i ->
                               Some
                                 ( strip_quotes (String.sub kv 0 i),
                                   strip_quotes
                                     (String.sub kv (i + 1)
                                        (String.length kv - i - 1)) ))
              in
              Some
                {
                  r_name = strip_quotes name;
                  r_site = strip_quotes site;
                  r_tid;
                  r_start;
                  r_dur;
                  r_attrs;
                }
          | _ -> None)
      | _ -> None)

let load_jsonl path =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let ic = open_in path in
    let records = ref [] and bad = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then
           match record_of_line line with
           | Some r -> records := r :: !records
           | None -> Stdlib.incr bad
       done
     with End_of_file -> ());
    close_in ic;
    (List.rev !records, !bad)
  end
