type kind =
  | Exn of { transient : bool }
  | Delay of float
  | Torn of float
  | Flip

type rule = { site : string; kind : kind; rate : float }
type plan = { seed : int; rules : rule list }

exception Injected of { site : string; transient : bool }

let none = { seed = 0; rules = [] }
let is_none p = List.is_empty p.rules

(* ------------------------------------------------------------------ *)
(* Spec syntax                                                         *)
(* ------------------------------------------------------------------ *)

let spec_help =
  "seed=N;SITE:KIND:RATE;... where KIND is transient | permanent | \
   delay@SECS | hang@SECS | torn[@FRACTION] | flip and SITE is \
   runner.exec | store.append | store.load"

let kind_to_string = function
  | Exn { transient = true } -> "transient"
  | Exn { transient = false } -> "permanent"
  | Delay s -> Printf.sprintf "delay@%g" s
  | Torn f -> Printf.sprintf "torn@%g" f
  | Flip -> "flip"

let kind_of_string s =
  let tagged tag conv k =
    let tl = String.length tag in
    if
      String.length s > tl
      && String.sub s 0 tl = tag
      && s.[tl] = '@'
    then
      match conv (String.sub s (tl + 1) (String.length s - tl - 1)) with
      | Some v -> Some (k v)
      | None -> None
    else None
  in
  match s with
  | "transient" -> Some (Exn { transient = true })
  | "permanent" -> Some (Exn { transient = false })
  | "torn" -> Some (Torn 0.5)
  | "flip" -> Some Flip
  | _ -> (
      match tagged "delay" float_of_string_opt (fun v -> Delay v) with
      | Some _ as k -> k
      | None -> (
          match tagged "hang" float_of_string_opt (fun v -> Delay v) with
          | Some _ as k -> k
          | None -> tagged "torn" float_of_string_opt (fun v -> Torn v)))

let known_sites =
  [
    "runner.exec";
    "store.append";
    "store.load";
    (* serving path (PR 7): connection reads, pooled work, request log *)
    "serve.frame.read";
    "serve.work.hang";
    "serve.work.exn";
    "serve.log.append";
  ]

let parse spec =
  let clauses =
    String.split_on_char ';' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go seed rules = function
    | [] -> Ok { seed; rules = List.rev rules }
    | clause :: rest -> (
        match String.split_on_char '=' clause with
        | [ "seed"; v ] -> (
            match int_of_string_opt v with
            | Some s -> go s rules rest
            | None -> Error (Printf.sprintf "bad seed %S" v))
        | _ -> (
            match String.split_on_char ':' clause with
            | [ site; kind; rate ] -> (
                if not (List.mem site known_sites) then
                  Error
                    (Printf.sprintf "unknown site %S (known: %s)" site
                       (String.concat ", " known_sites))
                else
                  match (kind_of_string kind, float_of_string_opt rate) with
                  | None, _ -> Error (Printf.sprintf "unknown kind %S" kind)
                  | _, None -> Error (Printf.sprintf "bad rate %S" rate)
                  | Some _, Some r when r < 0.0 || r > 1.0 ->
                      Error (Printf.sprintf "rate %g out of [0,1]" r)
                  | Some k, Some r ->
                      go seed ({ site; kind = k; rate = r } :: rules) rest)
            | _ ->
                Error
                  (Printf.sprintf "bad clause %S (expected %s)" clause
                     spec_help)))
  in
  if List.is_empty clauses then Error "empty injection spec" else go 0 [] clauses

let to_string p =
  String.concat ";"
    (Printf.sprintf "seed=%d" p.seed
    :: List.map
         (fun r -> Printf.sprintf "%s:%s:%g" r.site (kind_to_string r.kind) r.rate)
         p.rules)

(* ------------------------------------------------------------------ *)
(* Ambient plan + deterministic decisions                              *)
(* ------------------------------------------------------------------ *)

let current : plan Atomic.t = Atomic.make none

(* Per-(site, key) visit counters, so a retried attempt draws the next
   decision in that key's stream rather than replaying the first one
   forever. Protected by a mutex; only touched when a plan is armed. *)
let occ_mutex = Mutex.create ()
let occ : (string, int) Hashtbl.t = Hashtbl.create 64

let install p =
  Mutex.protect occ_mutex (fun () -> Hashtbl.reset occ);
  Atomic.set current p

let installed () = Atomic.get current
let clear () = install none

let occurrence ~site ~key =
  let k = site ^ "\x00" ^ key in
  Mutex.protect occ_mutex (fun () ->
      let n = Option.value ~default:0 (Hashtbl.find_opt occ k) in
      Hashtbl.replace occ k (n + 1);
      n)

(* FNV-1a, the same fold the harness uses for task seeds: cheap, stable,
   and good enough to decorrelate (seed, site, key, occurrence). *)
let fnv s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF) s;
  !h

let draw ~plan ~rule_ix ~(rule : rule) ~key ~occurrence =
  fnv
    (Printf.sprintf "%d|%d|%s|%s|%d" plan.seed rule_ix rule.site key occurrence)

let fires ~plan ~rule_ix ~rule ~key ~occurrence =
  let h = draw ~plan ~rule_ix ~rule ~key ~occurrence in
  float_of_int (h mod 1_000_000) /. 1_000_000.0 < rule.rate

let matching ~exec_site plan site key =
  if is_none plan then []
  else
    let o = occurrence ~site ~key in
    List.mapi (fun ix rule -> (ix, rule)) plan.rules
    |> List.filter (fun (rule_ix, rule) ->
           rule.site = site
           && (match rule.kind with
              | Exn _ | Delay _ -> exec_site
              | Torn _ | Flip -> not exec_site)
           && fires ~plan ~rule_ix ~rule ~key ~occurrence:o)

let exec ~site ~key =
  let plan = Atomic.get current in
  if not (is_none plan) then
    List.iter
      (fun (_, rule) ->
        match rule.kind with
        | Delay s -> Thread.delay s
        | Exn { transient } -> raise (Injected { site; transient })
        | Torn _ | Flip -> ())
      (matching ~exec_site:true plan site key)

let mangle ~site ~key payload =
  let plan = Atomic.get current in
  if is_none plan then payload
  else
    List.fold_left
      (fun payload (rule_ix, rule) ->
        let n = String.length payload in
        if n = 0 then payload
        else
          (* A second draw, decorrelated from the firing decision by the
             payload length, picks where to damage. *)
          let h = draw ~plan ~rule_ix ~rule ~key ~occurrence:(1_000_000 + n) in
          match rule.kind with
          | Torn keep ->
              let keep_bytes =
                max 0 (min (n - 1) (int_of_float (float_of_int n *. keep)))
              in
              String.sub payload 0 keep_bytes
          | Flip ->
              let bit = h mod (n * 8) in
              let b = Bytes.of_string payload in
              let i = bit / 8 in
              Bytes.set b i
                (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
              Bytes.to_string b
          | Exn _ | Delay _ -> payload)
      payload
      (matching ~exec_site:false plan site key)
