(** Deterministic fault injection for the campaign harness.

    A {!plan} is a seed plus a list of rules, each arming one fault
    {!kind} at one named {e site} with a firing rate. The harness calls
    {!exec} (may raise or delay) and {!mangle} (may corrupt bytes) at
    its sites; with no plan installed both are free no-ops, so
    production campaigns pay one atomic load per site visit.

    Sites wired into the harness:
    - ["runner.exec"] — around each task-body attempt ({!exec})
    - ["store.append"] — on the serialised checkpoint line ({!mangle})
    - ["store.load"] — on each line read back at resume ({!mangle})

    Sites wired into the serving path ([qubikos serve]):
    - ["serve.frame.read"] — per socket read while framing a request:
      {!exec} (delay = slow client, exn = connection torn down) and
      {!mangle} [Torn] (short reads exercising frame reassembly)
    - ["serve.work.hang"] — {!exec} at the start of each pooled request
      body; arm with [delay@SECS] beyond the watchdog threshold to
      simulate a stuck worker
    - ["serve.work.exn"] — {!exec} at the same point; arm with
      [transient]/[permanent] to make request bodies raise
    - ["serve.log.append"] — {!exec} before each request-log line; a
      fired exn drops that line (the daemon must survive and the log
      must stay well-sealed)

    Every decision is a pure function of [(seed, site, key, occurrence)]
    — [key] is the task id or line number, [occurrence] a per-[(site,
    key)] visit counter — so a fault schedule is reproducible from its
    seed alone: same plan, same campaign, same faults, regardless of
    worker count or interleaving across keys. *)

type kind =
  | Exn of { transient : bool }
      (** raise {!Injected} — classified transient or permanent by the
          runner *)
  | Delay of float  (** sleep this many seconds, then continue (a hang
                        when it exceeds the task timeout) *)
  | Torn of float
      (** keep only this fraction of the mangled bytes — a torn write /
          truncated read *)
  | Flip  (** flip one deterministically chosen bit of the payload *)

type rule = { site : string; kind : kind; rate : float }
(** Fire [kind] at [site] on the fraction [rate] (in [0..1]) of visits. *)

type plan = { seed : int; rules : rule list }

exception Injected of { site : string; transient : bool }
(** The exception {!exec} raises for [Exn] rules. *)

val none : plan
(** The empty plan: no rules, never fires. *)

val is_none : plan -> bool

val known_sites : string list
(** Every site name {!parse} accepts. CI asserts each of these is
    actually visited somewhere in the tree, so a site can't silently
    rot into a no-op. *)

val parse : string -> (plan, string) result
(** Parse an [--inject] spec: [;]-separated clauses, one [seed=N] plus
    any number of [SITE:KIND:RATE] rules, where KIND is [transient],
    [permanent], [delay@SECS], [hang@SECS], [torn@FRACTION], [torn] (=
    [torn@0.5]) or [flip]. Example:
    {v seed=7;runner.exec:transient:0.3;store.append:torn:0.25 v} *)

val to_string : plan -> string
(** Render a plan back into {!parse}'s spec syntax (roundtrips). *)

val spec_help : string
(** One-line syntax summary for CLI [--inject] documentation. *)

val install : plan -> unit
(** Make the plan ambient for the whole process (and reset occurrence
    counters, so two installs of the same plan fire identically). *)

val installed : unit -> plan
val clear : unit -> unit

val exec : site:string -> key:string -> unit
(** Visit an execution site: fire any matching [Exn] (raises
    {!Injected}) or [Delay] rule. [Torn]/[Flip] rules never fire here. *)

val mangle : site:string -> key:string -> string -> string
(** Visit a data site: apply any matching [Torn]/[Flip] rule to the
    payload; [Exn]/[Delay] rules never fire here. *)
